#!/usr/bin/env python3
"""Compare fresh BENCH_*.json reports against committed baselines.

Each bench binary writes `BENCH_<name>.json` as a flat list of
`{"metric": ..., "value": ..., "unit": ...}` rows (see bench/bench_util.h).
This script diffs freshly produced reports against the committed snapshots in
`bench/baselines/` and flags any metric whose relative deviation exceeds its
tolerance.

Intended for the warn-only CI bench-smoke step: by default every violation is
printed as a warning and the exit code stays 0 (bench numbers on shared
runners are noisy); pass --strict to turn violations into a non-zero exit for
local perf work on a quiet machine.

Usage:
    scripts/compare_bench.py build-release/BENCH_eval_kernel.json
    scripts/compare_bench.py --fresh-dir build-release
    scripts/compare_bench.py --strict --tolerance 0.10 BENCH_eval_kernel.json

Per-metric tolerances override the global one, widest-match last wins:
    scripts/compare_bench.py --metric-tolerance eval_kernel_speedup=0.5 ...
"""

import argparse
import json
import os
import sys


def load_report(path):
    """Returns {metric: (value, unit)} for one BENCH_*.json file."""
    with open(path, "r", encoding="utf-8") as fh:
        rows = json.load(fh)
    report = {}
    for row in rows:
        report[row["metric"]] = (float(row["value"]), row.get("unit", ""))
    return report


def relative_deviation(fresh, base):
    if base == 0.0:
        return 0.0 if fresh == 0.0 else float("inf")
    return abs(fresh - base) / abs(base)


def compare_one(fresh_path, baseline_path, tolerance, metric_tolerances):
    """Compares one report pair; returns (warnings, checked_count)."""
    fresh = load_report(fresh_path)
    base = load_report(baseline_path)
    warnings = []
    checked = 0
    for metric in sorted(set(fresh) | set(base)):
        if metric not in base:
            warnings.append(f"{metric}: new metric (no baseline value)")
            continue
        if metric not in fresh:
            warnings.append(f"{metric}: missing from fresh report")
            continue
        checked += 1
        fresh_value, unit = fresh[metric]
        base_value, _ = base[metric]
        tol = metric_tolerances.get(metric, tolerance)
        dev = relative_deviation(fresh_value, base_value)
        if dev > tol:
            direction = "down" if fresh_value < base_value else "up"
            warnings.append(
                f"{metric}: {base_value:g} -> {fresh_value:g} {unit} "
                f"({direction} {dev * 100.0:.1f}%, tolerance "
                f"{tol * 100.0:.0f}%)"
            )
    return warnings, checked


def parse_metric_tolerance(spec):
    name, _, frac = spec.partition("=")
    if not name or not frac:
        raise argparse.ArgumentTypeError(
            f"expected NAME=FRACTION, got {spec!r}"
        )
    return name, float(frac)


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff fresh BENCH_*.json files against bench/baselines/."
    )
    parser.add_argument(
        "fresh", nargs="*", help="fresh BENCH_*.json files to compare"
    )
    parser.add_argument(
        "--fresh-dir",
        help="scan this directory for BENCH_*.json instead of listing files",
    )
    parser.add_argument(
        "--baseline-dir",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "bench",
            "baselines",
        ),
        help="directory of committed baseline reports "
        "(default: <repo>/bench/baselines)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="default relative tolerance per metric (default: 0.25)",
    )
    parser.add_argument(
        "--metric-tolerance",
        action="append",
        default=[],
        type=parse_metric_tolerance,
        metavar="NAME=FRACTION",
        help="override the tolerance for one metric (repeatable)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any metric exceeds its tolerance "
        "(default: warn only)",
    )
    args = parser.parse_args(argv)

    fresh_paths = list(args.fresh)
    if args.fresh_dir:
        for entry in sorted(os.listdir(args.fresh_dir)):
            if entry.startswith("BENCH_") and entry.endswith(".json"):
                fresh_paths.append(os.path.join(args.fresh_dir, entry))
    if not fresh_paths:
        print("compare_bench: no fresh BENCH_*.json files given", file=sys.stderr)
        return 2

    metric_tolerances = dict(args.metric_tolerance)
    total_warnings = 0
    total_checked = 0
    for fresh_path in fresh_paths:
        name = os.path.basename(fresh_path)
        baseline_path = os.path.join(args.baseline_dir, name)
        if not os.path.exists(baseline_path):
            print(f"{name}: no committed baseline, skipping")
            continue
        warnings, checked = compare_one(
            fresh_path, baseline_path, args.tolerance, metric_tolerances
        )
        total_checked += checked
        total_warnings += len(warnings)
        status = "OK" if not warnings else f"{len(warnings)} warning(s)"
        print(f"{name}: {checked} metric(s) checked, {status}")
        for warning in warnings:
            print(f"  warning: {warning}")

    print(
        f"compare_bench: {total_checked} metric(s) checked, "
        f"{total_warnings} warning(s)"
    )
    if total_warnings and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
