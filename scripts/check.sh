#!/usr/bin/env bash
# Tier-1 verification wrapper:
#   1. configure + build with the project warning set (-Wall -Wextra and
#      friends come from the cbes_warnings interface target) and run ctest;
#   2. rebuild tests once under AddressSanitizer (-DCBES_SANITIZE=address)
#      and run them again;
#   3. with CBES_SANITIZE=thread in the environment, also rebuild under
#      ThreadSanitizer and run the concurrent suites (test_server and
#      test_fault), which exercise the request broker's queue/cache/worker
#      locking and the monitor/injector interplay under chaos plans, plus
#      test_property, whose delta-vs-full evaluation sweeps also cover the
#      compiled-profile cache sharing immutable artifacts across workers, and
#      test_net, whose loopback clients cross the event-loop/worker boundary
#      (completion fan-out, coalescing, shutdown) on every request, and
#      test_net_resilience, whose graceful-drain and chaos-loadgen scenarios
#      race client threads, the event loop, and workers on purpose;
#   4. with CBES_SANITIZE=undefined, rebuild under UndefinedBehaviorSanitizer
#      (-fno-sanitize-recover=all: any UB aborts the test) and run the core
#      and resilience suites — the checkpoint text codec, retry/backoff
#      arithmetic, and breaker/shedder state machines are exactly the kind of
#      casting- and float-heavy code UBSan is built for — plus test_net,
#      whose seeded mutation corpus hammers the wire codec's bounds-checked
#      byte parsing.
#
# Usage: scripts/check.sh [--no-asan]
#        CBES_SANITIZE=thread scripts/check.sh
#        CBES_SANITIZE=undefined scripts/check.sh --no-asan
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== tier-1: configure, build, test =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "${1:-}" == "--no-asan" ]]; then
  echo "== skipping ASan pass (--no-asan) =="
else
  echo "== ASan pass: rebuild tests with -DCBES_SANITIZE=address =="
  cmake -B build-asan -S . -DCBES_SANITIZE=address \
    -DCBES_BUILD_BENCH=OFF -DCBES_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-asan -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -j "$jobs"
fi

if [[ "${CBES_SANITIZE:-}" == "thread" ]]; then
  echo "== TSan pass: rebuild with -DCBES_SANITIZE=thread, run server tests =="
  cmake -B build-tsan -S . -DCBES_SANITIZE=thread \
    -DCBES_BUILD_BENCH=OFF -DCBES_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-tsan -j "$jobs" \
    --target test_server --target test_fault --target test_property \
    --target test_net --target test_net_resilience
  ./build-tsan/tests/test_server
  ./build-tsan/tests/test_fault
  ./build-tsan/tests/test_property
  ./build-tsan/tests/test_net
  ./build-tsan/tests/test_net_resilience
fi

if [[ "${CBES_SANITIZE:-}" == "undefined" ]]; then
  echo "== UBSan pass: rebuild with -DCBES_SANITIZE=undefined, run core + resilience =="
  cmake -B build-ubsan -S . -DCBES_SANITIZE=undefined \
    -DCBES_BUILD_BENCH=OFF -DCBES_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-ubsan -j "$jobs" \
    --target test_core --target test_resilience --target test_server \
    --target test_fault --target test_net --target test_net_resilience
  ./build-ubsan/tests/test_core
  ./build-ubsan/tests/test_resilience
  ./build-ubsan/tests/test_server
  ./build-ubsan/tests/test_fault
  ./build-ubsan/tests/test_net
  ./build-ubsan/tests/test_net_resilience
fi

echo "== all checks passed =="
