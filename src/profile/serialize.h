// Profile persistence — the stand-in for CBES's application-dedicated
// database tables (paper figure 2): profiles are produced once by the
// (expensive) profiling run and reused across scheduling requests and
// service restarts.
//
// The format is a line-oriented text format, versioned, with one record per
// line; it needs no third-party dependencies and diffs cleanly.
#pragma once

#include <iosfwd>
#include <string>

#include "profile/app_profile.h"

namespace cbes {

/// Writes `profile` to `out`. Throws ContractError on stream failure.
void save_profile(const AppProfile& profile, std::ostream& out);

/// Reads a profile written by save_profile. Throws ContractError on malformed
/// input or version mismatch.
[[nodiscard]] AppProfile load_profile(std::istream& in);

/// Convenience file wrappers.
void save_profile_file(const AppProfile& profile, const std::string& path);
[[nodiscard]] AppProfile load_profile_file(const std::string& path);

}  // namespace cbes
