#include "profile/app_profile.h"

#include <bit>

namespace cbes {

namespace {

/// FNV-1a accumulator over 64-bit words; doubles are folded by bit pattern so
/// the hash distinguishes every value evaluation could distinguish.
struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) noexcept {
    h ^= v;
    h *= 0x100000001b3ULL;
  }
  void mix(double v) noexcept { mix(std::bit_cast<std::uint64_t>(v)); }
};

}  // namespace

double AppProfile::computation_fraction() const {
  Seconds x = 0.0;
  Seconds b = 0.0;
  for (const ProcessProfile& p : procs) {
    x += p.x + p.o;
    b += p.b;
  }
  const Seconds total = x + b;
  return total > 0.0 ? x / total : 1.0;
}

std::size_t AppProfile::hash() const noexcept {
  Fnv fnv;
  fnv.mix(static_cast<std::uint64_t>(procs.size()));
  for (const double s : arch_speed) fnv.mix(s);
  for (const ProcessProfile& p : procs) {
    fnv.mix(p.x);
    fnv.mix(p.o);
    fnv.mix(p.b);
    fnv.mix(static_cast<std::uint64_t>(p.profiled_arch));
    fnv.mix(p.lambda);
    for (const auto* groups : {&p.recv_groups, &p.send_groups}) {
      fnv.mix(static_cast<std::uint64_t>(groups->size()));
      for (const MessageGroup& g : *groups) {
        fnv.mix(static_cast<std::uint64_t>(g.peer.value));
        fnv.mix(static_cast<std::uint64_t>(g.size));
        fnv.mix(static_cast<std::uint64_t>(g.count));
      }
    }
  }
  return static_cast<std::size_t>(fnv.h);
}

std::size_t AppProfile::total_groups() const {
  std::size_t total = 0;
  for (const ProcessProfile& p : procs) {
    total += p.recv_groups.size() + p.send_groups.size();
  }
  return total;
}

}  // namespace cbes
