#include "profile/app_profile.h"

namespace cbes {

double AppProfile::computation_fraction() const {
  Seconds x = 0.0;
  Seconds b = 0.0;
  for (const ProcessProfile& p : procs) {
    x += p.x + p.o;
    b += p.b;
  }
  const Seconds total = x + b;
  return total > 0.0 ? x / total : 1.0;
}

std::size_t AppProfile::total_groups() const {
  std::size_t total = 0;
  for (const ProcessProfile& p : procs) {
    total += p.recv_groups.size() + p.send_groups.size();
  }
  return total;
}

}  // namespace cbes
