// The application-profiling subsystem of CBES: runs the application once on a
// profiling mapping (tracing enabled), analyzes the trace, measures the
// application's per-architecture speed ratios with a compute microbenchmark,
// and fixes the lambda correction factors against the latency model
// (equation 7).
#pragma once

#include <cstdint>

#include "apps/program.h"
#include "netmodel/latency_model.h"
#include "profile/app_profile.h"
#include "simmpi/simulator.h"
#include "topology/mapping.h"

namespace cbes {

struct ProfilerOptions {
  /// Hardware description used for the profiling run.
  SimNetConfig net;
  std::uint64_t seed = 0x9A0F11EULL;
  /// Multiplicative noise on the measured architecture speed ratios
  /// (real measurements are never exact); 0 disables.
  double speed_noise_sigma = 0.004;
};

/// Profiles `program` by executing it on `profiling_mapping` over an idle
/// cluster. The latency model is needed to evaluate Theta^profile for the
/// lambda factors. Requires the mapping to fit the simulator's topology.
[[nodiscard]] AppProfile profile_application(const Program& program,
                                             const Mapping& profiling_mapping,
                                             MpiSimulator& simulator,
                                             const LatencyModel& model,
                                             const ProfilerOptions& options);

/// Fills `profile.arch_speed` by timing a reference compute kernel on one node
/// of each architecture present in the topology (absent architectures get 1.0).
/// Exposed separately so segment profiles can share one measurement.
void measure_arch_speeds(AppProfile& profile, const Program& program,
                         const ClusterTopology& topology,
                         const ProfilerOptions& options);

/// Computes lambda_i = B_i / Theta_i^profile for every process (equation 7),
/// using no-load latencies on the profiling mapping.
void fix_lambdas(AppProfile& profile, const LatencyModel& model);

}  // namespace cbes
