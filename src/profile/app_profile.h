// Application profiles (paper §2, §3.1): "a summary of an application's
// behavior" — per process the accumulated X (own code), O (MPI overhead) and
// B (blocked) times, the same-size message groups exchanged with every peer,
// the lambda correction factors, and the experimentally measured speed ratios
// of the application on each cluster architecture (footnote 1).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "topology/arch.h"

namespace cbes {

/// A group of same-size messages on one channel (the paper's mg sets, each
/// with a message count mc and message size ms).
struct MessageGroup {
  RankId peer;
  Bytes size = 0;
  std::size_t count = 0;
};

/// Profile of one application process.
struct ProcessProfile {
  Seconds x = 0.0;  ///< accumulated own-code execution time
  Seconds o = 0.0;  ///< accumulated MPI-library overhead time
  Seconds b = 0.0;  ///< accumulated blocked-waiting time
  /// Architecture of the node that hosted this process while profiling
  /// (Speed_profile in equation 5 refers to this node).
  Arch profiled_arch = Arch::kGeneric;
  /// Messages this process received, grouped by (sender, size) — mgS.
  std::vector<MessageGroup> recv_groups;
  /// Messages this process sent, grouped by (recipient, size) — mgR.
  std::vector<MessageGroup> send_groups;
  /// Correction factor lambda_i = B_i / Theta_i^profile (equation 7);
  /// < 1 when communication overlapped computation, > 1 when overhead
  /// expanded it.
  double lambda = 1.0;
};

/// Profile of a complete application (optionally of one trace segment).
struct AppProfile {
  std::string app_name;
  /// Trace segment this profile summarizes (-1 = whole run).
  int phase = -1;
  std::vector<ProcessProfile> procs;
  /// Node assignment used during the profiling run (needed to compute
  /// Theta^profile and hence lambda).
  std::vector<NodeId> profiling_mapping;
  /// Measured application speed per architecture, relative to the reference
  /// (indexed by static_cast<size_t>(Arch)). Footnote 1: "experimentally
  /// measured speed ratios for all cluster node architectures".
  std::array<double, kAllArchs.size()> arch_speed{1.0, 1.0, 1.0, 1.0};

  [[nodiscard]] std::size_t nranks() const noexcept { return procs.size(); }

  /// Relative speed of `arch` for this application.
  [[nodiscard]] double speed_of(Arch arch) const {
    return arch_speed[static_cast<std::size_t>(arch)];
  }

  /// Computation share: sum X / (sum X + sum B) — the paper quotes e.g. an
  /// "80%/20% computation to communication ratio" for LU(2).
  [[nodiscard]] double computation_fraction() const;

  /// Total message-group count across processes — the profile-complexity
  /// measure that drives mapping-evaluation (and hence scheduler) cost.
  [[nodiscard]] std::size_t total_groups() const;

  /// Order-sensitive content hash (FNV-1a over every field evaluation reads:
  /// per-process times, arch, groups, lambda, and the arch-speed table).
  /// Equal profiles hash equal; used with the snapshot epoch as the
  /// compiled-profile cache key in server::CompiledProfileCache, whose hits
  /// only ever reuse an artifact — a collision between two *live* profiles
  /// of the same app name cannot occur since re-registration replaces.
  [[nodiscard]] std::size_t hash() const noexcept;
};

}  // namespace cbes
