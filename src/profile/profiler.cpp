#include "profile/profiler.h"

#include "common/check.h"
#include "common/rng.h"
#include "profile/analyzer.h"
#include "profile/theta.h"
#include "simnet/load.h"

namespace cbes {

void measure_arch_speeds(AppProfile& profile, const Program& program,
                         const ClusterTopology& topology,
                         const ProfilerOptions& options) {
  // Time a fixed reference kernel on one node of each architecture, as the
  // paper's profiling step does, and express speeds relative to the first
  // architecture found (the profile only ever uses ratios).
  constexpr Seconds kKernelRef = 1.0;
  SimNetwork net(topology, options.net, derive_seed(options.seed, 17));
  Rng noise(derive_seed(options.seed, 23));

  for (Arch arch : kAllArchs) {
    const auto nodes = topology.nodes_with_arch(arch);
    if (nodes.empty()) continue;  // architecture not present: keep default 1.0
    const Seconds t =
        net.compute_time(nodes.front(), kKernelRef, program.mem_intensity,
                         /*cpu_avail=*/1.0);
    double speed = kKernelRef / t;
    if (options.speed_noise_sigma > 0.0) {
      speed *= noise.lognormal_median(1.0, options.speed_noise_sigma);
    }
    profile.arch_speed[static_cast<std::size_t>(arch)] = speed;
  }
}

void fix_lambdas(AppProfile& profile, const LatencyModel& model) {
  const Mapping mapping(profile.profiling_mapping);
  for (std::size_t r = 0; r < profile.nranks(); ++r) {
    ProcessProfile& proc = profile.procs[r];
    const Seconds th = theta_no_load(proc, RankId{r}, mapping, model);
    // lambda in [0, inf): <1 when communication overlapped computation,
    // >1 when overhead expanded it (paper §3.1). Processes that exchanged no
    // messages have Theta == 0; their C term is 0 regardless, keep lambda = 1.
    proc.lambda = th > 0.0 ? proc.b / th : 1.0;
  }
}

AppProfile profile_application(const Program& program,
                               const Mapping& profiling_mapping,
                               MpiSimulator& simulator,
                               const LatencyModel& model,
                               const ProfilerOptions& options) {
  CBES_CHECK_MSG(profiling_mapping.nranks() == program.nranks(),
                 "profiling mapping must cover every rank");

  SimOptions sim;
  sim.net = options.net;
  sim.seed = derive_seed(options.seed, 1);
  sim.record_trace = true;

  NoLoad idle;  // paper: profiling runs on an otherwise free system
  const RunResult run =
      simulator.run(program, profiling_mapping, idle, sim);
  CBES_CHECK_MSG(run.trace.has_value(), "profiling run produced no trace");

  AppProfile profile = analyze_trace(*run.trace, simulator.topology());
  measure_arch_speeds(profile, program, simulator.topology(), options);
  fix_lambdas(profile, model);
  return profile;
}

}  // namespace cbes
