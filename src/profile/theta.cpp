#include "profile/theta.h"

namespace cbes {

Seconds theta(const ProcessProfile& proc, RankId me, const Mapping& mapping,
              const LatencyModel& model, const LoadSnapshot& snapshot) {
  const NodeId my_node = mapping.node_of(me);
  Seconds total = 0.0;
  // First summation of eq. 6: messages sent *to* process i (k in SS_i).
  for (const MessageGroup& g : proc.recv_groups) {
    const NodeId sender = mapping.node_of(g.peer);
    total += static_cast<double>(g.count) *
             model.current(sender, my_node, g.size, snapshot);
  }
  // Second summation: messages process i sent (k in SR_i).
  for (const MessageGroup& g : proc.send_groups) {
    const NodeId recipient = mapping.node_of(g.peer);
    total += static_cast<double>(g.count) *
             model.current(my_node, recipient, g.size, snapshot);
  }
  return total;
}

Seconds theta_no_load(const ProcessProfile& proc, RankId me,
                      const Mapping& mapping, const LatencyModel& model) {
  const NodeId my_node = mapping.node_of(me);
  Seconds total = 0.0;
  for (const MessageGroup& g : proc.recv_groups) {
    total += static_cast<double>(g.count) *
             model.no_load(mapping.node_of(g.peer), my_node, g.size);
  }
  for (const MessageGroup& g : proc.send_groups) {
    total += static_cast<double>(g.count) *
             model.no_load(my_node, mapping.node_of(g.peer), g.size);
  }
  return total;
}

}  // namespace cbes
