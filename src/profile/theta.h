// Theta — the theoretical communication time of a process under a mapping
// (paper equation 6): the sum over all of the process's message groups of
// message count times the current latency L_c between the nodes the mapping
// assigns to the two endpoints.
#pragma once

#include "common/types.h"
#include "monitor/snapshot.h"
#include "netmodel/latency_model.h"
#include "profile/app_profile.h"
#include "topology/mapping.h"

namespace cbes {

/// Theta_i^M with load-adjusted latencies (equation 6). `proc` is process i's
/// profile; `me` is i's identity (needed to locate its node in the mapping).
[[nodiscard]] Seconds theta(const ProcessProfile& proc, RankId me,
                            const Mapping& mapping, const LatencyModel& model,
                            const LoadSnapshot& snapshot);

/// Theta_i with *no-load* latencies — used for the profile's own theoretical
/// time (equation 7's denominator), which is taken on an otherwise idle system.
[[nodiscard]] Seconds theta_no_load(const ProcessProfile& proc, RankId me,
                                    const Mapping& mapping,
                                    const LatencyModel& model);

}  // namespace cbes
