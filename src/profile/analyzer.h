// Trace analysis — our stand-in for the profiling module the paper added to
// XMPI: reduces an execution trace to an application profile (whole-run or
// one profile per phase segment).
#pragma once

#include <vector>

#include "profile/app_profile.h"
#include "topology/cluster.h"
#include "trace/trace.h"

namespace cbes {

/// Reduces `trace` to a whole-run profile: accumulates X/O/B per process and
/// groups messages by (peer, size, direction). Lambda factors and architecture
/// speeds are NOT filled here (see profiler.h) — the analyzer knows nothing
/// about latency models, just like XMPI.
[[nodiscard]] AppProfile analyze_trace(const Trace& trace,
                                       const ClusterTopology& topology);

/// One profile per phase segment (the modified XMPI "generates a basic profile
/// for each segment"). Segment k covers intervals/messages tagged phase == k.
[[nodiscard]] std::vector<AppProfile> analyze_segments(
    const Trace& trace, const ClusterTopology& topology);

}  // namespace cbes
