#include "profile/serialize.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <ios>
#include <sstream>

#include "common/check.h"

namespace cbes {

namespace {

constexpr int kFormatVersion = 1;

/// Profiles are untrusted input; bound every element count so a corrupt or
/// truncated count field cannot trigger a multi-gigabyte allocation before
/// the stream runs dry.
constexpr std::size_t kMaxCount = std::size_t{1} << 20;

/// Names may contain spaces; escape the few characters the parser splits on.
std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\\' || c == ' ' || c == '\n') {
      out += '\\';
      out += (c == ' ' ? 's' : (c == '\n' ? 'n' : '\\'));
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out += s[i] == 's' ? ' ' : (s[i] == 'n' ? '\n' : '\\');
    } else {
      out += s[i];
    }
  }
  return out;
}

void write_groups(std::ostream& out, const char* tag,
                  const std::vector<MessageGroup>& groups) {
  out << tag << ' ' << groups.size();
  for (const MessageGroup& g : groups) {
    out << ' ' << g.peer.value << ' ' << g.size << ' ' << g.count;
  }
  out << '\n';
}

std::vector<MessageGroup> read_groups(std::istream& in, const char* tag,
                                      std::size_t nprocs) {
  std::string word;
  CBES_CHECK_MSG(static_cast<bool>(in >> word) && word == tag,
                 std::string("profile parse error: expected ") + tag);
  std::size_t count = 0;
  CBES_CHECK_MSG(static_cast<bool>(in >> count) && count <= kMaxCount,
                 "profile parse error: count");
  std::vector<MessageGroup> groups(count);
  for (MessageGroup& g : groups) {
    std::uint32_t peer = 0;
    CBES_CHECK_MSG(static_cast<bool>(in >> peer >> g.size >> g.count),
                   "profile parse error: group");
    CBES_CHECK_MSG(peer < nprocs, "profile parse error: peer out of range");
    g.peer = RankId{peer};
  }
  return groups;
}

}  // namespace

void save_profile(const AppProfile& profile, std::ostream& out) {
  out << "cbes-profile " << kFormatVersion << '\n';
  out << std::setprecision(17);
  out << "name " << escape(profile.app_name) << '\n';
  out << "phase " << profile.phase << '\n';
  out << "arch_speed";
  for (double s : profile.arch_speed) out << ' ' << s;
  out << '\n';
  out << "mapping " << profile.profiling_mapping.size();
  for (NodeId n : profile.profiling_mapping) out << ' ' << n.value;
  out << '\n';
  out << "procs " << profile.procs.size() << '\n';
  for (const ProcessProfile& p : profile.procs) {
    out << "proc " << p.x << ' ' << p.o << ' ' << p.b << ' '
        << static_cast<int>(p.profiled_arch) << ' ' << p.lambda << '\n';
    write_groups(out, "recv", p.recv_groups);
    write_groups(out, "send", p.send_groups);
  }
  CBES_CHECK_MSG(out.good(), "profile write failed");
}

AppProfile load_profile(std::istream& in) {
  std::string word;
  int version = 0;
  CBES_CHECK_MSG(static_cast<bool>(in >> word >> version) &&
                     word == "cbes-profile",
                 "not a CBES profile");
  CBES_CHECK_MSG(version == kFormatVersion, "unsupported profile version");

  AppProfile profile;
  CBES_CHECK_MSG(static_cast<bool>(in >> word) && word == "name",
                 "profile parse error: name");
  std::string name;
  CBES_CHECK_MSG(static_cast<bool>(in >> name),
                 "profile parse error: name value");
  profile.app_name = unescape(name);

  CBES_CHECK_MSG(static_cast<bool>(in >> word >> profile.phase) &&
                     word == "phase",
                 "profile parse error: phase");

  CBES_CHECK_MSG(static_cast<bool>(in >> word) && word == "arch_speed",
                 "profile parse error: arch_speed");
  for (double& s : profile.arch_speed) {
    CBES_CHECK_MSG(static_cast<bool>(in >> s) && std::isfinite(s) && s >= 0.0,
                   "profile parse error: speed");
  }

  std::size_t mapping_size = 0;
  CBES_CHECK_MSG(static_cast<bool>(in >> word >> mapping_size) &&
                     word == "mapping" && mapping_size <= kMaxCount,
                 "profile parse error: mapping");
  profile.profiling_mapping.resize(mapping_size);
  for (NodeId& n : profile.profiling_mapping) {
    std::uint32_t value = 0;
    CBES_CHECK_MSG(static_cast<bool>(in >> value) && NodeId{value}.valid(),
                   "profile parse error: mapping node");
    n = NodeId{value};
  }

  std::size_t nprocs = 0;
  CBES_CHECK_MSG(static_cast<bool>(in >> word >> nprocs) && word == "procs" &&
                     nprocs <= kMaxCount,
                 "profile parse error: procs");
  profile.procs.resize(nprocs);
  for (ProcessProfile& p : profile.procs) {
    int arch = 0;
    CBES_CHECK_MSG(
        static_cast<bool>(in >> word >> p.x >> p.o >> p.b >> arch >>
                          p.lambda) &&
            word == "proc",
        "profile parse error: proc");
    CBES_CHECK_MSG(arch >= 0 &&
                       arch < static_cast<int>(kAllArchs.size()),
                   "profile parse error: arch out of range");
    // Times are accumulated durations and lambda a positive correction
    // factor; NaN would otherwise flow straight into predictions.
    CBES_CHECK_MSG(std::isfinite(p.x) && p.x >= 0.0 && std::isfinite(p.o) &&
                       p.o >= 0.0 && std::isfinite(p.b) && p.b >= 0.0,
                   "profile parse error: negative or non-finite time");
    CBES_CHECK_MSG(std::isfinite(p.lambda) && p.lambda >= 0.0,
                   "profile parse error: bad lambda");
    p.profiled_arch = static_cast<Arch>(arch);
    p.recv_groups = read_groups(in, "recv", nprocs);
    p.send_groups = read_groups(in, "send", nprocs);
  }
  return profile;
}

void save_profile_file(const AppProfile& profile, const std::string& path) {
  std::ofstream out(path);
  CBES_CHECK_MSG(out.good(), "cannot open for writing: " + path);
  save_profile(profile, out);
}

AppProfile load_profile_file(const std::string& path) {
  std::ifstream in(path);
  CBES_CHECK_MSG(in.good(), "cannot open for reading: " + path);
  return load_profile(in);
}

}  // namespace cbes
