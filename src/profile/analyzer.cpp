#include "profile/analyzer.h"

#include <map>
#include <utility>

#include "common/check.h"

namespace cbes {

namespace {

/// Accumulates one rank's trace into `proc`, restricted to `phase`
/// (-1 = all phases).
void reduce_rank(const RankTrace& rank_trace, int phase, ProcessProfile& proc) {
  for (const TraceInterval& iv : rank_trace.intervals) {
    if (phase >= 0 && iv.phase != phase) continue;
    switch (iv.kind) {
      case IntervalKind::kExecuting: proc.x += iv.duration; break;
      case IntervalKind::kOverhead: proc.o += iv.duration; break;
      case IntervalKind::kBlocked: proc.b += iv.duration; break;
    }
  }
  // Group messages by (peer, size) within each direction.
  std::map<std::pair<std::uint32_t, Bytes>, std::size_t> sent;
  std::map<std::pair<std::uint32_t, Bytes>, std::size_t> received;
  for (const TraceMessage& m : rank_trace.messages) {
    if (phase >= 0 && m.phase != phase) continue;
    auto& bucket = m.sent ? sent : received;
    ++bucket[{m.peer.value, m.size}];
  }
  for (const auto& [key, count] : received) {
    proc.recv_groups.push_back(MessageGroup{RankId{key.first}, key.second,
                                            count});
  }
  for (const auto& [key, count] : sent) {
    proc.send_groups.push_back(MessageGroup{RankId{key.first}, key.second,
                                            count});
  }
}

AppProfile reduce(const Trace& trace, const ClusterTopology& topology,
                  int phase) {
  CBES_CHECK_MSG(trace.mapping.size() == trace.nranks(),
                 "trace mapping does not cover all ranks");
  AppProfile profile;
  profile.app_name = trace.app_name;
  profile.phase = phase;
  profile.profiling_mapping = trace.mapping;
  profile.procs.resize(trace.nranks());
  for (std::size_t r = 0; r < trace.nranks(); ++r) {
    ProcessProfile& proc = profile.procs[r];
    proc.profiled_arch = topology.node(trace.mapping[r]).arch;
    reduce_rank(trace.ranks[r], phase, proc);
  }
  return profile;
}

}  // namespace

AppProfile analyze_trace(const Trace& trace, const ClusterTopology& topology) {
  return reduce(trace, topology, -1);
}

std::vector<AppProfile> analyze_segments(const Trace& trace,
                                         const ClusterTopology& topology) {
  std::vector<AppProfile> segments;
  for (int phase = 0; phase <= trace.max_phase; ++phase) {
    segments.push_back(reduce(trace, topology, phase));
  }
  return segments;
}

}  // namespace cbes
