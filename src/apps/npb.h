// NAS Parallel Benchmark (NPB 2.4) communication/computation skeletons.
//
// CBES only consumes an application's *trace statistics* — compute bursts,
// message counts/sizes per peer, blocking structure — so each generator here
// reproduces the documented pattern of its benchmark (wavefront pipelining for
// LU, pairwise all-to-all for IS, nearest-neighbour halos for MG, ADI face
// exchanges for SP/BT, ...) at a work scale that simulates quickly. Class
// presets (S/A/B) scale total work and message sizes the way the real input
// classes do relative to each other.
#pragma once

#include "apps/program.h"

namespace cbes {

enum class NpbClass : unsigned char { kS, kA, kB };

[[nodiscard]] const char* npb_class_name(NpbClass klass) noexcept;

/// LU: simulated CFD application, SSOR solver with 2D wavefront pipelining —
/// the paper's primary scheduling workload (§6.1). The knobs are exposed
/// because the Orange Grove experiments tune total runtime and comm fraction
/// to the paper's measured zones.
struct LuParams {
  std::size_t ranks = 8;
  std::size_t iters = 120;
  /// Reference compute seconds per rank per iteration (across both sweeps).
  Seconds compute_per_iter = 1.4;
  /// Pipeline blocks (k-planes) per sweep; one message per edge per block.
  /// Pipelining hides per-message latency (upstream and downstream advance at
  /// the same cadence), so these mostly cost pipeline-fill time.
  std::size_t blocks_per_sweep = 25;
  Bytes msg_size = 8192;
  /// Synchronous halo-exchange rounds per iteration — LU's rhs/jacld/jacu
  /// neighbour exchanges outside the triangular solves. These are the
  /// latency- and contention-sensitive part: every rank blocks on its
  /// neighbours each round, so per-message cost lands on the critical path.
  std::size_t halo_rounds = 8;
  Bytes halo_size = 32 * 1024;
  /// Residual-norm allreduce every this many iterations.
  std::size_t allreduce_every = 5;
  double mem_intensity = 0.40;
};

[[nodiscard]] Program make_lu(const LuParams& params);

// NPB class presets running on `ranks` processes.
[[nodiscard]] Program make_npb_lu(std::size_t ranks, NpbClass klass);
[[nodiscard]] Program make_npb_is(std::size_t ranks, NpbClass klass);
[[nodiscard]] Program make_npb_ep(std::size_t ranks, NpbClass klass);
[[nodiscard]] Program make_npb_cg(std::size_t ranks, NpbClass klass);
[[nodiscard]] Program make_npb_mg(std::size_t ranks, NpbClass klass);
[[nodiscard]] Program make_npb_sp(std::size_t ranks, NpbClass klass);
[[nodiscard]] Program make_npb_bt(std::size_t ranks, NpbClass klass);

}  // namespace cbes
