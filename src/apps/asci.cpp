#include "apps/asci.h"

#include <algorithm>
#include <cmath>
#include <array>
#include <string>

#include "apps/decomp.h"
#include "common/check.h"

namespace cbes {

Program make_hpl(std::size_t ranks, std::size_t n) {
  CBES_CHECK_MSG(n >= 256, "HPL problem too small to block");
  ProgramBuilder b("hpl." + std::to_string(n), ranks, 0.35);
  const Grid2D g = Grid2D::make(ranks);
  constexpr std::size_t kNb = 128;
  const std::size_t panels = std::max<std::size_t>(2, n / kNb);

  // Total reference factorization work ~ (2/3) n^3 flops, expressed in
  // reference-node seconds and spread over the trailing updates.
  const double n_rel = static_cast<double>(n) / 10000.0;
  const Seconds total_work = 2200.0 * n_rel * n_rel * n_rel;
  // sum over panels of frac^2 ~ panels / 3.
  const Seconds update_unit =
      3.0 * total_work / static_cast<double>(panels) /
      static_cast<double>(ranks);

  // Fixed per-run cost: matrix generation, BLAS warm-up, residual validation.
  // Dominates short runs — the paper's HPL(500) takes ~25 s wall with well
  // under a second of factorization flops, which is why its mapping speedup
  // is "uncertain".
  b.compute_all(20.0 / static_cast<double>(ranks) * 8.0);

  for (std::size_t k = 0; k < panels; ++k) {
    const double frac =
        static_cast<double>(panels - k) / static_cast<double>(panels);
    const std::size_t owner_col = k % g.cols;

    // Panel factorization on the owner column (includes pivot searches).
    for (std::size_t row = 0; row < g.rows; ++row) {
      b.compute(g.at(row, owner_col), update_unit * 0.08 * frac);
    }
    b.allreduce(256);  // pivot row bookkeeping

    // Ring broadcast of the panel along each grid row.
    const Bytes panel_bytes = std::max<Bytes>(
        1024, static_cast<Bytes>(static_cast<double>(kNb) *
                                 (static_cast<double>(n) * frac /
                                  static_cast<double>(g.rows)) *
                                 8.0));
    for (std::size_t row = 0; row < g.rows; ++row) {
      for (std::size_t step = 0; step + 1 < g.cols; ++step) {
        const std::size_t from = (owner_col + step) % g.cols;
        const std::size_t to = (owner_col + step + 1) % g.cols;
        b.message(g.at(row, from), g.at(row, to), panel_bytes);
      }
    }

    // Row swaps along columns (partial pivoting).
    const Bytes swap_bytes = std::max<Bytes>(
        512, static_cast<Bytes>(static_cast<double>(kNb) *
                                (static_cast<double>(n) * frac /
                                 static_cast<double>(g.cols)) *
                                2.0));
    for (std::size_t col = 0; col < g.cols; ++col) {
      for (std::size_t row = 0; row + 1 < g.rows; ++row) {
        b.exchange(g.at(row, col), g.at(row + 1, col), swap_bytes);
      }
    }

    // Trailing-matrix update, shrinking quadratically.
    b.compute_all(update_unit * frac * frac);
  }
  b.allreduce(64);  // residual check
  return std::move(b).build();
}

Program make_sweep3d(std::size_t ranks) {
  ProgramBuilder b("sweep3d", ranks, 0.50);
  const Grid3D g = Grid3D::make(ranks);
  constexpr std::size_t kIters = 24;
  constexpr std::size_t kBlocks = 6;  // pipelined k-blocks per octant sweep
  constexpr Bytes kAngleBlock = 6 * 1024;
  const Seconds block_compute = 430.0 / static_cast<double>(kIters) / 8.0 /
                                static_cast<double>(kBlocks) /
                                static_cast<double>(ranks);

  // Eight octants: all sign combinations of the three sweep directions.
  constexpr std::array<std::array<int, 3>, 8> kOctants = {{{+1, +1, +1},
                                                           {-1, +1, +1},
                                                           {+1, -1, +1},
                                                           {-1, -1, +1},
                                                           {+1, +1, -1},
                                                           {-1, +1, -1},
                                                           {+1, -1, -1},
                                                           {-1, -1, -1}}};

  for (std::size_t it = 0; it < kIters; ++it) {
    for (const auto& oct : kOctants) {
      // Wavefront pipelined over k-blocks: receive upstream planes, compute,
      // forward downstream. Ranks are emitted in sweep order per block so the
      // pipeline is well-formed and fill costs amortize over the blocks.
      for (std::size_t blk = 0; blk < kBlocks; ++blk) {
        for (std::size_t r = 0; r < ranks; ++r) {
          const RankId rank{r};
          for (int axis = 0; axis < 3; ++axis) {
            std::array<int, 3> d{0, 0, 0};
            d[static_cast<std::size_t>(axis)] =
                -oct[static_cast<std::size_t>(axis)];
            const RankId up = g.neighbor(r, d[0], d[1], d[2]);
            if (up.valid()) b.recv(rank, up, kAngleBlock);
          }
          b.compute(rank, block_compute);
          for (int axis = 0; axis < 3; ++axis) {
            std::array<int, 3> d{0, 0, 0};
            d[static_cast<std::size_t>(axis)] =
                oct[static_cast<std::size_t>(axis)];
            const RankId down = g.neighbor(r, d[0], d[1], d[2]);
            if (down.valid()) b.send(rank, down, kAngleBlock);
          }
        }
      }
    }
    b.allreduce(64);  // flux convergence
  }
  return std::move(b).build();
}

Program make_smg2000(std::size_t ranks, std::size_t cube) {
  CBES_CHECK_MSG(cube >= 4, "smg2000 problem too small");
  ProgramBuilder b("smg2000." + std::to_string(cube), ranks, 0.80);
  const Grid3D g = Grid3D::make(ranks);

  const double c = static_cast<double>(cube);
  // Work ~ c^3 per cycle; face traffic ~ c^2. Level count grows with log2(c).
  std::size_t levels = 3;
  for (std::size_t e = cube; e > 2; e /= 2) ++levels;
  const std::size_t cycles = cube <= 16 ? 12 : (cube <= 52 ? 12 : 14);
  const double base_face = c * c * 8.0;
  const Seconds cycle_work =
      (c * c * c) * 2.2e-4 / static_cast<double>(ranks);
  // Coarse levels do little arithmetic but still pay setup and solver
  // bookkeeping every cycle — the reason the 12^3 problem takes ~16 s in the
  // paper, far above its flop count.
  const Seconds cycle_floor = 0.9;

  auto halo = [&](Bytes size) {
    for (std::size_t r = 0; r < ranks; ++r) {
      for (const auto [dx, dy, dz] :
           {std::array{1, 0, 0}, std::array{0, 1, 0}, std::array{0, 0, 1}}) {
        const RankId peer = g.neighbor(r, dx, dy, dz);
        if (peer.valid()) b.exchange(RankId{r}, peer, size);
      }
    }
  };

  const auto level_count = static_cast<double>(2 * levels);
  for (std::size_t cyc = 0; cyc < cycles; ++cyc) {
    // Semicoarsening coarsens one dimension per level, so two of the three
    // face orientations keep their full area: face traffic decays slowly
    // (~0.75^l) while arithmetic halves — coarse levels keep exchanging many
    // small-to-medium messages, smg2000's signature. Each level runs several
    // relaxation sweeps, each with its own halo.
    for (std::size_t l = 0; l < levels; ++l) {
      const double work_shrink = 1.0 / static_cast<double>(1u << l);
      const double face_shrink = std::pow(0.85, static_cast<double>(l));
      for (int sweep = 0; sweep < 3; ++sweep) {
        halo(std::max<Bytes>(128,
                             static_cast<Bytes>(base_face * face_shrink)));
      }
      b.compute_all(cycle_work * work_shrink * 0.5 +
                    cycle_floor / level_count);
    }
    for (std::size_t l = levels; l > 0; --l) {
      const double work_shrink = 1.0 / static_cast<double>(1u << (l - 1));
      const double face_shrink = std::pow(0.85, static_cast<double>(l - 1));
      for (int sweep = 0; sweep < 2; ++sweep) {
        halo(std::max<Bytes>(128,
                             static_cast<Bytes>(base_face * face_shrink)));
      }
      b.compute_all(cycle_work * work_shrink * 0.25 +
                    cycle_floor / level_count);
    }
    b.allreduce(64);
  }
  return std::move(b).build();
}

Program make_samrai(std::size_t ranks) {
  ProgramBuilder b("samrai", ranks, 0.60);
  const Grid2D g = Grid2D::make(ranks);
  constexpr std::size_t kSteps = 36;
  const Seconds step_work = 6.2 / static_cast<double>(kSteps);

  for (std::size_t step = 0; step < kSteps; ++step) {
    // Imbalanced patch work: refined regions land on a third of the ranks.
    for (std::size_t r = 0; r < ranks; ++r) {
      const double weight = (r % 3 == 0) ? 1.6 : 0.7;
      b.compute(RankId{r}, step_work * weight);
    }
    // Ghost exchange with grid neighbours.
    for (std::size_t r = 0; r < ranks; ++r) {
      if (const RankId e = g.east(r); e.valid())
        b.exchange(RankId{r}, e, 12 * 1024);
      if (const RankId s = g.south(r); s.valid())
        b.exchange(RankId{r}, s, 12 * 1024);
    }
    // Regridding every fourth step redistributes patches all-to-all.
    if (step % 4 == 3) b.alltoall(20 * 1024);
    b.allreduce(64);
  }
  return std::move(b).build();
}

Program make_towhee(std::size_t ranks) {
  ProgramBuilder b("towhee", ranks, 0.15);
  constexpr std::size_t kChunks = 20;
  const Seconds chunk_work = 46.0 * 0.97 / static_cast<double>(kChunks);
  for (std::size_t chunk = 0; chunk < kChunks; ++chunk) {
    // Independent Monte Carlo moves; a tiny acceptance-statistics reduction.
    b.compute_all(chunk_work);
    b.allreduce(128);
  }
  return std::move(b).build();
}

Program make_aztec(std::size_t ranks) {
  ProgramBuilder b("aztec", ranks, 0.72);
  const Grid2D g = Grid2D::make(ranks);
  constexpr std::size_t kIters = 500;
  constexpr Bytes kHalo = 20 * 1024;
  const Seconds iter_work = 560.0 / static_cast<double>(kIters) /
                            static_cast<double>(ranks);

  for (std::size_t it = 0; it < kIters; ++it) {
    // Sparse matvec: halo exchange with the four 2D neighbours.
    for (std::size_t r = 0; r < ranks; ++r) {
      if (const RankId e = g.east(r); e.valid())
        b.exchange(RankId{r}, e, kHalo);
    }
    for (std::size_t r = 0; r < ranks; ++r) {
      if (const RankId s = g.south(r); s.valid())
        b.exchange(RankId{r}, s, kHalo);
    }
    b.compute_all(iter_work);
    b.allreduce(16);  // dot products of the Krylov recurrence
    b.allreduce(16);
  }
  return std::move(b).build();
}

}  // namespace cbes
