// Name-indexed access to every application generator, for harnesses and tools.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "apps/program.h"

namespace cbes {

struct AppSpec {
  std::string name;
  std::string description;
  /// Builds the program for the given rank count.
  std::function<Program(std::size_t ranks)> make;
};

/// All registered applications (NPB kernels at class A, HPL at its three
/// paper sizes, and the ASCI selection).
[[nodiscard]] const std::vector<AppSpec>& app_registry();

/// Looks up a generator by name; throws ContractError when unknown.
[[nodiscard]] const AppSpec& find_app(const std::string& name);

}  // namespace cbes
