// MPI-like program intermediate representation.
//
// CBES supports "legacy MPI programs without modifications" (paper §4): all it
// ever sees is the trace of compute bursts and messages each process produced.
// A Program captures exactly that — per rank, an ordered list of compute,
// send, and receive operations (collectives are lowered to point-to-point by
// the builder, as LAM/MPI itself ultimately does on a switched cluster).
//
// Sends are eager/buffered (the sender pays stack overhead and continues);
// receives block. This matches LAM's behaviour for the message sizes these
// codes exchange and keeps the blocked-time accounting (the paper's B_i) at
// the receivers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace cbes {

enum class OpKind : unsigned char {
  kCompute,   ///< busy CPU for `compute_ref` seconds on the idle reference node
  kSend,      ///< eager send of `size` bytes to `peer`
  kRecv,      ///< blocking receive of the next message from `peer`
  kPhaseMark, ///< LAM trace segment marker (XMPI phase boundaries)
};

struct Op {
  OpKind kind = OpKind::kCompute;
  Seconds compute_ref = 0.0;  ///< kCompute only
  RankId peer;                ///< kSend / kRecv only
  Bytes size = 0;             ///< kSend / kRecv only
  int phase = 0;              ///< kPhaseMark only: id of the phase that begins
};

/// One rank's op sequence.
struct RankProgram {
  std::vector<Op> ops;
};

/// A complete parallel program.
struct Program {
  std::string name;
  /// Memory intensity mu in [0,1]; determines the architecture-specific speed
  /// ratios of this code (paper §3.1 footnote 1).
  double mem_intensity = 0.3;
  std::vector<RankProgram> ranks;

  [[nodiscard]] std::size_t nranks() const noexcept { return ranks.size(); }
  /// Total operations across all ranks (sizing/diagnostics).
  [[nodiscard]] std::size_t total_ops() const noexcept;
  /// Total reference compute seconds across all ranks.
  [[nodiscard]] Seconds total_compute_ref() const noexcept;
  /// Total message count / bytes across all ranks.
  [[nodiscard]] std::size_t total_messages() const noexcept;
  [[nodiscard]] Bytes total_bytes() const noexcept;
};

/// Splits a phase-marked program into one standalone sub-program per phase
/// segment (ops before the first mark belong to segment 0 together with the
/// ops of mark 0, matching LAM's trace segmentation). Each segment must be
/// communication-quiescent: every send matched by a receive within the same
/// segment — the property that makes mid-run remapping at phase boundaries
/// sound. Throws ContractError when a message crosses a boundary.
[[nodiscard]] std::vector<Program> split_phases(const Program& program);

/// Convenience builder: per-rank appends plus deadlock-free lowered
/// collectives. Rank count is fixed at construction.
class ProgramBuilder {
 public:
  ProgramBuilder(std::string name, std::size_t nranks, double mem_intensity);

  // -- point-to-point -------------------------------------------------------
  void compute(RankId rank, Seconds reference_seconds);
  /// Identical compute burst on every rank.
  void compute_all(Seconds reference_seconds);
  void send(RankId from, RankId to, Bytes size);
  void recv(RankId at, RankId from, Bytes size);
  /// Matched send+recv pair (from -> to).
  void message(RankId from, RankId to, Bytes size);
  /// Bidirectional exchange (MPI_Sendrecv on both sides).
  void exchange(RankId a, RankId b, Bytes size);

  // -- lowered collectives ----------------------------------------------------
  /// Binomial-tree broadcast from `root`.
  void broadcast(RankId root, Bytes size);
  /// Binomial-tree reduction to `root`.
  void reduce(RankId root, Bytes size);
  /// Reduce to rank 0 + broadcast (how LAM lowers allreduce on a LAN).
  void allreduce(Bytes size);
  /// Zero-byte allreduce.
  void barrier();
  /// Pairwise-exchange all-to-all: each rank exchanges `size` bytes with every
  /// other rank over nranks-1 rounds.
  void alltoall(Bytes size);
  /// Ring shift: every rank sends to (rank+1) % nranks.
  void ring_shift(Bytes size);

  /// Starts a new trace phase on all ranks.
  void phase_mark(int phase);

  [[nodiscard]] Program build() &&;

  [[nodiscard]] std::size_t nranks() const noexcept {
    return program_.ranks.size();
  }

 private:
  void push(RankId rank, Op op);

  Program program_;
};

}  // namespace cbes
