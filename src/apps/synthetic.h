// The configurable synthetic benchmark of the paper's first validation phase
// (§5): "configurable in terms of computation and communication overlap,
// communication granularity, and execution duration (indirectly)".
#pragma once

#include <cstdint>

#include "apps/program.h"

namespace cbes {

enum class CommPattern : unsigned char {
  kRing,      ///< each rank talks to its successor
  kGrid,      ///< 2D nearest-neighbour halo exchange
  kAllToAll,  ///< pairwise all-to-all
  kPairs,     ///< fixed random pairing (rank 2k <-> 2k+1 after shuffle)
};

struct SyntheticParams {
  std::size_t ranks = 8;
  std::size_t phases = 50;
  /// Reference compute seconds per rank per phase.
  Seconds compute_per_phase = 0.1;
  /// Messages exchanged per channel per phase (communication granularity:
  /// many small vs few large for the same volume).
  std::size_t msgs_per_phase = 4;
  Bytes msg_size = 16 * 1024;
  /// Computation/communication overlap in [0, 1]: the fraction of each
  /// phase's compute placed between the sends and the matching receives, so
  /// transfers hide behind it (lambda -> 0 as overlap -> 1; lambda ~ 1 at 0).
  double overlap = 0.0;
  /// Skews compute across ranks (rank-alternating +/- fraction); receivers of
  /// slow partners then block longer than theory (lambda > 1).
  double imbalance = 0.0;
  CommPattern pattern = CommPattern::kGrid;
  double mem_intensity = 0.3;
  /// Seed for the kPairs pattern's pairing.
  std::uint64_t seed = 1;
  /// When > 1, the run is split into this many trace segments with LAM phase
  /// markers (each segment is communication-quiescent, so split_phases() and
  /// the PhasedRunner accept it).
  std::size_t mark_segments = 1;
};

/// Builds the synthetic benchmark program.
[[nodiscard]] Program make_synthetic(const SyntheticParams& params);

}  // namespace cbes
