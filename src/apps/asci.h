// HPL and the ASCI-Purple benchmark skeletons used in the paper's scheduling
// experiments (§6): sweep3d, smg2000, SAMRAI, Towhee, and Aztec.
//
// Each generator reproduces the code's documented communication structure at a
// simulation-friendly work scale; the paper's qualitative findings (Aztec and
// smg2000 benefit most, sweep3d/SAMRAI cancel out, Towhee barely communicates)
// follow from the patterns, not from tuned magic numbers.
#pragma once

#include "apps/program.h"

namespace cbes {

/// High Performance Linpack: right-looking LU with row-ring panel broadcasts
/// and a trailing update that shrinks quadratically. `n` is the problem size;
/// the paper runs n = 500, 5000, and 10000.
[[nodiscard]] Program make_hpl(std::size_t ranks, std::size_t n);

/// ASCI sweep3d: 3D wavefront particle transport, eight octant sweeps per
/// iteration. Near-symmetric neighbour traffic in every direction — the paper
/// found the mapping benefits "cancelled by the penalties".
[[nodiscard]] Program make_sweep3d(std::size_t ranks);

/// smg2000: semicoarsening multigrid V-cycles. `cube` is the per-process
/// problem edge (the paper runs 12, 50, and 60). Latency-bound at coarse
/// levels: many small messages.
[[nodiscard]] Program make_smg2000(std::size_t ranks, std::size_t cube);

/// SAMRAI: structured AMR — periodic regridding is an all-to-all, interleaved
/// with imbalanced patch computation. Near all-to-all overall.
[[nodiscard]] Program make_samrai(std::size_t ranks);

/// Towhee: Monte Carlo molecular simulation — embarrassingly parallel,
/// insignificant communication.
[[nodiscard]] Program make_towhee(std::size_t ranks);

/// Aztec: iterative Krylov solver (Poisson problem) — halo exchanges plus two
/// dot-product reductions per iteration; the most communication-sensitive code
/// in the paper's selection.
[[nodiscard]] Program make_aztec(std::size_t ranks);

}  // namespace cbes
