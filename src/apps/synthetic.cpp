#include "apps/synthetic.h"

#include <numeric>
#include <utility>
#include <vector>

#include "apps/decomp.h"
#include "common/check.h"
#include "common/rng.h"

namespace cbes {

namespace {

/// Directed message channels of one phase of the given pattern.
std::vector<std::pair<std::size_t, std::size_t>> pattern_channels(
    const SyntheticParams& params) {
  std::vector<std::pair<std::size_t, std::size_t>> channels;
  const std::size_t n = params.ranks;
  switch (params.pattern) {
    case CommPattern::kRing:
      for (std::size_t r = 0; r < n; ++r) channels.emplace_back(r, (r + 1) % n);
      break;
    case CommPattern::kGrid: {
      const Grid2D grid = Grid2D::make(n);
      for (std::size_t r = 0; r < n; ++r) {
        if (const RankId e = grid.east(r); e.valid()) {
          channels.emplace_back(r, e.index());
          channels.emplace_back(e.index(), r);
        }
        if (const RankId s = grid.south(r); s.valid()) {
          channels.emplace_back(r, s.index());
          channels.emplace_back(s.index(), r);
        }
      }
      break;
    }
    case CommPattern::kAllToAll:
      for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = 0; b < n; ++b) {
          if (a != b) channels.emplace_back(a, b);
        }
      }
      break;
    case CommPattern::kPairs: {
      std::vector<std::size_t> pairing(n);
      std::iota(pairing.begin(), pairing.end(), std::size_t{0});
      Rng rng(params.seed);
      rng.shuffle(std::span<std::size_t>(pairing));
      for (std::size_t k = 0; k + 1 < n; k += 2) {
        channels.emplace_back(pairing[k], pairing[k + 1]);
        channels.emplace_back(pairing[k + 1], pairing[k]);
      }
      break;
    }
  }
  return channels;
}

}  // namespace

Program make_synthetic(const SyntheticParams& params) {
  CBES_CHECK_MSG(params.ranks >= 2, "synthetic benchmark needs >= 2 ranks");
  CBES_CHECK_MSG(params.overlap >= 0.0 && params.overlap <= 1.0,
                 "overlap must be in [0, 1]");
  CBES_CHECK_MSG(params.imbalance >= 0.0 && params.imbalance < 1.0,
                 "imbalance must be in [0, 1)");
  CBES_CHECK_MSG(params.mark_segments >= 1, "need at least one segment");
  ProgramBuilder b("synthetic", params.ranks, params.mem_intensity);
  const auto channels = pattern_channels(params);

  int current_segment = -1;
  for (std::size_t phase = 0; phase < params.phases; ++phase) {
    if (params.mark_segments > 1) {
      const int segment = static_cast<int>(phase * params.mark_segments /
                                           params.phases);
      if (segment != current_segment) {
        b.phase_mark(segment);
        current_segment = segment;
      }
    }
    // Pre-send compute: skewed per rank (even ranks run longer).
    for (std::size_t r = 0; r < params.ranks; ++r) {
      const double skew =
          (r % 2 == 0) ? 1.0 + params.imbalance : 1.0 - params.imbalance;
      b.compute(RankId{r},
                params.compute_per_phase * skew * (1.0 - params.overlap));
    }
    // Eager sends go out, ...
    for (std::size_t m = 0; m < params.msgs_per_phase; ++m) {
      for (const auto& [src, dst] : channels) {
        b.send(RankId{src}, RankId{dst}, params.msg_size);
      }
    }
    // ... the overlapped share of the compute hides the transfers, ...
    if (params.overlap > 0.0) {
      for (std::size_t r = 0; r < params.ranks; ++r) {
        const double skew =
            (r % 2 == 0) ? 1.0 + params.imbalance : 1.0 - params.imbalance;
        b.compute(RankId{r}, params.compute_per_phase * skew * params.overlap);
      }
    }
    // ... then everyone drains their inbound channels.
    for (std::size_t m = 0; m < params.msgs_per_phase; ++m) {
      for (const auto& [src, dst] : channels) {
        b.recv(RankId{dst}, RankId{src}, params.msg_size);
      }
    }
  }
  return std::move(b).build();
}

}  // namespace cbes
