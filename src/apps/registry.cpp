#include "apps/registry.h"

#include "apps/asci.h"
#include "apps/npb.h"
#include "apps/synthetic.h"
#include "common/check.h"

namespace cbes {

const std::vector<AppSpec>& app_registry() {
  static const std::vector<AppSpec> registry = {
      {"lu.A", "NPB LU class A (SSOR wavefront CFD)",
       [](std::size_t n) { return make_npb_lu(n, NpbClass::kA); }},
      {"lu.B", "NPB LU class B",
       [](std::size_t n) { return make_npb_lu(n, NpbClass::kB); }},
      {"is.A", "NPB IS class A (bucket sort, all-to-all)",
       [](std::size_t n) { return make_npb_is(n, NpbClass::kA); }},
      {"ep.B", "NPB EP class B (embarrassingly parallel)",
       [](std::size_t n) { return make_npb_ep(n, NpbClass::kB); }},
      {"cg.A", "NPB CG class A (sparse eigenvalue)",
       [](std::size_t n) { return make_npb_cg(n, NpbClass::kA); }},
      {"mg.A", "NPB MG class A (3D multigrid)",
       [](std::size_t n) { return make_npb_mg(n, NpbClass::kA); }},
      {"mg.B", "NPB MG class B",
       [](std::size_t n) { return make_npb_mg(n, NpbClass::kB); }},
      {"sp.A", "NPB SP class A (ADI pentadiagonal)",
       [](std::size_t n) { return make_npb_sp(n, NpbClass::kA); }},
      {"sp.B", "NPB SP class B",
       [](std::size_t n) { return make_npb_sp(n, NpbClass::kB); }},
      {"bt.S", "NPB BT class S (ADI block-tridiagonal)",
       [](std::size_t n) { return make_npb_bt(n, NpbClass::kS); }},
      {"bt.A", "NPB BT class A",
       [](std::size_t n) { return make_npb_bt(n, NpbClass::kA); }},
      {"bt.B", "NPB BT class B",
       [](std::size_t n) { return make_npb_bt(n, NpbClass::kB); }},
      {"hpl.500", "HPL, n = 500 (short run)",
       [](std::size_t n) { return make_hpl(n, 500); }},
      {"hpl.5000", "HPL, n = 5000",
       [](std::size_t n) { return make_hpl(n, 5000); }},
      {"hpl.10000", "HPL, n = 10000",
       [](std::size_t n) { return make_hpl(n, 10000); }},
      {"sweep3d", "ASCI sweep3d (3D particle transport)",
       [](std::size_t n) { return make_sweep3d(n); }},
      {"smg2000.12", "smg2000, 12^3 per process",
       [](std::size_t n) { return make_smg2000(n, 12); }},
      {"smg2000.50", "smg2000, 50^3 per process",
       [](std::size_t n) { return make_smg2000(n, 50); }},
      {"smg2000.60", "smg2000, 60^3 per process",
       [](std::size_t n) { return make_smg2000(n, 60); }},
      {"samrai", "SAMRAI structured AMR framework",
       [](std::size_t n) { return make_samrai(n); }},
      {"towhee", "MCCCS Towhee Monte Carlo",
       [](std::size_t n) { return make_towhee(n); }},
      {"aztec", "Aztec iterative solver (Poisson)",
       [](std::size_t n) { return make_aztec(n); }},
      {"synthetic", "configurable synthetic benchmark (defaults)",
       [](std::size_t n) {
         SyntheticParams p;
         p.ranks = n;
         return make_synthetic(p);
       }},
  };
  return registry;
}

const AppSpec& find_app(const std::string& name) {
  for (const AppSpec& spec : app_registry()) {
    if (spec.name == name) return spec;
  }
  throw ContractError("unknown application: " + name);
}

}  // namespace cbes
