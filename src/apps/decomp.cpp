#include "apps/decomp.h"

#include "common/check.h"

namespace cbes {

Grid2D Grid2D::make(std::size_t nranks) {
  CBES_CHECK_MSG(nranks >= 1, "empty grid");
  // Largest divisor <= sqrt(n) gives the most square rows x cols factorization.
  std::size_t best = 1;
  for (std::size_t r = 1; r * r <= nranks; ++r)
    if (nranks % r == 0) best = r;
  return Grid2D{best, nranks / best};
}

RankId Grid2D::north(std::size_t rank) const {
  const std::size_t r = row_of(rank);
  return r == 0 ? RankId{} : at(r - 1, col_of(rank));
}

RankId Grid2D::south(std::size_t rank) const {
  const std::size_t r = row_of(rank);
  return r + 1 == rows ? RankId{} : at(r + 1, col_of(rank));
}

RankId Grid2D::west(std::size_t rank) const {
  const std::size_t c = col_of(rank);
  return c == 0 ? RankId{} : at(row_of(rank), c - 1);
}

RankId Grid2D::east(std::size_t rank) const {
  const std::size_t c = col_of(rank);
  return c + 1 == cols ? RankId{} : at(row_of(rank), c + 1);
}

Grid3D Grid3D::make(std::size_t nranks) {
  CBES_CHECK_MSG(nranks >= 1, "empty grid");
  // Factor n = nx * ny * nz with the dimensions as balanced as possible:
  // pick nz = largest divisor <= cbrt(n), then split the rest via Grid2D.
  std::size_t nz = 1;
  for (std::size_t d = 1; d * d * d <= nranks; ++d)
    if (nranks % d == 0) nz = d;
  const Grid2D rest = Grid2D::make(nranks / nz);
  return Grid3D{rest.cols, rest.rows, nz};
}

RankId Grid3D::neighbor(std::size_t rank, int dx, int dy, int dz) const {
  const std::size_t x = rank % nx;
  const std::size_t y = (rank / nx) % ny;
  const std::size_t z = rank / (nx * ny);
  const auto sx = static_cast<std::ptrdiff_t>(x) + dx;
  const auto sy = static_cast<std::ptrdiff_t>(y) + dy;
  const auto sz = static_cast<std::ptrdiff_t>(z) + dz;
  if (sx < 0 || sy < 0 || sz < 0 ||
      sx >= static_cast<std::ptrdiff_t>(nx) ||
      sy >= static_cast<std::ptrdiff_t>(ny) ||
      sz >= static_cast<std::ptrdiff_t>(nz)) {
    return RankId{};
  }
  return at(static_cast<std::size_t>(sx), static_cast<std::size_t>(sy),
            static_cast<std::size_t>(sz));
}

}  // namespace cbes
