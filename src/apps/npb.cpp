#include "apps/npb.h"

#include <algorithm>
#include <cstddef>

#include "apps/decomp.h"
#include "common/check.h"

namespace cbes {

const char* npb_class_name(NpbClass klass) noexcept {
  switch (klass) {
    case NpbClass::kS: return "S";
    case NpbClass::kA: return "A";
    case NpbClass::kB: return "B";
  }
  return "?";
}

namespace {

/// Class scale factors relative to class A: total work and message sizes.
struct ClassScale {
  double work;
  double size;
  double iters;
};

ClassScale scale_of(NpbClass klass) {
  switch (klass) {
    case NpbClass::kS: return {0.05, 0.25, 0.5};
    case NpbClass::kA: return {1.0, 1.0, 1.0};
    case NpbClass::kB: return {4.0, 1.6, 1.25};
  }
  return {1.0, 1.0, 1.0};
}

std::size_t scaled_iters(std::size_t base, double factor) {
  return std::max<std::size_t>(1, static_cast<std::size_t>(
                                      static_cast<double>(base) * factor));
}

Bytes scaled_size(double base, double factor) {
  return std::max<Bytes>(64, static_cast<Bytes>(base * factor));
}

}  // namespace

Program make_lu(const LuParams& p) {
  CBES_CHECK_MSG(p.ranks >= 1, "LU needs at least one rank");
  CBES_CHECK_MSG(p.blocks_per_sweep >= 1, "LU needs at least one block");
  ProgramBuilder b("lu", p.ranks, p.mem_intensity);
  const Grid2D g = Grid2D::make(p.ranks);
  const Seconds block_compute =
      p.compute_per_iter / (2.0 * static_cast<double>(p.blocks_per_sweep));

  for (std::size_t it = 0; it < p.iters; ++it) {
    // Right-hand-side and Jacobian halo exchanges: all ranks exchange
    // boundary faces with their grid neighbours in lockstep.
    for (std::size_t round = 0; round < p.halo_rounds; ++round) {
      for (std::size_t r = 0; r < p.ranks; ++r) {
        if (const RankId e = g.east(r); e.valid())
          b.exchange(RankId{r}, e, p.halo_size);
      }
      for (std::size_t r = 0; r < p.ranks; ++r) {
        if (const RankId s = g.south(r); s.valid())
          b.exchange(RankId{r}, s, p.halo_size);
      }
    }
    // Lower-triangular sweep: the wavefront enters at the north-west corner.
    // Each block receives boundary planes from north/west, computes, and
    // forwards to south/east — the classic SSOR pipeline.
    for (std::size_t blk = 0; blk < p.blocks_per_sweep; ++blk) {
      for (std::size_t r = 0; r < p.ranks; ++r) {
        const RankId rank{r};
        if (const RankId n = g.north(r); n.valid()) b.recv(rank, n, p.msg_size);
        if (const RankId w = g.west(r); w.valid()) b.recv(rank, w, p.msg_size);
        b.compute(rank, block_compute);
        if (const RankId s = g.south(r); s.valid()) b.send(rank, s, p.msg_size);
        if (const RankId e = g.east(r); e.valid()) b.send(rank, e, p.msg_size);
      }
    }
    // Upper-triangular sweep: wavefront from the south-east corner.
    for (std::size_t blk = 0; blk < p.blocks_per_sweep; ++blk) {
      for (std::size_t rr = p.ranks; rr > 0; --rr) {
        const std::size_t r = rr - 1;
        const RankId rank{r};
        if (const RankId s = g.south(r); s.valid()) b.recv(rank, s, p.msg_size);
        if (const RankId e = g.east(r); e.valid()) b.recv(rank, e, p.msg_size);
        b.compute(rank, block_compute);
        if (const RankId n = g.north(r); n.valid()) b.send(rank, n, p.msg_size);
        if (const RankId w = g.west(r); w.valid()) b.send(rank, w, p.msg_size);
      }
    }
    if (p.allreduce_every > 0 && (it + 1) % p.allreduce_every == 0) {
      b.allreduce(64);  // residual norms
    }
  }
  return std::move(b).build();
}

Program make_npb_lu(std::size_t ranks, NpbClass klass) {
  const ClassScale s = scale_of(klass);
  LuParams p;
  p.ranks = ranks;
  p.iters = scaled_iters(60, s.iters);
  // Total work scales with class; per-rank share shrinks with rank count.
  p.compute_per_iter = 2000.0 * s.work /
                       static_cast<double>(p.iters) /
                       static_cast<double>(ranks);
  p.blocks_per_sweep = 20;
  p.msg_size = scaled_size(8192.0, s.size);
  p.halo_rounds = 8;
  p.halo_size = scaled_size(32768.0, s.size);
  p.allreduce_every = 5;
  Program prog = make_lu(p);
  prog.name = std::string("lu.") + npb_class_name(klass);
  return prog;
}

Program make_npb_is(std::size_t ranks, NpbClass klass) {
  const ClassScale s = scale_of(klass);
  ProgramBuilder b(std::string("is.") + npb_class_name(klass), ranks, 0.65);
  const std::size_t iters = scaled_iters(10, s.iters);
  // Bucket sort: key volume splits quadratically across rank pairs.
  const double total_keys_bytes = 32.0e6 * s.work;
  const Bytes pair_bytes = scaled_size(
      total_keys_bytes / static_cast<double>(ranks * ranks), 1.0);
  const Seconds rank_compute =
      0.6 * s.work * 16.0 / static_cast<double>(ranks);
  for (std::size_t it = 0; it < iters; ++it) {
    b.compute_all(rank_compute);
    b.allreduce(1024);       // bucket-size exchange
    b.alltoall(pair_bytes);  // key redistribution
    b.compute_all(rank_compute * 0.4);
  }
  b.allreduce(64);  // full verification
  return std::move(b).build();
}

Program make_npb_ep(std::size_t ranks, NpbClass klass) {
  const ClassScale s = scale_of(klass);
  ProgramBuilder b(std::string("ep.") + npb_class_name(klass), ranks, 0.05);
  // Embarrassingly parallel: long independent compute, three tiny reductions.
  const Seconds total_work = 1800.0 * s.work;
  const Seconds per_rank = total_work / static_cast<double>(ranks);
  for (int chunk = 0; chunk < 10; ++chunk) b.compute_all(per_rank / 10.0);
  for (int r = 0; r < 3; ++r) b.allreduce(64);
  return std::move(b).build();
}

Program make_npb_cg(std::size_t ranks, NpbClass klass) {
  const ClassScale s = scale_of(klass);
  ProgramBuilder b(std::string("cg.") + npb_class_name(klass), ranks, 0.70);
  const Grid2D g = Grid2D::make(ranks);
  const std::size_t outer = scaled_iters(15, s.iters);
  const std::size_t inner = 25;
  // Row/column vector segments of the sparse matvec.
  const Bytes seg = scaled_size(
      14000.0 * 8.0 * s.size / static_cast<double>(g.cols), 1.0);
  const Seconds matvec = 900.0 * s.work /
                         static_cast<double>(outer * inner) /
                         static_cast<double>(ranks);
  for (std::size_t o = 0; o < outer; ++o) {
    for (std::size_t i = 0; i < inner; ++i) {
      b.compute_all(matvec);
      // Transpose exchange along grid rows (segment swap with the mirrored
      // column), as NPB CG's reduce_exch pattern does.
      for (std::size_t r = 0; r < ranks; ++r) {
        const std::size_t row = g.row_of(r);
        const std::size_t col = g.col_of(r);
        const std::size_t mirror_col = g.cols - 1 - col;
        if (col < mirror_col) {
          b.exchange(RankId{r}, g.at(row, mirror_col), seg);
        }
      }
      b.allreduce(16);  // dot products
      b.allreduce(16);
    }
    b.allreduce(16);  // eigenvalue estimate
  }
  return std::move(b).build();
}

Program make_npb_mg(std::size_t ranks, NpbClass klass) {
  const ClassScale s = scale_of(klass);
  ProgramBuilder b(std::string("mg.") + npb_class_name(klass), ranks, 0.75);
  const Grid3D g = Grid3D::make(ranks);
  const std::size_t cycles = scaled_iters(8, s.iters);
  const std::size_t levels = 6;
  const double base_face = 96.0 * 1024.0 * s.size;
  const Seconds base_compute =
      1200.0 * s.work / static_cast<double>(cycles) /
      static_cast<double>(ranks);

  auto halo3d = [&](Bytes size) {
    for (std::size_t r = 0; r < ranks; ++r) {
      for (const auto [dx, dy, dz] :
           {std::array{1, 0, 0}, std::array{0, 1, 0}, std::array{0, 0, 1}}) {
        const RankId peer = g.neighbor(r, dx, dy, dz);
        if (peer.valid()) b.exchange(RankId{r}, peer, size);
      }
    }
  };

  for (std::size_t c = 0; c < cycles; ++c) {
    // V-cycle down: halo + smoothing at shrinking resolution.
    for (std::size_t l = 0; l < levels; ++l) {
      const double shrink = 1.0 / static_cast<double>(1u << (2 * l));
      halo3d(scaled_size(base_face * shrink, 1.0));
      b.compute_all(base_compute * shrink);
    }
    // V-cycle up: prolongation mirrors the way down.
    for (std::size_t l = levels; l > 0; --l) {
      const double shrink = 1.0 / static_cast<double>(1u << (2 * (l - 1)));
      halo3d(scaled_size(base_face * shrink, 1.0));
      b.compute_all(base_compute * shrink * 0.5);
    }
    b.allreduce(64);  // residual norm
  }
  return std::move(b).build();
}

namespace {

/// Shared ADI skeleton for SP and BT: per iteration, face exchanges with the
/// four 2D neighbours in each of the three sweep directions plus the solve
/// compute. SP exchanges smaller faces more often; BT fewer, larger.
Program make_adi(const char* name, std::size_t ranks, NpbClass klass,
                 std::size_t base_iters, double face_bytes, double work,
                 std::size_t exchanges_per_dir, double mem_intensity) {
  const ClassScale s = scale_of(klass);
  ProgramBuilder b(std::string(name) + "." + npb_class_name(klass), ranks,
                   mem_intensity);
  const Grid2D g = Grid2D::make(ranks);
  const std::size_t iters = scaled_iters(base_iters, s.iters);
  const Bytes face = scaled_size(face_bytes * s.size, 1.0);
  const Seconds compute = work * s.work / static_cast<double>(iters) /
                          static_cast<double>(ranks) / 3.0;

  for (std::size_t it = 0; it < iters; ++it) {
    for (int dir = 0; dir < 3; ++dir) {
      for (std::size_t x = 0; x < exchanges_per_dir; ++x) {
        for (std::size_t r = 0; r < ranks; ++r) {
          if (const RankId e = g.east(r); e.valid())
            b.exchange(RankId{r}, e, face);
        }
        for (std::size_t r = 0; r < ranks; ++r) {
          if (const RankId sth = g.south(r); sth.valid())
            b.exchange(RankId{r}, sth, face);
        }
      }
      b.compute_all(compute);
    }
    if ((it + 1) % 10 == 0) b.allreduce(40);  // rhs norms
  }
  return std::move(b).build();
}

}  // namespace

Program make_npb_sp(std::size_t ranks, NpbClass klass) {
  return make_adi("sp", ranks, klass, /*base_iters=*/40,
                  /*face_bytes=*/24.0 * 1024.0, /*work=*/1600.0,
                  /*exchanges_per_dir=*/3, /*mem_intensity=*/0.55);
}

Program make_npb_bt(std::size_t ranks, NpbClass klass) {
  return make_adi("bt", ranks, klass, /*base_iters=*/20,
                  /*face_bytes=*/64.0 * 1024.0, /*work=*/2400.0,
                  /*exchanges_per_dir=*/1, /*mem_intensity=*/0.45);
}

}  // namespace cbes
