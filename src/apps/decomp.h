// Process-grid decomposition helpers shared by the application generators.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace cbes {

/// A 2D process grid of rows x cols == nranks, as close to square as possible
/// (rows <= cols). Row-major rank numbering: rank = row * cols + col.
struct Grid2D {
  std::size_t rows = 1;
  std::size_t cols = 1;

  [[nodiscard]] static Grid2D make(std::size_t nranks);

  [[nodiscard]] std::size_t row_of(std::size_t rank) const {
    return rank / cols;
  }
  [[nodiscard]] std::size_t col_of(std::size_t rank) const {
    return rank % cols;
  }
  [[nodiscard]] RankId at(std::size_t row, std::size_t col) const {
    return RankId{row * cols + col};
  }
  [[nodiscard]] std::size_t size() const { return rows * cols; }

  /// Neighbour in the given direction, or an invalid RankId at the boundary.
  [[nodiscard]] RankId north(std::size_t rank) const;
  [[nodiscard]] RankId south(std::size_t rank) const;
  [[nodiscard]] RankId west(std::size_t rank) const;
  [[nodiscard]] RankId east(std::size_t rank) const;
};

/// A 3D process grid (nx x ny x nz == nranks), as cubic as possible.
struct Grid3D {
  std::size_t nx = 1, ny = 1, nz = 1;

  [[nodiscard]] static Grid3D make(std::size_t nranks);

  [[nodiscard]] std::size_t size() const { return nx * ny * nz; }
  [[nodiscard]] RankId at(std::size_t x, std::size_t y, std::size_t z) const {
    return RankId{(z * ny + y) * nx + x};
  }
  /// Neighbour offset by (dx, dy, dz), or invalid at the boundary.
  [[nodiscard]] RankId neighbor(std::size_t rank, int dx, int dy,
                                int dz) const;
};

}  // namespace cbes
