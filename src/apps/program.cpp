#include "apps/program.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/check.h"

namespace cbes {

std::size_t Program::total_ops() const noexcept {
  std::size_t total = 0;
  for (const RankProgram& r : ranks) total += r.ops.size();
  return total;
}

Seconds Program::total_compute_ref() const noexcept {
  Seconds total = 0.0;
  for (const RankProgram& r : ranks)
    for (const Op& op : r.ops)
      if (op.kind == OpKind::kCompute) total += op.compute_ref;
  return total;
}

std::size_t Program::total_messages() const noexcept {
  std::size_t total = 0;
  for (const RankProgram& r : ranks)
    for (const Op& op : r.ops)
      if (op.kind == OpKind::kSend) ++total;
  return total;
}

Bytes Program::total_bytes() const noexcept {
  Bytes total = 0;
  for (const RankProgram& r : ranks)
    for (const Op& op : r.ops)
      if (op.kind == OpKind::kSend) total += op.size;
  return total;
}

std::vector<Program> split_phases(const Program& program) {
  // Highest phase id decides the segment count; unmarked programs are one
  // segment.
  int max_phase = 0;
  for (const RankProgram& r : program.ranks) {
    for (const Op& op : r.ops) {
      if (op.kind == OpKind::kPhaseMark) max_phase = std::max(max_phase, op.phase);
    }
  }

  std::vector<Program> segments(static_cast<std::size_t>(max_phase) + 1);
  for (auto& seg : segments) {
    seg.name = program.name;
    seg.mem_intensity = program.mem_intensity;
    seg.ranks.resize(program.nranks());
  }
  for (std::size_t r = 0; r < program.nranks(); ++r) {
    std::size_t current = 0;
    for (const Op& op : program.ranks[r].ops) {
      if (op.kind == OpKind::kPhaseMark) {
        CBES_CHECK_MSG(op.phase >= 0, "negative phase id");
        current = static_cast<std::size_t>(op.phase);
        continue;
      }
      segments[current].ranks[r].ops.push_back(op);
    }
  }
  for (std::size_t s = 0; s < segments.size(); ++s) {
    segments[s].name = program.name + ".phase" + std::to_string(s);
    // Quiescence check: per channel, sends and receives must balance inside
    // the segment, or remapping at this boundary would strand a message.
    std::map<std::pair<std::uint32_t, std::uint32_t>, long> balance;
    for (std::size_t r = 0; r < segments[s].nranks(); ++r) {
      for (const Op& op : segments[s].ranks[r].ops) {
        if (op.kind == OpKind::kSend) {
          ++balance[{static_cast<std::uint32_t>(r), op.peer.value}];
        } else if (op.kind == OpKind::kRecv) {
          --balance[{op.peer.value, static_cast<std::uint32_t>(r)}];
        }
      }
    }
    for (const auto& [channel, count] : balance) {
      CBES_CHECK_MSG(count == 0,
                     "phase " + std::to_string(s) + " of '" + program.name +
                         "' is not communication-quiescent");
    }
  }
  return segments;
}

ProgramBuilder::ProgramBuilder(std::string name, std::size_t nranks,
                               double mem_intensity) {
  CBES_CHECK_MSG(nranks >= 1, "program needs at least one rank");
  CBES_CHECK_MSG(mem_intensity >= 0.0 && mem_intensity <= 1.0,
                 "memory intensity must be in [0, 1]");
  program_.name = std::move(name);
  program_.mem_intensity = mem_intensity;
  program_.ranks.resize(nranks);
}

void ProgramBuilder::push(RankId rank, Op op) {
  CBES_CHECK_MSG(rank.valid() && rank.index() < program_.ranks.size(),
                 "rank outside program");
  program_.ranks[rank.index()].ops.push_back(op);
}

void ProgramBuilder::compute(RankId rank, Seconds reference_seconds) {
  CBES_CHECK_MSG(reference_seconds >= 0.0, "negative compute burst");
  if (reference_seconds == 0.0) return;
  Op op;
  op.kind = OpKind::kCompute;
  op.compute_ref = reference_seconds;
  push(rank, op);
}

void ProgramBuilder::compute_all(Seconds reference_seconds) {
  for (std::size_t r = 0; r < nranks(); ++r)
    compute(RankId{r}, reference_seconds);
}

void ProgramBuilder::send(RankId from, RankId to, Bytes size) {
  CBES_CHECK_MSG(from != to, "self-message");
  Op op;
  op.kind = OpKind::kSend;
  op.peer = to;
  op.size = size;
  push(from, op);
}

void ProgramBuilder::recv(RankId at, RankId from, Bytes size) {
  CBES_CHECK_MSG(at != from, "self-message");
  Op op;
  op.kind = OpKind::kRecv;
  op.peer = from;
  op.size = size;
  push(at, op);
}

void ProgramBuilder::message(RankId from, RankId to, Bytes size) {
  send(from, to, size);
  recv(to, from, size);
}

void ProgramBuilder::exchange(RankId a, RankId b, Bytes size) {
  // MPI_Sendrecv on both sides: sends are eager, so send-before-recv on both
  // ranks is deadlock-free and overlaps the two transfers.
  send(a, b, size);
  send(b, a, size);
  recv(a, b, size);
  recv(b, a, size);
}

void ProgramBuilder::broadcast(RankId root, Bytes size) {
  const std::size_t n = nranks();
  if (n == 1) return;
  // Binomial tree on ranks relative to root.
  for (std::size_t step = 1; step < n; step <<= 1) {
    for (std::size_t rel = 0; rel < step && rel + step < n; ++rel) {
      const RankId src{(root.index() + rel) % n};
      const RankId dst{(root.index() + rel + step) % n};
      message(src, dst, size);
    }
  }
}

void ProgramBuilder::reduce(RankId root, Bytes size) {
  const std::size_t n = nranks();
  if (n == 1) return;
  // Mirror of the broadcast tree: leaves send first.
  std::size_t top = 1;
  while (top < n) top <<= 1;
  for (std::size_t step = top >> 1; step >= 1; step >>= 1) {
    for (std::size_t rel = 0; rel < step && rel + step < n; ++rel) {
      const RankId dst{(root.index() + rel) % n};
      const RankId src{(root.index() + rel + step) % n};
      message(src, dst, size);
    }
  }
}

void ProgramBuilder::allreduce(Bytes size) {
  reduce(RankId{std::size_t{0}}, size);
  broadcast(RankId{std::size_t{0}}, size);
}

void ProgramBuilder::barrier() { allreduce(0); }

void ProgramBuilder::alltoall(Bytes size) {
  const std::size_t n = nranks();
  // Round r: rank i exchanges with (i + r) % n; every unordered pair appears
  // exactly once per r in {1..n-1} paired with r' = n - r, so iterate pairs
  // where i < partner to emit each exchange once per round pattern.
  for (std::size_t r = 1; r < n; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t partner = (i + r) % n;
      if (i < partner) exchange(RankId{i}, RankId{partner}, size);
    }
  }
}

void ProgramBuilder::ring_shift(Bytes size) {
  const std::size_t n = nranks();
  if (n == 1) return;
  for (std::size_t i = 0; i < n; ++i)
    send(RankId{i}, RankId{(i + 1) % n}, size);
  for (std::size_t i = 0; i < n; ++i)
    recv(RankId{i}, RankId{(i + n - 1) % n}, size);
}

void ProgramBuilder::phase_mark(int phase) {
  for (std::size_t r = 0; r < nranks(); ++r) {
    Op op;
    op.kind = OpKind::kPhaseMark;
    op.phase = phase;
    push(RankId{r}, op);
  }
}

Program ProgramBuilder::build() && { return std::move(program_); }

}  // namespace cbes
