// Ground-truth background load on cluster nodes.
//
// The paper's experiments distinguish the *actual* load on a node (which slows
// computation and inflates end-to-end latency) from the *monitored* load CBES sees
// through its daemons. This header models the actual load; the `monitor` library
// samples it the way the CBES/NWS daemons sample a live cluster.
#pragma once

#include <vector>

#include "common/types.h"

namespace cbes {

/// Time-varying ground-truth load, queried by the simulator as it executes.
class LoadModel {
 public:
  virtual ~LoadModel() = default;

  /// Fraction of one CPU available to a foreground process on `node` at `now`,
  /// in (0, 1]. The paper's ACPU term; 1.0 = idle node.
  [[nodiscard]] virtual double cpu_avail(NodeId node, Seconds now) const = 0;

  /// NIC utilization by background traffic in [0, 1); inflates the node's
  /// uplink serialization time by 1/(1 - util).
  [[nodiscard]] virtual double nic_util(NodeId node, Seconds now) const = 0;
};

/// The unloaded cluster: every CPU fully available, no background traffic.
class NoLoad final : public LoadModel {
 public:
  [[nodiscard]] double cpu_avail(NodeId, Seconds) const override { return 1.0; }
  [[nodiscard]] double nic_util(NodeId, Seconds) const override { return 0.0; }
};

/// Piecewise-constant scripted load: a list of intervals per node. Used to
/// reproduce the paper's phase-3 experiments (inject load after scheduling) and
/// the shared-cluster scenarios.
class ScriptedLoad final : public LoadModel {
 public:
  /// One background-load episode on a node.
  struct Episode {
    NodeId node;
    Seconds begin = 0.0;
    Seconds end = kNever;
    /// CPU demand of the background work in [0, 1); foreground availability
    /// during the episode is 1 - cpu_demand (floored at 2%).
    double cpu_demand = 0.0;
    /// Background NIC utilization in [0, 1).
    double nic_demand = 0.0;
  };

  ScriptedLoad() = default;
  void add(Episode episode);

  [[nodiscard]] double cpu_avail(NodeId node, Seconds now) const override;
  [[nodiscard]] double nic_util(NodeId node, Seconds now) const override;

 private:
  std::vector<Episode> episodes_;
};

}  // namespace cbes
