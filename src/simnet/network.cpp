#include "simnet/network.h"

#include <algorithm>

#include "common/check.h"

namespace cbes {

SimNetwork::SimNetwork(const ClusterTopology& topology, SimNetConfig config,
                       std::uint64_t seed)
    : topology_(&topology), config_(config), rng_(seed) {
  link_free_at_.assign(topology.link_count(), 0.0);
}

void SimNetwork::reset() {
  std::fill(link_free_at_.begin(), link_free_at_.end(), 0.0);
}

TransferResult SimNetwork::transfer(Seconds start, NodeId src, NodeId dst,
                                    Bytes size, const LoadModel& load) {
  CBES_CHECK_MSG(src != dst, "loopback messages never reach the network");
  const Node& src_node = topology_->node(src);
  const Node& dst_node = topology_->node(dst);

  const auto bytes = static_cast<double>(size);

  // Endpoint software overheads: architecture-scaled, stretched by CPU load.
  const double src_avail = load.cpu_avail(src, start);
  const Seconds send_cpu = (config_.endpoint_overhead +
                            config_.per_byte_host * bytes) *
                           traits(src_node.arch).comm_overhead_factor /
                           src_avail;

  // The payload enters the wire once the sender's stack has processed it.
  const Seconds wire_start = start + send_cpu;

  // Cut-through traversal: hop latencies accumulate, the payload serializes
  // once at the slowest (effective) link, and each traversed link is occupied
  // for its own serialization time so concurrent transfers queue FIFO.
  // Endpoint uplinks are additionally slowed by background NIC traffic.
  const auto& path = topology_->path(src, dst);
  Seconds hop_total = 0.0;
  Seconds bottleneck = 0.0;
  Seconds queue_delay = 0.0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    const Link& link = topology_->link(path[i]);
    hop_total += link.hop_latency;
    Seconds serialization = bytes / link.bandwidth_bps;
    if (i == 0) {
      serialization /= (1.0 - load.nic_util(src, wire_start));
    } else if (i + 1 == path.size()) {
      serialization /= (1.0 - load.nic_util(dst, wire_start));
    }
    bottleneck = std::max(bottleneck, serialization);
    if (config_.contention) {
      Seconds& free_at = link_free_at_[path[i].index()];
      queue_delay += std::max(0.0, free_at - wire_start);
      free_at = std::max(free_at, wire_start) + serialization;
    }
  }
  Seconds wire = hop_total + bottleneck;
  if (config_.jitter_sigma > 0.0) {
    wire *= rng_.lognormal_median(1.0, config_.jitter_sigma);
  }
  const Seconds t = wire_start + wire + queue_delay;

  const double dst_avail = load.cpu_avail(dst, t);
  const Seconds recv_cpu = (config_.endpoint_overhead +
                            config_.per_byte_host * bytes) *
                           traits(dst_node.arch).comm_overhead_factor /
                           dst_avail;

  return TransferResult{send_cpu, recv_cpu, t};
}

TransferResult SimNetwork::local_transfer(Seconds start, NodeId node,
                                          Bytes size, const LoadModel& load) {
  const Node& n = topology_->node(node);
  const double mem_rate = traits(n.arch).mem_rate;
  const double avail = load.cpu_avail(node, start);
  const auto bytes = static_cast<double>(size);
  // Both the copy and a slim slice of the messaging stack run on the CPU.
  const Seconds cpu_each = (0.25 * config_.endpoint_overhead +
                            bytes / (config_.local_bandwidth_bps * mem_rate) / 2) /
                           avail;
  Seconds wire = config_.local_latency / mem_rate;
  if (config_.jitter_sigma > 0.0) {
    wire *= rng_.lognormal_median(1.0, config_.jitter_sigma);
  }
  const Seconds arrival = start + cpu_each * 2 + wire;
  return TransferResult{cpu_each, cpu_each, arrival};
}

Seconds SimNetwork::compute_time(NodeId node, Seconds reference_seconds,
                                 double mem_intensity, double cpu_avail) const {
  CBES_CHECK_MSG(reference_seconds >= 0.0, "negative compute burst");
  CBES_CHECK_MSG(cpu_avail > 0.0, "CPU availability must be positive");
  const Node& n = topology_->node(node);
  const double speed = effective_speed(n.arch, mem_intensity);
  return reference_seconds / speed / cpu_avail;
}

}  // namespace cbes
