#include "simnet/load.h"

#include <algorithm>

#include "common/check.h"

namespace cbes {

void ScriptedLoad::add(Episode episode) {
  CBES_CHECK_MSG(episode.node.valid(), "load episode needs a valid node");
  CBES_CHECK_MSG(episode.cpu_demand >= 0.0 && episode.cpu_demand < 1.0,
                 "cpu_demand must be in [0, 1)");
  CBES_CHECK_MSG(episode.nic_demand >= 0.0 && episode.nic_demand < 1.0,
                 "nic_demand must be in [0, 1)");
  CBES_CHECK_MSG(episode.end > episode.begin, "episode interval is empty");
  episodes_.push_back(episode);
}

double ScriptedLoad::cpu_avail(NodeId node, Seconds now) const {
  // Overlapping episodes on the same node stack: demands add up, availability
  // floors at 2% so a fully-swamped node still makes (very slow) progress.
  double demand = 0.0;
  for (const Episode& e : episodes_) {
    if (e.node == node && now >= e.begin && now < e.end) demand += e.cpu_demand;
  }
  return std::max(0.02, 1.0 - demand);
}

double ScriptedLoad::nic_util(NodeId node, Seconds now) const {
  double demand = 0.0;
  for (const Episode& e : episodes_) {
    if (e.node == node && now >= e.begin && now < e.end) demand += e.nic_demand;
  }
  return std::min(0.95, demand);
}

}  // namespace cbes
