// Ground-truth network and machine behaviour — the "real hardware" this repo
// substitutes for the physical Centurion and Orange Grove clusters.
//
// Messages traverse the topology cut-through (packet-pipelined), as 2005-era
// switched ethernet does: end-to-end wire time is the sum of per-hop forwarding
// latencies plus one serialization of the payload at the bottleneck link.
// Each link still tracks FIFO occupancy (size / link bandwidth) so concurrent
// transfers queue behind each other, and endpoint software overhead runs on the
// hosts' CPUs scaled by architecture and current availability. A small
// lognormal jitter makes repeated runs noisy, as on a real cluster.
//
// The CBES latency model (src/netmodel) never reads these internals; it is
// *fitted* from ping-pong measurements taken through this class, exactly as the
// real CBES calibrates against real hardware.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "simnet/load.h"
#include "topology/cluster.h"

namespace cbes {

/// Tunable constants of the "hardware". Defaults approximate 2005-era fast
/// ethernet with LAM/MPI TCP messaging.
struct SimNetConfig {
  /// Base per-message software overhead on each endpoint (syscalls, MPI
  /// bookkeeping, TCP stack), before architecture scaling.
  Seconds endpoint_overhead = 55e-6;
  /// Host-side per-byte cost (user<->kernel copies) on each endpoint.
  Seconds per_byte_host = 9e-9;
  /// Log-space sigma of multiplicative jitter on the network portion of each
  /// transfer; 0 disables noise entirely (used by calibration and tests).
  double jitter_sigma = 0.012;
  /// When false, links never queue (infinite capacity) — isolates latency
  /// behaviour from contention in tests.
  bool contention = true;
  /// Intra-node (slot-to-slot on a dual-CPU node) message path: fixed shared
  /// memory latency plus a memcpy bandwidth, both on the reference Alpha node;
  /// the actual node scales them by its memory rate.
  Seconds local_latency = 6e-6;
  double local_bandwidth_bps = 160.0e6;
};

/// Result of one message transfer.
struct TransferResult {
  /// CPU time the sender spends in the messaging stack (part of MPI overhead).
  Seconds sender_cpu = 0.0;
  /// CPU time the receiver spends in the messaging stack upon delivery.
  Seconds receiver_cpu = 0.0;
  /// Absolute time the message payload is available at the receiver
  /// (excluding receiver CPU overhead, which the caller schedules).
  Seconds arrival = 0.0;
};

/// Stateful network simulator over a frozen topology.
class SimNetwork {
 public:
  /// `topology` must outlive the network. `seed` drives the jitter stream.
  SimNetwork(const ClusterTopology& topology, SimNetConfig config,
             std::uint64_t seed);

  /// Simulates a message of `size` bytes injected by `src` at time `start`,
  /// destined for `dst`, under ground-truth `load`. Mutates link queues when
  /// contention is enabled. `src != dst`; intra-node (slot-to-slot) messages
  /// are the caller's fast path and never reach the network.
  TransferResult transfer(Seconds start, NodeId src, NodeId dst, Bytes size,
                          const LoadModel& load);

  /// Intra-node message between two ranks sharing `node` (dual-CPU nodes):
  /// shared-memory copy, no network traversal.
  TransferResult local_transfer(Seconds start, NodeId node, Bytes size,
                                const LoadModel& load);

  /// Duration of a compute burst that takes `reference_seconds` on an idle
  /// reference (Alpha) node, executed on `node` whose current availability is
  /// `cpu_avail`, for an application with the given memory intensity.
  [[nodiscard]] Seconds compute_time(NodeId node, Seconds reference_seconds,
                                     double mem_intensity,
                                     double cpu_avail) const;

  /// Clears all link queue state (fresh run on the same topology).
  void reset();

  [[nodiscard]] const ClusterTopology& topology() const noexcept {
    return *topology_;
  }
  [[nodiscard]] const SimNetConfig& config() const noexcept { return config_; }

 private:
  const ClusterTopology* topology_;
  SimNetConfig config_;
  Rng rng_;
  /// Per-link FIFO availability time, indexed by LinkId.
  std::vector<Seconds> link_free_at_;
};

}  // namespace cbes
