// Phase-segmented execution with mid-run remapping — the paper's §8 roadmap
// ("expand the CBES infrastructure with application monitoring and remapping
// capabilities") realized on top of the phase markers LAM/MPI already
// provides (§4):
//
//   "an application run may consist of a core segment repeated any number of
//    times. In such a case, one would need to pay the overhead for finding a
//    mapping for this core segment only once, then save a percentage of time
//    out of each repetition."
//
// The runner executes a phase-marked program one quiescent segment at a time.
// Between segments it consults the monitor, searches (SA over the pool) for a
// mapping that minimizes the predicted remaining time, and migrates when the
// predicted gain exceeds the migration cost.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/program.h"
#include "core/app_monitor.h"
#include "core/remap.h"
#include "core/service.h"
#include "sched/annealing.h"
#include "sched/pool.h"

namespace cbes {

/// When the runner consults the scheduler.
enum class RemapPolicy : unsigned char {
  /// Search at every segment boundary (thorough; scheduler cost every phase).
  kEveryBoundary,
  /// Search only when the application monitor reports sustained drift from
  /// the prediction (the paper's paragraph-8 "application monitoring" triggers).
  kOnDrift,
};

struct PhasedOptions {
  /// Hardware + seed for the execution runs.
  SimOptions sim;
  RemapCostModel remap_cost;
  /// When false, the initial mapping is kept for the whole run (the static
  /// baseline adaptive execution is compared against).
  bool adaptive = true;
  RemapPolicy policy = RemapPolicy::kEveryBoundary;
  /// Drift detection for the kOnDrift policy.
  AppMonitorConfig monitor;
  /// Scheduler configuration for the between-phase searches.
  SaParams sa;
  /// Only remap when the predicted gain exceeds this fraction of the
  /// predicted remaining time (hysteresis against churn).
  double min_gain_fraction = 0.02;
};

struct PhaseRecord {
  std::size_t phase = 0;
  Mapping mapping;          ///< mapping the phase executed on
  Seconds start = 0.0;      ///< absolute start time
  Seconds duration = 0.0;   ///< measured execution time of the phase
  bool remapped = false;    ///< true when a migration preceded this phase
  Seconds migration = 0.0;  ///< migration stall charged before the phase
};

struct PhasedRunReport {
  /// Total wall time: phase durations plus migration stalls.
  Seconds total = 0.0;
  std::vector<PhaseRecord> phases;
  std::size_t remaps = 0;
  Seconds total_migration = 0.0;
  Mapping final_mapping;
};

/// Executes phased programs under CBES supervision.
class PhasedRunner {
 public:
  /// `service` supplies the evaluator, monitor, and simulator; `pool` bounds
  /// the mappings the between-phase searches may select.
  PhasedRunner(CbesService& service, NodePool pool, PhasedOptions options);

  /// Splits `program` into phases and profiles each on `profiling_mapping`
  /// over the idle system. Must be called before run().
  void prepare(const Program& program, const Mapping& profiling_mapping);

  /// Runs the prepared program under ground-truth `load`, starting from
  /// `initial` at time options.sim.start_time.
  [[nodiscard]] PhasedRunReport run(const Mapping& initial,
                                    const LoadModel& load);

  [[nodiscard]] std::size_t phase_count() const noexcept {
    return segments_.size();
  }
  /// Predicted time of the phases in [first_phase, end) under `mapping`,
  /// given `snapshot` — the objective of the between-phase search. Batch
  /// evaluation over compiled phase profiles (core/compiled_profile.h);
  /// bit-identical to summing per-phase evaluator calls.
  [[nodiscard]] Seconds predict_remaining(std::size_t first_phase,
                                          const Mapping& mapping,
                                          const LoadSnapshot& snapshot) const;
  /// Per-phase predictions for phases [first_phase, end) under `mapping` and
  /// `snapshot`, written into `out` (cleared first) so callers can reuse one
  /// buffer across boundaries.
  void predict_phases(std::size_t first_phase, const Mapping& mapping,
                      const LoadSnapshot& snapshot,
                      std::vector<Seconds>& out) const;

 private:
  /// One compiled artifact per remaining phase, bound to `snapshot` — shared
  /// by everything a boundary consults (search objective, stay cost, monitor
  /// rebase).
  [[nodiscard]] std::vector<std::shared_ptr<const CompiledProfile>>
  compile_remaining(std::size_t first_phase,
                    const LoadSnapshot& snapshot) const;

  CbesService* service_;
  NodePool pool_;
  PhasedOptions options_;
  std::vector<Program> segments_;
  std::vector<AppProfile> profiles_;
  /// Boundary scratch for predict_phases results fed to the app monitor.
  std::vector<Seconds> phase_predictions_;
};

}  // namespace cbes
