// Scheduler interface and the random scheduler (the paper's RS baseline).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.h"
#include "obs/observer.h"
#include "sched/cost.h"
#include "sched/pool.h"

namespace cbes {

struct ScheduleResult {
  Mapping mapping;
  /// Cost of the selected mapping (a time prediction for CS, a score for NCS).
  double cost = 0.0;
  /// Cost-function invocations spent by this scheduling run.
  std::size_t evaluations = 0;
  /// Wall-clock time of the scheduling run (the paper's "approximate
  /// scheduler time" column).
  Seconds wall_seconds = 0.0;
  /// True when the run stopped early because its StopToken fired (deadline or
  /// caller cancellation). `mapping`/`cost` then hold the best state seen so
  /// far, which callers must treat as abandoned, not as an answer.
  bool cancelled = false;
};

/// Cooperative cancellation source polled by the schedulers' step loops, so a
/// request broker can bound scheduling-job runtime (per-job deadlines) and
/// cancel jobs mid-anneal. Implementations must be safe to poll from the
/// scheduling thread while other threads request the stop.
class StopToken {
 public:
  virtual ~StopToken() = default;
  [[nodiscard]] virtual bool stop_requested() const noexcept = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Finds a mapping of `nranks` tasks onto `pool` minimizing `cost`.
  /// Requires nranks <= pool.total_slots().
  [[nodiscard]] virtual ScheduleResult schedule(std::size_t nranks,
                                                const NodePool& pool,
                                                const CostFunction& cost) = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Telemetry sink for subsequent schedule() calls; nullptr (the default)
  /// disables observation. `observer` must outlive those calls. Observation
  /// never influences the search — results are identical either way.
  void set_observer(obs::SchedulerObserver* observer) noexcept {
    observer_ = observer;
  }

  /// Cancellation source for subsequent schedule() calls; nullptr (the
  /// default) disables polling. `stop` must outlive those calls. When the
  /// token fires, schedule() returns promptly with `cancelled` set.
  void set_stop_token(const StopToken* stop) noexcept { stop_ = stop; }

 protected:
  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_ != nullptr && stop_->stop_requested();
  }

  obs::SchedulerObserver* observer_ = nullptr;
  const StopToken* stop_ = nullptr;
};

/// RS: picks one mapping uniformly at random and reports its cost.
/// "Requires a negligible amount of time to find a mapping solution."
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed);
  [[nodiscard]] ScheduleResult schedule(std::size_t nranks,
                                        const NodePool& pool,
                                        const CostFunction& cost) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "RS";
  }

 private:
  Rng rng_;
};

}  // namespace cbes
