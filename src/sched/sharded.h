// Hierarchically sharded simulated annealing for mega-scale pools.
//
// A single anneal over a 10k–100k-node pool wastes almost every move: a
// uniformly random relocation crosses switch subtrees, where latency classes
// make most placements equivalent, while the moves that matter — packing
// communicating ranks inside a subtree — are vanishingly rare. ShardedAnneal
// exploits the same switch-tree structure the class-compressed latency model
// is built on:
//
//   1. partition the pool's nodes by switch subtree into S shards (balanced
//      by slot count, deterministic);
//   2. anneal each shard concurrently — a shard's ranks move only among the
//      shard's nodes, so shard anneals touch disjoint state and their merged
//      result is always slot-feasible;
//   3. exchange: a serial seeded pass proposes rank moves *across* shard
//      boundaries (swaps and relocations) and keeps the improving ones,
//      repairing placements the partition got wrong;
//   4. repeat for a fixed number of rounds; best full mapping wins.
//
// Every shard drives its own CostFunction::Session (per-shard EvalState) over
// the shared CompiledProfile, so concurrent scoring needs no locks. All
// randomness derives from (seed, round, shard): a fixed seed gives a fixed
// answer regardless of thread scheduling — shard results are deposited by
// shard index, never by completion order.
//
// Degenerate inputs (a pool that does not split, a cost without sessions,
// shards <= 1) delegate to the plain SimulatedAnnealingScheduler, so callers
// can enable sharding unconditionally.
#pragma once

#include <cstdint>

#include "sched/annealing.h"
#include "sched/scheduler.h"

namespace cbes {

struct ShardedSaParams {
  /// Per-shard annealing parameters; max_evaluations is the per-shard,
  /// per-round budget (restarts/structured_warm_start are unused — shards
  /// anneal from the current global state, the outer rounds play the restart
  /// role).
  SaParams inner;
  /// Number of shards; 0 picks one shard per populated top-level subtree,
  /// clamped to [2, 16].
  std::size_t shards = 0;
  /// Outer rounds of (shard anneals, boundary exchange).
  std::size_t rounds = 2;
  /// Cross-shard exchange proposals per round.
  std::size_t exchange_moves = 512;
  /// Worker threads for the shard anneals; 0 = min(shards, hardware).
  std::size_t threads = 0;
  std::uint64_t seed = 1;
};

class ShardedAnnealScheduler final : public Scheduler {
 public:
  explicit ShardedAnnealScheduler(ShardedSaParams params);

  [[nodiscard]] ScheduleResult schedule(std::size_t nranks,
                                        const NodePool& pool,
                                        const CostFunction& cost) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "SA-sharded";
  }
  [[nodiscard]] const ShardedSaParams& params() const noexcept {
    return params_;
  }

  /// The subtree partition schedule() would use: pool nodes grouped into at
  /// most `target` shards, each a union of switch subtrees, balanced by slot
  /// count. Exposed for tests and the topo CLI.
  [[nodiscard]] static std::vector<std::vector<NodeId>> partition_nodes(
      const NodePool& pool, std::size_t target);

 private:
  ShardedSaParams params_;
};

}  // namespace cbes
