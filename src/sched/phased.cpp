#include "sched/phased.h"

#include <span>

#include "common/check.h"
#include "profile/profiler.h"
#include "sched/cost.h"

namespace cbes {

namespace {

/// Sum of predicted times of the remaining phases — the between-phase
/// search's objective.
class RemainingCost final : public CostFunction {
 public:
  RemainingCost(const MappingEvaluator& evaluator,
                std::span<const AppProfile> remaining,
                const LoadSnapshot& snapshot)
      : evaluator_(&evaluator), remaining_(remaining), snapshot_(&snapshot) {}

  double operator()(const Mapping& mapping) const override {
    ++evaluations_;
    Seconds total = 0.0;
    for (const AppProfile& profile : remaining_) {
      total += evaluator_->evaluate(profile, mapping, *snapshot_);
    }
    return total;
  }

 private:
  const MappingEvaluator* evaluator_;
  std::span<const AppProfile> remaining_;
  const LoadSnapshot* snapshot_;
};

}  // namespace

PhasedRunner::PhasedRunner(CbesService& service, NodePool pool,
                           PhasedOptions options)
    : service_(&service), pool_(std::move(pool)), options_(options) {}

void PhasedRunner::prepare(const Program& program,
                           const Mapping& profiling_mapping) {
  segments_ = split_phases(program);
  profiles_.clear();
  ProfilerOptions popt = service_->config().profiler;
  popt.net = options_.sim.net;
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    popt.seed = derive_seed(0x9A5ED, s + 1);
    profiles_.push_back(profile_application(segments_[s], profiling_mapping,
                                            service_->simulator(),
                                            service_->latency_model(), popt));
  }
}

Seconds PhasedRunner::predict_remaining(std::size_t first_phase,
                                        const Mapping& mapping,
                                        const LoadSnapshot& snapshot) const {
  CBES_CHECK_MSG(first_phase <= profiles_.size(), "phase index out of range");
  Seconds total = 0.0;
  for (std::size_t s = first_phase; s < profiles_.size(); ++s) {
    total += service_->evaluator().evaluate(profiles_[s], mapping, snapshot);
  }
  return total;
}

PhasedRunReport PhasedRunner::run(const Mapping& initial,
                                  const LoadModel& load) {
  CBES_CHECK_MSG(!segments_.empty(), "call prepare() before run()");
  CBES_CHECK_MSG(initial.fits(service_->topology()),
                 "initial mapping does not fit the cluster");

  PhasedRunReport report;
  Mapping current = initial;
  Seconds now = options_.sim.start_time;

  // Per-phase predictions for the starting mapping feed the application
  // monitor (drift-triggered policy).
  auto predict_phases = [&](const Mapping& m, std::size_t first) {
    const LoadSnapshot snapshot = service_->monitor().snapshot(now);
    std::vector<Seconds> predicted;
    for (std::size_t k = first; k < profiles_.size(); ++k) {
      predicted.push_back(
          service_->evaluator().evaluate(profiles_[k], m, snapshot));
    }
    return predicted;
  };
  AppMonitor drift(predict_phases(current, 0), options_.monitor);

  for (std::size_t s = 0; s < segments_.size(); ++s) {
    PhaseRecord record;
    record.phase = s;

    const bool consult =
        options_.adaptive && s > 0 &&
        (options_.policy == RemapPolicy::kEveryBoundary ||
         drift.state() == RemapTrigger::kExternal);
    // Dead nodes are not remap candidates; when too few live slots remain to
    // host the application, stay on the current mapping rather than search an
    // infeasible pool.
    std::size_t live_slots = 0;
    if (consult) {
      const LoadSnapshot probe = service_->monitor().snapshot(now);
      for (NodeId node : pool_.nodes()) {
        if (probe.alive(node)) {
          live_slots += static_cast<std::size_t>(pool_.slots_of(node));
        }
      }
    }
    if (consult && live_slots >= current.nranks()) {
      // Consult the monitor and search for a better mapping for the rest of
      // the run.
      const LoadSnapshot snapshot = service_->monitor().snapshot(now);
      const NodePool search_pool = pool_.alive_only(snapshot);
      const RemainingCost cost(
          service_->evaluator(),
          std::span<const AppProfile>(profiles_).subspan(s), snapshot);
      SaParams params = options_.sa;
      params.seed = derive_seed(options_.sa.seed, s);
      SimulatedAnnealingScheduler scheduler(params);
      const ScheduleResult found =
          scheduler.schedule(current.nranks(), search_pool, cost);

      const Seconds stay = cost(current);
      const Seconds move = found.cost;
      const Seconds migration = migration_cost(
          service_->topology(), current, found.mapping, options_.remap_cost);
      if (stay - (move + migration) > options_.min_gain_fraction * stay) {
        current = found.mapping;
        record.remapped = true;
        record.migration = migration;
        now += migration;
        ++report.remaps;
        report.total_migration += migration;
        drift.rebase(predict_phases(current, s));
      } else if (drift.state() == RemapTrigger::kExternal) {
        // Nothing better exists under current conditions: re-arm against the
        // refreshed predictions so the monitor doesn't fire every boundary.
        drift.rebase(predict_phases(current, s));
      }
    }

    SimOptions sim = options_.sim;
    sim.start_time = now;
    sim.seed = derive_seed(options_.sim.seed, 0x500 + s);
    const RunResult result =
        service_->simulator().run(segments_[s], current, load, sim);

    record.mapping = current;
    record.start = now;
    record.duration = result.makespan;
    now += result.makespan;
    drift.report(result.makespan);
    report.phases.push_back(std::move(record));
  }

  report.total = now - options_.sim.start_time;
  report.final_mapping = current;
  return report;
}

}  // namespace cbes
