#include "sched/phased.h"

#include "common/check.h"
#include "core/compiled_profile.h"
#include "profile/profiler.h"
#include "sched/cost.h"

namespace cbes {

namespace {

/// Per-phase predictions over pre-compiled artifacts, into a reused buffer.
void predict_into(
    const std::vector<std::shared_ptr<const CompiledProfile>>& compiled,
    const Mapping& mapping, std::vector<Seconds>& out) {
  out.clear();
  out.reserve(compiled.size());
  for (const auto& phase : compiled) out.push_back(phase->evaluate(mapping));
}

}  // namespace

PhasedRunner::PhasedRunner(CbesService& service, NodePool pool,
                           PhasedOptions options)
    : service_(&service), pool_(std::move(pool)), options_(options) {}

void PhasedRunner::prepare(const Program& program,
                           const Mapping& profiling_mapping) {
  segments_ = split_phases(program);
  profiles_.clear();
  ProfilerOptions popt = service_->config().profiler;
  popt.net = options_.sim.net;
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    popt.seed = derive_seed(0x9A5ED, s + 1);
    profiles_.push_back(profile_application(segments_[s], profiling_mapping,
                                            service_->simulator(),
                                            service_->latency_model(), popt));
  }
}

std::vector<std::shared_ptr<const CompiledProfile>>
PhasedRunner::compile_remaining(std::size_t first_phase,
                                const LoadSnapshot& snapshot) const {
  CBES_CHECK_MSG(first_phase <= profiles_.size(), "phase index out of range");
  std::vector<std::shared_ptr<const CompiledProfile>> compiled;
  compiled.reserve(profiles_.size() - first_phase);
  for (std::size_t s = first_phase; s < profiles_.size(); ++s) {
    compiled.push_back(service_->evaluator().compile(profiles_[s], snapshot));
  }
  return compiled;
}

Seconds PhasedRunner::predict_remaining(std::size_t first_phase,
                                        const Mapping& mapping,
                                        const LoadSnapshot& snapshot) const {
  Seconds total = 0.0;
  for (const auto& phase : compile_remaining(first_phase, snapshot)) {
    total += phase->evaluate(mapping);
  }
  return total;
}

void PhasedRunner::predict_phases(std::size_t first_phase,
                                  const Mapping& mapping,
                                  const LoadSnapshot& snapshot,
                                  std::vector<Seconds>& out) const {
  predict_into(compile_remaining(first_phase, snapshot), mapping, out);
}

PhasedRunReport PhasedRunner::run(const Mapping& initial,
                                  const LoadModel& load) {
  CBES_CHECK_MSG(!segments_.empty(), "call prepare() before run()");
  CBES_CHECK_MSG(initial.fits(service_->topology()),
                 "initial mapping does not fit the cluster");

  PhasedRunReport report;
  Mapping current = initial;
  Seconds now = options_.sim.start_time;

  // Per-phase predictions for the starting mapping feed the application
  // monitor (drift-triggered policy).
  predict_phases(0, current, service_->monitor().snapshot(now),
                 phase_predictions_);
  AppMonitor drift(phase_predictions_, options_.monitor);

  for (std::size_t s = 0; s < segments_.size(); ++s) {
    PhaseRecord record;
    record.phase = s;

    const bool consult =
        options_.adaptive && s > 0 &&
        (options_.policy == RemapPolicy::kEveryBoundary ||
         drift.state() == RemapTrigger::kExternal);
    // One snapshot per boundary serves the live-slot probe, the search
    // objective, the stay cost, and the monitor rebase: the monitor publishes
    // per sensor tick, so re-taking it within a boundary only costs copies.
    LoadSnapshot snapshot;
    // Dead nodes are not remap candidates; when too few live slots remain to
    // host the application, stay on the current mapping rather than search an
    // infeasible pool.
    std::size_t live_slots = 0;
    if (consult) {
      snapshot = service_->monitor().snapshot(now);
      for (NodeId node : pool_.nodes()) {
        if (snapshot.alive(node)) {
          live_slots += static_cast<std::size_t>(pool_.slots_of(node));
        }
      }
    }
    if (consult && live_slots >= current.nranks()) {
      // Consult the monitor and search for a better mapping for the rest of
      // the run. The remaining phases are compiled once against the boundary
      // snapshot and shared by the search, the stay cost, and the rebase
      // predictions.
      const NodePool search_pool = pool_.alive_only(snapshot);
      const auto compiled = compile_remaining(s, snapshot);
      const BatchCost cost(compiled);
      SaParams params = options_.sa;
      params.seed = derive_seed(options_.sa.seed, s);
      SimulatedAnnealingScheduler scheduler(params);
      const ScheduleResult found =
          scheduler.schedule(current.nranks(), search_pool, cost);

      const Seconds stay = cost(current);
      const Seconds move = found.cost;
      const Seconds migration = migration_cost(
          service_->topology(), current, found.mapping, options_.remap_cost);
      if (stay - (move + migration) > options_.min_gain_fraction * stay) {
        current = found.mapping;
        record.remapped = true;
        record.migration = migration;
        now += migration;
        ++report.remaps;
        report.total_migration += migration;
        predict_into(compiled, current, phase_predictions_);
        drift.rebase(phase_predictions_);
      } else if (drift.state() == RemapTrigger::kExternal) {
        // Nothing better exists under current conditions: re-arm against the
        // refreshed predictions so the monitor doesn't fire every boundary.
        predict_into(compiled, current, phase_predictions_);
        drift.rebase(phase_predictions_);
      }
    }

    SimOptions sim = options_.sim;
    sim.start_time = now;
    sim.seed = derive_seed(options_.sim.seed, 0x500 + s);
    const RunResult result =
        service_->simulator().run(segments_[s], current, load, sim);

    record.mapping = current;
    record.start = now;
    record.duration = result.makespan;
    now += result.makespan;
    drift.report(result.makespan);
    report.phases.push_back(std::move(record));
  }

  report.total = now - options_.sim.start_time;
  report.final_mapping = current;
  return report;
}

}  // namespace cbes
