#include "sched/genetic.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>

#include "common/check.h"
#include "obs/timer.h"

namespace cbes {

namespace {

/// Rank-wise uniform crossover followed by capacity repair: ranks that land on
/// over-full nodes are reassigned to random free slots.
Mapping crossover(const Mapping& a, const Mapping& b, const NodePool& pool,
                  Rng& rng) {
  const std::size_t n = a.nranks();
  std::vector<NodeId> child(n);
  std::unordered_map<NodeId, int> used;
  std::vector<std::size_t> overflow;
  for (std::size_t r = 0; r < n; ++r) {
    const NodeId pick = rng.chance(0.5) ? a.assignment()[r] : b.assignment()[r];
    if (used[pick] < pool.slots_of(pick)) {
      child[r] = pick;
      ++used[pick];
    } else {
      overflow.push_back(r);
    }
  }
  for (std::size_t r : overflow) {
    // Reservoir-sample a node with spare capacity.
    NodeId target;
    std::size_t seen = 0;
    for (NodeId cand : pool.nodes()) {
      if (used[cand] >= pool.slots_of(cand)) continue;
      ++seen;
      if (rng.below(seen) == 0) target = cand;
    }
    CBES_ASSERT(target.valid());
    child[r] = target;
    ++used[target];
  }
  return Mapping(std::move(child));
}

void mutate(Mapping& m, const NodePool& pool, double rate, Rng& rng) {
  std::unordered_map<NodeId, int> used;
  for (NodeId n : m.assignment()) ++used[n];
  for (std::size_t r = 0; r < m.nranks(); ++r) {
    if (!rng.chance(rate)) continue;
    const NodeId old_node = m.node_of(RankId{r});
    NodeId target;
    std::size_t seen = 0;
    for (NodeId cand : pool.nodes()) {
      if (cand == old_node) continue;
      if (used[cand] >= pool.slots_of(cand)) continue;
      ++seen;
      if (rng.below(seen) == 0) target = cand;
    }
    if (!target.valid()) continue;  // pool fully packed: skip
    --used[old_node];
    ++used[target];
    m.reassign(RankId{r}, target);
  }
}

}  // namespace

GeneticScheduler::GeneticScheduler(GaParams params) : params_(params) {
  CBES_CHECK_MSG(params_.population >= 4, "population too small");
  CBES_CHECK_MSG(params_.tournament >= 1, "tournament size must be >= 1");
  CBES_CHECK_MSG(params_.elites < params_.population,
                 "elites must leave room for offspring");
}

ScheduleResult GeneticScheduler::schedule(std::size_t nranks,
                                          const NodePool& pool,
                                          const CostFunction& cost) {
  const obs::ScopedTimer timer;
  Rng rng(params_.seed);

  struct Individual {
    Mapping mapping;
    double cost = 0.0;
  };
  std::vector<Individual> population;
  population.reserve(params_.population);
  std::size_t evaluations = 0;
  // Cooperative cancellation: polled once per cost evaluation, like the
  // annealer, so a request broker's deadline stops the search promptly.
  bool cancelled = false;
  // GA individuals are whole fresh mappings, so the incremental engine's
  // delta path never applies; a session still pays off because its reset()
  // is the compiled engine's flattened full sweep (bit-identical to the
  // legacy evaluator, just faster).
  std::unique_ptr<CostFunction::Session> session;
  bool session_probed = false;
  const auto evaluate = [&](const Mapping& m) {
    if (!session_probed) {
      session_probed = true;
      session = cost.session(m);
    } else if (session != nullptr) {
      session->reset(m);
    }
    return session != nullptr ? session->cost() : cost(m);
  };
  for (std::size_t i = 0; i < params_.population; ++i) {
    Individual ind;
    ind.mapping = pool.random_mapping(nranks, rng);
    ind.cost = evaluate(ind.mapping);
    ++evaluations;
    population.push_back(std::move(ind));
    if (stop_requested()) {
      cancelled = true;
      break;
    }
  }

  auto by_cost = [](const Individual& x, const Individual& y) {
    return x.cost < y.cost;
  };
  std::sort(population.begin(), population.end(), by_cost);

  auto tournament_pick = [&]() -> const Individual& {
    std::size_t best = rng.index(population.size());
    for (std::size_t k = 1; k < params_.tournament; ++k) {
      const std::size_t other = rng.index(population.size());
      if (population[other].cost < population[best].cost) best = other;
    }
    return population[best];
  };

  for (std::size_t gen = 0; gen < params_.generations &&
                            evaluations < params_.max_evaluations && !cancelled;
       ++gen) {
    std::vector<Individual> next;
    next.reserve(params_.population);
    for (std::size_t e = 0; e < params_.elites; ++e)
      next.push_back(population[e]);
    while (next.size() < params_.population &&
           evaluations < params_.max_evaluations) {
      if (stop_requested()) {
        cancelled = true;
        break;
      }
      Individual child;
      child.mapping = crossover(tournament_pick().mapping,
                                tournament_pick().mapping, pool, rng);
      mutate(child.mapping, pool, params_.mutation_rate, rng);
      child.cost = evaluate(child.mapping);
      ++evaluations;
      next.push_back(std::move(child));
    }
    // If the evaluation budget ran out mid-generation, keep survivors sorted.
    population = std::move(next);
    std::sort(population.begin(), population.end(), by_cost);
  }

  ScheduleResult result;
  result.mapping = population.front().mapping;
  result.cost = population.front().cost;
  result.evaluations = evaluations;
  result.wall_seconds = timer.seconds();
  result.cancelled = cancelled;
  if (observer_ != nullptr) {
    observer_->on_finish(result.cost, result.evaluations, result.wall_seconds);
  }
  return result;
}

}  // namespace cbes
