// Genetic-algorithm scheduler — the paper's §8 future-work item ("investigate
// the suitability of other scheduling algorithms, e.g. genetic algorithms").
// Individuals are mappings; fitness is the CBES cost; crossover mixes parent
// assignments rank-wise with slot-capacity repair.
#pragma once

#include <cstdint>

#include "sched/scheduler.h"

namespace cbes {

struct GaParams {
  std::size_t population = 40;
  std::size_t generations = 80;
  std::size_t tournament = 3;
  double mutation_rate = 0.08;
  std::size_t elites = 2;
  std::size_t max_evaluations = 20000;
  std::uint64_t seed = 1;
};

class GeneticScheduler final : public Scheduler {
 public:
  explicit GeneticScheduler(GaParams params);

  [[nodiscard]] ScheduleResult schedule(std::size_t nranks,
                                        const NodePool& pool,
                                        const CostFunction& cost) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "GA";
  }
  [[nodiscard]] const GaParams& params() const noexcept { return params_; }

 private:
  GaParams params_;
};

}  // namespace cbes
