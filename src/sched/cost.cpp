#include "sched/cost.h"

namespace cbes {

CbesCost::CbesCost(const MappingEvaluator& evaluator, const AppProfile& profile,
                   const LoadSnapshot& snapshot, EvalOptions options,
                   double guidance)
    : evaluator_(&evaluator),
      profile_(&profile),
      snapshot_(&snapshot),
      options_(options),
      guidance_(guidance) {}

double CbesCost::operator()(const Mapping& mapping) const {
  ++evaluations_;
  if (guidance_ == 0.0) {
    return evaluator_->evaluate(*profile_, mapping, *snapshot_, options_);
  }
  const Prediction pred =
      evaluator_->predict(*profile_, mapping, *snapshot_, options_);
  double mean = 0.0;
  for (std::size_t i = 0; i < pred.compute.size(); ++i) {
    mean += pred.compute[i] + pred.comm[i];
  }
  mean /= static_cast<double>(pred.compute.size());
  return pred.time + guidance_ * mean;
}

EvalOptions ncs_options() noexcept {
  EvalOptions options;
  options.comm_term = false;
  return options;
}

}  // namespace cbes
