#include "sched/cost.h"

#include "common/check.h"

namespace cbes {

// ---------------------------------------------------------------------------
// CbesCost

/// Session over one EvalState; shares the parent's evaluation counter so
/// schedulers see identical evaluations() totals on either engine.
class CbesCost::IncrementalSession final : public CostFunction::Session {
 public:
  IncrementalSession(const CbesCost& parent, const Mapping& initial)
      : parent_(&parent), state_(*parent.compiled()) {
    state_.reset(initial);
  }

  double cost() override {
    parent_->evaluations_.fetch_add(1, std::memory_order_relaxed);
    if (parent_->guidance_ == 0.0) return state_.s();
    const double mean =
        state_.mean_sum() /
        static_cast<double>(parent_->compiled()->nranks());
    return state_.s() + parent_->guidance_ * mean;
  }
  void apply(RankId rank, NodeId node) override { state_.apply(rank, node); }
  void undo(std::size_t moves) override {
    for (; moves > 0; --moves) state_.undo();
  }
  void commit() override { state_.commit(); }
  void reset(const Mapping& mapping) override { state_.reset(mapping); }

 private:
  const CbesCost* parent_;
  EvalState state_;
};

CbesCost::CbesCost(const MappingEvaluator& evaluator, const AppProfile& profile,
                   const LoadSnapshot& snapshot, EvalOptions options,
                   double guidance, EvalEngine engine)
    : evaluator_(&evaluator),
      profile_(&profile),
      snapshot_(&snapshot),
      options_(options),
      guidance_(guidance),
      engine_(engine) {}

CbesCost::CbesCost(std::shared_ptr<const CompiledProfile> compiled,
                   double guidance)
    : options_(compiled->options()),
      guidance_(guidance),
      engine_(EvalEngine::kIncremental),
      compiled_(std::move(compiled)) {
  CBES_CHECK_MSG(compiled_ != nullptr, "compiled profile required");
}

const std::shared_ptr<const CompiledProfile>& CbesCost::compiled() const {
  // Lazy build is single-threaded; concurrent users (the sharded annealer)
  // must open one session on the spawning thread first, after which the
  // artifact is immutable and freely shared.
  if (compiled_ == nullptr) {
    compiled_ = evaluator_->compile(*profile_, *snapshot_, options_);
  }
  return compiled_;
}

double CbesCost::operator()(const Mapping& mapping) const {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  if (evaluator_ != nullptr) {
    // Reference-backed construction: per-mapping calls stay on the legacy
    // evaluator path (same instruments, same answers) on either engine — the
    // compiled artifact pays off through session(), not here.
    if (guidance_ == 0.0) {
      return evaluator_->evaluate(*profile_, mapping, *snapshot_, options_);
    }
    const Prediction pred =
        evaluator_->predict(*profile_, mapping, *snapshot_, options_);
    double mean = 0.0;
    for (std::size_t i = 0; i < pred.compute.size(); ++i) {
      mean += pred.compute[i] + pred.comm[i];
    }
    mean /= static_cast<double>(pred.compute.size());
    return pred.time + guidance_ * mean;
  }
  // Compiled-only construction: one flattened sweep.
  if (guidance_ == 0.0) return compiled_->evaluate(mapping);
  double sum = 0.0;
  const Seconds time = compiled_->evaluate(mapping, &sum);
  const double mean = sum / static_cast<double>(compiled_->nranks());
  return time + guidance_ * mean;
}

std::unique_ptr<CostFunction::Session> CbesCost::session(
    const Mapping& initial) const {
  if (engine_ == EvalEngine::kFull) return nullptr;
  return std::make_unique<IncrementalSession>(*this, initial);
}

// ---------------------------------------------------------------------------
// BatchCost

/// One EvalState per phase; every move is mirrored into each, and the cost
/// sums per-phase S_M in phase order (bit-identical to the summed full
/// sweeps of operator()).
class BatchCost::BatchSession final : public CostFunction::Session {
 public:
  BatchSession(const BatchCost& parent, const Mapping& initial)
      : parent_(&parent) {
    states_.reserve(parent.phases_.size());
    for (const auto& phase : parent.phases_) {
      states_.emplace_back(*phase);
      states_.back().reset(initial);
    }
  }

  double cost() override {
    parent_->evaluations_.fetch_add(1, std::memory_order_relaxed);
    Seconds total = 0.0;
    for (const EvalState& state : states_) total += state.s();
    return total;
  }
  void apply(RankId rank, NodeId node) override {
    for (EvalState& state : states_) state.apply(rank, node);
  }
  void undo(std::size_t moves) override {
    for (; moves > 0; --moves) {
      for (EvalState& state : states_) state.undo();
    }
  }
  void commit() override {
    for (EvalState& state : states_) state.commit();
  }
  void reset(const Mapping& mapping) override {
    for (EvalState& state : states_) state.reset(mapping);
  }

 private:
  const BatchCost* parent_;
  std::vector<EvalState> states_;
};

BatchCost::BatchCost(std::vector<std::shared_ptr<const CompiledProfile>> phases)
    : phases_(std::move(phases)) {
  for (const auto& phase : phases_) {
    CBES_CHECK_MSG(phase != nullptr, "null compiled phase profile");
  }
}

double BatchCost::operator()(const Mapping& mapping) const {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  Seconds total = 0.0;
  for (const auto& phase : phases_) total += phase->evaluate(mapping);
  return total;
}

std::unique_ptr<CostFunction::Session> BatchCost::session(
    const Mapping& initial) const {
  return std::make_unique<BatchSession>(*this, initial);
}

EvalOptions ncs_options() noexcept {
  EvalOptions options;
  options.comm_term = false;
  return options;
}

}  // namespace cbes
