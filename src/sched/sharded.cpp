#include "sched/sharded.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "obs/timer.h"

namespace cbes {

namespace {

/// Work item for one shard: the ranks currently living on the shard's nodes
/// (every rank on a shard node belongs to the shard, so shard anneals touch
/// disjoint ranks and disjoint node capacity by construction).
struct ShardTask {
  std::vector<std::uint32_t> ranks;
  std::vector<NodeId> nodes;
};

struct ShardOutcome {
  /// Best node (value) per task rank, parallel to ShardTask::ranks.
  std::vector<std::uint32_t> assignment;
  std::size_t evaluations = 0;
};

/// One shard's anneal: a restricted Metropolis walk moving only the shard's
/// ranks among the shard's nodes, scored through its own session over the
/// shared compiled profile. Deterministic for a fixed seed; the shared abort
/// flag is sticky (set on stop-token fire) and only ever read otherwise.
ShardOutcome anneal_shard(const CostFunction& cost, const Mapping& start,
                          const ShardTask& task, const NodePool& pool,
                          const SaParams& p, std::uint64_t seed,
                          const StopToken* stop, std::atomic<bool>& abort) {
  ShardOutcome out;
  out.assignment.reserve(task.ranks.size());
  for (std::uint32_t r : task.ranks)
    out.assignment.push_back(start.node_of(RankId{r}).value);
  if (task.ranks.empty()) return out;

  // Occupancy over shard nodes. Only shard ranks can sit on them (the
  // partition invariant), so local counts are exact.
  std::map<std::uint32_t, int> used;
  for (std::uint32_t node : out.assignment) ++used[node];
  const auto slots = [&](NodeId n) { return pool.slots_of(n); };
  bool any_free = false;
  for (NodeId n : task.nodes)
    if (used[n.value] < slots(n)) any_free = true;
  if (task.ranks.size() < 2 && !any_free) return out;

  std::unique_ptr<CostFunction::Session> session = cost.session(start);
  CBES_CHECK_MSG(session != nullptr,
                 "sharded anneal requires a session-capable cost");
  Rng rng(seed);

  std::vector<std::uint32_t> cur = out.assignment;
  const auto score = [&]() {
    ++out.evaluations;
    return session->cost();
  };
  double current = score();
  double best_cost = current;

  struct Action {
    std::size_t pos;       // index into task.ranks / cur
    std::uint32_t from, to;
  };
  std::vector<Action> move;
  const auto apply_action = [&](const Action& a) {
    --used[a.from];
    ++used[a.to];
    cur[a.pos] = a.to;
    session->apply(RankId{task.ranks[a.pos]}, NodeId{a.to});
  };
  const auto undo_move = [&]() {
    for (auto it = move.rbegin(); it != move.rend(); ++it) {
      --used[it->to];
      ++used[it->from];
      cur[it->pos] = it->from;
    }
    session->undo(move.size());
  };
  /// Relocate a random shard rank to a free shard slot, else swap two shard
  /// ranks — the plain annealer's move mix restricted to the shard.
  const auto propose = [&]() {
    move.clear();
    const std::size_t n = task.ranks.size();
    if (any_free && rng.uniform() < 0.55) {
      const std::size_t pos = rng.index(n);
      const std::uint32_t from = cur[pos];
      NodeId target;
      std::size_t seen = 0;
      for (NodeId cand : task.nodes) {
        if (cand.value == from) continue;
        if (used[cand.value] >= slots(cand)) continue;
        ++seen;  // reservoir-sample uniformly among free targets
        if (rng.below(seen) == 0) target = cand;
      }
      if (target.valid()) {
        move.push_back(Action{pos, from, target.value});
        apply_action(move.back());
        return;
      }
    }
    if (n < 2) return;
    const std::size_t a = rng.index(n);
    std::size_t b = rng.index(n);
    while (b == a) b = rng.index(n);
    move.push_back(Action{a, cur[a], cur[b]});
    move.push_back(Action{b, cur[b], cur[a]});
    apply_action(move.end()[-2]);
    apply_action(move.back());
  };

  // Initial temperature from sampled uphill deltas, as the plain annealer.
  double mean_uphill = 0.0;
  std::size_t uphill = 0;
  for (std::size_t s = 0;
       s < p.t0_samples && out.evaluations < p.max_evaluations; ++s) {
    if (abort.load(std::memory_order_relaxed) ||
        (stop != nullptr && stop->stop_requested())) {
      abort.store(true, std::memory_order_relaxed);
      return out;
    }
    propose();
    if (move.empty()) break;
    const double trial = score();
    if (trial > current) {
      mean_uphill += trial - current;
      ++uphill;
    }
    undo_move();
  }
  double t0 = 1.0;
  if (uphill > 0) {
    mean_uphill /= static_cast<double>(uphill);
    t0 = -mean_uphill / std::log(p.t0_acceptance);
  }
  const double t_min = t0 * p.t_min_factor;

  for (double t = t0; t > t_min && out.evaluations < p.max_evaluations;
       t *= p.cooling) {
    for (std::size_t m = 0;
         m < p.moves_per_temperature && out.evaluations < p.max_evaluations;
         ++m) {
      if (abort.load(std::memory_order_relaxed) ||
          (stop != nullptr && stop->stop_requested())) {
        abort.store(true, std::memory_order_relaxed);
        return out;
      }
      propose();
      if (move.empty()) return out;  // single rank, no free slot left
      const double trial = score();
      const double delta = trial - current;
      if (delta <= 0.0 || rng.chance(std::exp(-delta / t))) {
        current = trial;
        session->commit();
        if (current <= best_cost) {
          best_cost = current;
          out.assignment = cur;
        }
      } else {
        undo_move();
      }
    }
  }
  return out;
}

}  // namespace

ShardedAnnealScheduler::ShardedAnnealScheduler(ShardedSaParams params)
    : params_(params) {
  CBES_CHECK_MSG(params_.rounds >= 1, "need at least one round");
  CBES_CHECK_MSG(params_.inner.cooling > 0.0 && params_.inner.cooling < 1.0,
                 "cooling factor must be in (0, 1)");
  CBES_CHECK_MSG(
      params_.inner.t0_acceptance > 0.0 && params_.inner.t0_acceptance < 1.0,
      "t0 acceptance must be in (0, 1)");
}

std::vector<std::vector<NodeId>> ShardedAnnealScheduler::partition_nodes(
    const NodePool& pool, std::size_t target) {
  CBES_CHECK_MSG(target >= 1, "partition target must be positive");
  const ClusterTopology& topo = pool.topology();

  // Deepen the cut until the pool splits into at least `target` subtree
  // groups (or the tree bottoms out at the leaf switches).
  std::map<std::size_t, std::vector<NodeId>> groups;
  for (int depth = 1; depth <= std::max(1, topo.max_switch_depth()); ++depth) {
    groups.clear();
    for (NodeId n : pool.nodes()) {
      const int attach = topo.sw(topo.node(n).attached).depth;
      groups[topo.ancestor_at(n, std::min(depth, attach)).index()].push_back(
          n);
    }
    if (groups.size() >= target) break;
  }

  // Bin-pack consecutive subtree groups (switch-id order — deterministic)
  // into at most `target` shards, balancing total slot count.
  std::size_t total_slots = 0;
  for (NodeId n : pool.nodes()) total_slots += static_cast<std::size_t>(pool.slots_of(n));
  const std::size_t bins = std::min(target, groups.size());
  std::vector<std::vector<NodeId>> shards;
  shards.reserve(bins);
  std::size_t remaining_slots = total_slots;
  std::size_t remaining_bins = bins;
  std::vector<NodeId> open;
  std::size_t open_slots = 0;
  for (auto& [sw_index, nodes] : groups) {
    (void)sw_index;
    std::size_t group_slots = 0;
    for (NodeId n : nodes) group_slots += static_cast<std::size_t>(pool.slots_of(n));
    open.insert(open.end(), nodes.begin(), nodes.end());
    open_slots += group_slots;
    const std::size_t quota =
        (remaining_slots + remaining_bins - 1) / remaining_bins;
    if (open_slots >= quota && shards.size() + 1 < bins) {
      remaining_slots -= open_slots;
      --remaining_bins;
      shards.push_back(std::move(open));
      open.clear();
      open_slots = 0;
    }
  }
  if (!open.empty()) shards.push_back(std::move(open));
  return shards;
}

ScheduleResult ShardedAnnealScheduler::schedule(std::size_t nranks,
                                                const NodePool& pool,
                                                const CostFunction& cost) {
  CBES_CHECK_MSG(nranks >= 1, "cannot schedule zero ranks");
  CBES_CHECK_MSG(nranks <= pool.total_slots(), "pool too small for ranks");
  const obs::ScopedTimer timer;

  const auto delegate = [&]() {
    SaParams p = params_.inner;
    p.seed = params_.seed;
    SimulatedAnnealingScheduler sa(p);
    sa.set_observer(observer_);
    sa.set_stop_token(stop_);
    return sa.schedule(nranks, pool, cost);
  };

  std::size_t target = params_.shards;
  if (target == 0) {
    // Auto: one shard per populated top-level subtree, clamped to [2, 16].
    std::map<std::size_t, int> top;
    const ClusterTopology& topo = pool.topology();
    for (NodeId n : pool.nodes()) {
      const int attach = topo.sw(topo.node(n).attached).depth;
      ++top[topo.ancestor_at(n, std::min(1, attach)).index()];
    }
    target = std::clamp<std::size_t>(top.size(), 2, 16);
  }
  if (target < 2 || nranks < 2 || pool.size() < 4) return delegate();

  const std::vector<std::vector<NodeId>> shard_nodes =
      partition_nodes(pool, target);
  if (shard_nodes.size() < 2) return delegate();

  Rng rng(derive_seed(params_.seed, 0));
  Mapping current = pool.random_mapping(nranks, rng);
  // Opening the first session here also builds the shared compiled artifact
  // on this thread; worker threads then only read it.
  std::unique_ptr<CostFunction::Session> global = cost.session(current);
  if (global == nullptr) return delegate();  // full engine: no session path

  const ClusterTopology& topo = pool.topology();
  std::vector<std::uint32_t> shard_of(topo.node_count(),
                                      std::numeric_limits<std::uint32_t>::max());
  for (std::size_t s = 0; s < shard_nodes.size(); ++s)
    for (NodeId n : shard_nodes[s])
      shard_of[n.index()] = static_cast<std::uint32_t>(s);

  std::size_t evaluations = 1;
  double current_cost = global->cost();
  ScheduleResult best;
  best.mapping = current;
  best.cost = current_cost;

  std::atomic<bool> abort{false};
  const std::size_t hw = std::max<unsigned>(1, std::thread::hardware_concurrency());
  const std::size_t nthreads =
      params_.threads != 0 ? params_.threads
                           : std::min<std::size_t>(shard_nodes.size(), hw);

  for (std::size_t round = 0;
       round < params_.rounds && !abort.load(std::memory_order_relaxed);
       ++round) {
    // Assign ranks to shards by their current node.
    std::vector<ShardTask> tasks(shard_nodes.size());
    for (std::size_t s = 0; s < shard_nodes.size(); ++s)
      tasks[s].nodes = shard_nodes[s];
    for (std::size_t r = 0; r < nranks; ++r) {
      const std::uint32_t s = shard_of[current.node_of(RankId{r}).index()];
      tasks[s].ranks.push_back(static_cast<std::uint32_t>(r));
    }

    // Concurrent shard anneals. Results land by shard index; the seed stream
    // is (seed, round, shard) — thread interleaving cannot affect them.
    std::vector<ShardOutcome> outcomes(tasks.size());
    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
      for (;;) {
        const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
        if (k >= tasks.size()) break;
        outcomes[k] = anneal_shard(
            cost, current, tasks[k], pool, params_.inner,
            derive_seed(params_.seed,
                        (round + 1) * std::uint64_t{0x10000} + k + 1),
            stop_, abort);
      }
    };
    if (nthreads <= 1) {
      worker();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(nthreads);
      for (std::size_t t = 0; t < nthreads; ++t) threads.emplace_back(worker);
      for (std::thread& t : threads) t.join();
    }

    // Merge (shard order) into the global mapping and session.
    std::size_t moved = 0;
    for (std::size_t s = 0; s < tasks.size(); ++s) {
      evaluations += outcomes[s].evaluations;
      for (std::size_t i = 0; i < tasks[s].ranks.size(); ++i) {
        const RankId rank{tasks[s].ranks[i]};
        const NodeId node{outcomes[s].assignment[i]};
        if (current.node_of(rank) == node) continue;
        current.reassign(rank, node);
        global->apply(rank, node);
        ++moved;
      }
    }
    global->commit();
    current_cost = global->cost();
    ++evaluations;
    if (current_cost <= best.cost) {
      best.cost = current_cost;
      best.mapping = current;
    }
    (void)moved;
    if (observer_ != nullptr) observer_->on_restart(round, 0.0, current_cost);
    if (abort.load(std::memory_order_relaxed)) break;

    // Boundary exchange: serial seeded pass proposing cross-shard swaps and
    // relocations, keeping non-worsening ones. This is what repairs ranks the
    // initial partition placed in the wrong subtree.
    Rng ex_rng(derive_seed(params_.seed,
                           (round + 1) * std::uint64_t{0x10000} + 0xFFFF));
    std::vector<int> used(topo.node_count(), 0);
    for (std::size_t r = 0; r < nranks; ++r)
      ++used[current.node_of(RankId{r}).index()];
    for (std::size_t m = 0; m < params_.exchange_moves; ++m) {
      if (stop_requested()) {
        abort.store(true, std::memory_order_relaxed);
        break;
      }
      const RankId a{ex_rng.index(nranks)};
      const NodeId na = current.node_of(a);
      if (ex_rng.uniform() < 0.5) {
        // Swap with a rank in another shard (a few tries, then skip).
        RankId b;
        for (int tries = 0; tries < 8; ++tries) {
          const RankId cand{ex_rng.index(nranks)};
          if (shard_of[current.node_of(cand).index()] !=
              shard_of[na.index()]) {
            b = cand;
            break;
          }
        }
        if (!b.valid()) continue;
        const NodeId nb = current.node_of(b);
        global->apply(a, nb);
        global->apply(b, na);
        const double trial = global->cost();
        ++evaluations;
        if (trial <= current_cost) {
          current_cost = trial;
          current.reassign(a, nb);
          current.reassign(b, na);
          global->commit();
        } else {
          global->undo(2);
        }
      } else {
        // Relocate to a free slot in another shard (reservoir-sampled).
        NodeId dest;
        std::size_t seen = 0;
        for (NodeId cand : pool.nodes()) {
          if (shard_of[cand.index()] == shard_of[na.index()]) continue;
          if (used[cand.index()] >= pool.slots_of(cand)) continue;
          ++seen;
          if (ex_rng.below(seen) == 0) dest = cand;
        }
        if (!dest.valid()) continue;
        global->apply(a, dest);
        const double trial = global->cost();
        ++evaluations;
        if (trial <= current_cost) {
          current_cost = trial;
          --used[na.index()];
          ++used[dest.index()];
          current.reassign(a, dest);
          global->commit();
        } else {
          global->undo(1);
        }
      }
      if (current_cost <= best.cost) {
        best.cost = current_cost;
        best.mapping = current;
      }
    }
  }

  best.evaluations = evaluations;
  best.wall_seconds = timer.seconds();
  best.cancelled = abort.load(std::memory_order_relaxed);
  if (observer_ != nullptr)
    observer_->on_finish(best.cost, best.evaluations, best.wall_seconds);
  return best;
}

}  // namespace cbes
