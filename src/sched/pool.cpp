#include "sched/pool.h"

#include <algorithm>

#include "common/check.h"

namespace cbes {

NodePool::NodePool(const ClusterTopology& topology, std::vector<NodeId> nodes,
                   int max_slots_per_node)
    : topology_(&topology),
      nodes_(std::move(nodes)),
      max_slots_per_node_(max_slots_per_node) {
  CBES_CHECK_MSG(!nodes_.empty(), "empty node pool");
  CBES_CHECK_MSG(max_slots_per_node_ >= 1,
                 "pool must allow at least one rank per node");
  std::vector<NodeId> sorted = nodes_;
  std::sort(sorted.begin(), sorted.end());
  CBES_CHECK_MSG(std::adjacent_find(sorted.begin(), sorted.end()) ==
                     sorted.end(),
                 "pool contains duplicate nodes");
  for (NodeId n : nodes_) {
    (void)topology.node(n);  // validates n
    total_slots_ += static_cast<std::size_t>(slots_of(n));
  }
}

NodePool NodePool::whole_cluster(const ClusterTopology& topology) {
  std::vector<NodeId> nodes;
  nodes.reserve(topology.node_count());
  for (const Node& n : topology.nodes()) nodes.push_back(n.id);
  return NodePool(topology, std::move(nodes));
}

NodePool NodePool::by_arch(const ClusterTopology& topology, Arch arch) {
  return NodePool(topology, topology.nodes_with_arch(arch));
}

NodePool NodePool::one_per_node() const {
  return NodePool(*topology_, nodes_, 1);
}

NodePool NodePool::alive_only(const LoadSnapshot& snapshot) const {
  std::vector<NodeId> alive;
  alive.reserve(nodes_.size());
  for (NodeId n : nodes_) {
    if (snapshot.alive(n)) alive.push_back(n);
  }
  CBES_CHECK_MSG(!alive.empty(), "every node in the pool is dead");
  return NodePool(*topology_, std::move(alive), max_slots_per_node_);
}

int NodePool::slots_of(NodeId node) const {
  return std::min(topology_->node(node).cpus, max_slots_per_node_);
}

bool NodePool::contains(NodeId node) const {
  return std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end();
}

Mapping NodePool::random_mapping(std::size_t nranks, Rng& rng) const {
  CBES_CHECK_MSG(nranks <= total_slots_,
                 "pool has fewer CPU slots than ranks requested");
  // Expand nodes into one entry per CPU slot, then sample slots uniformly.
  std::vector<NodeId> slots;
  slots.reserve(total_slots_);
  for (NodeId n : nodes_) {
    for (int s = 0; s < slots_of(n); ++s) slots.push_back(n);
  }
  const std::vector<std::size_t> picks =
      rng.sample_indices(slots.size(), nranks);
  std::vector<NodeId> assignment;
  assignment.reserve(nranks);
  for (std::size_t idx : picks) assignment.push_back(slots[idx]);
  return Mapping(std::move(assignment));
}

}  // namespace cbes
