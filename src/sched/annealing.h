// The default CBES scheduler (paper §6): "a typical simulated annealing
// algorithm [19][20]. The CBES mapping evaluation formula (equation 4) plays
// the role of the energy function". With the full cost this is CS; with the
// no-communication cost it is NCS.
#pragma once

#include <cstdint>

#include "sched/scheduler.h"

namespace cbes {

struct SaParams {
  /// Metropolis moves attempted per temperature step.
  std::size_t moves_per_temperature = 150;
  /// Geometric cooling factor T <- cooling * T.
  double cooling = 0.95;
  /// Random moves sampled to set the initial temperature so this fraction of
  /// uphill moves would be accepted.
  std::size_t t0_samples = 40;
  double t0_acceptance = 0.8;
  /// Annealing stops when T drops below t_min_factor * T0 (or the evaluation
  /// budget runs out).
  double t_min_factor = 1e-3;
  std::size_t max_evaluations = 30000;
  /// Independent restarts; the best result across restarts wins. Dual-CPU
  /// co-location creates deep local optima (cheap loopback channels), so a
  /// single anneal can get trapped; three restarts escape reliably.
  std::size_t restarts = 3;
  /// Seed the first two restarts with structured mappings (first pool nodes
  /// one-per-node, then slot-packed) instead of random states. Disable to get
  /// the plain textbook annealer (as the paper's 2005 prototype ran).
  bool structured_warm_start = true;
  std::uint64_t seed = 1;
};

class SimulatedAnnealingScheduler final : public Scheduler {
 public:
  explicit SimulatedAnnealingScheduler(SaParams params);

  [[nodiscard]] ScheduleResult schedule(std::size_t nranks,
                                        const NodePool& pool,
                                        const CostFunction& cost) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "SA";
  }
  [[nodiscard]] const SaParams& params() const noexcept { return params_; }

 private:
  SaParams params_;
};

}  // namespace cbes
