// Cost functions the schedulers minimize. The CBES mapping evaluation
// (equation 4) is the default energy function; dropping its communication term
// yields the paper's NCS comparison scheduler, whose score "cannot predict
// execution times" but still ranks mappings by compute speed and load.
//
// Two evaluation engines back CbesCost:
//   * kFull — every call re-evaluates through MappingEvaluator (the legacy
//     path, kept for A/B comparison and as the reference the property tests
//     pin the compiled engine against);
//   * kIncremental — evaluation runs over a CompiledProfile, and schedulers
//     that mutate a working mapping move-by-move drive a Session, which
//     recomputes only the terms a move touches (core/compiled_profile.h).
// The engines are bit-identical by construction, so selecting one is purely a
// throughput choice: a fixed-seed anneal returns the same mapping either way.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "core/compiled_profile.h"
#include "core/evaluator.h"
#include "monitor/snapshot.h"
#include "profile/app_profile.h"
#include "topology/mapping.h"

namespace cbes {

/// Selects CbesCost's evaluation engine.
enum class EvalEngine : unsigned char { kFull, kIncremental };

/// Scalar objective over mappings (lower is better). Implementations must be
/// cheap: the SA scheduler calls this tens of thousands of times.
class CostFunction {
 public:
  /// Move-by-move evaluation over a working mapping. A session holds its own
  /// copy of the assignment: callers mirror every reassignment through
  /// apply()/undo() and read cost() instead of calling operator() — each
  /// cost() counts one evaluation, like one operator() call. Single-threaded.
  class Session {
   public:
    virtual ~Session() = default;
    /// Cost of the working mapping.
    [[nodiscard]] virtual double cost() = 0;
    /// Reassigns one rank (half an SA swap; a relocation is one call).
    virtual void apply(RankId rank, NodeId node) = 0;
    /// Reverts the last `moves` apply() calls, newest first.
    virtual void undo(std::size_t moves) = 0;
    /// Declares every applied move permanent, releasing its undo history.
    virtual void commit() = 0;
    /// Reinitializes the working mapping (restart / next GA individual).
    virtual void reset(const Mapping& mapping) = 0;
  };

  virtual ~CostFunction() = default;
  [[nodiscard]] virtual double operator()(const Mapping& mapping) const = 0;
  /// Opens a move-by-move session starting from `initial`, or nullptr when
  /// this cost has no incremental path (schedulers then fall back to
  /// operator() per candidate). A session's cost() calls share the
  /// evaluations() counter with operator().
  [[nodiscard]] virtual std::unique_ptr<Session> session(
      const Mapping& initial) const {
    (void)initial;
    return nullptr;
  }
  /// True when the score is an execution-time prediction in seconds
  /// (CS yes, NCS no — paper §6).
  [[nodiscard]] virtual bool predicts_time() const noexcept { return true; }
  /// Cumulative number of evaluations served (scheduler-overhead metric).
  [[nodiscard]] std::size_t evaluations() const noexcept {
    return evaluations_.load(std::memory_order_relaxed);
  }

 protected:
  // Atomic (relaxed — it is a statistic, not a synchronization point) so the
  // sharded annealer's concurrent per-shard sessions can count against one
  // cost function without racing.
  mutable std::atomic<std::size_t> evaluations_{0};
};

/// The CBES cost: S_M from the mapping evaluator under a fixed availability
/// snapshot. EvalOptions select the CS (full) or NCS (no comm term) variant
/// and the ablation switches. References must outlive the cost function.
class CbesCost final : public CostFunction {
 public:
  /// `guidance` adds guidance * mean_i(R_i + C_i) to the S_M energy. The
  /// paper's equation 4 is a max, which is flat under any move that does not
  /// touch the critical process — annealing then has to random-walk large
  /// plateaus. A small mean term (default 0.1% of the energy scale) gives
  /// those plateaus a slope without disturbing the ranking of mappings whose
  /// S_M actually differ. Set 0 for the strict paper formulation.
  /// `engine` selects the evaluation path; results are identical, and
  /// kIncremental compiles the profile lazily on first use.
  CbesCost(const MappingEvaluator& evaluator, const AppProfile& profile,
           const LoadSnapshot& snapshot, EvalOptions options = {},
           double guidance = 1e-3, EvalEngine engine = EvalEngine::kIncremental);

  /// Over a pre-compiled profile (server workers sharing one artifact across
  /// jobs of the same snapshot epoch). Always incremental-engined.
  explicit CbesCost(std::shared_ptr<const CompiledProfile> compiled,
                    double guidance = 1e-3);

  [[nodiscard]] double operator()(const Mapping& mapping) const override;
  [[nodiscard]] std::unique_ptr<Session> session(
      const Mapping& initial) const override;
  [[nodiscard]] bool predicts_time() const noexcept override {
    return options_.comm_term;
  }
  [[nodiscard]] const EvalOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] EvalEngine engine() const noexcept { return engine_; }

 private:
  class IncrementalSession;

  /// The compiled artifact, building it on first demand (kIncremental only).
  [[nodiscard]] const std::shared_ptr<const CompiledProfile>& compiled() const;

  const MappingEvaluator* evaluator_ = nullptr;
  const AppProfile* profile_ = nullptr;
  const LoadSnapshot* snapshot_ = nullptr;
  EvalOptions options_;
  double guidance_;
  EvalEngine engine_;
  mutable std::shared_ptr<const CompiledProfile> compiled_;
};

/// Sum of S_M over several compiled profiles — the phased runner's
/// remaining-time objective (one addend per remaining phase, summed in phase
/// order so the total matches a sequence of per-phase evaluations
/// bit-for-bit). Sessions drive one EvalState per phase.
class BatchCost final : public CostFunction {
 public:
  explicit BatchCost(std::vector<std::shared_ptr<const CompiledProfile>> phases);

  [[nodiscard]] double operator()(const Mapping& mapping) const override;
  [[nodiscard]] std::unique_ptr<Session> session(
      const Mapping& initial) const override;

 private:
  class BatchSession;

  std::vector<std::shared_ptr<const CompiledProfile>> phases_;
};

/// NCS convenience: CbesCost with the communication term disabled.
[[nodiscard]] EvalOptions ncs_options() noexcept;

}  // namespace cbes
