// Cost functions the schedulers minimize. The CBES mapping evaluation
// (equation 4) is the default energy function; dropping its communication term
// yields the paper's NCS comparison scheduler, whose score "cannot predict
// execution times" but still ranks mappings by compute speed and load.
#pragma once

#include <cstddef>

#include "core/evaluator.h"
#include "monitor/snapshot.h"
#include "profile/app_profile.h"
#include "topology/mapping.h"

namespace cbes {

/// Scalar objective over mappings (lower is better). Implementations must be
/// cheap: the SA scheduler calls this tens of thousands of times.
class CostFunction {
 public:
  virtual ~CostFunction() = default;
  [[nodiscard]] virtual double operator()(const Mapping& mapping) const = 0;
  /// True when the score is an execution-time prediction in seconds
  /// (CS yes, NCS no — paper §6).
  [[nodiscard]] virtual bool predicts_time() const noexcept { return true; }
  /// Cumulative number of evaluations served (scheduler-overhead metric).
  [[nodiscard]] std::size_t evaluations() const noexcept {
    return evaluations_;
  }

 protected:
  mutable std::size_t evaluations_ = 0;
};

/// The CBES cost: S_M from the mapping evaluator under a fixed availability
/// snapshot. EvalOptions select the CS (full) or NCS (no comm term) variant
/// and the ablation switches. References must outlive the cost function.
class CbesCost final : public CostFunction {
 public:
  /// `guidance` adds guidance * mean_i(R_i + C_i) to the S_M energy. The
  /// paper's equation 4 is a max, which is flat under any move that does not
  /// touch the critical process — annealing then has to random-walk large
  /// plateaus. A small mean term (default 0.1% of the energy scale) gives
  /// those plateaus a slope without disturbing the ranking of mappings whose
  /// S_M actually differ. Set 0 for the strict paper formulation.
  CbesCost(const MappingEvaluator& evaluator, const AppProfile& profile,
           const LoadSnapshot& snapshot, EvalOptions options = {},
           double guidance = 1e-3);

  [[nodiscard]] double operator()(const Mapping& mapping) const override;
  [[nodiscard]] bool predicts_time() const noexcept override {
    return options_.comm_term;
  }
  [[nodiscard]] const EvalOptions& options() const noexcept {
    return options_;
  }

 private:
  const MappingEvaluator* evaluator_;
  const AppProfile* profile_;
  const LoadSnapshot* snapshot_;
  EvalOptions options_;
  double guidance_;
};

/// NCS convenience: CbesCost with the communication term disabled.
[[nodiscard]] EvalOptions ncs_options() noexcept;

}  // namespace cbes
