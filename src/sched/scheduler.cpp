#include "sched/scheduler.h"

#include <chrono>

namespace cbes {

RandomScheduler::RandomScheduler(std::uint64_t seed) : rng_(seed) {}

ScheduleResult RandomScheduler::schedule(std::size_t nranks,
                                         const NodePool& pool,
                                         const CostFunction& cost) {
  const auto start = std::chrono::steady_clock::now();
  ScheduleResult result;
  result.mapping = pool.random_mapping(nranks, rng_);
  result.cost = cost(result.mapping);
  result.evaluations = 1;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace cbes
