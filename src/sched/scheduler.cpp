#include "sched/scheduler.h"

#include "obs/timer.h"

namespace cbes {

RandomScheduler::RandomScheduler(std::uint64_t seed) : rng_(seed) {}

ScheduleResult RandomScheduler::schedule(std::size_t nranks,
                                         const NodePool& pool,
                                         const CostFunction& cost) {
  const obs::ScopedTimer timer;
  ScheduleResult result;
  result.mapping = pool.random_mapping(nranks, rng_);
  result.cost = cost(result.mapping);
  result.evaluations = 1;
  result.wall_seconds = timer.seconds();
  if (observer_ != nullptr) {
    observer_->on_finish(result.cost, result.evaluations, result.wall_seconds);
  }
  return result;
}

}  // namespace cbes
