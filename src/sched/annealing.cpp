#include "sched/annealing.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>

#include "common/check.h"
#include "obs/timer.h"

namespace cbes {

namespace {

/// Mapping state with per-node occupancy, supporting the two SA moves:
/// relocate one rank to a free slot, or swap the placements of two ranks.
class SaState {
 public:
  SaState(const NodePool& pool, Mapping mapping)
      : pool_(&pool), mapping_(std::move(mapping)) {
    for (NodeId n : mapping_.assignment()) ++occupancy_[n];
  }

  [[nodiscard]] const Mapping& mapping() const noexcept { return mapping_; }

  /// True when some pool node still has a free CPU slot.
  [[nodiscard]] bool has_free_slot() const {
    for (NodeId n : pool_->nodes()) {
      if (used(n) < pool_->slots_of(n)) return true;
    }
    return false;
  }

  /// One primitive reassignment; a proposed move is a short action sequence.
  struct Action {
    RankId rank;
    NodeId from;
    NodeId to;
  };
  using Move = std::vector<Action>;

  /// Proposes and applies a random move; returns it so it can be undone.
  /// Mix: single relocations, rank swaps, and occasional double relocations.
  /// The double moves matter on pools with multi-CPU nodes: two communicating
  /// ranks co-located on one node form a basin no single move can leave
  /// (splitting the pair is always uphill until both ranks have moved).
  Move propose(Rng& rng, bool allow_relocate) {
    const std::size_t n = mapping_.nranks();
    Move move;
    const double u = rng.uniform();
    if (allow_relocate && u < 0.55) {
      const std::size_t pair = (u < 0.12 && n > 1) ? 2 : 1;
      RankId previous;
      for (std::size_t k = 0; k < pair; ++k) {
        RankId rank{rng.index(n)};
        if (k == 1 && rank == previous) rank = RankId{(rank.index() + 1) % n};
        if (relocate_random(rng, rank, move)) previous = rank;
      }
      if (!move.empty()) return move;
      // No free slot anywhere: fall through to a swap.
    }
    RankId a{rng.index(n)};
    RankId b{rng.index(n)};
    while (n > 1 && b == a) b = RankId{rng.index(n)};
    const NodeId na = mapping_.node_of(a);
    const NodeId nb = mapping_.node_of(b);
    move.push_back(Action{a, na, nb});
    move.push_back(Action{b, nb, na});
    apply(move.end()[-2]);
    apply(move.back());
    return move;
  }

  void undo(const Move& move) {
    for (auto it = move.rbegin(); it != move.rend(); ++it) {
      apply(Action{it->rank, it->to, it->from});
    }
  }

 private:
  [[nodiscard]] int used(NodeId n) const {
    const auto it = occupancy_.find(n);
    return it == occupancy_.end() ? 0 : it->second;
  }
  void apply(const Action& action) {
    --occupancy_[action.from];
    ++occupancy_[action.to];
    mapping_.reassign(action.rank, action.to);
  }
  /// Relocates `rank` to a uniformly random node with a free slot; appends the
  /// applied action to `move`. Returns false when no eligible target exists.
  bool relocate_random(Rng& rng, RankId rank, Move& move) {
    const NodeId from = mapping_.node_of(rank);
    NodeId target;
    std::size_t seen = 0;
    for (NodeId cand : pool_->nodes()) {
      if (cand == from) continue;
      if (used(cand) >= pool_->slots_of(cand)) continue;
      ++seen;  // reservoir-sample uniformly among eligible targets
      if (rng.below(seen) == 0) target = cand;
    }
    if (!target.valid()) return false;
    move.push_back(Action{rank, from, target});
    apply(move.back());
    return true;
  }

  const NodePool* pool_;
  Mapping mapping_;
  std::unordered_map<NodeId, int> occupancy_;
};

/// Structured warm starts for the first two restarts. Random starts alone
/// converge poorly on this landscape: equation 4 is a max, so most moves sit
/// on plateaus, and multi-CPU co-location forms deep basins. Seeding one
/// restart with "first pool nodes, one rank per node" and one with "pool
/// slots packed in order" covers both archetypes cheaply; remaining restarts
/// stay random.
Mapping warm_start(const NodePool& pool, std::size_t nranks,
                   std::size_t restart, Rng& rng, bool structured) {
  if (!structured) return pool.random_mapping(nranks, rng);
  if (restart == 0 && pool.size() >= nranks) {
    std::vector<NodeId> nodes(pool.nodes().begin(),
                              pool.nodes().begin() +
                                  static_cast<long>(nranks));
    return Mapping(std::move(nodes));
  }
  if (restart == 1) {
    std::vector<NodeId> nodes;
    nodes.reserve(nranks);
    for (NodeId n : pool.nodes()) {
      for (int s = 0; s < pool.slots_of(n) && nodes.size() < nranks; ++s) {
        nodes.push_back(n);
      }
      if (nodes.size() == nranks) break;
    }
    return Mapping(std::move(nodes));
  }
  return pool.random_mapping(nranks, rng);
}

}  // namespace

SimulatedAnnealingScheduler::SimulatedAnnealingScheduler(SaParams params)
    : params_(params) {
  CBES_CHECK_MSG(params_.cooling > 0.0 && params_.cooling < 1.0,
                 "cooling factor must be in (0, 1)");
  CBES_CHECK_MSG(params_.t0_acceptance > 0.0 && params_.t0_acceptance < 1.0,
                 "t0 acceptance must be in (0, 1)");
  CBES_CHECK_MSG(params_.restarts >= 1, "need at least one restart");
}

ScheduleResult SimulatedAnnealingScheduler::schedule(std::size_t nranks,
                                                     const NodePool& pool,
                                                     const CostFunction& cost) {
  CBES_CHECK_MSG(nranks >= 1, "cannot schedule zero ranks");
  const obs::ScopedTimer timer;
  Rng rng(params_.seed);

  ScheduleResult best;
  best.cost = std::numeric_limits<double>::infinity();
  std::size_t evaluations = 0;
  // Cooperative cancellation: the token is polled once per proposed move (the
  // granularity of one cost evaluation), so a fired deadline stops the anneal
  // within microseconds without a partial move applied.
  bool cancelled = false;
  // Incremental engine: when the cost offers a session, every proposed move
  // is mirrored into it and scored by delta evaluation. Session and full
  // evaluation are bit-identical (see core/compiled_profile.h), so the
  // annealing trajectory is the same either way — only cheaper.
  std::unique_ptr<CostFunction::Session> session;
  bool session_probed = false;

  for (std::size_t restart = 0;
       restart < params_.restarts && evaluations < params_.max_evaluations &&
       !cancelled;
       ++restart) {
    SaState state(pool, warm_start(pool, nranks, restart, rng,
                                   params_.structured_warm_start));
    if (!session_probed) {
      session = cost.session(state.mapping());
      session_probed = true;
    } else if (session != nullptr) {
      session->reset(state.mapping());
    }
    const auto score = [&]() {
      return session != nullptr ? session->cost() : cost(state.mapping());
    };
    const auto mirror = [&](const SaState::Move& move) {
      if (session == nullptr) return;
      for (const SaState::Action& action : move) {
        session->apply(action.rank, action.to);
      }
    };
    double current = score();
    ++evaluations;
    if (current < best.cost) {
      best.cost = current;
      best.mapping = state.mapping();
    }
    const bool allow_relocate = state.has_free_slot();

    // Initial temperature: mean uphill delta over sampled random moves, scaled
    // so t0_acceptance of them would be accepted (Metropolis).
    double mean_uphill = 0.0;
    std::size_t uphill = 0;
    for (std::size_t s = 0;
         s < params_.t0_samples && evaluations < params_.max_evaluations;
         ++s) {
      if (stop_requested()) {
        cancelled = true;
        break;
      }
      const SaState::Move move = state.propose(rng, allow_relocate);
      mirror(move);
      const double trial = score();
      ++evaluations;
      if (trial > current) {
        mean_uphill += trial - current;
        ++uphill;
      }
      state.undo(move);
      if (session != nullptr) session->undo(move.size());
    }
    double t0 = 1.0;
    if (uphill > 0) {
      mean_uphill /= static_cast<double>(uphill);
      t0 = -mean_uphill / std::log(params_.t0_acceptance);
    }
    const double t_min = t0 * params_.t_min_factor;
    if (observer_ != nullptr) observer_->on_restart(restart, t0, current);

    for (double t = t0;
         t > t_min && evaluations < params_.max_evaluations && !cancelled;
         t *= params_.cooling) {
      std::size_t attempted = 0;
      std::size_t accepted = 0;
      for (std::size_t m = 0;
           m < params_.moves_per_temperature &&
           evaluations < params_.max_evaluations;
           ++m) {
        if (stop_requested()) {
          cancelled = true;
          break;
        }
        const SaState::Move move = state.propose(rng, allow_relocate);
        mirror(move);
        const double trial = score();
        ++evaluations;
        ++attempted;
        const double delta = trial - current;
        if (delta <= 0.0 || rng.chance(std::exp(-delta / t))) {
          current = trial;
          ++accepted;
          if (session != nullptr) session->commit();
          // "<=" so that on plateaus (NCS inside an equal-speed pool, where
          // the cost cannot distinguish mappings) the walk endpoint is kept —
          // the paper's observation that NCS then "behaves like RS".
          if (current <= best.cost) {
            best.cost = current;
            best.mapping = state.mapping();
          }
        } else {
          state.undo(move);
          if (session != nullptr) session->undo(move.size());
        }
      }
      if (observer_ != nullptr) {
        obs::AnnealStep step;
        step.restart = restart;
        step.temperature = t;
        step.attempted = attempted;
        step.accepted = accepted;
        step.current_energy = current;
        step.best_energy = best.cost;
        step.evaluations = evaluations;
        observer_->on_temperature_step(step);
      }
    }
  }

  best.evaluations = evaluations;
  best.wall_seconds = timer.seconds();
  best.cancelled = cancelled;
  if (observer_ != nullptr) {
    observer_->on_finish(best.cost, best.evaluations, best.wall_seconds);
  }
  return best;
}

}  // namespace cbes
