// Candidate node pools: the set of nodes an administrator has made available
// to a scheduling request (paper §2 — CBES "only utilizes resources made
// available to an application ... according to administrating policies").
// The zone experiments of §6 restrict pools by architecture and connectivity.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "monitor/snapshot.h"
#include "topology/cluster.h"
#include "topology/mapping.h"

namespace cbes {

class NodePool {
 public:
  /// Pool over an explicit node list; slot capacity comes from each node's
  /// CPU count, capped at `max_slots_per_node` (1 = the paper's node-level
  /// mappings, where LAM assigns one task per node regardless of CPUs).
  /// Nodes must be distinct and belong to `topology`.
  NodePool(const ClusterTopology& topology, std::vector<NodeId> nodes,
           int max_slots_per_node = 1 << 20);

  /// Every node of the cluster.
  static NodePool whole_cluster(const ClusterTopology& topology);
  /// Every node of one architecture.
  static NodePool by_arch(const ClusterTopology& topology, Arch arch);
  /// Same node list, but at most one rank per node.
  [[nodiscard]] NodePool one_per_node() const;
  /// Same pool with nodes the snapshot declares dead removed — the
  /// fault-tolerance mask every scheduler search runs behind. Requires at
  /// least one surviving node.
  [[nodiscard]] NodePool alive_only(const LoadSnapshot& snapshot) const;

  [[nodiscard]] const std::vector<NodeId>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t total_slots() const noexcept {
    return total_slots_;
  }
  [[nodiscard]] const ClusterTopology& topology() const noexcept {
    return *topology_;
  }
  [[nodiscard]] int slots_of(NodeId node) const;
  [[nodiscard]] bool contains(NodeId node) const;

  /// Uniformly random valid mapping of `nranks` onto the pool's slots — the
  /// paper's RS scheduler ("picks mappings at random from a pool of nodes
  /// considered equivalent"). Requires nranks <= total_slots().
  [[nodiscard]] Mapping random_mapping(std::size_t nranks, Rng& rng) const;

 private:
  const ClusterTopology* topology_;
  std::vector<NodeId> nodes_;
  int max_slots_per_node_ = 1 << 20;
  std::size_t total_slots_ = 0;
};

}  // namespace cbes
