// Seeded, jittered exponential backoff with per-request retry budgets.
//
// Generalizes the request broker's ad-hoc TransientError retry (PR 4) into a
// reusable policy shared by the server's attempt loop and the monitor's
// suspect re-poll schedule. Backoff is deterministic: the delay before retry
// k of logical stream s is a pure function of (config, s, k), so a chaos run
// replays bit-identically from its seed and synchronized callers *de*-
// synchronize — each stream draws its own jitter, which is what stops retry
// stampedes against a recovering dependency.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cbes::resilience {

struct RetryPolicyConfig {
  /// Retries allowed after the first attempt (the per-request retry budget).
  std::size_t max_retries = 2;
  /// Backoff before the first retry, seconds; doubles per retry.
  double initial_backoff = 0.005;
  /// Ceiling on the un-jittered backoff, seconds.
  double backoff_cap = 0.05;
  /// Jitter fraction in [0, 1): the delay is drawn uniformly from
  /// base * [1 - jitter, 1 + jitter). Zero disables jitter.
  double jitter = 0.25;
  std::uint64_t seed = 0x8E772'1E5ULL;
};

class RetryPolicy {
 public:
  /// Validates the config (throws ContractError on nonsense: negative
  /// backoff, jitter outside [0, 1), cap below the initial backoff).
  explicit RetryPolicy(RetryPolicyConfig config = {});

  /// Un-jittered backoff before retry `retry` (0-based):
  /// min(initial * 2^retry, cap). Monotone non-decreasing in `retry`.
  [[nodiscard]] double base_backoff_seconds(std::size_t retry) const noexcept;

  /// Jittered backoff before retry `retry` of stream `stream`. Deterministic
  /// in (config, stream, retry) and always within
  /// base * [1 - jitter, 1 + jitter).
  [[nodiscard]] double backoff_seconds(std::uint64_t stream,
                                       std::size_t retry) const;

  /// True once `retries_done` has consumed the budget — the caller must fail
  /// rather than retry again.
  [[nodiscard]] bool exhausted(std::size_t retries_done) const noexcept {
    return retries_done >= config_.max_retries;
  }

  [[nodiscard]] const RetryPolicyConfig& config() const noexcept {
    return config_;
  }

 private:
  RetryPolicyConfig config_;
};

/// Countdown of one request's retry allowance, shared by every stage the
/// request flows through so retries across stages draw from one budget
/// instead of multiplying per stage.
class RetryBudget {
 public:
  explicit RetryBudget(std::size_t retries) noexcept : left_(retries) {}

  /// Consumes one retry; false when the budget is spent (do not retry).
  [[nodiscard]] bool consume() noexcept {
    if (left_ == 0) return false;
    --left_;
    return true;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return left_; }

 private:
  std::size_t left_;
};

}  // namespace cbes::resilience
