#include "resilience/shedder.h"

#include <cmath>

#include "common/check.h"

namespace cbes::resilience {

LoadShedder::LoadShedder(ShedderConfig config) : config_(config) {
  CBES_CHECK_MSG(std::isfinite(config_.target) && config_.target > 0.0,
                 "shedder delay target must be finite and positive");
  CBES_CHECK_MSG(std::isfinite(config_.interval) && config_.interval > 0.0,
                 "shedder escalation interval must be finite and positive");
  CBES_CHECK_MSG(std::isfinite(config_.cool_down) && config_.cool_down > 0.0,
                 "shedder cool-down must be finite and positive");
}

void LoadShedder::set_metrics(obs::MetricsRegistry* registry) {
  const std::lock_guard lock(mu_);
  if (registry == nullptr) {
    level_metric_ = nullptr;
    escalations_metric_ = nullptr;
    return;
  }
  level_metric_ = &registry->gauge(
      "cbes_server_brownout_level",
      "Brown-out level (0=full, 1=cached-only, 2=refuse-low-priority)");
  escalations_metric_ =
      &registry->counter("cbes_server_brownout_escalations_total",
                         "Brown-out level escalations under sustained "
                         "queue-delay pressure");
  level_metric_->set(static_cast<double>(
      level_.load(std::memory_order_relaxed)));
}

void LoadShedder::set_logger(obs::Logger* log) {
  const std::lock_guard lock(mu_);
  log_ = log;
}

void LoadShedder::set_level_locked(BrownoutLevel level, double now,
                                   bool escalation) {
  level_.store(static_cast<unsigned char>(level), std::memory_order_relaxed);
  if (level_metric_ != nullptr) {
    level_metric_->set(static_cast<double>(level));
  }
  if (log_ != nullptr) {
    log_->log(escalation ? obs::LogLevel::kWarn : obs::LogLevel::kInfo,
              "brownout/level", now,
              {{"level", brownout_name(level)},
               {"direction", escalation ? "escalate" : "recover"}});
  }
}

void LoadShedder::observe(double sojourn_seconds, double now) {
  if (!std::isfinite(sojourn_seconds) || !std::isfinite(now)) return;
  const std::lock_guard lock(mu_);
  const auto current =
      static_cast<unsigned char>(level_.load(std::memory_order_relaxed));
  if (sojourn_seconds > config_.target) {
    below_since_ = -1.0;
    if (above_since_ < 0.0) above_since_ = now;
    if (now - above_since_ >= config_.interval &&
        current < static_cast<unsigned char>(
                      BrownoutLevel::kRefuseLowPriority)) {
      set_level_locked(static_cast<BrownoutLevel>(current + 1), now,
                       /*escalation=*/true);
      ++escalations_;
      if (escalations_metric_ != nullptr) escalations_metric_->inc();
      // Restart the streak: each further escalation needs its own full
      // interval of sustained pressure (CoDel's successive-drop spacing).
      above_since_ = now;
    }
  } else {
    above_since_ = -1.0;
    if (below_since_ < 0.0) below_since_ = now;
    if (now - below_since_ >= config_.cool_down && current > 0) {
      set_level_locked(static_cast<BrownoutLevel>(current - 1), now,
                       /*escalation=*/false);
      below_since_ = now;  // symmetric: one level per sustained cool-down
    }
  }
}

std::uint64_t LoadShedder::escalations() const {
  const std::lock_guard lock(mu_);
  return escalations_;
}

}  // namespace cbes::resilience
