// Per-request deadlines for the CBES serve path (ISSUE 6 tentpole).
//
// A Deadline is an absolute point on the steady clock (or "unbounded") that a
// request carries from admission through every stage of its execution: queue
// wait, monitor polls, profile compilation, and the SA/GA step loops (via the
// job's StopToken). Each stage asks `expired()` before starting work and
// sizes its own budget from `remaining()`, so no stage runs past the
// request's overall budget — the deadline propagates instead of being
// re-negotiated per stage.
#pragma once

#include <algorithm>
#include <chrono>
#include <optional>

namespace cbes::resilience {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unbounded: never expires.
  constexpr Deadline() = default;

  /// The deadline `budget` from now. Non-positive budgets are already
  /// expired (a zero budget is a deadline, not "unbounded" — callers encode
  /// "no deadline" by not constructing one).
  [[nodiscard]] static Deadline after(Clock::duration budget) {
    return Deadline(Clock::now() + budget);
  }

  [[nodiscard]] static Deadline at(Clock::time_point when) {
    return Deadline(when);
  }

  [[nodiscard]] bool bounded() const noexcept { return when_.has_value(); }

  [[nodiscard]] bool expired() const noexcept {
    return when_.has_value() && Clock::now() >= *when_;
  }

  /// Time left before expiry; zero when expired, Clock::duration::max() when
  /// unbounded. Stages use this to bound their own waits.
  [[nodiscard]] Clock::duration remaining() const noexcept {
    if (!when_.has_value()) return Clock::duration::max();
    const Clock::duration left = *when_ - Clock::now();
    return std::max(left, Clock::duration::zero());
  }

  [[nodiscard]] std::optional<Clock::time_point> when() const noexcept {
    return when_;
  }

  /// The tighter of two deadlines — how a stage-local budget composes with
  /// the request deadline without ever loosening it.
  [[nodiscard]] static Deadline earliest(Deadline a, Deadline b) noexcept {
    if (!a.when_.has_value()) return b;
    if (!b.when_.has_value()) return a;
    return Deadline(std::min(*a.when_, *b.when_));
  }

 private:
  constexpr explicit Deadline(Clock::time_point when) : when_(when) {}

  std::optional<Clock::time_point> when_;
};

}  // namespace cbes::resilience
