// Per-dependency circuit breakers for the CBES serve path.
//
// A CircuitBreaker guards calls into one dependency (the monitor, the
// calibration/compile path). It is *closed* while the dependency answers,
// trips *open* after `failure_threshold` consecutive failures — callers then
// skip the dependency entirely and serve last-known-good / degraded answers
// instead of queueing behind a corpse — and after `open_seconds` admits
// exactly one *half-open* probe. The probe's outcome decides: success closes
// the breaker, failure re-opens it for another window.
//
// Time is the caller's simulated clock (`Seconds now`), not the wall clock,
// so breaker trajectories are deterministic under chaos plans and replayable
// in tests. All methods are thread-safe; the half-open state admits a single
// probe even under concurrent allow() calls.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "common/types.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace cbes::resilience {

enum class BreakerState : unsigned char { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

[[nodiscard]] constexpr const char* breaker_state_name(
    BreakerState s) noexcept {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

struct BreakerConfig {
  /// Consecutive failures that trip the breaker open.
  std::size_t failure_threshold = 3;
  /// How long the breaker stays open before admitting a half-open probe,
  /// in the caller's (simulated) seconds.
  Seconds open_seconds = 30.0;
};

class CircuitBreaker {
 public:
  /// `name` labels the guarded dependency in metrics
  /// (cbes_breaker_<name>_*). Throws ContractError on a nonsense config.
  explicit CircuitBreaker(std::string name, BreakerConfig config = {});

  /// May a call into the dependency proceed at `now`? Closed: always.
  /// Open: false until `open_seconds` have elapsed since the trip, then true
  /// exactly once (the half-open probe); concurrent callers see false until
  /// that probe resolves via record_success/record_failure.
  [[nodiscard]] bool allow(Seconds now);

  /// Reports the outcome of a call that allow() admitted.
  void record_success(Seconds now);
  void record_failure(Seconds now);

  [[nodiscard]] BreakerState state() const;
  [[nodiscard]] std::string_view name() const noexcept { return name_; }
  /// Times the breaker tripped closed->open (re-opens from half-open count).
  [[nodiscard]] std::uint64_t trips() const;
  /// Calls allow() turned away while open.
  [[nodiscard]] std::uint64_t short_circuits() const;

  /// Wires the state gauge and trip/short-circuit counters into `registry`
  /// (nullptr disables; the default). Must outlive the breaker.
  void set_metrics(obs::MetricsRegistry* registry);
  /// Logs state transitions (warn on trip, info on close/half-open) to `log`
  /// (nullptr disables; the default). Must outlive the breaker.
  void set_logger(obs::Logger* log);

 private:
  void trip_locked(Seconds now);
  void publish_state_locked();

  std::string name_;
  BreakerConfig config_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  std::size_t consecutive_failures_ = 0;
  Seconds opened_at_ = 0.0;
  bool probe_in_flight_ = false;
  std::uint64_t trips_ = 0;
  std::uint64_t short_circuits_ = 0;
  obs::Gauge* state_metric_ = nullptr;
  obs::Counter* trips_metric_ = nullptr;
  obs::Counter* short_circuits_metric_ = nullptr;
  obs::Logger* log_ = nullptr;
};

}  // namespace cbes::resilience
