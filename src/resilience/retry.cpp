#include "resilience/retry.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace cbes::resilience {

RetryPolicy::RetryPolicy(RetryPolicyConfig config) : config_(config) {
  CBES_CHECK_MSG(
      std::isfinite(config_.initial_backoff) && config_.initial_backoff >= 0.0,
      "initial backoff must be finite and nonnegative");
  CBES_CHECK_MSG(
      std::isfinite(config_.backoff_cap) &&
          config_.backoff_cap >= config_.initial_backoff,
      "backoff cap must be finite and at least the initial backoff");
  CBES_CHECK_MSG(config_.jitter >= 0.0 && config_.jitter < 1.0,
                 "jitter fraction must be in [0, 1)");
}

double RetryPolicy::base_backoff_seconds(std::size_t retry) const noexcept {
  // ldexp instead of repeated doubling: exact powers of two, no loop, and
  // immune to overflow for absurd retry counts (inf caps at backoff_cap).
  const double grown =
      std::ldexp(config_.initial_backoff,
                 static_cast<int>(std::min<std::size_t>(retry, 1024)));
  return std::min(grown, config_.backoff_cap);
}

double RetryPolicy::backoff_seconds(std::uint64_t stream,
                                    std::size_t retry) const {
  const double base = base_backoff_seconds(retry);
  if (config_.jitter <= 0.0 || base <= 0.0) return base;
  // One throwaway generator per (stream, retry): the draw is a pure function
  // of the question, so replays and concurrent callers agree without state.
  Rng rng(derive_seed(config_.seed,
                      (stream << 16) ^ static_cast<std::uint64_t>(retry)));
  return base * rng.uniform(1.0 - config_.jitter, 1.0 + config_.jitter);
}

}  // namespace cbes::resilience
