#include "resilience/breaker.h"

#include <cmath>
#include <utility>

#include "common/check.h"

namespace cbes::resilience {

CircuitBreaker::CircuitBreaker(std::string name, BreakerConfig config)
    : name_(std::move(name)), config_(config) {
  CBES_CHECK_MSG(!name_.empty(), "breaker needs a dependency name");
  CBES_CHECK_MSG(config_.failure_threshold >= 1,
                 "breaker failure threshold must be at least 1");
  CBES_CHECK_MSG(
      std::isfinite(config_.open_seconds) && config_.open_seconds > 0.0,
      "breaker open window must be finite and positive");
}

void CircuitBreaker::set_metrics(obs::MetricsRegistry* registry) {
  const std::lock_guard lock(mu_);
  if (registry == nullptr) {
    state_metric_ = nullptr;
    trips_metric_ = nullptr;
    short_circuits_metric_ = nullptr;
    return;
  }
  state_metric_ = &registry->gauge(
      "cbes_breaker_" + name_ + "_state",
      "Circuit-breaker state (0=closed, 1=open, 2=half-open)");
  trips_metric_ =
      &registry->counter("cbes_breaker_" + name_ + "_trips_total",
                         "Times the breaker tripped open");
  short_circuits_metric_ = &registry->counter(
      "cbes_breaker_" + name_ + "_short_circuits_total",
      "Calls turned away while the breaker was open");
  publish_state_locked();
}

void CircuitBreaker::set_logger(obs::Logger* log) {
  const std::lock_guard lock(mu_);
  log_ = log;
}

void CircuitBreaker::publish_state_locked() {
  if (state_metric_ != nullptr) {
    state_metric_->set(static_cast<double>(state_));
  }
}

void CircuitBreaker::trip_locked(Seconds now) {
  state_ = BreakerState::kOpen;
  opened_at_ = now;
  probe_in_flight_ = false;
  consecutive_failures_ = 0;
  ++trips_;
  if (trips_metric_ != nullptr) trips_metric_->inc();
  if (log_ != nullptr) {
    log_->warn("breaker/trip", now,
               {{"breaker", name_}, {"trips", trips_}});
  }
  publish_state_locked();
}

bool CircuitBreaker::allow(Seconds now) {
  const std::lock_guard lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now - opened_at_ >= config_.open_seconds) {
        // The open window has elapsed: admit exactly one probe.
        state_ = BreakerState::kHalfOpen;
        probe_in_flight_ = true;
        if (log_ != nullptr) {
          log_->info("breaker/half_open", now, {{"breaker", name_}});
        }
        publish_state_locked();
        return true;
      }
      ++short_circuits_;
      if (short_circuits_metric_ != nullptr) short_circuits_metric_->inc();
      return false;
    case BreakerState::kHalfOpen:
      // A probe is already in flight (or just resolved under a racing
      // caller); everyone else keeps serving the degraded path.
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return true;
      }
      ++short_circuits_;
      if (short_circuits_metric_ != nullptr) short_circuits_metric_->inc();
      return false;
  }
  return false;
}

void CircuitBreaker::record_success(Seconds now) {
  const std::lock_guard lock(mu_);
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  if (state_ != BreakerState::kClosed) {
    state_ = BreakerState::kClosed;
    if (log_ != nullptr) {
      log_->info("breaker/close", now, {{"breaker", name_}});
    }
    publish_state_locked();
  }
}

void CircuitBreaker::record_failure(Seconds now) {
  const std::lock_guard lock(mu_);
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: straight back to open for another window.
    trip_locked(now);
    return;
  }
  if (state_ == BreakerState::kOpen) return;  // already open; nothing to count
  ++consecutive_failures_;
  if (consecutive_failures_ >= config_.failure_threshold) trip_locked(now);
}

BreakerState CircuitBreaker::state() const {
  const std::lock_guard lock(mu_);
  return state_;
}

std::uint64_t CircuitBreaker::trips() const {
  const std::lock_guard lock(mu_);
  return trips_;
}

std::uint64_t CircuitBreaker::short_circuits() const {
  const std::lock_guard lock(mu_);
  return short_circuits_;
}

}  // namespace cbes::resilience
