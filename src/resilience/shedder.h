// Adaptive load shedding for the request queue (CoDel-style).
//
// Bounded queue depth alone rejects only at the cliff edge; latency has
// already collapsed by then. The LoadShedder instead watches queue *sojourn
// time* (submit -> dispatch delay) the way CoDel watches packet delay: when
// the delay stays above `target` for a full `interval`, the service steps
// down one brown-out level; when it stays below target for `cool_down`, it
// steps back up. The levels trade work for latency explicitly:
//
//   kFull              serve everything;
//   kCachedOnly        low-priority (batch) requests are served only from
//                      the prediction cache — fresh evaluation work for them
//                      is shed;
//   kRefuseLowPriority batch requests are refused at admission outright.
//
// Interactive and normal-priority traffic is never shed — overload costs the
// speculative what-if queries first, exactly the work whose loss is cheapest
// (the paper's service is consulted both at launch time and speculatively).
//
// The shedder is a pure state machine over (sojourn, now) observations: fed
// wall-clock times by the queue in production, synthetic times in tests, so
// every trajectory is deterministic and replayable.
#pragma once

#include <cstdint>
#include <mutex>

#include "obs/log.h"
#include "obs/metrics.h"

namespace cbes::resilience {

enum class BrownoutLevel : unsigned char {
  kFull = 0,
  kCachedOnly = 1,
  kRefuseLowPriority = 2,
};

[[nodiscard]] constexpr const char* brownout_name(BrownoutLevel l) noexcept {
  switch (l) {
    case BrownoutLevel::kFull:
      return "full";
    case BrownoutLevel::kCachedOnly:
      return "cached-only";
    case BrownoutLevel::kRefuseLowPriority:
      return "refuse-low-priority";
  }
  return "?";
}

struct ShedderConfig {
  /// Queue-delay target, seconds. Sojourn above this is overload pressure.
  double target = 0.010;
  /// Pressure must persist this long (seconds) to escalate one level.
  double interval = 0.100;
  /// Relief must persist this long (seconds) to de-escalate one level.
  double cool_down = 0.250;
};

class LoadShedder {
 public:
  /// Throws ContractError on a nonsense config (non-positive windows, ...).
  explicit LoadShedder(ShedderConfig config = {});

  /// Feeds one dequeued job's sojourn time, observed at time `now` (any
  /// monotone clock; seconds). Observations must be fed with non-decreasing
  /// `now` per caller; concurrent callers are serialized internally.
  void observe(double sojourn_seconds, double now);

  /// Current brown-out level (cheap; callable from admission control).
  [[nodiscard]] BrownoutLevel level() const noexcept {
    return static_cast<BrownoutLevel>(
        level_.load(std::memory_order_relaxed));
  }

  /// Level escalations since construction (for tests and reporting).
  [[nodiscard]] std::uint64_t escalations() const;

  [[nodiscard]] const ShedderConfig& config() const noexcept {
    return config_;
  }

  /// Wires the brown-out-level gauge and the escalation counter into
  /// `registry` (nullptr disables; the default). Must outlive the shedder.
  void set_metrics(obs::MetricsRegistry* registry);
  /// Logs brown-out level changes (warn on escalation, info on recovery) to
  /// `log` (nullptr disables; the default). Must outlive the shedder.
  void set_logger(obs::Logger* log);

 private:
  void set_level_locked(BrownoutLevel level, double now, bool escalation);

  ShedderConfig config_;
  mutable std::mutex mu_;
  std::atomic<unsigned char> level_{0};
  /// Start of the current above-target streak; negative = no streak.
  double above_since_ = -1.0;
  /// Start of the current below-target streak; negative = no streak.
  double below_since_ = -1.0;
  std::uint64_t escalations_ = 0;
  obs::Gauge* level_metric_ = nullptr;
  obs::Counter* escalations_metric_ = nullptr;
  obs::Logger* log_ = nullptr;
};

}  // namespace cbes::resilience
