#include "common/csv.h"

#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace cbes {

namespace {
std::string escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
  CBES_CHECK_MSG(out_.good(), "cannot open CSV file: " + path);
  CBES_CHECK_MSG(columns_ > 0, "CSV header must be nonempty");
  write_row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  CBES_CHECK_MSG(cells.size() == columns_, "CSV row width mismatch");
  write_row(cells);
}

void CsvWriter::row_numeric(const std::vector<double>& cells, int precision) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    text.push_back(os.str());
  }
  row(text);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace cbes
