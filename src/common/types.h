// Core value types shared by every CBES module.
//
// Times are plain double seconds (`Seconds`); message sizes are byte counts.
// Entity identifiers are strong types so a rank index can never be passed where a
// node index is expected (C++ Core Guidelines I.4 / ES.9).
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace cbes {

/// Simulated wall-clock time, in seconds.
using Seconds = double;

/// Message payload size, in bytes.
using Bytes = std::uint64_t;

/// Sentinel for "no time" / "not yet scheduled".
inline constexpr Seconds kNever = std::numeric_limits<Seconds>::infinity();

namespace detail {

/// Strongly-typed numeric identifier. `Tag` distinguishes id families.
template <class Tag>
struct Id {
  using underlying = std::uint32_t;
  static constexpr underlying kInvalid = std::numeric_limits<underlying>::max();

  underlying value = kInvalid;

  constexpr Id() = default;
  constexpr explicit Id(underlying v) : value(v) {}
  constexpr explicit Id(std::size_t v) : value(static_cast<underlying>(v)) {}
  constexpr explicit Id(int v) : value(static_cast<underlying>(v)) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(value);
  }

  friend constexpr auto operator<=>(Id, Id) = default;
};

}  // namespace detail

struct NodeTag {};
struct SwitchTag {};
struct RankTag {};
struct LinkTag {};

/// Identifies a compute node within a ClusterTopology.
using NodeId = detail::Id<NodeTag>;
/// Identifies a switch within a ClusterTopology.
using SwitchId = detail::Id<SwitchTag>;
/// Identifies an application process (MPI rank).
using RankId = detail::Id<RankTag>;
/// Identifies a network link within a ClusterTopology.
using LinkId = detail::Id<LinkTag>;

}  // namespace cbes

template <class Tag>
struct std::hash<cbes::detail::Id<Tag>> {
  std::size_t operator()(cbes::detail::Id<Tag> id) const noexcept {
    return std::hash<typename cbes::detail::Id<Tag>::underlying>{}(id.value);
  }
};
