// Lightweight precondition / invariant checking for CBES.
//
// CBES_CHECK is always on (library contract violations throw cbes::ContractError,
// which callers may catch in tests); CBES_ASSERT compiles out in NDEBUG builds and
// is reserved for internal invariants that are provably unreachable when the public
// contracts hold.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cbes {

/// Thrown when a public-API precondition or a library invariant is violated.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}
}  // namespace detail

}  // namespace cbes

#define CBES_CHECK(expr)                                                      \
  do {                                                                        \
    if (!(expr))                                                              \
      ::cbes::detail::contract_failure("CBES_CHECK", #expr, __FILE__,         \
                                       __LINE__, std::string{});              \
  } while (0)

#define CBES_CHECK_MSG(expr, msg)                                             \
  do {                                                                        \
    if (!(expr))                                                              \
      ::cbes::detail::contract_failure("CBES_CHECK", #expr, __FILE__,         \
                                       __LINE__, (msg));                      \
  } while (0)

#ifdef NDEBUG
#define CBES_ASSERT(expr) ((void)0)
#else
#define CBES_ASSERT(expr)                                                     \
  do {                                                                        \
    if (!(expr))                                                              \
      ::cbes::detail::contract_failure("CBES_ASSERT", #expr, __FILE__,        \
                                       __LINE__, std::string{});              \
  } while (0)
#endif
