// Deterministic random-number generation for CBES.
//
// Every stochastic component in the repository takes an explicit 64-bit seed and
// owns its own generator; there is no global RNG state, so any experiment is
// reproducible from its seed alone.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/check.h"

namespace cbes {

/// splitmix64 — used to expand a single seed into generator state and to derive
/// independent child seeds (seed "splitting").
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Derives a child seed from (parent seed, stream index); distinct streams are
/// statistically independent for our purposes.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t parent,
                                        std::uint64_t stream) noexcept;

/// xoshiro256** — small, fast, high-quality generator.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  [[nodiscard]] double normal() noexcept;
  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;
  /// Lognormal such that the *median* is `median` and log-space sigma is `sigma`.
  [[nodiscard]] double lognormal_median(double median, double sigma) noexcept;
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;
  /// Exponential with the given mean. Requires mean > 0.
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Uniformly selects an index into a container of size n. Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n) noexcept;

  /// Fisher–Yates shuffle.
  template <class T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples k distinct indices from [0, n) in selection order (k <= n).
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        std::size_t k);

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace cbes
