#include "common/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace cbes {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CBES_CHECK_MSG(!header_.empty(), "table needs at least one column");
}

TextTable& TextTable::row() {
  CBES_CHECK_MSG(rows_.empty() || rows_.back().size() == header_.size(),
                 "previous row not fully populated");
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(std::string value) {
  CBES_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  CBES_CHECK_MSG(rows_.back().size() < header_.size(), "row already full");
  rows_.back().push_back(std::move(value));
  return *this;
}

TextTable& TextTable::cell(const char* value) { return cell(std::string(value)); }

TextTable& TextTable::cell(double value, int precision) {
  return cell(format_fixed(value, precision));
}

TextTable& TextTable::cell(std::size_t value) {
  return cell(std::to_string(value));
}

TextTable& TextTable::cell(int value) { return cell(std::to_string(value)); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < r.size() ? r[c] : std::string{};
      os << "  " << std::left << std::setw(static_cast<int>(widths[c])) << v;
    }
    os << '\n';
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& r : rows_) print_row(r);
}

std::string TextTable::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string format_fixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string format_percent(double fraction, int precision) {
  return format_fixed(fraction * 100.0, precision) + "%";
}

std::string format_bytes(std::uint64_t bytes) {
  if (bytes < 1024) return std::to_string(bytes) + " B";
  const double kib = static_cast<double>(bytes) / 1024.0;
  if (kib < 1024.0) return format_fixed(kib, kib < 10 ? 1 : 0) + " KiB";
  const double mib = kib / 1024.0;
  return format_fixed(mib, mib < 10 ? 1 : 0) + " MiB";
}

}  // namespace cbes
