// Summary statistics used throughout the experiment harnesses: running moments,
// 95% confidence intervals (as reported in the paper's figures/tables), quantiles,
// histograms, and least-squares line fitting for the latency-model calibration.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace cbes {

/// Single-pass accumulation of count/mean/variance (Welford) plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 when fewer than two samples.
  [[nodiscard]] double sem() const noexcept;
  /// Half-width of the 95% confidence interval on the mean (Student-t).
  [[nodiscard]] double ci95_halfwidth() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided Student-t critical value for 95% confidence with `df` degrees of
/// freedom (tabulated for small df, 1.96 asymptote).
[[nodiscard]] double t_critical_95(std::size_t df) noexcept;

/// Quantile of a sample (linear interpolation between order statistics).
/// `q` in [0, 1]; the input need not be sorted. Requires a nonempty sample.
[[nodiscard]] double quantile(std::span<const double> sample, double q);

[[nodiscard]] inline double median(std::span<const double> sample) {
  return quantile(sample, 0.5);
}

/// Fixed-bin histogram over [lo, hi]; samples outside are clamped to the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Renders an ASCII bar chart, one row per bin, scaled to `width` columns.
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Result of an ordinary-least-squares fit y = intercept + slope * x.
struct LineFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination; 1 for a perfect fit, 0 when x explains nothing.
  double r_squared = 0.0;
};

/// OLS fit; requires xs.size() == ys.size() and at least two distinct x values.
[[nodiscard]] LineFit fit_line(std::span<const double> xs,
                               std::span<const double> ys);

/// Weighted least squares with per-point weights (e.g. 1/y^2 to minimize
/// *relative* residuals when measurement noise is multiplicative, as network
/// latency jitter is). Requires positive weights and two distinct x values.
[[nodiscard]] LineFit fit_line_weighted(std::span<const double> xs,
                                        std::span<const double> ys,
                                        std::span<const double> weights);

}  // namespace cbes
