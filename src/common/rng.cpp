#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace cbes {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream) noexcept {
  // Mix the stream index in with one splitmix step so adjacent streams decorrelate.
  std::uint64_t s = parent ^ (0xA0761D6478BD642FULL * (stream + 1));
  return splitmix64(s);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53-bit mantissa; value in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  CBES_ASSERT(n > 0);
  // Lemire's multiply-shift rejection method for unbiased bounded integers.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  CBES_ASSERT(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // may wrap only if full range
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() noexcept {
  // Box–Muller; u clamped away from 0 so log() is finite.
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  const double v = uniform();
  return std::sqrt(-2.0 * std::log(u)) *
         std::cos(2.0 * std::numbers::pi * v);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal_median(double median, double sigma) noexcept {
  return median * std::exp(sigma * normal());
}

bool Rng::chance(double p) noexcept {
  return uniform() < std::clamp(p, 0.0, 1.0);
}

double Rng::exponential(double mean) noexcept {
  CBES_ASSERT(mean > 0.0);
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

std::size_t Rng::index(std::size_t n) noexcept {
  CBES_ASSERT(n > 0);
  return static_cast<std::size_t>(below(n));
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  CBES_CHECK_MSG(k <= n, "cannot sample more indices than the population size");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher–Yates: after k swaps the prefix holds the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(below(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace cbes
