#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace cbes {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const noexcept { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double RunningStats::ci95_halfwidth() const noexcept {
  return n_ > 1 ? t_critical_95(n_ - 1) * sem() : 0.0;
}

double t_critical_95(std::size_t df) noexcept {
  // Two-sided 95% critical values; beyond 30 df the normal approximation is <1% off.
  static constexpr double kTable[] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (df == 0) return 0.0;
  if (df < std::size(kTable)) return kTable[df];
  return 1.96;
}

double quantile(std::span<const double> sample, double q) {
  CBES_CHECK_MSG(!sample.empty(), "quantile of an empty sample");
  CBES_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  CBES_CHECK_MSG(bins > 0, "histogram needs at least one bin");
  CBES_CHECK_MSG(hi > lo, "histogram range must be nonempty");
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  CBES_CHECK(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  CBES_CHECK(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const {
  CBES_CHECK(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        counts_[b] * width / peak;
    os.setf(std::ios::fixed);
    os.precision(1);
    os << '[' << bin_lo(b) << ", " << bin_hi(b) << ") "
       << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

LineFit fit_line_weighted(std::span<const double> xs,
                          std::span<const double> ys,
                          std::span<const double> weights) {
  CBES_CHECK_MSG(xs.size() == ys.size() && xs.size() == weights.size(),
                 "fit_line_weighted: mismatched sample sizes");
  CBES_CHECK_MSG(xs.size() >= 2, "fit_line_weighted: need at least two points");
  double sw = 0;
  for (double w : weights) {
    CBES_CHECK_MSG(w > 0.0, "fit_line_weighted: weights must be positive");
    sw += w;
  }
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mx += weights[i] * xs[i];
    my += weights[i] * ys[i];
  }
  mx /= sw;
  my /= sw;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxx += weights[i] * dx * dx;
    sxy += weights[i] * dx * dy;
    syy += weights[i] * dy * dy;
  }
  CBES_CHECK_MSG(sxx > 0.0, "fit_line_weighted: all x values identical");
  LineFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  CBES_CHECK_MSG(xs.size() == ys.size(), "fit_line: mismatched sample sizes");
  CBES_CHECK_MSG(xs.size() >= 2, "fit_line: need at least two points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  CBES_CHECK_MSG(sxx > 0.0, "fit_line: all x values identical");
  LineFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace cbes
