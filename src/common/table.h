// Fixed-width plain-text table rendering for the experiment harnesses, so each
// bench binary can print the same rows the paper's tables report.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace cbes {

/// Column-aligned text table. Cells are strings; helpers format numbers.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  TextTable& row();
  TextTable& cell(std::string value);
  TextTable& cell(const char* value);
  /// Fixed-precision floating point cell.
  TextTable& cell(double value, int precision = 1);
  TextTable& cell(std::size_t value);
  TextTable& cell(int value);

  /// Renders with a header rule and column padding.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with fixed precision, e.g. format_fixed(3.14159, 2) == "3.14".
[[nodiscard]] std::string format_fixed(double value, int precision);

/// "12.3%" style percentage string.
[[nodiscard]] std::string format_percent(double fraction, int precision = 1);

/// Human-readable byte size ("64 B", "8 KiB", "1.5 MiB").
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

}  // namespace cbes
