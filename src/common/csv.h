// Minimal CSV emission so each bench can also dump machine-readable series
// (one file per figure) alongside its printed table.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace cbes {

/// Streams rows to a CSV file; quotes fields containing separators.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on I/O failure.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Emits one row; pads/truncates nothing — size must match the header.
  void row(const std::vector<std::string>& cells);

  /// Convenience for all-numeric rows.
  void row_numeric(const std::vector<double>& cells, int precision = 6);

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace cbes
