#include "core/service.h"

#include "common/check.h"

namespace cbes {

CbesService::CbesService(const ClusterTopology& topology,
                         const LoadModel& truth, Config config)
    : topology_(&topology),
      config_(config),
      model_(std::make_unique<LatencyModel>(
          calibrate(topology, config.hardware, config.calibration,
                    &calibration_report_))),
      evaluator_(std::make_unique<MappingEvaluator>(*model_)),
      monitor_(topology, truth, config.monitor),
      simulator_(topology) {}

const AppProfile& CbesService::register_application(
    const Program& program, const Mapping& profiling_mapping) {
  AppProfile profile = profile_application(program, profiling_mapping,
                                           simulator_, *model_,
                                           config_.profiler);
  return register_profile(std::move(profile));
}

const AppProfile& CbesService::register_profile(AppProfile profile) {
  CBES_CHECK_MSG(!profile.app_name.empty(), "profile must carry an app name");
  auto [it, _] =
      profiles_.insert_or_assign(profile.app_name, std::move(profile));
  return it->second;
}

const AppProfile& CbesService::profile_of(const std::string& name) const {
  const auto it = profiles_.find(name);
  CBES_CHECK_MSG(it != profiles_.end(), "no profile registered for: " + name);
  return it->second;
}

bool CbesService::has_profile(const std::string& name) const {
  return profiles_.contains(name);
}

Prediction CbesService::predict(const std::string& app, const Mapping& mapping,
                                Seconds now) const {
  return evaluator_->predict(profile_of(app), mapping, monitor_.snapshot(now));
}

CbesService::ComparisonResult CbesService::compare(
    const std::string& app, const std::vector<Mapping>& candidates,
    Seconds now) const {
  CBES_CHECK_MSG(!candidates.empty(), "nothing to compare");
  const AppProfile& profile = profile_of(app);
  const LoadSnapshot snapshot = monitor_.snapshot(now);

  ComparisonResult result;
  result.predicted.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    result.predicted.push_back(
        evaluator_->evaluate(profile, candidates[i], snapshot));
    if (result.predicted[i] < result.predicted[result.best]) result.best = i;
  }
  return result;
}

}  // namespace cbes
