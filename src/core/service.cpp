#include "core/service.h"

#include "common/check.h"
#include "core/compiled_profile.h"
#include "obs/timer.h"

namespace cbes {

CbesService::CbesService(const ClusterTopology& topology,
                         const LoadModel& truth, Config config)
    : topology_(&topology),
      config_(config),
      monitor_(topology, truth, config.monitor),
      simulator_(topology) {
  // Offline calibration (paper §2) — timed and traced so deployments can see
  // what the "lengthy and expensive" one-time phase actually cost.
  double calibration_seconds = 0.0;
  if (config_.restored_calibration.has_value()) {
    // Crash recovery: rebuild the model from checkpointed state instead of
    // re-running the "lengthy and expensive" calibration sweep. The restored
    // coefficients are bit-identical to the exported ones, so every
    // prediction matches the pre-crash service exactly.
    const obs::TraceSpan span(config_.trace, "service/restore-calibration");
    model_ = std::make_unique<LatencyModel>(topology,
                                            *config_.restored_calibration);
    calibration_report_.classes = model_->class_count();
    calibration_report_.classes_measured =
        config_.restored_calibration->classes.size();
  } else {
    const obs::ScopedTimer timer(&calibration_seconds);
    const obs::TraceSpan span(config_.trace, "service/calibrate");
    model_ = std::make_unique<LatencyModel>(
        calibrate(topology, config_.hardware, config_.calibration,
                  &calibration_report_, config_.trace));
  }
  evaluator_ = std::make_unique<MappingEvaluator>(*model_);

  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *config_.metrics;
    reg.gauge("cbes_calibration_seconds",
              "Wall time of the offline calibration phase")
        .set(calibration_seconds);
    reg.gauge("cbes_calibration_path_classes",
              "Distinct path-equivalence classes found")
        .set(static_cast<double>(calibration_report_.classes));
    reg.counter("cbes_calibration_probes_total",
                "Individual ping measurements taken during calibration")
        .inc(calibration_report_.measurements);
    // Class-compression footprint: these stay flat as the node count grows,
    // which is the whole claim of the O(C^2) latency representation.
    reg.gauge("cbes_topology_path_classes",
              "Distinct path classes in the compressed latency model")
        .set(static_cast<double>(model_->class_count()));
    reg.gauge("cbes_topology_model_bytes",
              "Resident bytes of the class-compressed latency model")
        .set(static_cast<double>(model_->memory_bytes()));
    predict_requests_ = &reg.counter("cbes_service_predict_requests_total",
                                     "predict() requests served");
    compare_requests_ = &reg.counter("cbes_service_compare_requests_total",
                                     "compare() requests served");
    compare_candidates_ =
        &reg.counter("cbes_service_compare_candidates_total",
                     "Candidate mappings evaluated across compare() requests");
    profiles_registered_ = &reg.gauge("cbes_service_profiles_registered",
                                      "Application profiles currently held");
    evaluator_->set_metrics(config_.metrics);
    monitor_.set_metrics(config_.metrics);
  }
}

const AppProfile& CbesService::register_application(
    const Program& program, const Mapping& profiling_mapping) {
  const obs::TraceSpan span(config_.trace, "service/profile:", program.name);
  AppProfile profile = profile_application(program, profiling_mapping,
                                           simulator_, *model_,
                                           config_.profiler);
  return register_profile(std::move(profile));
}

const AppProfile& CbesService::register_profile(AppProfile profile) {
  CBES_CHECK_MSG(!profile.app_name.empty(), "profile must carry an app name");
  const std::unique_lock lock(profiles_mu_);
  auto [it, _] =
      profiles_.insert_or_assign(profile.app_name, std::move(profile));
  if (profiles_registered_ != nullptr) {
    profiles_registered_->set(static_cast<double>(profiles_.size()));
  }
  return it->second;
}

const AppProfile& CbesService::find_profile(const std::string& name) const {
  const auto it = profiles_.find(name);
  CBES_CHECK_MSG(it != profiles_.end(), "no profile registered for: " + name);
  return it->second;
}

const AppProfile& CbesService::profile_of(const std::string& name) const {
  const std::shared_lock lock(profiles_mu_);
  return find_profile(name);
}

bool CbesService::has_profile(const std::string& name) const {
  const std::shared_lock lock(profiles_mu_);
  return profiles_.contains(name);
}

AppProfile CbesService::profile_copy(const std::string& name) const {
  const std::shared_lock lock(profiles_mu_);
  return find_profile(name);
}

Prediction CbesService::predict(const std::string& app, const Mapping& mapping,
                                Seconds now) const {
  return predict_under(app, mapping, monitor_.snapshot(now));
}

Prediction CbesService::predict_under(const std::string& app,
                                      const Mapping& mapping,
                                      const LoadSnapshot& snapshot) const {
  if (predict_requests_ != nullptr) predict_requests_->inc();
  const obs::TraceSpan span(config_.trace, "service/predict:", app);
  const std::shared_lock lock(profiles_mu_);
  return evaluator_->predict(find_profile(app), mapping, snapshot);
}

CbesService::ComparisonResult CbesService::compare(
    const std::string& app, const std::vector<Mapping>& candidates,
    Seconds now) const {
  return compare_under(app, candidates, monitor_.snapshot(now));
}

CbesService::ComparisonResult CbesService::compare_under(
    const std::string& app, const std::vector<Mapping>& candidates,
    const LoadSnapshot& snapshot) const {
  CBES_CHECK_MSG(!candidates.empty(), "nothing to compare");
  if (compare_requests_ != nullptr) {
    compare_requests_->inc();
    compare_candidates_->inc(candidates.size());
  }
  const obs::TraceSpan span(config_.trace, "service/compare:", app);
  const std::shared_lock lock(profiles_mu_);
  const AppProfile& profile = find_profile(app);

  ComparisonResult result;
  result.predicted.reserve(candidates.size());
  // The profile and snapshot are invariant across the round: compile once and
  // sweep each candidate (bit-identical to per-candidate evaluation; see
  // core/compiled_profile.h).
  const auto compiled = evaluator_->compile(profile, snapshot);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    result.predicted.push_back(compiled->evaluate(candidates[i]));
    if (result.predicted[i] < result.predicted[result.best]) result.best = i;
  }
  return result;
}

}  // namespace cbes
