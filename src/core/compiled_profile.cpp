#include "core/compiled_profile.h"

#include "common/check.h"

namespace cbes {

namespace {

std::uint32_t u32(std::size_t v) { return static_cast<std::uint32_t>(v); }

}  // namespace

CompiledProfile::CompiledProfile(const AppProfile& profile,
                                 const LatencyModel& model,
                                 const LoadSnapshot& snapshot,
                                 const EvalOptions& options,
                                 EngineMetrics metrics)
    : nranks_(profile.nranks()),
      nnodes_(model.topology().node_count()),
      options_(options),
      snapshot_epoch_(snapshot.epoch),
      metrics_(metrics) {
  CBES_CHECK_MSG(snapshot.cpu_avail.size() >= nnodes_ &&
                     snapshot.nic_util.size() >= nnodes_,
                 "snapshot does not cover the topology");

  xo_.resize(nranks_);
  speed_profiled_.resize(nranks_);
  lambda_.resize(nranks_);
  for (std::size_t i = 0; i < nranks_; ++i) {
    const ProcessProfile& proc = profile.procs[i];
    xo_[i] = proc.x + proc.o;
    speed_profiled_[i] = profile.speed_of(proc.profiled_arch);
    lambda_[i] = proc.lambda;
  }

  node_speed_.resize(nnodes_);
  cpu_.resize(nnodes_);
  inv_cpu_.resize(nnodes_);
  nic_inv_.resize(nnodes_);
  alive_.resize(nnodes_);
  for (std::size_t j = 0; j < nnodes_; ++j) {
    const NodeId node{j};
    node_speed_[j] = profile.speed_of(model.topology().node(node).arch);
    cpu_[j] = snapshot.cpu_avail[j];
    inv_cpu_[j] = 1.0 / snapshot.cpu_avail[j];
    nic_inv_[j] = 1.0 / (1.0 - snapshot.nic_util[j]);
    alive_[j] = snapshot.alive(node) ? 1 : 0;
  }

  coeffs_.reserve(model.class_table_size());
  for (std::size_t k = 0; k < model.class_table_size(); ++k) {
    coeffs_.push_back(model.class_coeffs(k));
  }
  pair_classes_ = model.pair_class_map();

  // Flatten message groups, preserving theta()'s per-rank recv-then-send
  // summation order (the FP-identity contract).
  g_begin_.resize(nranks_ + 1, 0);
  std::size_t total_groups = 0;
  for (std::size_t i = 0; i < nranks_; ++i) {
    g_begin_[i] = u32(total_groups);
    total_groups +=
        profile.procs[i].recv_groups.size() + profile.procs[i].send_groups.size();
  }
  g_begin_[nranks_] = u32(total_groups);
  g_peer_.reserve(total_groups);
  g_count_.reserve(total_groups);
  g_size_.reserve(total_groups);
  g_is_send_.reserve(total_groups);
  const auto flatten = [this](const MessageGroup& g, bool is_send) {
    CBES_CHECK_MSG(g.peer.valid() && g.peer.index() < nranks_,
                   "message-group peer out of rank range");
    g_peer_.push_back(g.peer.value);
    g_count_.push_back(static_cast<double>(g.count));
    g_size_.push_back(static_cast<double>(g.size));
    g_is_send_.push_back(is_send ? 1 : 0);
  };
  for (std::size_t i = 0; i < nranks_; ++i) {
    for (const MessageGroup& g : profile.procs[i].recv_groups) {
      flatten(g, false);
    }
    for (const MessageGroup& g : profile.procs[i].send_groups) {
      flatten(g, true);
    }
  }

  // Reverse peer index: which ranks' C terms read rank q's node? Each
  // mentioning rank appears once per mentioned rank (dedup via stamp),
  // self-mentions excluded — a moved rank recomputes its own C anyway.
  std::vector<std::uint32_t> counts(nranks_, 0);
  std::vector<std::uint32_t> stamp(nranks_, 0xFFFFFFFFu);
  for (std::size_t p = 0; p < nranks_; ++p) {
    for (std::uint32_t g = g_begin_[p]; g < g_begin_[p + 1]; ++g) {
      const std::uint32_t q = g_peer_[g];
      if (q == p || stamp[q] == p) continue;
      stamp[q] = u32(p);
      ++counts[q];
    }
  }
  touch_begin_.resize(nranks_ + 1, 0);
  for (std::size_t q = 0; q < nranks_; ++q) {
    touch_begin_[q + 1] = touch_begin_[q] + counts[q];
  }
  touched_by_.resize(touch_begin_[nranks_]);
  std::vector<std::uint32_t> cursor(touch_begin_.begin(),
                                    touch_begin_.end() - 1);
  stamp.assign(nranks_, 0xFFFFFFFFu);
  for (std::size_t p = 0; p < nranks_; ++p) {
    for (std::uint32_t g = g_begin_[p]; g < g_begin_[p + 1]; ++g) {
      const std::uint32_t q = g_peer_[g];
      if (q == p || stamp[q] == p) continue;
      stamp[q] = u32(p);
      touched_by_[cursor[q]++] = u32(p);
    }
  }
}

template <class NodesFn>
double CompiledProfile::rank_c_impl(std::size_t i, NodesFn&& node_of) const {
  if (!options_.comm_term) return 0.0;
  double total = 0.0;
  const std::uint32_t me = node_of(u32(i));
  const std::uint32_t end = g_begin_[i + 1];
  for (std::uint32_t g = g_begin_[i]; g < end; ++g) {
    const std::uint32_t peer = node_of(g_peer_[g]);
    const std::uint32_t src = g_is_send_[g] ? me : peer;
    const std::uint32_t dst = g_is_send_[g] ? peer : me;
    total += g_count_[g] * group_latency(g, src, dst);
  }
  if (options_.lambda_correction) total *= lambda_[i];
  return total;
}

Seconds CompiledProfile::evaluate(const Mapping& mapping,
                                  double* mean_sum) const {
  CBES_CHECK_MSG(mapping.nranks() == nranks_,
                 "mapping/profile rank count mismatch");
  if (metrics_.full_evals != nullptr) metrics_.full_evals->inc();
  const std::vector<NodeId>& assignment = mapping.assignment();
  const auto node_of = [&assignment](std::uint32_t r) {
    return assignment[r].value;
  };
  Seconds worst = 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < nranks_; ++i) {
    const std::uint32_t me = assignment[i].value;
    CBES_ASSERT(me < nnodes_);
    if (alive_[me] == 0) {
      // Same semantics as the legacy sweep: a dead node means the mapping
      // never finishes. With a mean requested the sweep continues (matching
      // predict(), whose mean also diverges to infinity).
      if (mean_sum == nullptr) return kNever;
      worst = kNever;
      sum += kNever;
      continue;
    }
    const double r = rank_r(i, me);
    const double c = rank_c_impl(i, node_of);
    const double total = r + c;
    sum += total;
    if (total > worst) worst = total;
  }
  if (mean_sum != nullptr) *mean_sum = sum;
  return worst;
}

// ---------------------------------------------------------------------------
// EvalState

EvalState::EvalState(const CompiledProfile& compiled) : cp_(&compiled) {
  const std::size_t n = cp_->nranks_;
  nodes_.assign(n, 0);
  r_.assign(n, 0.0);
  c_.assign(n, 0.0);
  total_.assign(n, 0.0);
  saved_.reserve(64);
  frames_.reserve(16);
}

void EvalState::reset(const Mapping& mapping) {
  CBES_CHECK_MSG(mapping.nranks() == cp_->nranks_,
                 "mapping/profile rank count mismatch");
  frames_.clear();
  saved_.clear();
  const std::vector<NodeId>& assignment = mapping.assignment();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    CBES_CHECK_MSG(assignment[i].valid() &&
                       assignment[i].index() < cp_->nnodes_,
                   "mapping node out of topology range");
    nodes_[i] = assignment[i].value;
  }
  if (cp_->metrics_.full_evals != nullptr) cp_->metrics_.full_evals->inc();
  max_ = 0.0;
  critical_ = kNoCritical;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    recompute_rank(i);
    if (total_[i] > max_) {
      max_ = total_[i];
      critical_ = static_cast<std::uint32_t>(i);
    }
  }
}

void EvalState::recompute_rank(std::size_t i) {
  const std::uint32_t node = nodes_[i];
  if (cp_->alive_[node] == 0) {
    // Mirrors predict(): R = kNever, C untouched at zero, total infinite.
    r_[i] = kNever;
    c_[i] = 0.0;
    total_[i] = kNever;
    return;
  }
  const std::uint32_t* nodes = nodes_.data();
  r_[i] = cp_->rank_r(i, node);
  c_[i] = cp_->rank_c_impl(i, [nodes](std::uint32_t r) { return nodes[r]; });
  total_[i] = r_[i] + c_[i];
}

void EvalState::apply(RankId rank, NodeId node) {
  const std::size_t i = rank.index();
  CBES_CHECK_MSG(i < nodes_.size(), "rank out of range");
  CBES_CHECK_MSG(node.valid() && node.index() < cp_->nnodes_,
                 "node out of topology range");
  Frame frame;
  frame.rank = static_cast<std::uint32_t>(i);
  frame.from = nodes_[i];
  frame.saved_begin = static_cast<std::uint32_t>(saved_.size());
  frame.max = max_;
  frame.critical = critical_;

  if (cp_->metrics_.delta_evals != nullptr) cp_->metrics_.delta_evals->inc();

  saved_.push_back(Saved{frame.rank, r_[i], c_[i], total_[i]});
  nodes_[i] = node.value;
  recompute_rank(i);
  double updated_max = total_[i];
  std::uint32_t updated_arg = frame.rank;
  bool critical_touched = (critical_ == frame.rank);
  std::size_t touched = 1;

  // The moved rank's node feeds the C term of every rank that exchanges
  // messages with it. With the comm term ablated no C term exists; ranks on
  // dead nodes keep their kNever total no matter where their peers sit.
  if (cp_->options_.comm_term) {
    const std::uint32_t end = cp_->touch_begin_[i + 1];
    for (std::uint32_t t = cp_->touch_begin_[i]; t < end; ++t) {
      const std::uint32_t p = cp_->touched_by_[t];
      if (cp_->alive_[nodes_[p]] == 0) continue;
      saved_.push_back(Saved{p, r_[p], c_[p], total_[p]});
      if (critical_ == p) critical_touched = true;
      const std::uint32_t* nodes = nodes_.data();
      c_[p] =
          cp_->rank_c_impl(p, [nodes](std::uint32_t r) { return nodes[r]; });
      total_[p] = r_[p] + c_[p];
      ++touched;
      if (total_[p] > updated_max) {
        updated_max = total_[p];
        updated_arg = p;
      }
    }
  }
  if (cp_->metrics_.touched_ranks != nullptr) {
    cp_->metrics_.touched_ranks->observe(static_cast<double>(touched));
  }

  // Max maintenance. Untouched totals are all <= the previous max, so:
  //   * critical untouched: its total still stands — max = max(old, updated);
  //   * critical touched and some updated total >= old max: that total
  //     dominates everything untouched too;
  //   * critical touched and all updated totals dropped below the old max:
  //     the new max may hide anywhere — full rescan (the only O(n) case).
  if (!critical_touched) {
    if (updated_max > max_) {
      max_ = updated_max;
      critical_ = updated_arg;
    }
  } else if (updated_max >= frame.max) {
    max_ = updated_max;
    critical_ = updated_arg;
  } else {
    rescan_max();
  }

  frames_.push_back(frame);
}

void EvalState::undo() {
  CBES_CHECK_MSG(!frames_.empty(), "undo without a matching apply");
  const Frame frame = frames_.back();
  frames_.pop_back();
  nodes_[frame.rank] = frame.from;
  for (std::size_t k = saved_.size(); k > frame.saved_begin; --k) {
    const Saved& s = saved_[k - 1];
    r_[s.rank] = s.r;
    c_[s.rank] = s.c;
    total_[s.rank] = s.total;
  }
  saved_.resize(frame.saved_begin);
  max_ = frame.max;
  critical_ = frame.critical;
}

void EvalState::rescan_max() {
  max_ = 0.0;
  critical_ = kNoCritical;
  for (std::size_t i = 0; i < total_.size(); ++i) {
    if (total_[i] > max_) {
      max_ = total_[i];
      critical_ = static_cast<std::uint32_t>(i);
    }
  }
}

double EvalState::mean_sum() const {
  double sum = 0.0;
  for (const double t : total_) sum += t;
  return sum;
}

}  // namespace cbes
