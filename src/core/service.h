// CbesService — the deployable face of CBES (paper figure 2): the core module
// plus its two autonomous subsystems (system profiling/monitoring and
// application profiling), behind one API that external clients (schedulers)
// call with mapping-comparison requests.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "monitor/monitor.h"
#include "netmodel/calibrate.h"
#include "netmodel/latency_model.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "profile/profiler.h"
#include "simmpi/simulator.h"

namespace cbes {

class CbesService {
 public:
  struct Config {
    /// Ground-truth hardware description (shared with the simulator).
    SimNetConfig hardware;
    CalibrationOptions calibration;
    /// Checkpointed calibration state (server/checkpoint.h). When set,
    /// construction skips the offline calibration phase entirely and rebuilds
    /// the latency model from this state — the crash-recovery path. The
    /// restored model is bit-identical to the one the state was exported
    /// from, so predictions resume exactly where the crashed process left
    /// off. `calibration` options are ignored in this mode.
    std::optional<CalibrationState> restored_calibration;
    MonitorConfig monitor;
    ProfilerOptions profiler;
    /// Observability sinks; both optional and disabled by default. When set
    /// they must outlive the service. `metrics` wires request counters plus
    /// evaluator/monitor/calibration instrumentation; `trace` records spans
    /// for calibration, profiling, and every predict/compare request.
    obs::MetricsRegistry* metrics = nullptr;
    obs::TraceSession* trace = nullptr;
  };

  /// Builds the service over `topology` with ground-truth load `truth`.
  /// Construction performs the offline calibration phase (paper §2) —
  /// "lengthy and expensive, but it takes place only once".
  /// Both references must outlive the service.
  CbesService(const ClusterTopology& topology, const LoadModel& truth,
              Config config);

  // ---- system-dedicated infrastructure -----------------------------------
  [[nodiscard]] const LatencyModel& latency_model() const noexcept {
    return *model_;
  }
  [[nodiscard]] const CalibrationReport& calibration_report() const noexcept {
    return calibration_report_;
  }
  [[nodiscard]] SystemMonitor& monitor() noexcept { return monitor_; }
  [[nodiscard]] const SystemMonitor& monitor() const noexcept {
    return monitor_;
  }

  // ---- application-dedicated infrastructure --------------------------------
  /// Profiles `program` on `profiling_mapping` (tracing run on the idle
  /// system) and registers the profile under the program's name. Returns the
  /// stored profile. Re-registering a name replaces the old profile.
  const AppProfile& register_application(const Program& program,
                                         const Mapping& profiling_mapping);

  /// Registers an externally built profile (e.g. a segment profile).
  const AppProfile& register_profile(AppProfile profile);

  /// The returned reference is stable until the same name is re-registered;
  /// it must not be used concurrently with re-registration of that name (use
  /// profile_copy() or predict_under()/compare_under() from server threads).
  [[nodiscard]] const AppProfile& profile_of(const std::string& name) const;
  [[nodiscard]] bool has_profile(const std::string& name) const;

  /// Thread-safe copy of a registered profile — taken under the profile lock,
  /// so it stays valid however long a scheduling job runs with it.
  [[nodiscard]] AppProfile profile_copy(const std::string& name) const;

  // ---- the core operation ---------------------------------------------------
  /// Predicted execution time of `app` under `mapping`, given the monitor's
  /// availability picture at time `now`.
  [[nodiscard]] Prediction predict(const std::string& app,
                                   const Mapping& mapping, Seconds now) const;

  /// predict() against an explicit availability snapshot (e.g. a degraded
  /// no-load picture, or one snapshot shared by a batch of evaluations).
  /// Thread-safe against concurrent register_application/register_profile:
  /// the profile lock is held for the whole evaluation.
  [[nodiscard]] Prediction predict_under(const std::string& app,
                                         const Mapping& mapping,
                                         const LoadSnapshot& snapshot) const;

  struct ComparisonResult {
    std::vector<Seconds> predicted;  ///< one per candidate, in request order
    std::size_t best = 0;            ///< index of the fastest candidate
  };

  /// Compares candidate mappings for `app` — the mapping-comparison request
  /// the paper's core module serves. Requires at least one candidate.
  [[nodiscard]] ComparisonResult compare(
      const std::string& app, const std::vector<Mapping>& candidates,
      Seconds now) const;

  /// compare() against an explicit availability snapshot; thread-safe like
  /// predict_under().
  [[nodiscard]] ComparisonResult compare_under(
      const std::string& app, const std::vector<Mapping>& candidates,
      const LoadSnapshot& snapshot) const;

  [[nodiscard]] const MappingEvaluator& evaluator() const noexcept {
    return *evaluator_;
  }
  [[nodiscard]] MpiSimulator& simulator() noexcept { return simulator_; }
  [[nodiscard]] const ClusterTopology& topology() const noexcept {
    return *topology_;
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  /// Lookup without locking; callers hold profiles_mu_.
  [[nodiscard]] const AppProfile& find_profile(const std::string& name) const;

  const ClusterTopology* topology_;
  Config config_;
  CalibrationReport calibration_report_;
  std::unique_ptr<LatencyModel> model_;
  std::unique_ptr<MappingEvaluator> evaluator_;
  SystemMonitor monitor_;
  MpiSimulator simulator_;
  /// Guards profiles_: server worker threads serve predict/compare requests
  /// under a shared lock while registrations take it exclusively. Everything
  /// else the request path touches is already safe to share (the evaluator
  /// and monitor are const over immutable state; metric updates are atomic).
  mutable std::shared_mutex profiles_mu_;
  std::map<std::string, AppProfile> profiles_;
  // Cached instruments (null when config_.metrics is null).
  obs::Counter* predict_requests_ = nullptr;
  obs::Counter* compare_requests_ = nullptr;
  obs::Counter* compare_candidates_ = nullptr;
  obs::Gauge* profiles_registered_ = nullptr;
};

}  // namespace cbes
