// Prediction-accuracy audit: how close is the estimating service to the
// "truth"?
//
// The paper validates its cost model by comparing predicted execution times
// against measured runs (Figure 5). This module reproduces that loop
// offline: it samples candidate mappings, asks the service for its
// prediction of each, runs the same (program, mapping) pair through the MPI
// simulator under the ground-truth load model, and records the relative
// error |predicted - simulated| / simulated per mapping.
//
// The audit is the calibration feedback surface for the serving stack: the
// per-mapping errors land in the `cbes_prediction_rel_error` histogram when
// a registry is supplied, and each row plus the summary is logged, so a
// fleet operator can watch model drift the same way they watch latency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "topology/mapping.h"

namespace cbes::obs {
class Logger;
class MetricsRegistry;
}  // namespace cbes::obs

namespace cbes {

class CbesService;
class LoadModel;
struct Program;

struct AuditOptions {
  /// Candidate mappings audited: the round-robin placement plus
  /// `mappings - 1` random samples over the whole cluster.
  std::size_t mappings = 8;
  /// Seed for the random mapping samples and the simulator jitter stream.
  std::uint64_t seed = 0xAD17;
  /// Simulated time of the audit; selects the monitor epoch the predictions
  /// are computed against and the simulator start time.
  Seconds now = 0.0;
};

/// One audited mapping: the service's answer next to the simulator's.
struct AuditRow {
  Mapping mapping;
  Seconds predicted = 0.0;
  Seconds simulated = 0.0;
  /// |predicted - simulated| / simulated; 0 when simulated is 0.
  double rel_error = 0.0;
};

struct AuditReport {
  std::vector<AuditRow> rows;
  double mean_rel_error = 0.0;
  double max_rel_error = 0.0;
};

/// Audits `svc`'s predictions for `program` against simulator ground truth
/// under `truth`. `program` must already be registered with the service
/// under its own name. When non-null, `metrics` receives every relative
/// error in the `cbes_prediction_rel_error` histogram and `log` one
/// "audit/row" record per mapping plus an "audit/summary" record.
[[nodiscard]] AuditReport audit_predictions(CbesService& svc,
                                            const Program& program,
                                            const LoadModel& truth,
                                            const AuditOptions& options = {},
                                            obs::MetricsRegistry* metrics =
                                                nullptr,
                                            obs::Logger* log = nullptr);

}  // namespace cbes
