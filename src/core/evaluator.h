// The CBES mapping-evaluation operation (paper §3.1, equations 4–8):
//
//   S_M  = max_i (R_i + C_i)                                  (4)
//   R_i  = (X_i + O_i) * (Speed_profile_i / Speed_j) / ACPU_j (5)
//   Theta_i^M = sum over message groups of mc * L_c(...)      (6)
//   lambda_i  = B_i / Theta_i^profile                         (7)
//   C_i  = Theta_i^M * lambda_i                               (8)
//
// This is the energy function the simulated-annealing scheduler minimizes and
// the predictor the validation experiments (Fig. 5) measure against reality.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "monitor/snapshot.h"
#include "obs/metrics.h"
#include "netmodel/latency_model.h"
#include "profile/app_profile.h"
#include "topology/mapping.h"

namespace cbes {

class CompiledProfile;

/// Per-process and aggregate outcome of one mapping evaluation.
struct Prediction {
  /// Predicted application execution time S_M (seconds).
  Seconds time = 0.0;
  /// The process attaining the max in equation 4 (the paper's i_M).
  RankId critical;
  /// R_i per process.
  std::vector<Seconds> compute;
  /// C_i per process.
  std::vector<Seconds> comm;
  /// True when this prediction rests on degraded information: a mapped node
  /// is dead (time is infinite), suspect, back-filled from its equivalence
  /// class, or a node pair runs on fallback latency coefficients. Degraded
  /// predictions are still served — the paper's service must answer with the
  /// best estimate it has — but consumers can weigh them accordingly.
  bool degraded = false;
  /// Human-readable explanation of the first degradation observed; empty when
  /// not degraded.
  std::string degrade_reason;
};

/// Evaluation knobs for the ablation experiments. Defaults reproduce the
/// paper's full formulation.
struct EvalOptions {
  /// Apply the lambda correction of equations 7–8; when false C_i = Theta_i
  /// (ablation: how much does the correction factor matter?).
  bool lambda_correction = true;
  /// Apply the 1/ACPU slowdown of equation 5; when false nodes are assumed
  /// idle (ablation: how much does monitoring matter under load?).
  bool load_term = true;
  /// Include the communication term at all; false gives the paper's NCS
  /// scheduler's cost function, which "cannot predict execution times".
  bool comm_term = true;
};

class MappingEvaluator {
 public:
  /// `model` must outlive the evaluator.
  explicit MappingEvaluator(const LatencyModel& model);

  /// Full prediction with per-process breakdown.
  [[nodiscard]] Prediction predict(const AppProfile& profile,
                                   const Mapping& mapping,
                                   const LoadSnapshot& snapshot,
                                   const EvalOptions& options = {}) const;

  /// Scalar S_M only — the scheduler's fast path (no allocations).
  [[nodiscard]] Seconds evaluate(const AppProfile& profile,
                                 const Mapping& mapping,
                                 const LoadSnapshot& snapshot,
                                 const EvalOptions& options = {}) const;

  [[nodiscard]] const LatencyModel& model() const noexcept { return *model_; }

  /// Flattens (profile, snapshot, options) against the evaluator's latency
  /// model into an immutable CompiledProfile — the compiled incremental
  /// engine's artifact (see core/compiled_profile.h). The result is
  /// self-contained and safely shared across threads; it carries the
  /// evaluator's engine counters when metrics are wired.
  [[nodiscard]] std::shared_ptr<const CompiledProfile> compile(
      const AppProfile& profile, const LoadSnapshot& snapshot,
      const EvalOptions& options = {}) const;

  /// Wires prediction counters and the evaluation-latency histogram into
  /// `registry` (nullptr turns instrumentation back off — the default, and
  /// the zero-cost path: one branch per call). `registry` must outlive the
  /// evaluator. Instrument references are cached here so the hot path never
  /// takes the registry lock.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  [[nodiscard]] Seconds term_r(const ProcessProfile& proc, NodeId node,
                               const AppProfile& profile,
                               const LoadSnapshot& snapshot,
                               const EvalOptions& options) const;
  [[nodiscard]] Seconds evaluate_impl(const AppProfile& profile,
                                      const Mapping& mapping,
                                      const LoadSnapshot& snapshot,
                                      const EvalOptions& options) const;

  const LatencyModel* model_;
  obs::Counter* predictions_ = nullptr;
  obs::Counter* evaluations_ = nullptr;
  obs::Counter* degraded_predictions_ = nullptr;
  obs::Counter* dead_node_evals_ = nullptr;
  obs::Histogram* eval_seconds_ = nullptr;
  // Compiled-engine instruments, shared by every CompiledProfile built here.
  obs::Counter* full_evals_ = nullptr;
  obs::Counter* delta_evals_ = nullptr;
  obs::Histogram* touched_ranks_ = nullptr;
};

}  // namespace cbes
