// The compiled incremental evaluation engine — the scheduler hot path.
//
// Evaluating equations (4)-(8) through MappingEvaluator::evaluate walks the
// AppProfile's pointer-rich message-group vectors and re-resolves latency
// classes and snapshot loads on every call, even though an annealing move
// reassigns one or two ranks and leaves everything else untouched. This
// module splits the work:
//
//   * CompiledProfile — an immutable flattening of (profile, latency model,
//     snapshot, options) into contiguous SoA arrays: per-rank compute
//     constants, per-node reciprocal loads, the O(C²)+O(N) pair->class map
//     copied from the latency model, and all message groups in one block with
//     a reverse peer index. A full
//     evaluation is then a single allocation-free sweep. Once built, a
//     CompiledProfile is self-contained (it copies everything it reads), so
//     the server can share one instance across worker threads for as long as
//     the (profile, snapshot-epoch) pair stays current.
//
//   * EvalState — a mutable working mapping over a CompiledProfile with
//     apply()/undo(): a move recomputes only the moved rank's R+C and the C
//     terms of the ranks that exchange messages with it, via the reverse peer
//     index. Every affected term is recomputed *in full and in the same
//     operation order* as the full sweep — never adjusted by adding or
//     subtracting deltas — so delta and full results are bit-identical, and
//     a scheduler driven through EvalState walks the exact trajectory it
//     would on the full path (FP-identity; see DESIGN.md).
//
// Max tracking: S_M is a max, so a move that lowers the critical rank's total
// may hand the max to any untouched rank. EvalState rescans all totals only
// in that case (critical rank touched AND its replacement candidate is below
// the previous max); every other move updates the max in O(touched).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "core/evaluator.h"
#include "monitor/snapshot.h"
#include "netmodel/latency_model.h"
#include "obs/metrics.h"
#include "profile/app_profile.h"
#include "topology/mapping.h"

namespace cbes {

/// Optional instrumentation shared by every EvalState over one profile.
/// Wired by MappingEvaluator::compile when the evaluator has metrics.
struct EngineMetrics {
  obs::Counter* full_evals = nullptr;    ///< cbes_eval_full_total
  obs::Counter* delta_evals = nullptr;   ///< cbes_eval_delta_total
  obs::Histogram* touched_ranks = nullptr;
};

class CompiledProfile {
 public:
  /// Flattens `profile` against `model` and `snapshot`. Copies everything it
  /// needs — the references may die immediately after construction.
  CompiledProfile(const AppProfile& profile, const LatencyModel& model,
                  const LoadSnapshot& snapshot, const EvalOptions& options = {},
                  EngineMetrics metrics = {});

  [[nodiscard]] std::size_t nranks() const noexcept { return nranks_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nnodes_; }
  [[nodiscard]] const EvalOptions& options() const noexcept { return options_; }
  /// Epoch of the snapshot the profile was compiled against.
  [[nodiscard]] std::uint64_t snapshot_epoch() const noexcept {
    return snapshot_epoch_;
  }
  [[nodiscard]] bool alive(NodeId node) const {
    return alive_[node.index()] != 0;
  }

  /// Scalar S_M — one allocation-free sweep, bit-identical to
  /// MappingEvaluator::evaluate over the bound snapshot and options. When
  /// `mean_sum` is non-null it receives sum_i(R_i + C_i) (the guidance term's
  /// numerator, matching the predict() path) and dead nodes no longer
  /// short-circuit the sweep.
  [[nodiscard]] Seconds evaluate(const Mapping& mapping,
                                 double* mean_sum = nullptr) const;

 private:
  friend class EvalState;

  /// R_i for rank `i` hosted on `node` — equation 5, same operation order as
  /// MappingEvaluator::term_r.
  [[nodiscard]] double rank_r(std::size_t i, std::uint32_t node) const {
    const double ratio = speed_profiled_[i] / node_speed_[node];
    double r = xo_[i] * ratio;
    if (options_.load_term) r /= cpu_[node];
    return r;
  }

  /// L_c for one message group — same operation order as
  /// LatencyModel::current over the bound snapshot. Only the class-id lookup
  /// mechanism differs from the historical dense matrix (same id, same
  /// coefficients), so the arithmetic below is untouched — the FP-identity
  /// contract holds.
  [[nodiscard]] double group_latency(std::size_t g, std::uint32_t src,
                                     std::uint32_t dst) const {
    const LatencyCoeffs& c = coeffs_[pair_classes_.pair_class(src, dst)];
    const double g_cpu = 0.5 * (inv_cpu_[src] + inv_cpu_[dst]) - 1.0;
    const double g_nic = 0.5 * (nic_inv_[src] + nic_inv_[dst]) - 1.0;
    return c.alpha * (1.0 + c.k_alpha_cpu * g_cpu) +
           c.beta * g_size_[g] *
               (1.0 + c.k_beta_cpu * g_cpu + c.k_beta_nic * g_nic);
  }

  /// Theta_i over the flattened groups (recv then send, profile order), with
  /// the lambda correction applied — the full C_i of equation 8. `node_of(r)`
  /// returns the hosting node of rank r; instantiated only inside
  /// compiled_profile.cpp (for Mapping and raw-array views).
  template <class NodesFn>
  [[nodiscard]] double rank_c_impl(std::size_t i, NodesFn&& node_of) const;

  std::size_t nranks_ = 0;
  std::size_t nnodes_ = 0;
  EvalOptions options_;
  std::uint64_t snapshot_epoch_ = 0;
  EngineMetrics metrics_;

  // Per rank (equations 5, 7).
  std::vector<double> xo_;              ///< X_i + O_i
  std::vector<double> speed_profiled_;  ///< Speed_profile_i
  std::vector<double> lambda_;

  // Per node, bound to the snapshot.
  std::vector<double> node_speed_;  ///< Speed_j for this application
  std::vector<double> cpu_;         ///< ACPU_j (divisor of equation 5)
  std::vector<double> inv_cpu_;     ///< 1/ACPU_j (latency g_cpu input)
  std::vector<double> nic_inv_;     ///< 1/(1 - NIC_j) (latency g_nic input)
  std::vector<std::uint8_t> alive_;

  // Latency table copied out of the model: class-compressed pair->class map
  // plus per-class coeffs — O(C²)+O(N), independent of the node count.
  std::vector<LatencyCoeffs> coeffs_;
  PairClassMap pair_classes_;

  // Message groups of every rank flattened into one block, preserving the
  // per-rank recv-then-send order theta() sums in. g_begin_[i]..g_begin_[i+1]
  // are rank i's groups.
  std::vector<std::uint32_t> g_begin_;  ///< nranks_+1 offsets
  std::vector<std::uint32_t> g_peer_;
  std::vector<double> g_count_;
  std::vector<double> g_size_;
  std::vector<std::uint8_t> g_is_send_;

  // Reverse peer index: peers_of(i) = ranks (!= i) holding a group whose
  // peer is i — exactly the C terms a move of rank i invalidates.
  std::vector<std::uint32_t> touch_begin_;  ///< nranks_+1 offsets
  std::vector<std::uint32_t> touched_by_;
};

/// Mutable evaluation state over one CompiledProfile (single-threaded; the
/// profile itself may be shared). reset() performs a full sweep; apply()/
/// undo() maintain S_M incrementally with bit-identical results.
class EvalState {
 public:
  /// `compiled` must outlive the state (hold it via shared_ptr at the owner).
  explicit EvalState(const CompiledProfile& compiled);

  /// Reinitializes from `mapping` with one full sweep.
  void reset(const Mapping& mapping);

  /// Reassigns `rank` to `node`, recomputing the touched terms; pushes an
  /// undo frame.
  void apply(RankId rank, NodeId node);

  /// Reverts the most recent apply(). Frames unwind strictly LIFO.
  void undo();

  /// Drops all undo frames (the working mapping stays). Called when a
  /// scheduler accepts a move — accepted moves are never unwound, so their
  /// frames would otherwise pile up across a long anneal.
  void commit() {
    frames_.clear();
    saved_.clear();
  }

  /// S_M of the working mapping (kNever while any rank sits on a dead node).
  [[nodiscard]] Seconds s() const noexcept { return max_; }
  /// sum_i(R_i + C_i), accumulated in rank order — the guidance-term
  /// numerator, bit-identical to summing a predict() breakdown.
  [[nodiscard]] double mean_sum() const;

  [[nodiscard]] NodeId node_of(RankId rank) const {
    return NodeId{nodes_[rank.index()]};
  }
  /// Number of undo frames held (applied moves not yet undone).
  [[nodiscard]] std::size_t depth() const noexcept { return frames_.size(); }

 private:
  static constexpr std::uint32_t kNoCritical = 0xFFFFFFFFu;

  /// Recomputes r_/c_/total_ for rank `i` from nodes_ (the same three stores
  /// the full sweep performs for that rank).
  void recompute_rank(std::size_t i);
  /// Full "worst over totals from 0.0" rescan — the fallback when the
  /// critical rank's total dropped.
  void rescan_max();

  const CompiledProfile* cp_;
  std::vector<std::uint32_t> nodes_;  ///< working assignment
  std::vector<double> r_;
  std::vector<double> c_;
  std::vector<double> total_;  ///< r_ + c_; kNever on a dead node
  double max_ = 0.0;
  std::uint32_t critical_ = kNoCritical;

  struct Saved {
    std::uint32_t rank;
    double r, c, total;
  };
  struct Frame {
    std::uint32_t rank;
    std::uint32_t from;
    std::uint32_t saved_begin;  ///< index into saved_
    double max;
    std::uint32_t critical;
  };
  std::vector<Saved> saved_;
  std::vector<Frame> frames_;
};

}  // namespace cbes
