// Mid-run remapping support — the paper's §8 future-work item ("expand the
// CBES infrastructure with application monitoring and remapping capabilities")
// implemented here: given a running application, its progress, and a candidate
// mapping, decide whether migrating is worth the cost.
//
// The remaining-time estimate scales the profile terms by the unexecuted
// fraction; migration cost charges each *moved* rank a checkpoint transfer
// over the network path between its old and new node plus a fixed restart
// overhead (paper §2: "taking into account the task remapping costs").
#pragma once

#include <memory>

#include "core/evaluator.h"
#include "topology/mapping.h"

namespace cbes {

struct RemapCostModel {
  /// Checkpoint image size per rank.
  Bytes state_bytes = 64 * 1024 * 1024;
  /// Fixed teardown/restart time per moved rank.
  Seconds restart_overhead = 2.0;
  /// Coordination barrier paid once per remap event.
  Seconds coordination_overhead = 1.0;
};

struct RemapDecision {
  /// True when switching (including migration cost) beats staying.
  bool beneficial = false;
  /// Predicted time to finish on the current mapping.
  Seconds remaining_current = 0.0;
  /// Predicted time to finish on the candidate mapping (excluding migration).
  Seconds remaining_candidate = 0.0;
  /// Predicted cost of moving: checkpoint transfers + restarts.
  Seconds migration_cost = 0.0;
  /// Ranks whose node changes.
  std::size_t moved_ranks = 0;

  [[nodiscard]] Seconds total_candidate() const {
    return remaining_candidate + migration_cost;
  }
  /// Time saved by remapping (negative = loss).
  [[nodiscard]] Seconds gain() const {
    return remaining_current - total_candidate();
  }
};

/// Predicted cost of migrating from `current` to `candidate`: checkpoint
/// transfer over each moved rank's old->new network path, restart overheads,
/// and one coordination barrier (0 when nothing moves).
[[nodiscard]] Seconds migration_cost(const ClusterTopology& topology,
                                     const Mapping& current,
                                     const Mapping& candidate,
                                     const RemapCostModel& cost = {});

/// One remap decision round. The stay cost (`remaining_current`) depends only
/// on the current mapping, the progress, and the snapshot — none of which
/// change while candidates are tried — so the round evaluates it once at
/// construction and shares it across every consider() call: a round weighing
/// N candidates pays N+1 evaluations instead of 2N. Evaluation runs over a
/// compiled profile (core/compiled_profile.h), built once per round or handed
/// in from a cache. References must outlive the round.
class RemapRound {
 public:
  /// Compiles `profile` against `snapshot` and prices staying on `current`.
  RemapRound(const MappingEvaluator& evaluator, const AppProfile& profile,
             const Mapping& current, double progress,
             const LoadSnapshot& snapshot, const RemapCostModel& cost = {});
  /// Over a pre-compiled artifact (server workers reusing a cached one).
  /// `evaluator` still supplies the cluster topology for migration pricing.
  RemapRound(const MappingEvaluator& evaluator,
             std::shared_ptr<const CompiledProfile> compiled,
             const Mapping& current, double progress,
             const RemapCostModel& cost = {});

  /// Prices moving to `candidate` against the cached stay cost.
  [[nodiscard]] RemapDecision consider(const Mapping& candidate) const;

  /// Predicted time to finish on the current mapping (the cached stay cost).
  [[nodiscard]] Seconds remaining_current() const noexcept {
    return remaining_current_;
  }

 private:
  const MappingEvaluator* evaluator_;
  std::shared_ptr<const CompiledProfile> compiled_;
  const Mapping* current_;
  double remaining_;
  Seconds remaining_current_ = 0.0;
  RemapCostModel cost_;
};

/// Evaluates remapping a run that has completed `progress` (fraction in
/// [0, 1)) of its profiled work from `current` to `candidate`, under the
/// availability picture in `snapshot`. One-shot convenience over RemapRound;
/// callers weighing several candidates should hold a round instead.
[[nodiscard]] RemapDecision evaluate_remap(const MappingEvaluator& evaluator,
                                           const AppProfile& profile,
                                           const Mapping& current,
                                           const Mapping& candidate,
                                           double progress,
                                           const LoadSnapshot& snapshot,
                                           const RemapCostModel& cost = {});

}  // namespace cbes
