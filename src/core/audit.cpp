#include "core/audit.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "apps/program.h"
#include "common/rng.h"
#include "core/service.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "simmpi/simulator.h"
#include "topology/cluster.h"

namespace cbes {

namespace {

/// Uniform sample over valid placements: pick nranks distinct CPU slots, so
/// the result always fits (each slot hosts at most one rank). Mirrors
/// NodePool::random_mapping without pulling the scheduler layer into core.
Mapping sample_mapping(const ClusterTopology& topology, std::size_t nranks,
                       Rng& rng) {
  std::vector<NodeId> slots;
  slots.reserve(topology.total_slots());
  for (const Node& node : topology.nodes()) {
    for (int s = 0; s < node.cpus; ++s) slots.push_back(node.id);
  }
  CBES_CHECK_MSG(nranks <= slots.size(),
                 "audit: more ranks than cluster CPU slots");
  const std::vector<std::size_t> picks =
      rng.sample_indices(slots.size(), nranks);
  std::vector<NodeId> assignment;
  assignment.reserve(nranks);
  for (const std::size_t pick : picks) assignment.push_back(slots[pick]);
  return Mapping(std::move(assignment));
}

}  // namespace

AuditReport audit_predictions(CbesService& svc, const Program& program,
                              const LoadModel& truth,
                              const AuditOptions& options,
                              obs::MetricsRegistry* metrics,
                              obs::Logger* log) {
  CBES_CHECK_MSG(options.mappings > 0, "audit: need at least one mapping");
  obs::Histogram* errors = nullptr;
  if (metrics != nullptr) {
    errors = &metrics->histogram(
        "cbes_prediction_rel_error",
        obs::Histogram::exponential(1e-3, 2.0, 12),
        "Relative error of predicted vs simulated execution time");
  }

  // Round-robin first (the paper's naive baseline placement), then random
  // samples — all deterministic in options.seed.
  Rng rng(options.seed);
  std::vector<Mapping> candidates;
  candidates.reserve(options.mappings);
  candidates.push_back(Mapping::round_robin(svc.topology(), program.nranks()));
  while (candidates.size() < options.mappings) {
    candidates.push_back(sample_mapping(svc.topology(), program.nranks(), rng));
  }

  AuditReport report;
  report.rows.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    AuditRow row;
    row.mapping = std::move(candidates[i]);
    row.predicted = svc.predict(program.name, row.mapping, options.now).time;

    SimOptions sim;
    sim.net = svc.config().hardware;
    sim.seed = derive_seed(options.seed, 1000 + i);
    sim.start_time = options.now;
    row.simulated =
        svc.simulator().run(program, row.mapping, truth, sim).makespan;

    row.rel_error = row.simulated > 0.0
                        ? std::abs(row.predicted - row.simulated) /
                              row.simulated
                        : 0.0;
    if (errors != nullptr) errors->observe(row.rel_error);
    if (log != nullptr) {
      log->info("audit/row", options.now,
                {{"app", program.name},
                 {"mapping", i},
                 {"predicted", row.predicted},
                 {"simulated", row.simulated},
                 {"rel_error", row.rel_error}});
    }
    report.mean_rel_error += row.rel_error;
    report.max_rel_error = std::max(report.max_rel_error, row.rel_error);
    report.rows.push_back(std::move(row));
  }
  report.mean_rel_error /= static_cast<double>(report.rows.size());
  if (log != nullptr) {
    log->info("audit/summary", options.now,
              {{"app", program.name},
               {"mappings", report.rows.size()},
               {"mean_rel_error", report.mean_rel_error},
               {"max_rel_error", report.max_rel_error}});
  }
  return report;
}

}  // namespace cbes
