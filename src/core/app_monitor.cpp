#include "core/app_monitor.h"

#include "common/check.h"

namespace cbes {

AppMonitor::AppMonitor(std::vector<Seconds> predicted_durations,
                       AppMonitorConfig config)
    : config_(config), predicted_(std::move(predicted_durations)) {
  CBES_CHECK_MSG(!predicted_.empty(), "nothing to monitor");
  CBES_CHECK_MSG(config_.drift_threshold > 0.0, "threshold must be positive");
  CBES_CHECK_MSG(config_.patience >= 1, "patience must be at least 1");
  for (Seconds p : predicted_) {
    CBES_CHECK_MSG(p > 0.0, "predicted durations must be positive");
  }
}

RemapTrigger AppMonitor::report(Seconds measured) {
  CBES_CHECK_MSG(measured >= 0.0, "negative measured duration");
  CBES_CHECK_MSG(base_ < predicted_.size(),
                 "more progress reports than predicted units");
  const Seconds predicted = predicted_[base_];
  ++base_;
  ++completed_;
  measured_total_ += measured;
  predicted_total_ += predicted;
  last_drift_ = measured / predicted;

  if (last_drift_ > 1.0 + config_.drift_threshold) {
    ++slow_streak_;
    fast_streak_ = 0;
  } else if (last_drift_ < 1.0 - config_.drift_threshold) {
    ++fast_streak_;
    slow_streak_ = 0;
  } else {
    slow_streak_ = 0;
    fast_streak_ = 0;
    state_ = RemapTrigger::kNone;
  }
  if (slow_streak_ >= config_.patience) state_ = RemapTrigger::kExternal;
  if (fast_streak_ >= config_.patience) state_ = RemapTrigger::kInternal;
  return state_;
}

void AppMonitor::rebase(std::vector<Seconds> predicted_remaining) {
  CBES_CHECK_MSG(!predicted_remaining.empty(), "rebase with no predictions");
  for (Seconds p : predicted_remaining) {
    CBES_CHECK_MSG(p > 0.0, "predicted durations must be positive");
  }
  predicted_ = std::move(predicted_remaining);
  base_ = 0;
  slow_streak_ = 0;
  fast_streak_ = 0;
  state_ = RemapTrigger::kNone;
}

double AppMonitor::cumulative_drift() const noexcept {
  return predicted_total_ > 0.0 ? measured_total_ / predicted_total_ : 1.0;
}

}  // namespace cbes
