#include "core/evaluator.h"

#include "common/check.h"
#include "obs/timer.h"
#include "profile/theta.h"

namespace cbes {

MappingEvaluator::MappingEvaluator(const LatencyModel& model)
    : model_(&model) {}

void MappingEvaluator::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    predictions_ = nullptr;
    evaluations_ = nullptr;
    eval_seconds_ = nullptr;
    return;
  }
  predictions_ = &registry->counter(
      "cbes_evaluator_predictions_total",
      "Full predictions (per-process breakdown) computed");
  evaluations_ = &registry->counter(
      "cbes_evaluator_evaluations_total",
      "Scalar mapping evaluations computed (scheduler fast path)");
  // 100 ns .. ~100 ms: mapping evaluation is microseconds-scale, growing
  // with profile complexity (paper §6.2).
  eval_seconds_ = &registry->histogram(
      "cbes_evaluator_eval_seconds",
      obs::Histogram::exponential(1e-7, 4.0, 10),
      "Latency of one scalar mapping evaluation, in seconds");
}

Seconds MappingEvaluator::term_r(const ProcessProfile& proc, NodeId node,
                                 const AppProfile& profile,
                                 const LoadSnapshot& snapshot,
                                 const EvalOptions& options) const {
  const Arch arch = model_->topology().node(node).arch;
  const double speed_ratio =
      profile.speed_of(proc.profiled_arch) / profile.speed_of(arch);
  double r = (proc.x + proc.o) * speed_ratio;
  if (options.load_term) {
    r /= snapshot.cpu_avail[node.index()];
  }
  return r;
}

Prediction MappingEvaluator::predict(const AppProfile& profile,
                                     const Mapping& mapping,
                                     const LoadSnapshot& snapshot,
                                     const EvalOptions& options) const {
  const std::size_t n = profile.nranks();
  CBES_CHECK_MSG(mapping.nranks() == n, "mapping/profile rank count mismatch");

  if (predictions_ != nullptr) predictions_->inc();
  Prediction pred;
  pred.compute.resize(n);
  pred.comm.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const RankId rank{i};
    const ProcessProfile& proc = profile.procs[i];
    const NodeId node = mapping.node_of(rank);
    pred.compute[i] = term_r(proc, node, profile, snapshot, options);
    if (options.comm_term) {
      Seconds c = theta(proc, rank, mapping, *model_, snapshot);
      if (options.lambda_correction) c *= proc.lambda;
      pred.comm[i] = c;
    }
    const Seconds total = pred.compute[i] + pred.comm[i];
    if (total > pred.time) {
      pred.time = total;
      pred.critical = rank;
    }
  }
  return pred;
}

Seconds MappingEvaluator::evaluate(const AppProfile& profile,
                                   const Mapping& mapping,
                                   const LoadSnapshot& snapshot,
                                   const EvalOptions& options) const {
  if (evaluations_ == nullptr) {
    return evaluate_impl(profile, mapping, snapshot, options);
  }
  evaluations_->inc();
  const obs::ScopedTimer timer;
  const Seconds result = evaluate_impl(profile, mapping, snapshot, options);
  eval_seconds_->observe(timer.seconds());
  return result;
}

Seconds MappingEvaluator::evaluate_impl(const AppProfile& profile,
                                        const Mapping& mapping,
                                        const LoadSnapshot& snapshot,
                                        const EvalOptions& options) const {
  const std::size_t n = profile.nranks();
  CBES_CHECK_MSG(mapping.nranks() == n, "mapping/profile rank count mismatch");

  Seconds worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const RankId rank{i};
    const ProcessProfile& proc = profile.procs[i];
    Seconds total =
        term_r(proc, mapping.node_of(rank), profile, snapshot, options);
    if (options.comm_term) {
      Seconds c = theta(proc, rank, mapping, *model_, snapshot);
      if (options.lambda_correction) c *= proc.lambda;
      total += c;
    }
    if (total > worst) worst = total;
  }
  return worst;
}

}  // namespace cbes
