#include "core/evaluator.h"

#include "common/check.h"
#include "core/compiled_profile.h"
#include "obs/timer.h"
#include "profile/theta.h"

namespace cbes {

namespace {

std::string node_label(const ClusterTopology& topology, NodeId id) {
  return topology.node(id).name;
}

}  // namespace

MappingEvaluator::MappingEvaluator(const LatencyModel& model)
    : model_(&model) {}

void MappingEvaluator::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    predictions_ = nullptr;
    evaluations_ = nullptr;
    degraded_predictions_ = nullptr;
    dead_node_evals_ = nullptr;
    eval_seconds_ = nullptr;
    full_evals_ = nullptr;
    delta_evals_ = nullptr;
    touched_ranks_ = nullptr;
    return;
  }
  predictions_ = &registry->counter(
      "cbes_evaluator_predictions_total",
      "Full predictions (per-process breakdown) computed");
  evaluations_ = &registry->counter(
      "cbes_evaluator_evaluations_total",
      "Scalar mapping evaluations computed (scheduler fast path)");
  degraded_predictions_ = &registry->counter(
      "cbes_evaluator_degraded_predictions_total",
      "Predictions served on degraded information (dead/suspect/back-filled "
      "nodes or fallback latency classes)");
  dead_node_evals_ = &registry->counter(
      "cbes_evaluator_dead_node_evals_total",
      "Evaluations of mappings that placed a rank on a dead node");
  // 100 ns .. ~100 ms: mapping evaluation is microseconds-scale, growing
  // with profile complexity (paper §6.2).
  eval_seconds_ = &registry->histogram(
      "cbes_evaluator_eval_seconds",
      obs::Histogram::exponential(1e-7, 4.0, 10),
      "Latency of one scalar mapping evaluation, in seconds");
  full_evals_ = &registry->counter(
      "cbes_eval_full_total",
      "Full sweeps by the compiled engine (EvalState resets, batch sweeps)");
  delta_evals_ = &registry->counter(
      "cbes_eval_delta_total",
      "Incremental (delta) move evaluations by the compiled engine");
  // 1 .. 512 ranks recomputed per delta move; dense profiles (all-to-all)
  // touch every rank, sparse stencils only a handful.
  touched_ranks_ = &registry->histogram(
      "cbes_eval_touched_ranks", obs::Histogram::exponential(1.0, 2.0, 10),
      "Ranks recomputed per delta move (moved rank + message peers)");
}

std::shared_ptr<const CompiledProfile> MappingEvaluator::compile(
    const AppProfile& profile, const LoadSnapshot& snapshot,
    const EvalOptions& options) const {
  EngineMetrics metrics;
  metrics.full_evals = full_evals_;
  metrics.delta_evals = delta_evals_;
  metrics.touched_ranks = touched_ranks_;
  return std::make_shared<const CompiledProfile>(profile, *model_, snapshot,
                                                 options, metrics);
}

Seconds MappingEvaluator::term_r(const ProcessProfile& proc, NodeId node,
                                 const AppProfile& profile,
                                 const LoadSnapshot& snapshot,
                                 const EvalOptions& options) const {
  const Arch arch = model_->topology().node(node).arch;
  const double speed_ratio =
      profile.speed_of(proc.profiled_arch) / profile.speed_of(arch);
  double r = (proc.x + proc.o) * speed_ratio;
  if (options.load_term) {
    r /= snapshot.cpu_avail[node.index()];
  }
  return r;
}

Prediction MappingEvaluator::predict(const AppProfile& profile,
                                     const Mapping& mapping,
                                     const LoadSnapshot& snapshot,
                                     const EvalOptions& options) const {
  const std::size_t n = profile.nranks();
  CBES_CHECK_MSG(mapping.nranks() == n, "mapping/profile rank count mismatch");

  if (predictions_ != nullptr) predictions_->inc();
  Prediction pred;
  pred.compute.resize(n);
  pred.comm.resize(n);

  // Records the first (most severe first: callers order the checks) reason;
  // later degradations only keep the flag set.
  const auto degrade = [&pred](std::string reason) {
    if (!pred.degraded) {
      pred.degraded = true;
      pred.degrade_reason = std::move(reason);
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    const RankId rank{i};
    const ProcessProfile& proc = profile.procs[i];
    const NodeId node = mapping.node_of(rank);
    if (!snapshot.alive(node)) {
      // A dead node computes nothing: this mapping never finishes.
      pred.compute[i] = kNever;
      pred.time = kNever;
      pred.critical = rank;
      degrade("rank " + std::to_string(i) + " mapped onto dead node " +
              node_label(model_->topology(), node));
      if (dead_node_evals_ != nullptr) dead_node_evals_->inc();
      continue;
    }
    if (snapshot.health_of(node) == NodeHealth::kSuspect) {
      degrade("node " + node_label(model_->topology(), node) +
              " is suspect (missed monitor reports)");
    } else if (snapshot.was_backfilled(node)) {
      degrade("node " + node_label(model_->topology(), node) +
              " readings back-filled from its equivalence class");
    }
    pred.compute[i] = term_r(proc, node, profile, snapshot, options);
    if (options.comm_term) {
      Seconds c = theta(proc, rank, mapping, *model_, snapshot);
      if (options.lambda_correction) c *= proc.lambda;
      pred.comm[i] = c;
    }
    const Seconds total = pred.compute[i] + pred.comm[i];
    if (total > pred.time) {
      pred.time = total;
      pred.critical = rank;
    }
  }

  // Pairs served by fallback latency coefficients also degrade the answer;
  // only worth scanning when nothing above already flagged it.
  if (!pred.degraded && options.comm_term &&
      model_->fallback_class_count() > 0) {
    for (std::size_t i = 0; i < n && !pred.degraded; ++i) {
      const NodeId a = mapping.node_of(RankId{i});
      for (std::size_t j = i + 1; j < n; ++j) {
        const NodeId b = mapping.node_of(RankId{j});
        if (a != b && model_->is_fallback(a, b)) {
          degrade("pair " + node_label(model_->topology(), a) + "<->" +
                  node_label(model_->topology(), b) +
                  " uses fallback (uncalibrated) latency coefficients");
          break;
        }
      }
    }
  }

  if (pred.degraded && degraded_predictions_ != nullptr) {
    degraded_predictions_->inc();
  }
  return pred;
}

Seconds MappingEvaluator::evaluate(const AppProfile& profile,
                                   const Mapping& mapping,
                                   const LoadSnapshot& snapshot,
                                   const EvalOptions& options) const {
  if (evaluations_ == nullptr) {
    return evaluate_impl(profile, mapping, snapshot, options);
  }
  evaluations_->inc();
  const obs::ScopedTimer timer;
  const Seconds result = evaluate_impl(profile, mapping, snapshot, options);
  eval_seconds_->observe(timer.seconds());
  return result;
}

Seconds MappingEvaluator::evaluate_impl(const AppProfile& profile,
                                        const Mapping& mapping,
                                        const LoadSnapshot& snapshot,
                                        const EvalOptions& options) const {
  const std::size_t n = profile.nranks();
  CBES_CHECK_MSG(mapping.nranks() == n, "mapping/profile rank count mismatch");

  Seconds worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const RankId rank{i};
    const ProcessProfile& proc = profile.procs[i];
    const NodeId node = mapping.node_of(rank);
    if (!snapshot.alive(node)) {
      // Infinite energy: annealing/genetic search rejects any mapping that
      // touches a dead node without special-casing health anywhere else.
      if (dead_node_evals_ != nullptr) dead_node_evals_->inc();
      return kNever;
    }
    Seconds total = term_r(proc, node, profile, snapshot, options);
    if (options.comm_term) {
      Seconds c = theta(proc, rank, mapping, *model_, snapshot);
      if (options.lambda_correction) c *= proc.lambda;
      total += c;
    }
    if (total > worst) worst = total;
  }
  return worst;
}

}  // namespace cbes
