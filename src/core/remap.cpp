#include "core/remap.h"

#include "common/check.h"
#include "core/compiled_profile.h"

namespace cbes {

Seconds migration_cost(const ClusterTopology& topology, const Mapping& current,
                       const Mapping& candidate, const RemapCostModel& cost) {
  CBES_CHECK_MSG(current.nranks() == candidate.nranks(),
                 "mappings must cover the same ranks");
  Seconds total = 0.0;
  std::size_t moved = 0;
  for (std::size_t r = 0; r < current.nranks(); ++r) {
    const NodeId from = current.node_of(RankId{r});
    const NodeId to = candidate.node_of(RankId{r});
    if (from == to) continue;
    ++moved;
    const double bw = topology.path_bandwidth(from, to);
    total += static_cast<double>(cost.state_bytes) / bw +
             topology.path_latency(from, to) + cost.restart_overhead;
  }
  if (moved > 0) total += cost.coordination_overhead;
  return total;
}

RemapRound::RemapRound(const MappingEvaluator& evaluator,
                       const AppProfile& profile, const Mapping& current,
                       double progress, const LoadSnapshot& snapshot,
                       const RemapCostModel& cost)
    : RemapRound(evaluator, evaluator.compile(profile, snapshot), current,
                 progress, cost) {}

RemapRound::RemapRound(const MappingEvaluator& evaluator,
                       std::shared_ptr<const CompiledProfile> compiled,
                       const Mapping& current, double progress,
                       const RemapCostModel& cost)
    : evaluator_(&evaluator),
      compiled_(std::move(compiled)),
      current_(&current),
      remaining_(1.0 - progress),
      cost_(cost) {
  CBES_CHECK_MSG(progress >= 0.0 && progress < 1.0,
                 "progress must be in [0, 1)");
  CBES_CHECK_MSG(compiled_ != nullptr, "compiled profile required");
  remaining_current_ = remaining_ * compiled_->evaluate(current);
}

RemapDecision RemapRound::consider(const Mapping& candidate) const {
  CBES_CHECK_MSG(current_->nranks() == candidate.nranks(),
                 "mappings must cover the same ranks");
  RemapDecision decision;
  decision.remaining_current = remaining_current_;
  decision.remaining_candidate = remaining_ * compiled_->evaluate(candidate);
  for (std::size_t r = 0; r < candidate.nranks(); ++r) {
    if (current_->node_of(RankId{r}) != candidate.node_of(RankId{r})) {
      ++decision.moved_ranks;
    }
  }
  decision.migration_cost = migration_cost(evaluator_->model().topology(),
                                           *current_, candidate, cost_);
  decision.beneficial = decision.gain() > 0.0;
  return decision;
}

RemapDecision evaluate_remap(const MappingEvaluator& evaluator,
                             const AppProfile& profile, const Mapping& current,
                             const Mapping& candidate, double progress,
                             const LoadSnapshot& snapshot,
                             const RemapCostModel& cost) {
  return RemapRound(evaluator, profile, current, progress, snapshot, cost)
      .consider(candidate);
}

}  // namespace cbes
