#include "core/remap.h"

#include "common/check.h"

namespace cbes {

Seconds migration_cost(const ClusterTopology& topology, const Mapping& current,
                       const Mapping& candidate, const RemapCostModel& cost) {
  CBES_CHECK_MSG(current.nranks() == candidate.nranks(),
                 "mappings must cover the same ranks");
  Seconds total = 0.0;
  std::size_t moved = 0;
  for (std::size_t r = 0; r < current.nranks(); ++r) {
    const NodeId from = current.node_of(RankId{r});
    const NodeId to = candidate.node_of(RankId{r});
    if (from == to) continue;
    ++moved;
    const double bw = topology.path_bandwidth(from, to);
    total += static_cast<double>(cost.state_bytes) / bw +
             topology.path_latency(from, to) + cost.restart_overhead;
  }
  if (moved > 0) total += cost.coordination_overhead;
  return total;
}

RemapDecision evaluate_remap(const MappingEvaluator& evaluator,
                             const AppProfile& profile, const Mapping& current,
                             const Mapping& candidate, double progress,
                             const LoadSnapshot& snapshot,
                             const RemapCostModel& cost) {
  CBES_CHECK_MSG(progress >= 0.0 && progress < 1.0,
                 "progress must be in [0, 1)");
  CBES_CHECK_MSG(current.nranks() == candidate.nranks(),
                 "mappings must cover the same ranks");

  const double remaining = 1.0 - progress;
  RemapDecision decision;
  decision.remaining_current =
      remaining * evaluator.evaluate(profile, current, snapshot);
  decision.remaining_candidate =
      remaining * evaluator.evaluate(profile, candidate, snapshot);

  for (std::size_t r = 0; r < current.nranks(); ++r) {
    if (current.node_of(RankId{r}) != candidate.node_of(RankId{r})) {
      ++decision.moved_ranks;
    }
  }
  decision.migration_cost = migration_cost(evaluator.model().topology(),
                                           current, candidate, cost);
  decision.beneficial = decision.gain() > 0.0;
  return decision;
}

}  // namespace cbes
