// Application monitoring — the other half of the paper's §8 roadmap: watch a
// running application's progress against its prediction and raise a remap
// trigger when reality drifts.
//
// The monitor is fed progress reports (phase/segment completions with their
// measured durations, which LAM's daemons can observe from the trace stream)
// and compares them with the per-segment predictions made at scheduling time.
// Sustained slowdown beyond a threshold raises kExternal (system conditions
// changed — consult CBES for a remap); sustained *speedup* raises kInternal
// (the application itself behaves differently from its profile — consider
// re-profiling).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace cbes {

enum class RemapTrigger : unsigned char {
  kNone,      ///< progress tracks the prediction
  kExternal,  ///< running slower than predicted: system conditions changed
  kInternal,  ///< running faster/differently: the profile is stale
};

struct AppMonitorConfig {
  /// Relative drift that arms a trigger (e.g. 0.10 = 10% off prediction).
  double drift_threshold = 0.10;
  /// Consecutive drifting reports required before the trigger fires —
  /// hysteresis against one-off hiccups (paper §5: short-lived loads must
  /// not invalidate predictions).
  std::size_t patience = 2;
};

/// Tracks one running application.
class AppMonitor {
 public:
  /// `predicted_durations[k]` is the scheduling-time prediction for progress
  /// unit (segment) k.
  AppMonitor(std::vector<Seconds> predicted_durations,
             AppMonitorConfig config = {});

  /// Records that the next progress unit completed in `measured` seconds and
  /// returns the current trigger state.
  RemapTrigger report(Seconds measured);

  /// Re-arms the monitor after a remap (the remaining predictions change).
  /// `predicted_remaining[k]` predicts progress unit completed_units()+k.
  void rebase(std::vector<Seconds> predicted_remaining);

  [[nodiscard]] std::size_t completed_units() const noexcept {
    return completed_;
  }
  /// Measured / predicted for the last reported unit (1 = on prediction).
  [[nodiscard]] double last_drift() const noexcept { return last_drift_; }
  /// Cumulative measured vs cumulative predicted so far.
  [[nodiscard]] double cumulative_drift() const noexcept;
  [[nodiscard]] RemapTrigger state() const noexcept { return state_; }

 private:
  AppMonitorConfig config_;
  std::vector<Seconds> predicted_;
  std::size_t base_ = 0;       ///< index into predicted_ of the next unit
  std::size_t completed_ = 0;  ///< total units reported since construction
  Seconds measured_total_ = 0.0;
  Seconds predicted_total_ = 0.0;
  std::size_t slow_streak_ = 0;
  std::size_t fast_streak_ = 0;
  double last_drift_ = 1.0;
  RemapTrigger state_ = RemapTrigger::kNone;
};

}  // namespace cbes
