#include "trace/trace.h"

namespace cbes {

std::size_t Trace::total_events() const noexcept {
  std::size_t total = 0;
  for (const RankTrace& r : ranks) {
    total += r.intervals.size() + r.messages.size();
  }
  return total;
}

}  // namespace cbes
