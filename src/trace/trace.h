// LAM/MPI-style execution traces (paper §4: "these daemons store detailed
// execution traces for an application ... using the XMPI tool it is possible
// to examine application behavior").
//
// A Trace is the raw material application profiling works from: per-process
// timed intervals classified as own-code execution, MPI-library overhead, or
// blocked-waiting, plus every message sent/received and the phase markers that
// segment the trace (LAM's non-standard phase statements).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace cbes {

enum class IntervalKind : unsigned char {
  kExecuting,  ///< process running its own code (accumulates into X)
  kOverhead,   ///< process inside the MPI library (accumulates into O)
  kBlocked,    ///< process waiting for a message (accumulates into B)
};

struct TraceInterval {
  IntervalKind kind = IntervalKind::kExecuting;
  Seconds begin = 0.0;
  Seconds duration = 0.0;
  int phase = 0;  ///< trace segment this interval belongs to
};

struct TraceMessage {
  RankId peer;
  Bytes size = 0;
  bool sent = false;  ///< true = this rank sent it, false = received
  int phase = 0;
};

/// Everything recorded for one process.
struct RankTrace {
  std::vector<TraceInterval> intervals;
  std::vector<TraceMessage> messages;
  Seconds finish = 0.0;
};

/// A complete execution trace.
struct Trace {
  std::string app_name;
  /// Node assignment in effect during the traced run, indexed by rank.
  std::vector<NodeId> mapping;
  std::vector<RankTrace> ranks;
  Seconds makespan = 0.0;
  /// Highest phase id seen (phases are 0..max_phase).
  int max_phase = 0;

  [[nodiscard]] std::size_t nranks() const noexcept { return ranks.size(); }
  /// Total recorded events, across all ranks (intervals + messages).
  [[nodiscard]] std::size_t total_events() const noexcept;
};

}  // namespace cbes
