// Execution-trace persistence — the stand-in for LAM's on-disk trace files
// that XMPI analyzes "post mortem" (paper §4). Line-oriented, versioned text,
// no third-party dependencies.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace cbes {

/// Writes `trace` to `out`. Throws ContractError on stream failure.
void save_trace(const Trace& trace, std::ostream& out);

/// Reads a trace written by save_trace. Throws ContractError on malformed
/// input or version mismatch.
[[nodiscard]] Trace load_trace(std::istream& in);

void save_trace_file(const Trace& trace, const std::string& path);
[[nodiscard]] Trace load_trace_file(const std::string& path);

}  // namespace cbes
