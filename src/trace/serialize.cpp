#include "trace/serialize.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace cbes {

namespace {
constexpr int kFormatVersion = 1;
/// Traces are untrusted input; bound counts and the length-prefixed name so
/// corrupt fields cannot trigger huge allocations before the stream runs dry.
constexpr std::size_t kMaxCount = std::size_t{1} << 20;
constexpr std::size_t kMaxNameLen = 4096;
}  // namespace

void save_trace(const Trace& trace, std::ostream& out) {
  out << "cbes-trace " << kFormatVersion << '\n';
  out << std::setprecision(17);
  // App names may contain anything; length-prefix instead of escaping.
  out << "app " << trace.app_name.size() << ' ' << trace.app_name << '\n';
  out << "makespan " << trace.makespan << '\n';
  out << "max_phase " << trace.max_phase << '\n';
  out << "mapping " << trace.mapping.size();
  for (NodeId n : trace.mapping) out << ' ' << n.value;
  out << '\n';
  out << "ranks " << trace.nranks() << '\n';
  for (const RankTrace& r : trace.ranks) {
    out << "rank " << r.finish << ' ' << r.intervals.size() << ' '
        << r.messages.size() << '\n';
    for (const TraceInterval& iv : r.intervals) {
      out << "i " << static_cast<int>(iv.kind) << ' ' << iv.begin << ' '
          << iv.duration << ' ' << iv.phase << '\n';
    }
    for (const TraceMessage& m : r.messages) {
      out << "m " << m.peer.value << ' ' << m.size << ' ' << (m.sent ? 1 : 0)
          << ' ' << m.phase << '\n';
    }
  }
  CBES_CHECK_MSG(out.good(), "trace write failed");
}

Trace load_trace(std::istream& in) {
  std::string word;
  int version = 0;
  CBES_CHECK_MSG(static_cast<bool>(in >> word >> version) &&
                     word == "cbes-trace",
                 "not a CBES trace");
  CBES_CHECK_MSG(version == kFormatVersion, "unsupported trace version");

  Trace trace;
  std::size_t name_len = 0;
  CBES_CHECK_MSG(static_cast<bool>(in >> word >> name_len) && word == "app" &&
                     name_len <= kMaxNameLen,
                 "trace parse error: app");
  in.get();  // the single separating space
  trace.app_name.resize(name_len);
  in.read(trace.app_name.data(), static_cast<std::streamsize>(name_len));
  CBES_CHECK_MSG(in.good(), "trace parse error: app name");

  CBES_CHECK_MSG(static_cast<bool>(in >> word >> trace.makespan) &&
                     word == "makespan" && std::isfinite(trace.makespan) &&
                     trace.makespan >= 0.0,
                 "trace parse error: makespan");
  CBES_CHECK_MSG(static_cast<bool>(in >> word >> trace.max_phase) &&
                     word == "max_phase" && trace.max_phase >= 0,
                 "trace parse error: max_phase");

  std::size_t mapping_size = 0;
  CBES_CHECK_MSG(static_cast<bool>(in >> word >> mapping_size) &&
                     word == "mapping" && mapping_size <= kMaxCount,
                 "trace parse error: mapping");
  trace.mapping.resize(mapping_size);
  for (NodeId& n : trace.mapping) {
    std::uint32_t value = 0;
    CBES_CHECK_MSG(static_cast<bool>(in >> value) && NodeId{value}.valid(),
                   "trace parse error: mapping node");
    n = NodeId{value};
  }

  std::size_t nranks = 0;
  CBES_CHECK_MSG(static_cast<bool>(in >> word >> nranks) && word == "ranks" &&
                     nranks <= kMaxCount,
                 "trace parse error: ranks");
  trace.ranks.resize(nranks);
  for (RankTrace& r : trace.ranks) {
    std::size_t intervals = 0;
    std::size_t messages = 0;
    CBES_CHECK_MSG(static_cast<bool>(in >> word >> r.finish >> intervals >>
                                     messages) &&
                       word == "rank",
                   "trace parse error: rank");
    CBES_CHECK_MSG(std::isfinite(r.finish) && r.finish >= 0.0,
                   "trace parse error: finish");
    CBES_CHECK_MSG(intervals <= kMaxCount && messages <= kMaxCount,
                   "trace parse error: rank counts");
    r.intervals.resize(intervals);
    for (TraceInterval& iv : r.intervals) {
      int kind = 0;
      CBES_CHECK_MSG(static_cast<bool>(in >> word >> kind >> iv.begin >>
                                       iv.duration >> iv.phase) &&
                         word == "i",
                     "trace parse error: interval");
      CBES_CHECK_MSG(kind >= 0 && kind <= 2, "trace parse error: kind");
      CBES_CHECK_MSG(std::isfinite(iv.begin) && iv.begin >= 0.0 &&
                         std::isfinite(iv.duration) && iv.duration >= 0.0,
                     "trace parse error: interval times");
      iv.kind = static_cast<IntervalKind>(kind);
    }
    r.messages.resize(messages);
    for (TraceMessage& m : r.messages) {
      std::uint32_t peer = 0;
      int sent = 0;
      CBES_CHECK_MSG(static_cast<bool>(in >> word >> peer >> m.size >> sent >>
                                       m.phase) &&
                         word == "m",
                     "trace parse error: message");
      CBES_CHECK_MSG(peer < nranks, "trace parse error: peer out of range");
      m.peer = RankId{peer};
      m.sent = sent != 0;
    }
  }
  return trace;
}

void save_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  CBES_CHECK_MSG(out.good(), "cannot open for writing: " + path);
  save_trace(trace, out);
}

Trace load_trace_file(const std::string& path) {
  std::ifstream in(path);
  CBES_CHECK_MSG(in.good(), "cannot open for reading: " + path);
  return load_trace(in);
}

}  // namespace cbes
