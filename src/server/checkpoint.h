// Crash-safe server state: versioned checkpoint/restore of everything the
// serving layer cannot cheaply rebuild after a crash.
//
// A checkpoint carries three things (ISSUE 6 tentpole, part f):
//   * the calibration state — the fitted latency-model coefficients, the
//     product of the paper's "lengthy and expensive" offline phase. Restoring
//     it through CbesService::Config::restored_calibration skips
//     recalibration and reproduces every prediction bit-identically;
//   * the node-health picture — the last verdict per node, so the restarted
//     server diffs its first snapshot against the pre-crash picture instead
//     of treating every verdict as fresh;
//   * cache-warmup hints — the (app, mapping) pairs most recently memoized,
//     worth re-evaluating to pre-heat the EvalCache.
//
// The on-disk format is versioned line-oriented text ("CBESCKPT 1"). Doubles
// are printed with %.17g, which round-trips IEEE-754 binary64 exactly — the
// restore path decodes the very bits the crashed process computed with.
// save_checkpoint() writes via a temp file + rename so a crash mid-save
// leaves the previous checkpoint intact. Malformed or truncated input decodes
// to a typed CheckpointError, never a partial state.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"
#include "monitor/snapshot.h"
#include "netmodel/latency_model.h"
#include "server/eval_cache.h"

namespace cbes::obs {
class Logger;
}  // namespace cbes::obs

namespace cbes::server {

class CbesServer;

/// Thrown when checkpoint text is malformed, truncated, or carries an
/// unsupported version. Distinct from ContractError: this is bad *data*
/// (a corrupt file), not a caller bug.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Everything a server checkpoint persists. Decoding the encoding of a
/// checkpoint yields an equal value (round-trip identity, bit-exact doubles).
struct ServerCheckpoint {
  CalibrationState calibration;
  /// Last health verdict per node; index = NodeId::index(). May be empty
  /// (checkpoint taken before the first snapshot).
  std::vector<NodeHealth> health;
  /// Most-recently-used first, as exported by EvalCache::warm_hints().
  std::vector<WarmHint> warm_hints;

  friend bool operator==(const ServerCheckpoint&,
                         const ServerCheckpoint&) = default;
};

/// Serializes `checkpoint` to the versioned text format.
[[nodiscard]] std::string encode_checkpoint(const ServerCheckpoint& checkpoint);

/// Parses checkpoint text; throws CheckpointError on any malformation
/// (wrong magic/version, count mismatch, non-numeric field, truncation,
/// trailing garbage).
[[nodiscard]] ServerCheckpoint decode_checkpoint(const std::string& text);

/// Writes `checkpoint` to `path` atomically (temp file + rename): a crash
/// mid-save never clobbers an existing good checkpoint. Throws
/// CheckpointError when the file cannot be written. A non-null `log` gets an
/// info "checkpoint/save" record on success.
void save_checkpoint(const ServerCheckpoint& checkpoint,
                     const std::string& path, obs::Logger* log = nullptr);

/// Reads and decodes the checkpoint at `path`; throws CheckpointError when
/// the file is missing, unreadable, or malformed. A non-null `log` gets an
/// info "checkpoint/load" record on success.
[[nodiscard]] ServerCheckpoint load_checkpoint(const std::string& path,
                                               obs::Logger* log = nullptr);

/// Snapshots the server's crash-safe state: its service's calibration, the
/// health picture, and up to `max_hints` cache-warmup hints.
[[nodiscard]] ServerCheckpoint take_checkpoint(const CbesServer& server,
                                               std::size_t max_hints = 64);

/// Applies the restorable parts of `checkpoint` to a freshly constructed
/// server: seeds the health diff state and re-warms the cache at simulated
/// time `now`. (The calibration part must be applied earlier, at service
/// construction, via CbesService::Config::restored_calibration.) Returns the
/// number of cache entries warmed.
std::size_t restore_server_state(CbesServer& server,
                                 const ServerCheckpoint& checkpoint,
                                 Seconds now);

}  // namespace cbes::server
