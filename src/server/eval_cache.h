// Snapshot-epoch memoization of mapping evaluations.
//
// A Prediction is a pure function of (application profile, mapping,
// availability snapshot). The monitor publishes a new snapshot epoch every
// sensor period, so the cache keys entries by (app, mapping) and remembers
// the epoch plus the ACPU of every mapped node at insertion time. A lookup
// under a *newer* epoch re-validates the paper's §5 phase-3 criterion
// mechanically: "predictions remain valid while no mapped node has lost more
// than 10% CPU availability". Entries whose mapped nodes drifted beyond the
// threshold are invalidated and recomputed; entries that only aged without
// drifting keep serving hits, which is what makes the broker cheap to
// re-serve at scale (cf. Lotaru / Nassereldine et al. in PAPERS.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/evaluator.h"
#include "monitor/snapshot.h"
#include "obs/metrics.h"
#include "topology/mapping.h"

namespace cbes::server {

struct EvalCacheConfig {
  /// Maximum entries held; least-recently-used entries are evicted beyond it.
  std::size_t capacity = 4096;
  /// Relative ACPU drift on any mapped node that invalidates an entry —
  /// strictly greater than this fraction fires (the paper's >10% rule).
  double drift_threshold = 0.10;
};

/// A cache warm-up hint: an (app, mapping assignment) pair worth
/// re-evaluating after a restart to pre-heat the cache (server checkpoints
/// carry these — see server/checkpoint.h).
struct WarmHint {
  std::string app;
  std::vector<std::uint32_t> assignment;  ///< rank -> node index

  friend bool operator==(const WarmHint&, const WarmHint&) = default;
};

/// Thread-safe (single-mutex) LRU cache of Predictions.
class EvalCache {
 public:
  explicit EvalCache(EvalCacheConfig config = {});

  /// Returns the cached prediction for (app, mapping) when the entry is
  /// still valid under `snapshot`: same epoch, or a newer epoch in which no
  /// mapped node's ACPU drifted more than the threshold relative to the
  /// entry's insertion-time baseline. Drifted entries are erased (counted as
  /// invalidations) and the lookup reports a miss.
  [[nodiscard]] std::optional<Prediction> lookup(const std::string& app,
                                                 const Mapping& mapping,
                                                 const LoadSnapshot& snapshot);

  /// Inserts (or replaces) the entry for (app, mapping) computed under
  /// `snapshot`.
  void insert(const std::string& app, const Mapping& mapping,
              const LoadSnapshot& snapshot, const Prediction& prediction);

  /// Drops every entry whose mapping touches `node` — called when the node's
  /// health verdict changes (a crash or recovery moves its availability far
  /// beyond any drift threshold). Returns the number of entries dropped; they
  /// are counted as invalidations.
  std::size_t invalidate_node(NodeId node);

  void clear();

  /// Up to `max_hints` warm-up hints, most-recently-used first — the entries
  /// most worth re-evaluating after a restart.
  [[nodiscard]] std::vector<WarmHint> warm_hints(std::size_t max_hints) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t invalidations() const;
  [[nodiscard]] std::uint64_t evictions() const;

  /// Wires hit/miss/invalidation/eviction counters and the entry-count gauge
  /// into `registry` (nullptr disables; the default). Must outlive the cache.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  struct Entry {
    std::string key;
    std::string app;                    ///< for warm-hint export
    std::vector<NodeId> assignment;     ///< full equality check on lookup
    std::uint64_t epoch = 0;            ///< newest epoch the entry was valid at
    std::vector<NodeId> mapped_nodes;   ///< distinct nodes of the mapping
    std::vector<double> baseline_cpu;   ///< ACPU per mapped node at insert
    Prediction prediction;
  };
  using Lru = std::list<Entry>;

  [[nodiscard]] static std::string key_of(const std::string& app,
                                          const Mapping& mapping);
  /// True when some mapped node's ACPU drifted beyond the threshold between
  /// the entry's baseline and `snapshot`.
  [[nodiscard]] bool drifted(const Entry& entry,
                             const LoadSnapshot& snapshot) const;
  void erase_locked(Lru::iterator it);

  EvalCacheConfig config_;
  mutable std::mutex mu_;
  Lru lru_;  ///< front = most recently used
  std::unordered_map<std::string, Lru::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t evictions_ = 0;
  obs::Counter* hits_metric_ = nullptr;
  obs::Counter* misses_metric_ = nullptr;
  obs::Counter* invalidations_metric_ = nullptr;
  obs::Counter* evictions_metric_ = nullptr;
  obs::Gauge* entries_metric_ = nullptr;
};

/// LRU cache of compiled evaluation artifacts (core/compiled_profile.h):
/// schedule and remap jobs hitting the same application under the same
/// snapshot epoch share one flattened CompiledProfile instead of each worker
/// re-flattening per job. Keyed by (AppProfile::hash(), snapshot epoch,
/// degraded flag) — the degraded no-load substitute *shares* the real
/// snapshot's epoch, so the flag must disambiguate. Epoch bumps (every sensor
/// tick) naturally retire stale artifacts through LRU pressure.
class CompiledProfileCache {
 public:
  explicit CompiledProfileCache(std::size_t capacity = 32);

  /// The cached artifact for the key, or the result of `build()` after a
  /// miss. `build` runs outside the lock (compiling is the expensive part);
  /// when two workers race on the same key, the first insertion wins and the
  /// loser adopts it.
  [[nodiscard]] std::shared_ptr<const CompiledProfile> get_or_build(
      std::size_t profile_hash, std::uint64_t epoch, bool degraded,
      const std::function<std::shared_ptr<const CompiledProfile>()>& build);

  void clear();
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

  /// Wires hit/miss counters into `registry` (nullptr disables; the
  /// default). Must outlive the cache.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  struct Key {
    std::size_t profile_hash = 0;
    std::uint64_t epoch = 0;
    bool degraded = false;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      std::size_t h = key.profile_hash;
      h ^= static_cast<std::size_t>(key.epoch) + 0x9E3779B97F4A7C15ULL +
           (h << 6) + (h >> 2);
      return key.degraded ? ~h : h;
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const CompiledProfile> artifact;
  };
  using Lru = std::list<Entry>;

  std::size_t capacity_;
  mutable std::mutex mu_;
  Lru lru_;  ///< front = most recently used
  std::unordered_map<Key, Lru::iterator, KeyHash> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  obs::Counter* hits_metric_ = nullptr;
  obs::Counter* misses_metric_ = nullptr;
};

}  // namespace cbes::server
