// The unit of work the CBES request broker serves: one cost/benefit request
// (predict, compare, or schedule) from one tenant, carried through admission,
// queuing, execution, and completion.
//
// A Job is the shared state between the submitting client (via JobHandle),
// the RequestQueue, and the executing worker thread. Clients never see the
// Job directly — they hold a JobHandle, which supports waiting for the
// terminal state and cooperative cancellation (the worker and the schedulers'
// step loops poll `cancel_requested` / the job deadline).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/remap.h"
#include "core/service.h"
#include "resilience/deadline.h"
#include "sched/annealing.h"
#include "sched/genetic.h"
#include "sched/scheduler.h"
#include "topology/mapping.h"

namespace cbes::server {

/// Priority classes for admission and dispatch. Lower value = served first;
/// within a class, FIFO. Interactive requests (a scheduler blocking a job
/// launch) overtake batch re-evaluations, mirroring the paper's service being
/// consulted both at launch time and for speculative what-if queries.
enum class Priority : unsigned char {
  kInteractive = 0,
  kNormal = 1,
  kBatch = 2,
};
inline constexpr std::size_t kPriorityClasses = 3;

[[nodiscard]] constexpr std::string_view priority_name(Priority p) noexcept {
  switch (p) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kNormal:
      return "normal";
    case Priority::kBatch:
      return "batch";
  }
  return "?";
}

/// Job lifecycle. kQueued -> kRunning -> {kDone, kCancelled, kFailed};
/// kRejected is terminal at submission (admission control said no).
enum class JobState : unsigned char {
  kQueued,
  kRunning,
  kDone,       ///< completed; result holds the answer
  kCancelled,  ///< deadline fired or the caller cancelled; no partial result
  kRejected,   ///< refused at admission; result.detail carries the reason
  kFailed,     ///< the request violated a contract; result.detail explains
};

[[nodiscard]] constexpr std::string_view job_state_name(JobState s) noexcept {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kRejected:
      return "rejected";
    case JobState::kFailed:
      return "failed";
  }
  return "?";
}

[[nodiscard]] constexpr bool is_terminal(JobState s) noexcept {
  return s != JobState::kQueued && s != JobState::kRunning;
}

/// Why a job reached kFailed (machine-readable companion to result.detail);
/// kNone for every other terminal state.
enum class FailReason : unsigned char {
  kNone,       ///< not failed
  kContract,   ///< the request violated a contract; retrying cannot help
  kTransient,  ///< transient dependency failure and the retry budget ran out
  kDeadNode,   ///< the answer would require a dead node (or lost capacity)
  kShed,       ///< refused under brown-out (load shedding)
  kWatchdog,   ///< the watchdog killed an overdue or wedged execution
};

[[nodiscard]] constexpr std::string_view fail_reason_name(
    FailReason r) noexcept {
  switch (r) {
    case FailReason::kNone:
      return "none";
    case FailReason::kContract:
      return "contract";
    case FailReason::kTransient:
      return "transient";
    case FailReason::kDeadNode:
      return "dead-node";
    case FailReason::kShed:
      return "shed";
    case FailReason::kWatchdog:
      return "watchdog";
  }
  return "?";
}

// ---- request payloads ------------------------------------------------------

/// Predict the execution time of one mapping (the cacheable operation).
struct PredictRequest {
  std::string app;
  Mapping mapping;
  /// Simulated time of the request; selects the monitor epoch.
  Seconds now = 0.0;
};

/// Compare candidate mappings (the paper's mapping-comparison request).
struct CompareRequest {
  std::string app;
  std::vector<Mapping> candidates;
  Seconds now = 0.0;
};

/// Which search algorithm a schedule job runs.
enum class Algo : unsigned char { kSa, kGa, kRandom };

[[nodiscard]] constexpr std::string_view algo_name(Algo a) noexcept {
  switch (a) {
    case Algo::kSa:
      return "sa";
    case Algo::kGa:
      return "ga";
    case Algo::kRandom:
      return "random";
  }
  return "?";
}

/// Find a good mapping with a scheduler run (the expensive, cancellable job).
struct ScheduleRequest {
  std::string app;
  std::size_t nranks = 0;
  /// Node pool made available to this tenant; empty = whole cluster.
  std::vector<NodeId> pool_nodes;
  /// Slot cap per node (1 = the paper's node-level mappings).
  int max_slots_per_node = 1 << 20;
  Algo algo = Algo::kSa;
  /// Search parameters; the `seed` below overrides the params' seed so every
  /// job's RNG stream is its own — concurrent jobs are deterministic given
  /// their job seed, never coupled through a shared generator.
  SaParams sa;
  /// SA only: >1 runs the hierarchically sharded annealer with this many
  /// shards (0/1 = plain SA). Not carried on the wire yet — in-process and
  /// CLI callers opt in per job.
  std::size_t sa_shards = 0;
  GaParams ga;
  std::uint64_t seed = 1;
  Seconds now = 0.0;
};

/// Remap-on-failure / remap-on-drift: search for a candidate mapping for a
/// *running* application and judge whether migrating beats staying (paper §8).
/// The server's answer is advisory — the decision plus the candidate — since
/// actually moving ranks belongs to the launcher, not the estimating service.
struct RemapRequest {
  std::string app;
  /// Where the application is running now. May touch nodes that have since
  /// died — that is the remap-on-failure case, where staying costs infinity.
  Mapping current;
  /// Fraction of the profiled work already completed, in [0, 1).
  double progress = 0.0;
  /// Node pool candidates may be drawn from; empty = whole cluster. Dead
  /// nodes are masked out of the search regardless.
  std::vector<NodeId> pool_nodes;
  int max_slots_per_node = 1 << 20;
  /// SA search parameters; `seed` overrides the params' seed (same contract
  /// as ScheduleRequest).
  SaParams sa;
  std::uint64_t seed = 1;
  Seconds now = 0.0;
  RemapCostModel cost;
};

// ---- results ---------------------------------------------------------------

/// Terminal outcome of a job. Which payload member is meaningful depends on
/// the job kind and state (only kDone carries an answer).
struct JobResult {
  JobState state = JobState::kQueued;
  /// predict answers (also per-candidate source of compare answers).
  Prediction prediction;
  /// compare answers.
  CbesService::ComparisonResult comparison;
  /// schedule answers. Default-constructed when the job was cancelled: a job
  /// past its deadline reports `cancelled`, not a partial anneal.
  ScheduleResult schedule;
  /// remap answers: the stay-vs-migrate verdict and the candidate mapping the
  /// search found (meaningful only for kRemap jobs that reached kDone).
  RemapDecision remap;
  Mapping remap_candidate;
  /// True when the answer was computed from a no-load availability picture
  /// because the monitor snapshot was stale past the server's bound.
  bool degraded = false;
  /// True when (any part of) the answer was served from the EvalCache.
  bool cache_hit = false;
  /// Rejection reason / failure message; empty for kDone.
  std::string detail;
  /// Why the job failed (kNone unless state == kFailed).
  FailReason fail_reason = FailReason::kNone;
  /// Monitor epoch of the snapshot the answer was computed against (0 when
  /// the job never reached evaluation).
  std::uint64_t snapshot_epoch = 0;
  /// Wall time spent queued / executing.
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
};

// ---- the job itself --------------------------------------------------------

enum class JobKind : unsigned char { kPredict, kCompare, kSchedule, kRemap };

[[nodiscard]] constexpr std::string_view job_kind_name(JobKind k) noexcept {
  switch (k) {
    case JobKind::kPredict:
      return "predict";
    case JobKind::kCompare:
      return "compare";
    case JobKind::kSchedule:
      return "schedule";
    case JobKind::kRemap:
      return "remap";
  }
  return "?";
}

/// Shared state of one in-flight request. Internal to the server layer:
/// constructed by CbesServer::submit(), referenced by the queue, one worker,
/// and the client's JobHandle.
struct Job {
  using Clock = std::chrono::steady_clock;

  std::uint64_t id = 0;
  Priority priority = Priority::kNormal;
  JobKind kind = JobKind::kPredict;
  PredictRequest predict;
  CompareRequest compare;
  ScheduleRequest schedule;
  RemapRequest remap;
  Clock::time_point submitted{};
  /// Request deadline, carried from admission through every execution stage
  /// (queue wait, monitor polls, compile, search loops). Default = unbounded.
  resilience::Deadline deadline;
  /// Set by JobHandle::cancel(); polled by the worker and, through the
  /// scheduler StopToken, by the SA/GA step loops.
  std::atomic<bool> cancel_requested{false};

  /// True once the deadline has passed or cancellation was requested.
  [[nodiscard]] bool should_stop() const noexcept {
    if (cancel_requested.load(std::memory_order_relaxed)) return true;
    return deadline.expired();
  }

  /// Moves the job to a terminal state and wakes waiters. `outcome.state`
  /// must be terminal; the first finish wins, later calls are ignored.
  /// Returns true when this call won (the watchdog uses this to know whether
  /// its kill landed before the worker's own completion).
  bool finish(JobResult outcome) {
    std::function<void(const Job&)> callback;
    {
      const std::lock_guard lock(mu);
      if (is_terminal(state)) return false;
      state = outcome.state;
      result = std::move(outcome);
      callback = std::move(on_complete_);
      done.notify_all();
    }
    // Invoked outside the lock: the callback may wait on the job or inspect
    // `result`, which no longer changes (first finish wins). Runs on
    // whichever thread won the finish — callbacks must be cheap or reroute
    // (the wire front-end posts back to its event loop).
    if (callback) callback(*this);
    return true;
  }

  /// Registers a one-shot completion callback. If the job is already
  /// terminal, the callback runs immediately on the calling thread;
  /// otherwise it runs exactly once from the thread that wins finish().
  /// At most one callback may be registered per job.
  void set_on_complete(std::function<void(const Job&)> callback) {
    {
      const std::lock_guard lock(mu);
      if (!is_terminal(state)) {
        on_complete_ = std::move(callback);
        return;
      }
    }
    callback(*this);
  }

  void mark_running() {
    const std::lock_guard lock(mu);
    if (state == JobState::kQueued) state = JobState::kRunning;
  }

  [[nodiscard]] JobState current_state() const {
    const std::lock_guard lock(mu);
    return state;
  }

  /// Blocks until the job reaches a terminal state; returns a copy of the
  /// result (safe to use after the server is gone).
  [[nodiscard]] JobResult wait() const {
    std::unique_lock lock(mu);
    done.wait(lock, [&] { return is_terminal(state); });
    return result;
  }

  mutable std::mutex mu;
  mutable std::condition_variable done;
  JobState state = JobState::kQueued;  // guarded by mu
  JobResult result;                    // guarded by mu

 private:
  std::function<void(const Job&)> on_complete_;  // guarded by mu
};

/// The client's view of a submitted job.
class JobHandle {
 public:
  JobHandle() = default;
  explicit JobHandle(std::shared_ptr<Job> job) : job_(std::move(job)) {}

  [[nodiscard]] bool valid() const noexcept { return job_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const { return job_->id; }
  [[nodiscard]] JobState state() const { return job_->current_state(); }

  /// Requests cooperative cancellation. A queued job is cancelled before it
  /// starts; a running scheduling job stops at its next step-loop poll.
  void cancel() {
    job_->cancel_requested.store(true, std::memory_order_relaxed);
  }

  /// Blocks until terminal; returns the result by value.
  [[nodiscard]] JobResult wait() const { return job_->wait(); }

  /// Forwards to Job::set_on_complete (see there for the threading contract).
  void set_on_complete(std::function<void(const server::Job&)> callback) {
    job_->set_on_complete(std::move(callback));
  }

 private:
  std::shared_ptr<Job> job_;
};

}  // namespace cbes::server
