// Flight recorder + statusz surface for the CBES request broker.
//
// The FlightRecorder keeps the last N completed jobs (a JobTrail each: who,
// what, outcome, per-stage timings) in a small mutex-guarded ring — cheap
// enough to run always-on, rich enough to explain "what was the server doing
// just before X" after the fact.
//
// ServerStatus is a point-in-time snapshot of everything an operator asks
// first: queue depths per priority class, worker states, breaker and
// brown-out state, cache hit ratios, node health, and the recorder's recent
// trails. CbesServer::status() assembles one with short, per-component locks
// (no stop-the-world), and the format_status_* functions render it as
// human-readable text or JSON. write_status_file picks the format from the
// path suffix (".json" = JSON) — the CLI's `serve --status-out` and the
// watchdog's postmortem dump both land here.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"
#include "monitor/snapshot.h"
#include "resilience/breaker.h"
#include "resilience/shedder.h"
#include "server/job.h"

namespace cbes::server {

/// What the flight recorder remembers about one completed job.
struct JobTrail {
  std::uint64_t id = 0;
  JobKind kind = JobKind::kPredict;
  Priority priority = Priority::kNormal;
  JobState state = JobState::kQueued;
  FailReason fail_reason = FailReason::kNone;
  bool degraded = false;
  bool cache_hit = false;
  /// Per-stage wall timings (as reported in the JobResult).
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
  /// The request's simulated time and the snapshot epoch it was answered
  /// against (0 when it never reached evaluation).
  Seconds now = 0.0;
  std::uint64_t snapshot_epoch = 0;
  /// Rejection / failure detail; empty for clean completions.
  std::string detail;
};

/// Bounded ring of the last N JobTrails. All methods are thread-safe; the
/// mutex is held only for a push or a copy, never across a job.
class FlightRecorder {
 public:
  /// Throws ContractError when `depth` is zero.
  explicit FlightRecorder(std::size_t depth);

  void record(JobTrail trail);
  /// The retained trails, oldest first.
  [[nodiscard]] std::vector<JobTrail> last() const;
  /// Jobs recorded over the recorder's lifetime (retained or evicted).
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

 private:
  const std::size_t depth_;
  mutable std::mutex mu_;
  std::uint64_t total_ = 0;    // guarded by mu_
  std::deque<JobTrail> ring_;  // guarded by mu_
};

struct WorkerStatus {
  bool busy = false;
  std::uint64_t job_id = 0;     ///< meaningful when busy
  double busy_seconds = 0.0;    ///< how long the current job has run
  bool replaced = false;        ///< retired by the watchdog
};

struct BreakerStatus {
  std::string name;
  resilience::BreakerState state = resilience::BreakerState::kClosed;
  std::uint64_t trips = 0;
  std::uint64_t short_circuits = 0;
};

/// One open wire connection as shown on statusz.
struct NetConnEntry {
  std::uint64_t id = 0;
  std::string peer;
  std::size_t inflight = 0;  ///< decoded requests awaiting answers
  bool backpressured = false;
  double age_seconds = 0.0;
};

/// Wire front-end picture (filled by net::NetServer::fill_status when the
/// server is listening; `present` stays false for in-process-only brokers).
struct NetSection {
  bool present = false;
  std::string listen;  ///< "host:port" actually bound
  std::string drain_state;  ///< serving / draining / flushing / stopped
  std::uint64_t connections_open = 0;
  std::uint64_t connections_total = 0;
  std::uint64_t backpressured = 0;  ///< connections currently backpressured
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t frames_rx = 0;
  std::uint64_t frames_tx = 0;
  std::uint64_t coalesce_hits = 0;    ///< requests folded into another job
  std::uint64_t coalesce_leaders = 0; ///< jobs that carried coalesced waiters
  std::uint64_t protocol_errors = 0;
  std::uint64_t idle_closed = 0;
  std::uint64_t rate_limited = 0;     ///< requests answered kRateLimited
  std::uint64_t slow_evicted = 0;     ///< slow-client evictions
  std::uint64_t accepts_refused = 0;  ///< storm-guard / capacity refusals
  std::uint64_t drain_shutdown_answered = 0;  ///< kShutdown frames on drain
  /// Open connections (refreshed once per server tick).
  std::vector<NetConnEntry> conns;
};

/// Point-in-time picture of the whole broker (see CbesServer::status()).
struct ServerStatus {
  // Queue.
  std::size_t queue_depth = 0;
  std::size_t queue_max_depth = 0;
  std::array<std::size_t, kPriorityClasses> queue_by_class{};
  // Workers.
  std::vector<WorkerStatus> workers;
  // Resilience.
  std::vector<BreakerStatus> breakers;
  resilience::BrownoutLevel shed_level = resilience::BrownoutLevel::kFull;
  std::uint64_t shed_count = 0;
  std::uint64_t watchdog_kills = 0;
  std::uint64_t workers_replaced = 0;
  std::uint64_t lkg_snapshots = 0;
  // Outcome counters.
  std::uint64_t jobs_done = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t jobs_failed = 0;
  // Caches.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_invalidations = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_entries = 0;
  std::uint64_t compiled_hits = 0;
  std::uint64_t compiled_misses = 0;
  // Node health (index = node id; empty before the first snapshot).
  std::vector<NodeHealth> health;
  // Topology / latency-model footprint (class compression at a glance).
  std::size_t topology_nodes = 0;
  std::size_t topology_path_classes = 0;
  std::size_t topology_model_bytes = 0;
  // Flight recorder.
  std::uint64_t jobs_recorded = 0;
  std::vector<JobTrail> recent;  ///< oldest first
  // Wire front-end (present only when a NetServer is attached).
  NetSection net;
};

/// Human-readable statusz page.
void format_status_text(const ServerStatus& status, std::ostream& os);
/// Machine-readable statusz (one JSON object mirroring ServerStatus).
void format_status_json(const ServerStatus& status, std::ostream& os);
/// Writes text, or JSON when `path` ends in ".json". Returns false when the
/// file could not be written (statusz is best-effort; never throws).
bool write_status_file(const ServerStatus& status, const std::string& path);

}  // namespace cbes::server
