#include "server/status.h"

#include <cstdio>
#include <fstream>
#include <utility>

#include "common/check.h"

namespace cbes::server {

namespace {

[[nodiscard]] std::string format_seconds(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void append_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

[[nodiscard]] double hit_ratio(std::uint64_t hits, std::uint64_t misses) {
  const std::uint64_t total = hits + misses;
  return total == 0 ? 0.0 : static_cast<double>(hits) /
                                static_cast<double>(total);
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t depth) : depth_(depth) {
  CBES_CHECK_MSG(depth_ >= 1, "flight recorder needs room for one job");
}

void FlightRecorder::record(JobTrail trail) {
  const std::lock_guard lock(mu_);
  ++total_;
  ring_.push_back(std::move(trail));
  while (ring_.size() > depth_) ring_.pop_front();
}

std::vector<JobTrail> FlightRecorder::last() const {
  const std::lock_guard lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t FlightRecorder::total() const {
  const std::lock_guard lock(mu_);
  return total_;
}

void format_status_text(const ServerStatus& status, std::ostream& os) {
  os << "=== cbes server status ===\n";
  os << "queue: " << status.queue_depth << "/" << status.queue_max_depth
     << " (interactive " << status.queue_by_class[0] << ", normal "
     << status.queue_by_class[1] << ", batch " << status.queue_by_class[2]
     << ")\n";
  os << "jobs: done " << status.jobs_done << ", cancelled "
     << status.jobs_cancelled << ", failed " << status.jobs_failed << "\n";
  os << "workers (" << status.workers.size() << "):\n";
  for (std::size_t i = 0; i < status.workers.size(); ++i) {
    const WorkerStatus& w = status.workers[i];
    os << "  [" << i << "] "
       << (w.replaced ? "replaced" : (w.busy ? "busy" : "idle"));
    if (w.busy) {
      os << " job=" << w.job_id << " for " << format_seconds(w.busy_seconds)
         << "s";
    }
    os << "\n";
  }
  os << "breakers:\n";
  for (const BreakerStatus& b : status.breakers) {
    os << "  " << b.name << ": " << resilience::breaker_state_name(b.state)
       << " (trips " << b.trips << ", short-circuits " << b.short_circuits
       << ")\n";
  }
  os << "shedding: level " << resilience::brownout_name(status.shed_level)
     << ", shed " << status.shed_count << "\n";
  os << "watchdog: kills " << status.watchdog_kills << ", workers replaced "
     << status.workers_replaced << "\n";
  os << "lkg snapshots served: " << status.lkg_snapshots << "\n";
  os << "eval cache: " << status.cache_entries << " entries, hits "
     << status.cache_hits << ", misses " << status.cache_misses << " (ratio "
     << format_seconds(hit_ratio(status.cache_hits, status.cache_misses))
     << "), invalidations " << status.cache_invalidations << ", evictions "
     << status.cache_evictions << "\n";
  os << "compiled cache: hits " << status.compiled_hits << ", misses "
     << status.compiled_misses << " (ratio "
     << format_seconds(hit_ratio(status.compiled_hits, status.compiled_misses))
     << ")\n";
  os << "topology: " << status.topology_nodes << " nodes, "
     << status.topology_path_classes << " path classes, model "
     << status.topology_model_bytes << " bytes\n";
  os << "node health:";
  if (status.health.empty()) {
    os << " (no snapshot yet)";
  } else {
    for (std::size_t i = 0; i < status.health.size(); ++i) {
      os << " " << i << "=" << health_name(status.health[i]);
    }
  }
  os << "\n";
  if (status.net.present) {
    os << "net: listening on " << status.net.listen;
    if (!status.net.drain_state.empty()) {
      os << " (" << status.net.drain_state << ")";
    }
    os << "\n";
    os << "  connections: open " << status.net.connections_open << ", total "
       << status.net.connections_total << ", backpressured "
       << status.net.backpressured << ", idle-closed "
       << status.net.idle_closed << "\n";
    os << "  bytes: rx " << status.net.rx_bytes << ", tx "
       << status.net.tx_bytes << " (frames rx " << status.net.frames_rx
       << ", tx " << status.net.frames_tx << ")\n";
    os << "  coalesce: hits " << status.net.coalesce_hits << ", leaders "
       << status.net.coalesce_leaders << "\n";
    os << "  protocol errors: " << status.net.protocol_errors << "\n";
    os << "  defense: rate-limited " << status.net.rate_limited
       << ", slow-evicted " << status.net.slow_evicted
       << ", accepts-refused " << status.net.accepts_refused
       << ", drain-shutdown " << status.net.drain_shutdown_answered << "\n";
    for (const NetConnEntry& c : status.net.conns) {
      os << "  conn #" << c.id << " peer=" << c.peer << " inflight="
         << c.inflight << " age=" << format_seconds(c.age_seconds) << "s";
      if (c.backpressured) os << " backpressured";
      os << "\n";
    }
  }
  os << "recent jobs (" << status.recent.size() << " of "
     << status.jobs_recorded << " recorded):\n";
  for (const JobTrail& t : status.recent) {
    os << "  #" << t.id << " " << job_kind_name(t.kind) << "/"
       << priority_name(t.priority) << " -> " << job_state_name(t.state);
    if (t.fail_reason != FailReason::kNone) {
      os << " (" << fail_reason_name(t.fail_reason) << ")";
    }
    os << " queue=" << format_seconds(t.queue_seconds)
       << "s run=" << format_seconds(t.run_seconds) << "s epoch="
       << t.snapshot_epoch;
    if (t.degraded) os << " degraded";
    if (t.cache_hit) os << " cache-hit";
    if (!t.detail.empty()) {
      os << " detail=\"" << t.detail << "\"";
    }
    os << "\n";
  }
}

void format_status_json(const ServerStatus& status, std::ostream& os) {
  os << "{\"queue\":{\"depth\":" << status.queue_depth << ",\"max_depth\":"
     << status.queue_max_depth << ",\"by_class\":{\"interactive\":"
     << status.queue_by_class[0] << ",\"normal\":" << status.queue_by_class[1]
     << ",\"batch\":" << status.queue_by_class[2] << "}}";
  os << ",\"jobs\":{\"done\":" << status.jobs_done << ",\"cancelled\":"
     << status.jobs_cancelled << ",\"failed\":" << status.jobs_failed << "}";
  os << ",\"workers\":[";
  for (std::size_t i = 0; i < status.workers.size(); ++i) {
    const WorkerStatus& w = status.workers[i];
    if (i != 0) os << ',';
    os << "{\"busy\":" << (w.busy ? "true" : "false") << ",\"replaced\":"
       << (w.replaced ? "true" : "false");
    if (w.busy) {
      os << ",\"job_id\":" << w.job_id << ",\"busy_seconds\":"
         << format_seconds(w.busy_seconds);
    }
    os << '}';
  }
  os << "],\"breakers\":[";
  for (std::size_t i = 0; i < status.breakers.size(); ++i) {
    const BreakerStatus& b = status.breakers[i];
    if (i != 0) os << ',';
    os << "{\"name\":";
    append_json_string(os, b.name);
    os << ",\"state\":";
    append_json_string(os, resilience::breaker_state_name(b.state));
    os << ",\"trips\":" << b.trips << ",\"short_circuits\":"
       << b.short_circuits << '}';
  }
  os << "],\"shedding\":{\"level\":";
  append_json_string(os, resilience::brownout_name(status.shed_level));
  os << ",\"shed\":" << status.shed_count << "}";
  os << ",\"watchdog\":{\"kills\":" << status.watchdog_kills
     << ",\"workers_replaced\":" << status.workers_replaced << "}";
  os << ",\"lkg_snapshots\":" << status.lkg_snapshots;
  os << ",\"eval_cache\":{\"entries\":" << status.cache_entries
     << ",\"hits\":" << status.cache_hits << ",\"misses\":"
     << status.cache_misses << ",\"invalidations\":"
     << status.cache_invalidations << ",\"evictions\":"
     << status.cache_evictions << "}";
  os << ",\"compiled_cache\":{\"hits\":" << status.compiled_hits
     << ",\"misses\":" << status.compiled_misses << "}";
  os << ",\"topology\":{\"nodes\":" << status.topology_nodes
     << ",\"path_classes\":" << status.topology_path_classes
     << ",\"model_bytes\":" << status.topology_model_bytes << "}";
  os << ",\"health\":[";
  for (std::size_t i = 0; i < status.health.size(); ++i) {
    if (i != 0) os << ',';
    append_json_string(os, health_name(status.health[i]));
  }
  os << "]";
  if (status.net.present) {
    os << ",\"net\":{\"listen\":";
    append_json_string(os, status.net.listen);
    os << ",\"connections_open\":" << status.net.connections_open
       << ",\"connections_total\":" << status.net.connections_total
       << ",\"backpressured\":" << status.net.backpressured
       << ",\"rx_bytes\":" << status.net.rx_bytes
       << ",\"tx_bytes\":" << status.net.tx_bytes
       << ",\"frames_rx\":" << status.net.frames_rx
       << ",\"frames_tx\":" << status.net.frames_tx
       << ",\"coalesce_hits\":" << status.net.coalesce_hits
       << ",\"coalesce_leaders\":" << status.net.coalesce_leaders
       << ",\"protocol_errors\":" << status.net.protocol_errors
       << ",\"idle_closed\":" << status.net.idle_closed
       << ",\"rate_limited\":" << status.net.rate_limited
       << ",\"slow_evicted\":" << status.net.slow_evicted
       << ",\"accepts_refused\":" << status.net.accepts_refused
       << ",\"drain_shutdown_answered\":"
       << status.net.drain_shutdown_answered << ",\"drain_state\":";
    append_json_string(os, status.net.drain_state);
    os << ",\"conns\":[";
    for (std::size_t i = 0; i < status.net.conns.size(); ++i) {
      const NetConnEntry& c = status.net.conns[i];
      if (i != 0) os << ',';
      os << "{\"id\":" << c.id << ",\"peer\":";
      append_json_string(os, c.peer);
      os << ",\"inflight\":" << c.inflight << ",\"backpressured\":"
         << (c.backpressured ? "true" : "false") << ",\"age_seconds\":"
         << format_seconds(c.age_seconds) << '}';
    }
    os << "]}";
  }
  os << ",\"jobs_recorded\":" << status.jobs_recorded;
  os << ",\"recent\":[";
  for (std::size_t i = 0; i < status.recent.size(); ++i) {
    const JobTrail& t = status.recent[i];
    if (i != 0) os << ',';
    os << "{\"id\":" << t.id << ",\"kind\":";
    append_json_string(os, job_kind_name(t.kind));
    os << ",\"priority\":";
    append_json_string(os, priority_name(t.priority));
    os << ",\"state\":";
    append_json_string(os, job_state_name(t.state));
    os << ",\"fail_reason\":";
    append_json_string(os, fail_reason_name(t.fail_reason));
    os << ",\"degraded\":" << (t.degraded ? "true" : "false")
       << ",\"cache_hit\":" << (t.cache_hit ? "true" : "false")
       << ",\"queue_seconds\":" << format_seconds(t.queue_seconds)
       << ",\"run_seconds\":" << format_seconds(t.run_seconds)
       << ",\"now\":" << format_seconds(t.now)
       << ",\"snapshot_epoch\":" << t.snapshot_epoch << ",\"detail\":";
    append_json_string(os, t.detail);
    os << '}';
  }
  os << "]}";
}

bool write_status_file(const ServerStatus& status, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (json) {
    format_status_json(status, out);
    out << '\n';
  } else {
    format_status_text(status, out);
  }
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace cbes::server
