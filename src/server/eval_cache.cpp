#include "server/eval_cache.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cbes::server {

EvalCache::EvalCache(EvalCacheConfig config) : config_(config) {
  CBES_CHECK_MSG(config_.capacity >= 1, "cache capacity must be at least 1");
  CBES_CHECK_MSG(config_.drift_threshold > 0.0,
                 "drift threshold must be positive");
}

void EvalCache::set_metrics(obs::MetricsRegistry* registry) {
  const std::lock_guard lock(mu_);
  if (registry == nullptr) {
    hits_metric_ = nullptr;
    misses_metric_ = nullptr;
    invalidations_metric_ = nullptr;
    evictions_metric_ = nullptr;
    entries_metric_ = nullptr;
    return;
  }
  hits_metric_ = &registry->counter("cbes_server_cache_hits_total",
                                    "Predictions served from the EvalCache");
  misses_metric_ = &registry->counter("cbes_server_cache_misses_total",
                                      "EvalCache lookups that re-evaluated");
  invalidations_metric_ = &registry->counter(
      "cbes_server_cache_invalidations_total",
      "Entries dropped because a mapped node's ACPU drifted past the "
      "threshold (paper phase-3 rule)");
  evictions_metric_ = &registry->counter("cbes_server_cache_evictions_total",
                                         "LRU evictions under capacity");
  entries_metric_ =
      &registry->gauge("cbes_server_cache_entries", "Entries currently held");
}

std::string EvalCache::key_of(const std::string& app, const Mapping& mapping) {
  return app + '#' + std::to_string(mapping.hash());
}

bool EvalCache::drifted(const Entry& entry,
                        const LoadSnapshot& snapshot) const {
  for (std::size_t i = 0; i < entry.mapped_nodes.size(); ++i) {
    const double base = entry.baseline_cpu[i];
    const double cur = snapshot.cpu(entry.mapped_nodes[i]);
    if (std::abs(cur - base) > config_.drift_threshold * base) return true;
  }
  return false;
}

void EvalCache::erase_locked(Lru::iterator it) {
  index_.erase(it->key);
  lru_.erase(it);
  if (entries_metric_ != nullptr) {
    entries_metric_->set(static_cast<double>(lru_.size()));
  }
}

std::optional<Prediction> EvalCache::lookup(const std::string& app,
                                            const Mapping& mapping,
                                            const LoadSnapshot& snapshot) {
  const std::string key = key_of(app, mapping);
  const std::lock_guard lock(mu_);
  const auto found = index_.find(key);
  if (found == index_.end() ||
      found->second->assignment != mapping.assignment()) {
    // Absent, or a hash collision with a different mapping: plain miss.
    ++misses_;
    if (misses_metric_ != nullptr) misses_metric_->inc();
    return std::nullopt;
  }
  Lru::iterator it = found->second;
  if (snapshot.epoch != it->epoch && drifted(*it, snapshot)) {
    ++invalidations_;
    ++misses_;
    if (invalidations_metric_ != nullptr) invalidations_metric_->inc();
    if (misses_metric_ != nullptr) misses_metric_->inc();
    erase_locked(it);
    return std::nullopt;
  }
  // Still valid: remember the newest epoch the drift check passed at, so
  // same-epoch lookups skip the per-node scan. The *baseline* ACPU stays
  // pinned to insertion time — drift accumulates against the prediction's
  // inputs, so slow creep past the threshold still invalidates.
  it->epoch = std::max(it->epoch, snapshot.epoch);
  ++hits_;
  if (hits_metric_ != nullptr) hits_metric_->inc();
  lru_.splice(lru_.begin(), lru_, it);  // touch
  return it->prediction;
}

void EvalCache::insert(const std::string& app, const Mapping& mapping,
                       const LoadSnapshot& snapshot,
                       const Prediction& prediction) {
  Entry entry;
  entry.key = key_of(app, mapping);
  entry.app = app;
  entry.assignment = mapping.assignment();
  entry.epoch = snapshot.epoch;
  // Distinct mapped nodes with their current ACPU as the drift baseline.
  entry.mapped_nodes = entry.assignment;
  std::sort(entry.mapped_nodes.begin(), entry.mapped_nodes.end());
  entry.mapped_nodes.erase(
      std::unique(entry.mapped_nodes.begin(), entry.mapped_nodes.end()),
      entry.mapped_nodes.end());
  entry.baseline_cpu.reserve(entry.mapped_nodes.size());
  for (NodeId node : entry.mapped_nodes) {
    entry.baseline_cpu.push_back(snapshot.cpu(node));
  }
  entry.prediction = prediction;

  const std::lock_guard lock(mu_);
  const auto found = index_.find(entry.key);
  if (found != index_.end()) erase_locked(found->second);
  lru_.push_front(std::move(entry));
  index_[lru_.front().key] = lru_.begin();
  while (lru_.size() > config_.capacity) {
    ++evictions_;
    if (evictions_metric_ != nullptr) evictions_metric_->inc();
    erase_locked(std::prev(lru_.end()));
  }
  if (entries_metric_ != nullptr) {
    entries_metric_->set(static_cast<double>(lru_.size()));
  }
}

std::size_t EvalCache::invalidate_node(NodeId node) {
  const std::lock_guard lock(mu_);
  std::size_t dropped = 0;
  for (Lru::iterator it = lru_.begin(); it != lru_.end();) {
    Lru::iterator next = std::next(it);
    if (std::binary_search(it->mapped_nodes.begin(), it->mapped_nodes.end(),
                           node)) {
      ++invalidations_;
      if (invalidations_metric_ != nullptr) invalidations_metric_->inc();
      erase_locked(it);
      ++dropped;
    }
    it = next;
  }
  return dropped;
}

std::vector<WarmHint> EvalCache::warm_hints(std::size_t max_hints) const {
  const std::lock_guard lock(mu_);
  std::vector<WarmHint> hints;
  hints.reserve(std::min(max_hints, lru_.size()));
  for (const Entry& entry : lru_) {  // front = most recently used
    if (hints.size() >= max_hints) break;
    WarmHint hint;
    hint.app = entry.app;
    hint.assignment.reserve(entry.assignment.size());
    for (NodeId node : entry.assignment) {
      hint.assignment.push_back(static_cast<std::uint32_t>(node.index()));
    }
    hints.push_back(std::move(hint));
  }
  return hints;
}

void EvalCache::clear() {
  const std::lock_guard lock(mu_);
  lru_.clear();
  index_.clear();
  if (entries_metric_ != nullptr) entries_metric_->set(0.0);
}

std::size_t EvalCache::size() const {
  const std::lock_guard lock(mu_);
  return lru_.size();
}

std::uint64_t EvalCache::hits() const {
  const std::lock_guard lock(mu_);
  return hits_;
}

std::uint64_t EvalCache::misses() const {
  const std::lock_guard lock(mu_);
  return misses_;
}

std::uint64_t EvalCache::invalidations() const {
  const std::lock_guard lock(mu_);
  return invalidations_;
}

std::uint64_t EvalCache::evictions() const {
  const std::lock_guard lock(mu_);
  return evictions_;
}

// ---------------------------------------------------------------------------
// CompiledProfileCache

CompiledProfileCache::CompiledProfileCache(std::size_t capacity)
    : capacity_(capacity) {
  CBES_CHECK_MSG(capacity_ >= 1, "cache capacity must be at least 1");
}

void CompiledProfileCache::set_metrics(obs::MetricsRegistry* registry) {
  const std::lock_guard lock(mu_);
  if (registry == nullptr) {
    hits_metric_ = nullptr;
    misses_metric_ = nullptr;
    return;
  }
  hits_metric_ = &registry->counter(
      "cbes_server_compiled_cache_hits_total",
      "Jobs that reused a cached CompiledProfile artifact");
  misses_metric_ = &registry->counter(
      "cbes_server_compiled_cache_misses_total",
      "Jobs that had to flatten a profile (cold or retired epoch)");
}

std::shared_ptr<const CompiledProfile> CompiledProfileCache::get_or_build(
    std::size_t profile_hash, std::uint64_t epoch, bool degraded,
    const std::function<std::shared_ptr<const CompiledProfile>()>& build) {
  const Key key{profile_hash, epoch, degraded};
  {
    const std::lock_guard lock(mu_);
    const auto found = index_.find(key);
    if (found != index_.end()) {
      ++hits_;
      if (hits_metric_ != nullptr) hits_metric_->inc();
      lru_.splice(lru_.begin(), lru_, found->second);  // touch
      return lru_.front().artifact;
    }
  }
  std::shared_ptr<const CompiledProfile> artifact = build();
  const std::lock_guard lock(mu_);
  ++misses_;
  if (misses_metric_ != nullptr) misses_metric_->inc();
  const auto found = index_.find(key);
  if (found != index_.end()) {
    // A concurrent worker built the same artifact first; adopt its copy so
    // every job of the epoch shares one allocation.
    lru_.splice(lru_.begin(), lru_, found->second);
    return lru_.front().artifact;
  }
  lru_.push_front(Entry{key, std::move(artifact)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(std::prev(lru_.end())->key);
    lru_.pop_back();
  }
  return lru_.front().artifact;
}

void CompiledProfileCache::clear() {
  const std::lock_guard lock(mu_);
  lru_.clear();
  index_.clear();
}

std::size_t CompiledProfileCache::size() const {
  const std::lock_guard lock(mu_);
  return lru_.size();
}

std::uint64_t CompiledProfileCache::hits() const {
  const std::lock_guard lock(mu_);
  return hits_;
}

std::uint64_t CompiledProfileCache::misses() const {
  const std::lock_guard lock(mu_);
  return misses_;
}

}  // namespace cbes::server
