// Bounded, priority-classed job queue with admission control.
//
// The broker's first line of defence against overload (ROADMAP: heavy
// traffic): rather than queuing without bound and letting every tenant's
// latency grow, the queue holds at most `max_depth` jobs and *rejects* the
// excess with a reason the client can act on (back off, retry with a lower
// priority, shed the request). Dispatch order is strict priority
// (interactive > normal > batch), FIFO within a class.
#pragma once

#include <array>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "resilience/shedder.h"
#include "server/job.h"

namespace cbes::server {

class RequestQueue {
 public:
  /// Admission-control verdict for one offered job.
  struct Admission {
    bool admitted = false;
    /// Human-readable rejection reason; empty when admitted.
    std::string reason;
  };

  /// `max_depth` bounds the number of queued (not yet running) jobs.
  explicit RequestQueue(std::size_t max_depth);

  /// Offers a job. Rejects (without queuing) when the queue is full, closed,
  /// the job's deadline has already expired, or the load shedder's brown-out
  /// level refuses its priority class — overload produces fast explicit
  /// feedback, not unbounded latency.
  [[nodiscard]] Admission offer(std::shared_ptr<Job> job);

  /// Blocks until a job is available or the queue is closed and drained;
  /// returns nullptr in the latter case (worker shutdown signal). Feeds each
  /// dequeued job's queue-sojourn time to the shedder (when attached), which
  /// is what drives brown-out escalation under sustained overload.
  [[nodiscard]] std::shared_ptr<Job> take();

  /// Stops admission. Workers drain what is already queued.
  void close();

  /// Removes and returns all queued jobs without running them (fast
  /// shutdown); the caller finishes them as cancelled.
  [[nodiscard]] std::vector<std::shared_ptr<Job>> drain();

  [[nodiscard]] std::size_t depth() const;
  /// Queued-job count per priority class (index = Priority value).
  [[nodiscard]] std::array<std::size_t, kPriorityClasses> depth_by_class()
      const;
  [[nodiscard]] std::size_t max_depth() const noexcept { return max_depth_; }
  [[nodiscard]] bool closed() const;

  /// Wires the queue-depth gauge and admitted/rejected counters into
  /// `registry` (nullptr disables; the default). Must outlive the queue.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches the CoDel-style load shedder consulted at admission and fed at
  /// dispatch (nullptr detaches; the default). Must outlive the queue.
  void set_shedder(resilience::LoadShedder* shedder);

  /// Jobs refused at admission because of brown-out shedding.
  [[nodiscard]] std::uint64_t shed_count() const;

 private:
  void publish_depth_locked();

  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::array<std::deque<std::shared_ptr<Job>>, kPriorityClasses> classes_;
  std::size_t depth_ = 0;
  std::size_t max_depth_;
  bool closed_ = false;
  resilience::LoadShedder* shedder_ = nullptr;
  std::uint64_t shed_ = 0;
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Counter* admitted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* shed_metric_ = nullptr;
};

}  // namespace cbes::server
