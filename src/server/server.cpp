#include "server/server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "core/remap.h"
#include "fault/fault.h"
#include "sched/cost.h"
#include "sched/pool.h"

namespace cbes::server {

namespace {

/// Bridges a job's deadline/cancellation state into the schedulers' step
/// loops (Scheduler::set_stop_token).
class JobStopToken final : public StopToken {
 public:
  explicit JobStopToken(const Job& job) noexcept : job_(&job) {}
  [[nodiscard]] bool stop_requested() const noexcept override {
    return job_->should_stop();
  }

 private:
  const Job* job_;
};

[[nodiscard]] double seconds_between(Job::Clock::time_point from,
                                     Job::Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// The pool a schedule request draws from: the tenant's explicit node list,
/// or the whole cluster. Throws ContractError on malformed node lists, which
/// submit() converts into a rejection.
[[nodiscard]] NodePool pool_for(const ClusterTopology& topology,
                                const ScheduleRequest& request) {
  if (request.pool_nodes.empty()) {
    return NodePool::whole_cluster(topology);
  }
  return NodePool(topology, request.pool_nodes, request.max_slots_per_node);
}

}  // namespace

CbesServer::CbesServer(CbesService& service, ServerConfig config)
    : service_(&service),
      config_(config),
      queue_(config.max_queue_depth),
      cache_(config.cache) {
  CBES_CHECK_MSG(config_.workers >= 1, "need at least one worker thread");
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *config_.metrics;
    queue_.set_metrics(&reg);
    cache_.set_metrics(&reg);
    compiled_cache_.set_metrics(&reg);
    reg.gauge("cbes_server_workers", "Executor threads serving jobs")
        .set(static_cast<double>(config_.workers));
    jobs_done_ =
        &reg.counter("cbes_server_jobs_done_total", "Jobs completed with an answer");
    jobs_cancelled_ = &reg.counter("cbes_server_jobs_cancelled_total",
                                   "Jobs cancelled by deadline or caller");
    jobs_failed_ = &reg.counter("cbes_server_jobs_failed_total",
                                "Jobs failed on a contract violation");
    jobs_degraded_ = &reg.counter(
        "cbes_server_jobs_degraded_total",
        "Jobs answered from the no-load picture because the monitor was stale");
    retries_ = &reg.counter(
        "cbes_server_retries_total",
        "Execution attempts retried after a transient evaluation failure");
    health_invalidations_ = &reg.counter(
        "cbes_server_health_invalidations_total",
        "Cache entries dropped because a mapped node's health verdict changed");
    dead_node_refusals_ = &reg.counter(
        "cbes_server_dead_node_refusals_total",
        "Jobs refused an answer because the requested mapping touches a dead "
        "node");
    queue_seconds_ =
        &reg.histogram("cbes_server_queue_seconds",
                       obs::Histogram::exponential(1e-6, 4.0, 12),
                       "Wall time jobs spent queued before dispatch");
    run_seconds_ =
        &reg.histogram("cbes_server_run_seconds",
                       obs::Histogram::exponential(1e-6, 4.0, 12),
                       "Wall time jobs spent executing");
  }
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

CbesServer::~CbesServer() { shutdown(/*drain=*/true); }

std::shared_ptr<Job> CbesServer::make_job(JobKind kind,
                                          const SubmitOptions& options) {
  auto job = std::make_shared<Job>();
  job->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  job->priority = options.priority;
  job->kind = kind;
  job->submitted = Job::Clock::now();
  const std::chrono::milliseconds budget =
      options.deadline.count() > 0 ? options.deadline
                                   : config_.default_deadline;
  if (budget.count() > 0) job->deadline = job->submitted + budget;
  return job;
}

void CbesServer::reject(Job& job, const std::string& reason) {
  JobResult result;
  result.state = JobState::kRejected;
  result.detail = reason;
  job.finish(std::move(result));
}

JobHandle CbesServer::admit(std::shared_ptr<Job> job,
                            const std::string& reason) {
  JobHandle handle(job);
  if (!reason.empty()) {
    reject(*job, reason);
    return handle;
  }
  const RequestQueue::Admission admission = queue_.offer(job);
  if (!admission.admitted) reject(*job, admission.reason);
  return handle;
}

JobHandle CbesServer::submit(PredictRequest request, SubmitOptions options) {
  auto job = make_job(JobKind::kPredict, options);
  std::string reason;
  if (!service_->has_profile(request.app)) {
    reason = "no profile registered for: " + request.app;
  } else if (request.mapping.nranks() == 0) {
    reason = "empty mapping";
  } else if (!request.mapping.fits(service_->topology())) {
    reason = "mapping does not fit the cluster";
  }
  job->predict = std::move(request);
  return admit(std::move(job), reason);
}

JobHandle CbesServer::submit(CompareRequest request, SubmitOptions options) {
  auto job = make_job(JobKind::kCompare, options);
  std::string reason;
  if (!service_->has_profile(request.app)) {
    reason = "no profile registered for: " + request.app;
  } else if (request.candidates.empty()) {
    reason = "nothing to compare";
  } else {
    for (const Mapping& candidate : request.candidates) {
      if (!candidate.fits(service_->topology())) {
        reason = "candidate mapping does not fit the cluster";
        break;
      }
    }
  }
  job->compare = std::move(request);
  return admit(std::move(job), reason);
}

JobHandle CbesServer::submit(RemapRequest request, SubmitOptions options) {
  auto job = make_job(JobKind::kRemap, options);
  std::string reason;
  if (!service_->has_profile(request.app)) {
    reason = "no profile registered for: " + request.app;
  } else if (request.current.nranks() == 0) {
    reason = "empty current mapping";
  } else if (!request.current.fits(service_->topology())) {
    reason = "current mapping does not fit the cluster";
  } else if (!(request.progress >= 0.0) || request.progress >= 1.0) {
    reason = "progress must be in [0, 1)";
  }
  job->remap = std::move(request);
  return admit(std::move(job), reason);
}

JobHandle CbesServer::submit(ScheduleRequest request, SubmitOptions options) {
  auto job = make_job(JobKind::kSchedule, options);
  std::string reason;
  if (!service_->has_profile(request.app)) {
    reason = "no profile registered for: " + request.app;
  } else if (request.nranks == 0) {
    reason = "cannot schedule zero ranks";
  } else {
    try {
      const NodePool pool = pool_for(service_->topology(), request);
      if (request.nranks > pool.total_slots()) {
        reason = "pool has " + std::to_string(pool.total_slots()) +
                 " slots for " + std::to_string(request.nranks) + " ranks";
      }
    } catch (const ContractError& e) {
      reason = e.what();
    }
  }
  job->schedule = std::move(request);
  return admit(std::move(job), reason);
}

void CbesServer::shutdown(bool drain) {
  shut_down_.store(true, std::memory_order_relaxed);
  queue_.close();
  if (!drain) {
    for (const std::shared_ptr<Job>& job : queue_.drain()) {
      JobResult result;
      result.state = JobState::kCancelled;
      result.detail = "server shutdown";
      job->finish(std::move(result));
      if (jobs_cancelled_ != nullptr) jobs_cancelled_->inc();
    }
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void CbesServer::worker_loop() {
  while (std::shared_ptr<Job> job = queue_.take()) {
    execute(*job);
  }
}

void CbesServer::execute(Job& job) {
  const Job::Clock::time_point started = Job::Clock::now();
  JobResult result;
  result.queue_seconds = seconds_between(job.submitted, started);
  if (queue_seconds_ != nullptr) queue_seconds_->observe(result.queue_seconds);

  if (job.should_stop()) {
    result.state = JobState::kCancelled;
    result.detail = job.cancel_requested.load(std::memory_order_relaxed)
                        ? "cancelled while queued"
                        : "deadline expired while queued";
    if (jobs_cancelled_ != nullptr) jobs_cancelled_->inc();
    job.finish(std::move(result));
    return;
  }

  job.mark_running();
  // Transient failures (injected or real) retry with capped exponential
  // backoff; each attempt starts from a fresh result so a half-computed
  // answer never leaks. Contract violations fail immediately — retrying a
  // malformed request cannot succeed.
  std::chrono::milliseconds backoff = config_.retry_backoff;
  for (std::size_t attempt = 0;; ++attempt) {
    JobResult fresh;
    fresh.state = JobState::kDone;
    fresh.queue_seconds = result.queue_seconds;
    try {
      if (config_.fault_hook) config_.fault_hook(job);
      run_attempt(job, fresh);
      result = std::move(fresh);
      break;
    } catch (const fault::TransientError& e) {
      if (attempt >= config_.max_retries || job.should_stop()) {
        result.state = JobState::kFailed;
        result.detail = std::string("transient failure (retries exhausted): ") +
                        e.what();
        break;
      }
      if (retries_ != nullptr) retries_->inc();
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, config_.retry_backoff_cap);
    } catch (const std::exception& e) {
      result.state = JobState::kFailed;
      result.detail = e.what();
      break;
    }
  }
  result.run_seconds = seconds_between(started, Job::Clock::now());
  if (run_seconds_ != nullptr) run_seconds_->observe(result.run_seconds);
  if (result.degraded && jobs_degraded_ != nullptr) jobs_degraded_->inc();
  switch (result.state) {
    case JobState::kDone:
      if (jobs_done_ != nullptr) jobs_done_->inc();
      break;
    case JobState::kCancelled:
      if (jobs_cancelled_ != nullptr) jobs_cancelled_->inc();
      break;
    default:
      if (jobs_failed_ != nullptr) jobs_failed_->inc();
      break;
  }
  job.finish(std::move(result));
}

void CbesServer::note_health(const LoadSnapshot& snapshot) {
  if (snapshot.health.empty()) return;
  const std::lock_guard lock(health_mu_);
  if (last_health_.size() == snapshot.health.size()) {
    for (std::size_t i = 0; i < snapshot.health.size(); ++i) {
      if (last_health_[i] == snapshot.health[i]) continue;
      cache_.invalidate_node(NodeId{i});
      if (health_invalidations_ != nullptr) health_invalidations_->inc();
    }
  }
  last_health_ = snapshot.health;
}

LoadSnapshot CbesServer::snapshot_for(Seconds now, bool& degraded) {
  const SystemMonitor& monitor = service_->monitor();
  degraded = config_.max_snapshot_age != kNever &&
             monitor.staleness(now) > config_.max_snapshot_age;
  LoadSnapshot snap = monitor.snapshot(now);
  note_health(snap);
  if (!degraded) return snap;
  // Stale picture: serve from no-load latencies instead of blocking on the
  // monitoring subsystem — flagged so clients can weigh the answer. Health
  // verdicts are kept: degraded service still never uses a dead node, and
  // dead nodes keep their pessimal availability values.
  LoadSnapshot idle = LoadSnapshot::idle(service_->topology().node_count());
  idle.taken_at = now;
  idle.epoch = snap.epoch;
  idle.health = snap.health;
  for (std::size_t i = 0; i < idle.health.size(); ++i) {
    if (idle.health[i] == NodeHealth::kDead) {
      idle.cpu_avail[i] = snap.cpu_avail[i];
      idle.nic_util[i] = snap.nic_util[i];
    }
  }
  return idle;
}

std::shared_ptr<const CompiledProfile> CbesServer::compiled_for(
    const AppProfile& profile, const LoadSnapshot& snapshot, bool degraded) {
  return compiled_cache_.get_or_build(
      profile.hash(), snapshot.epoch, degraded,
      [&] { return service_->evaluator().compile(profile, snapshot); });
}

Prediction CbesServer::cached_predict(const std::string& app,
                                      const Mapping& mapping,
                                      const LoadSnapshot& snapshot,
                                      bool degraded, bool& cache_hit) {
  const bool cacheable = config_.enable_cache && !degraded;
  if (cacheable) {
    if (std::optional<Prediction> hit = cache_.lookup(app, mapping, snapshot)) {
      cache_hit = true;
      return *std::move(hit);
    }
  }
  Prediction prediction = service_->predict_under(app, mapping, snapshot);
  if (cacheable) cache_.insert(app, mapping, snapshot, prediction);
  return prediction;
}

void CbesServer::run_attempt(Job& job, JobResult& result) {
  switch (job.kind) {
    case JobKind::kPredict:
      run_predict(job, result);
      break;
    case JobKind::kCompare:
      run_compare(job, result);
      break;
    case JobKind::kSchedule:
      run_schedule(job, result);
      break;
    case JobKind::kRemap:
      run_remap(job, result);
      break;
  }
}

namespace {

/// First dead node a mapping touches, or an invalid id when none.
[[nodiscard]] NodeId first_dead_node(const Mapping& mapping,
                                     const LoadSnapshot& snapshot) {
  for (std::size_t i = 0; i < mapping.nranks(); ++i) {
    const NodeId node = mapping.node_of(RankId{i});
    if (!snapshot.alive(node)) return node;
  }
  return NodeId{};
}

}  // namespace

void CbesServer::run_predict(Job& job, JobResult& result) {
  const PredictRequest& request = job.predict;
  const LoadSnapshot snapshot = snapshot_for(request.now, result.degraded);
  const NodeId dead = first_dead_node(request.mapping, snapshot);
  if (dead.valid()) {
    // No finite answer exists; refusing beats serving "infinity" as a number.
    if (dead_node_refusals_ != nullptr) dead_node_refusals_->inc();
    result.state = JobState::kFailed;
    result.detail =
        "mapping places ranks on dead node " + std::to_string(dead.value);
    return;
  }
  result.prediction = cached_predict(request.app, request.mapping, snapshot,
                                     result.degraded, result.cache_hit);
  result.degraded = result.degraded || result.prediction.degraded;
}

void CbesServer::run_compare(Job& job, JobResult& result) {
  const CompareRequest& request = job.compare;
  const LoadSnapshot snapshot = snapshot_for(request.now, result.degraded);
  result.comparison.predicted.reserve(request.candidates.size());
  bool any_alive = false;
  for (std::size_t i = 0; i < request.candidates.size(); ++i) {
    // Candidates on dead nodes stay in the answer — position matters to the
    // client — but score infinity and never win.
    if (first_dead_node(request.candidates[i], snapshot).valid()) {
      result.comparison.predicted.push_back(kNever);
      continue;
    }
    const Prediction prediction =
        cached_predict(request.app, request.candidates[i], snapshot,
                       result.degraded, result.cache_hit);
    result.degraded = result.degraded || prediction.degraded;
    result.comparison.predicted.push_back(prediction.time);
    if (!any_alive ||
        prediction.time < result.comparison.predicted[result.comparison.best]) {
      result.comparison.best = i;
    }
    any_alive = true;
  }
  if (!any_alive) {
    if (dead_node_refusals_ != nullptr) dead_node_refusals_->inc();
    result.state = JobState::kFailed;
    result.detail = "every candidate mapping touches a dead node";
  }
}

void CbesServer::run_schedule(Job& job, JobResult& result) {
  const ScheduleRequest& request = job.schedule;
  const LoadSnapshot snapshot = snapshot_for(request.now, result.degraded);
  // Copy the profile under the service lock: the search may outlive many
  // profile re-registrations.
  const AppProfile profile = service_->profile_copy(request.app);
  // Dead nodes are masked out of the search pool; admission only checked the
  // full pool, so re-check capacity against what actually survives.
  const NodePool pool =
      pool_for(service_->topology(), request).alive_only(snapshot);
  if (request.nranks > pool.total_slots()) {
    if (dead_node_refusals_ != nullptr) dead_node_refusals_->inc();
    result.state = JobState::kFailed;
    result.detail = "only " + std::to_string(pool.total_slots()) +
                    " slots remain alive for " + std::to_string(request.nranks) +
                    " ranks";
    return;
  }
  const CbesCost cost(compiled_for(profile, snapshot, result.degraded));
  const JobStopToken token(job);

  ScheduleResult search;
  switch (request.algo) {
    case Algo::kSa: {
      // Per-job RNG: the job seed replaces the params seed, so concurrent
      // jobs are deterministic in isolation and never share a stream.
      SaParams params = request.sa;
      params.seed = request.seed;
      SimulatedAnnealingScheduler scheduler(params);
      scheduler.set_stop_token(&token);
      search = scheduler.schedule(request.nranks, pool, cost);
      break;
    }
    case Algo::kGa: {
      GaParams params = request.ga;
      params.seed = request.seed;
      GeneticScheduler scheduler(params);
      scheduler.set_stop_token(&token);
      search = scheduler.schedule(request.nranks, pool, cost);
      break;
    }
    case Algo::kRandom: {
      RandomScheduler scheduler(request.seed);
      scheduler.set_stop_token(&token);
      search = scheduler.schedule(request.nranks, pool, cost);
      break;
    }
  }
  if (search.cancelled) {
    // Deadline or cancellation fired mid-search: report cancelled and drop
    // the partial best — a half-annealed mapping is not an answer.
    result.state = JobState::kCancelled;
    result.detail = "cancelled mid-search (deadline or caller)";
    return;
  }
  result.schedule = std::move(search);
}

void CbesServer::run_remap(Job& job, JobResult& result) {
  const RemapRequest& request = job.remap;
  const LoadSnapshot snapshot = snapshot_for(request.now, result.degraded);
  const AppProfile profile = service_->profile_copy(request.app);

  // Candidate search over the *alive* pool — remap-on-failure exists exactly
  // because request.current may touch nodes that have died; staying there
  // scores infinite remaining time, so any live candidate wins.
  ScheduleRequest search_request;
  search_request.pool_nodes = request.pool_nodes;
  search_request.max_slots_per_node = request.max_slots_per_node;
  const NodePool pool =
      pool_for(service_->topology(), search_request).alive_only(snapshot);
  if (request.current.nranks() > pool.total_slots()) {
    if (dead_node_refusals_ != nullptr) dead_node_refusals_->inc();
    result.state = JobState::kFailed;
    result.detail = "only " + std::to_string(pool.total_slots()) +
                    " slots remain alive for " +
                    std::to_string(request.current.nranks()) + " ranks";
    return;
  }

  const std::shared_ptr<const CompiledProfile> compiled =
      compiled_for(profile, snapshot, result.degraded);
  const CbesCost cost(compiled);
  const JobStopToken token(job);
  SaParams params = request.sa;
  params.seed = request.seed;
  SimulatedAnnealingScheduler scheduler(params);
  scheduler.set_stop_token(&token);
  const ScheduleResult search =
      scheduler.schedule(request.current.nranks(), pool, cost);
  if (search.cancelled) {
    result.state = JobState::kCancelled;
    result.detail = "cancelled mid-search (deadline or caller)";
    return;
  }

  result.remap_candidate = search.mapping;
  // The decision round reuses the search's compiled artifact: the stay cost
  // is evaluated once and the candidate priced against it.
  const RemapRound round(service_->evaluator(), compiled, request.current,
                         request.progress, request.cost);
  result.remap = round.consider(result.remap_candidate);
}

}  // namespace cbes::server
