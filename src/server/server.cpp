#include "server/server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "core/remap.h"
#include "fault/fault.h"
#include "sched/cost.h"
#include "sched/pool.h"
#include "sched/sharded.h"

namespace cbes::server {

namespace {

/// Bridges a job's deadline/cancellation state into the schedulers' step
/// loops (Scheduler::set_stop_token).
class JobStopToken final : public StopToken {
 public:
  explicit JobStopToken(const Job& job) noexcept : job_(&job) {}
  [[nodiscard]] bool stop_requested() const noexcept override {
    return job_->should_stop();
  }

 private:
  const Job* job_;
};

/// Internal signal: the job's deadline expired (or the caller cancelled)
/// between execution stages. Caught in execute(), reported as kCancelled.
struct JobCancelled {};

/// Deadline propagation: every stage boundary asks this before starting
/// work, so an expired request never pays for a snapshot, a compile, or a
/// search it can no longer use.
void throw_if_stopping(const Job& job) {
  if (job.should_stop()) throw JobCancelled{};
}

[[nodiscard]] double seconds_between(Job::Clock::time_point from,
                                     Job::Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// The pool a schedule request draws from: the tenant's explicit node list,
/// or the whole cluster. Throws ContractError on malformed node lists, which
/// submit() converts into a rejection.
[[nodiscard]] NodePool pool_for(const ClusterTopology& topology,
                                const ScheduleRequest& request) {
  if (request.pool_nodes.empty()) {
    return NodePool::whole_cluster(topology);
  }
  return NodePool(topology, request.pool_nodes, request.max_slots_per_node);
}

/// First dead node a mapping touches, or an invalid id when none.
[[nodiscard]] NodeId first_dead_node(const Mapping& mapping,
                                     const LoadSnapshot& snapshot) {
  for (std::size_t i = 0; i < mapping.nranks(); ++i) {
    const NodeId node = mapping.node_of(RankId{i});
    if (!snapshot.alive(node)) return node;
  }
  return NodeId{};
}

[[nodiscard]] resilience::RetryPolicyConfig retry_config_of(
    const ServerConfig& config) {
  resilience::RetryPolicyConfig retry;
  retry.max_retries = config.max_retries;
  retry.initial_backoff =
      std::chrono::duration<double>(config.retry_backoff).count();
  retry.backoff_cap = std::max(
      retry.initial_backoff,
      std::chrono::duration<double>(config.retry_backoff_cap).count());
  retry.jitter = config.retry_jitter;
  retry.seed = config.retry_seed;
  return retry;
}

}  // namespace

Seconds CbesServer::request_now(const Job& job) noexcept {
  switch (job.kind) {
    case JobKind::kPredict:
      return job.predict.now;
    case JobKind::kCompare:
      return job.compare.now;
    case JobKind::kSchedule:
      return job.schedule.now;
    case JobKind::kRemap:
      return job.remap.now;
  }
  return 0.0;
}

CbesServer::CbesServer(CbesService& service, ServerConfig config)
    : service_(&service),
      config_(config),
      queue_(config.max_queue_depth),
      cache_(config.cache),
      recorder_(config.flight_recorder_depth),
      retry_policy_(retry_config_of(config)),
      monitor_breaker_("monitor", config.monitor_breaker),
      calibration_breaker_("calibration", config.calibration_breaker),
      shedder_(config.shedder) {
  CBES_CHECK_MSG(config_.workers >= 1, "need at least one worker thread");
  if (config_.log != nullptr) {
    monitor_breaker_.set_logger(config_.log);
    calibration_breaker_.set_logger(config_.log);
    shedder_.set_logger(config_.log);
  }
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *config_.metrics;
    queue_.set_metrics(&reg);
    cache_.set_metrics(&reg);
    compiled_cache_.set_metrics(&reg);
    monitor_breaker_.set_metrics(&reg);
    calibration_breaker_.set_metrics(&reg);
    shedder_.set_metrics(&reg);
    reg.gauge("cbes_server_workers", "Executor threads serving jobs")
        .set(static_cast<double>(config_.workers));
    jobs_done_ =
        &reg.counter("cbes_server_jobs_done_total", "Jobs completed with an answer");
    jobs_cancelled_ = &reg.counter("cbes_server_jobs_cancelled_total",
                                   "Jobs cancelled by deadline or caller");
    jobs_failed_ = &reg.counter("cbes_server_jobs_failed_total",
                                "Jobs failed on a contract violation");
    jobs_degraded_ = &reg.counter(
        "cbes_server_jobs_degraded_total",
        "Jobs answered from the no-load picture because the monitor was stale");
    retries_ = &reg.counter(
        "cbes_server_retries_total",
        "Execution attempts retried after a transient evaluation failure");
    health_invalidations_ = &reg.counter(
        "cbes_server_health_invalidations_total",
        "Cache entries dropped because a mapped node's health verdict changed");
    dead_node_refusals_ = &reg.counter(
        "cbes_server_dead_node_refusals_total",
        "Jobs refused an answer because the requested mapping touches a dead "
        "node");
    watchdog_kills_metric_ = &reg.counter(
        "cbes_server_watchdog_kills_total",
        "Jobs the watchdog killed as overdue or wedged");
    workers_replaced_metric_ = &reg.counter(
        "cbes_server_workers_replaced_total",
        "Worker threads replaced after a watchdog kill");
    lkg_served_metric_ = &reg.counter(
        "cbes_server_lkg_snapshots_total",
        "Requests answered from the last-known-good snapshot while the "
        "monitor was unavailable");
    cache_only_shed_ = &reg.counter(
        "cbes_server_cache_only_shed_total",
        "Batch jobs shed under brown-out (cached-only level, cache miss)");
    queue_seconds_ =
        &reg.histogram("cbes_server_queue_seconds",
                       obs::Histogram::exponential(1e-6, 4.0, 12),
                       "Wall time jobs spent queued before dispatch");
    run_seconds_ =
        &reg.histogram("cbes_server_run_seconds",
                       obs::Histogram::exponential(1e-6, 4.0, 12),
                       "Wall time jobs spent executing");
    // Per-stage SLO histograms labeled by priority class and (for the total)
    // by outcome. The unlabeled queue/run histograms above stay for
    // back-compat with existing dashboards and tests.
    const std::vector<double> slo_bounds =
        obs::Histogram::exponential(1e-6, 4.0, 12);
    constexpr std::array<std::string_view, 3> kOutcomes = {"done", "cancelled",
                                                           "failed"};
    for (std::size_t c = 0; c < kPriorityClasses; ++c) {
      const std::string priority(priority_name(static_cast<Priority>(c)));
      queue_wait_by_class_[c] = &reg.histogram(
          "cbes_server_queue_wait_seconds", {{"priority", priority}},
          slo_bounds, "Queue wait by priority class");
      exec_by_class_[c] = &reg.histogram(
          "cbes_server_exec_seconds", {{"priority", priority}}, slo_bounds,
          "Execution time by priority class");
      for (std::size_t o = 0; o < kOutcomes.size(); ++o) {
        total_by_class_outcome_[c][o] = &reg.histogram(
            "cbes_server_total_seconds",
            {{"priority", priority}, {"outcome", std::string(kOutcomes[o])}},
            slo_bounds, "Submit-to-terminal latency by priority and outcome");
      }
    }
  }
  if (config_.enable_shedding) queue_.set_shedder(&shedder_);
  {
    const std::lock_guard lock(workers_mu_);
    workers_.reserve(config_.workers);
    for (std::size_t i = 0; i < config_.workers; ++i) spawn_worker_locked();
  }
  if (config_.watchdog_poll.count() > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

CbesServer::~CbesServer() { shutdown(/*drain=*/true); }

void CbesServer::spawn_worker_locked() {
  auto slot = std::make_unique<WorkerSlot>();
  WorkerSlot* raw = slot.get();
  workers_.push_back(std::move(slot));
  raw->thread = std::thread([this, raw] { worker_loop(raw); });
}

std::size_t CbesServer::worker_count() const {
  const std::lock_guard lock(workers_mu_);
  std::size_t active = 0;
  for (const auto& slot : workers_) {
    if (!slot->replaced.load(std::memory_order_relaxed)) ++active;
  }
  return active;
}

std::uint64_t CbesServer::watchdog_kills() const {
  const std::lock_guard lock(workers_mu_);
  return watchdog_kills_;
}

std::uint64_t CbesServer::workers_replaced() const {
  const std::lock_guard lock(workers_mu_);
  return workers_replaced_;
}

std::uint64_t CbesServer::lkg_snapshots_served() const {
  const std::lock_guard lock(lkg_mu_);
  return lkg_served_;
}

std::shared_ptr<Job> CbesServer::make_job(JobKind kind,
                                          const SubmitOptions& options) {
  auto job = std::make_shared<Job>();
  job->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  job->priority = options.priority;
  job->kind = kind;
  job->submitted = Job::Clock::now();
  const std::chrono::milliseconds budget =
      options.deadline.count() > 0 ? options.deadline
                                   : config_.default_deadline;
  if (budget.count() > 0) {
    job->deadline = resilience::Deadline::at(job->submitted + budget);
  }
  return job;
}

bool CbesServer::complete(Job& job, JobResult result, bool end_queue,
                          bool end_exec) {
  JobTrail trail;
  trail.id = job.id;
  trail.kind = job.kind;
  trail.priority = job.priority;
  trail.state = result.state;
  trail.fail_reason = result.fail_reason;
  trail.degraded = result.degraded;
  trail.cache_hit = result.cache_hit;
  trail.queue_seconds = result.queue_seconds;
  trail.run_seconds = result.run_seconds;
  trail.now = request_now(job);
  trail.snapshot_epoch = result.snapshot_epoch;
  trail.detail = result.detail;
  // First finish wins: a losing path (worker racing the watchdog, or vice
  // versa) must not close trace spans or record a second trail.
  if (!job.finish(std::move(result))) return false;
  if (config_.trace != nullptr) {
    if (end_exec) config_.trace->async_end("exec", job.id);
    if (end_queue) config_.trace->async_end("queue", job.id);
    obs::TraceArgs args;
    args.add("outcome", job_state_name(trail.state));
    if (trail.fail_reason != FailReason::kNone) {
      args.add("fail", fail_reason_name(trail.fail_reason));
    }
    args.add("epoch", trail.snapshot_epoch)
        .add("degraded", trail.degraded)
        .add("cache_hit", trail.cache_hit);
    config_.trace->async_end("request", job.id, std::move(args));
  }
  if (config_.log != nullptr) {
    // Deterministic payload: the request's simulated time and stable facts
    // only — never wall-clock durations (see obs/log.h's contract).
    const obs::LogLevel level = trail.state == JobState::kDone ||
                                        trail.state == JobState::kCancelled
                                    ? obs::LogLevel::kInfo
                                    : obs::LogLevel::kWarn;
    config_.log->log(level, "job/finish", trail.now,
                     {{"job", trail.id},
                      {"kind", job_kind_name(trail.kind)},
                      {"priority", priority_name(trail.priority)},
                      {"outcome", job_state_name(trail.state)},
                      {"fail", fail_reason_name(trail.fail_reason)},
                      {"degraded", trail.degraded},
                      {"cache_hit", trail.cache_hit},
                      {"epoch", trail.snapshot_epoch},
                      {"detail", trail.detail}});
  }
  recorder_.record(std::move(trail));
  return true;
}

void CbesServer::reject(Job& job, const std::string& reason) {
  JobResult result;
  result.state = JobState::kRejected;
  result.detail = reason;
  complete(job, std::move(result), /*end_queue=*/false, /*end_exec=*/false);
}

JobHandle CbesServer::admit(std::shared_ptr<Job> job,
                            const std::string& reason) {
  JobHandle handle(job);
  if (!reason.empty()) {
    reject(*job, reason);
    return handle;
  }
  // Open the queue span before offering: once offered, a worker may dequeue
  // (and close the span) immediately.
  if (config_.trace != nullptr) {
    config_.trace->async_begin("queue", job->id);
  }
  const RequestQueue::Admission admission = queue_.offer(job);
  if (!admission.admitted) {
    JobResult result;
    result.state = JobState::kRejected;
    result.detail = admission.reason;
    complete(*job, std::move(result), /*end_queue=*/true,
             /*end_exec=*/false);
  }
  return handle;
}

void CbesServer::trace_submit(const Job& job, const std::string& app) {
  if (config_.trace != nullptr) {
    obs::TraceArgs args;
    args.add("kind", job_kind_name(job.kind))
        .add("priority", priority_name(job.priority))
        .add("app", app)
        .add("now", request_now(job));
    config_.trace->async_begin("request", job.id, std::move(args));
  }
  if (config_.log != nullptr && config_.log->enabled(obs::LogLevel::kDebug)) {
    config_.log->debug("job/submit", request_now(job),
                       {{"job", job.id},
                        {"kind", job_kind_name(job.kind)},
                        {"priority", priority_name(job.priority)},
                        {"app", app}});
  }
}

JobHandle CbesServer::submit(PredictRequest request, SubmitOptions options) {
  auto job = make_job(JobKind::kPredict, options);
  std::string reason;
  if (!service_->has_profile(request.app)) {
    reason = "no profile registered for: " + request.app;
  } else if (request.mapping.nranks() == 0) {
    reason = "empty mapping";
  } else if (!request.mapping.fits(service_->topology())) {
    reason = "mapping does not fit the cluster";
  }
  job->predict = std::move(request);
  trace_submit(*job, job->predict.app);
  return admit(std::move(job), reason);
}

JobHandle CbesServer::submit(CompareRequest request, SubmitOptions options) {
  auto job = make_job(JobKind::kCompare, options);
  std::string reason;
  if (!service_->has_profile(request.app)) {
    reason = "no profile registered for: " + request.app;
  } else if (request.candidates.empty()) {
    reason = "nothing to compare";
  } else {
    for (const Mapping& candidate : request.candidates) {
      if (!candidate.fits(service_->topology())) {
        reason = "candidate mapping does not fit the cluster";
        break;
      }
    }
  }
  job->compare = std::move(request);
  trace_submit(*job, job->compare.app);
  return admit(std::move(job), reason);
}

JobHandle CbesServer::submit(RemapRequest request, SubmitOptions options) {
  auto job = make_job(JobKind::kRemap, options);
  std::string reason;
  if (!service_->has_profile(request.app)) {
    reason = "no profile registered for: " + request.app;
  } else if (request.current.nranks() == 0) {
    reason = "empty current mapping";
  } else if (!request.current.fits(service_->topology())) {
    reason = "current mapping does not fit the cluster";
  } else if (!(request.progress >= 0.0) || request.progress >= 1.0) {
    reason = "progress must be in [0, 1)";
  }
  job->remap = std::move(request);
  trace_submit(*job, job->remap.app);
  return admit(std::move(job), reason);
}

JobHandle CbesServer::submit(ScheduleRequest request, SubmitOptions options) {
  auto job = make_job(JobKind::kSchedule, options);
  std::string reason;
  if (!service_->has_profile(request.app)) {
    reason = "no profile registered for: " + request.app;
  } else if (request.nranks == 0) {
    reason = "cannot schedule zero ranks";
  } else {
    try {
      const NodePool pool = pool_for(service_->topology(), request);
      if (request.nranks > pool.total_slots()) {
        reason = "pool has " + std::to_string(pool.total_slots()) +
                 " slots for " + std::to_string(request.nranks) + " ranks";
      }
    } catch (const ContractError& e) {
      reason = e.what();
    }
  }
  job->schedule = std::move(request);
  trace_submit(*job, job->schedule.app);
  return admit(std::move(job), reason);
}

void CbesServer::shutdown(bool drain) {
  shut_down_.store(true, std::memory_order_relaxed);
  {
    const std::lock_guard lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  queue_.close();
  if (!drain) {
    for (const std::shared_ptr<Job>& job : queue_.drain()) {
      JobResult result;
      result.state = JobState::kCancelled;
      result.detail = "server shutdown";
      if (jobs_cancelled_ != nullptr) jobs_cancelled_->inc();
      cancelled_count_.fetch_add(1, std::memory_order_relaxed);
      complete(*job, std::move(result), /*end_queue=*/true,
               /*end_exec=*/false);
    }
  }
  // Join every worker ever spawned — including wedged ones the watchdog
  // replaced; they exit once their stalled call returns. No thread is ever
  // detached, so shutdown leaves no stragglers behind (TSan-clean).
  std::vector<std::unique_ptr<WorkerSlot>> slots;
  {
    const std::lock_guard lock(workers_mu_);
    slots.swap(workers_);
  }
  for (const auto& slot : slots) {
    if (slot->thread.joinable()) slot->thread.join();
  }
}

void CbesServer::worker_loop(WorkerSlot* slot) {
  while (!slot->replaced.load(std::memory_order_acquire)) {
    std::shared_ptr<Job> job = queue_.take();
    if (job == nullptr) break;
    {
      const std::lock_guard lock(slot->mu);
      slot->current = job;
      slot->started = Job::Clock::now();
    }
    execute(*job);
    {
      const std::lock_guard lock(slot->mu);
      slot->current.reset();
    }
  }
}

void CbesServer::watchdog_loop() {
  std::unique_lock lock(watchdog_mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, config_.watchdog_poll,
                          [&] { return watchdog_stop_; });
    if (watchdog_stop_) break;
    lock.unlock();
    const Job::Clock::time_point now = Job::Clock::now();
    bool killed_any = false;
    {
      const std::lock_guard workers_lock(workers_mu_);
      // Index loop on purpose: a replacement appends to workers_ mid-scan.
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        WorkerSlot* slot = workers_[i].get();
        if (slot->replaced.load(std::memory_order_relaxed)) continue;
        std::shared_ptr<Job> job;
        Job::Clock::time_point started;
        {
          const std::lock_guard slot_lock(slot->mu);
          job = slot->current;
          started = slot->started;
        }
        if (job == nullptr) continue;
        const bool overdue =
            job->deadline.bounded() &&
            now >= *job->deadline.when() + config_.watchdog_grace;
        const bool wedged =
            config_.watchdog_stall_bound.count() > 0 &&
            now - started >= config_.watchdog_stall_bound;
        if (!overdue && !wedged) continue;
        // Ask nicely first (the cooperative token), then fail the job with a
        // typed reason — first finish wins, so a worker that completes in
        // the same instant keeps its answer.
        job->cancel_requested.store(true, std::memory_order_relaxed);
        JobResult result;
        result.state = JobState::kFailed;
        result.fail_reason = FailReason::kWatchdog;
        result.detail =
            overdue ? "watchdog: job ran past its deadline grace; worker "
                      "presumed wedged"
                    : "watchdog: execution stalled past the stall bound";
        // The worker opened this job's exec span; if the watchdog wins the
        // finish, closing the request's trace track falls to it too.
        if (!complete(*job, std::move(result), /*end_queue=*/false,
                      /*end_exec=*/true)) {
          continue;
        }
        killed_any = true;
        if (config_.log != nullptr) {
          config_.log->error("watchdog/kill", request_now(*job),
                             {{"job", job->id},
                              {"kind", job_kind_name(job->kind)},
                              {"priority", priority_name(job->priority)},
                              {"reason", overdue ? "overdue" : "stalled"}});
        }
        ++watchdog_kills_;
        if (watchdog_kills_metric_ != nullptr) watchdog_kills_metric_->inc();
        // The worker is presumed wedged inside the job: retire its slot and
        // bring a replacement up so pool capacity survives the stall. The
        // wedged thread exits its loop when the stalled call returns.
        slot->replaced.store(true, std::memory_order_release);
        ++workers_replaced_;
        if (workers_replaced_metric_ != nullptr) {
          workers_replaced_metric_->inc();
        }
        spawn_worker_locked();
      }
    }
    // Postmortem: a kill means something wedged; snapshot the whole broker
    // while the evidence is fresh. Outside workers_mu_ — status() retakes it.
    if (killed_any && !config_.postmortem_path.empty()) {
      (void)write_status_file(status(), config_.postmortem_path);
    }
    lock.lock();
  }
}

ServerStatus CbesServer::status() const {
  ServerStatus s;
  s.queue_depth = queue_.depth();
  s.queue_max_depth = queue_.max_depth();
  s.queue_by_class = queue_.depth_by_class();
  {
    const Job::Clock::time_point now = Job::Clock::now();
    const std::lock_guard lock(workers_mu_);
    s.workers.reserve(workers_.size());
    for (const auto& slot : workers_) {
      WorkerStatus w;
      w.replaced = slot->replaced.load(std::memory_order_relaxed);
      {
        const std::lock_guard slot_lock(slot->mu);
        if (slot->current != nullptr) {
          w.busy = true;
          w.job_id = slot->current->id;
          w.busy_seconds = seconds_between(slot->started, now);
        }
      }
      s.workers.push_back(w);
    }
    s.watchdog_kills = watchdog_kills_;
    s.workers_replaced = workers_replaced_;
  }
  for (const resilience::CircuitBreaker* b :
       {&monitor_breaker_, &calibration_breaker_}) {
    BreakerStatus bs;
    bs.name = b->name();
    bs.state = b->state();
    bs.trips = b->trips();
    bs.short_circuits = b->short_circuits();
    s.breakers.push_back(std::move(bs));
  }
  s.shed_level = shedder_.level();
  s.shed_count = queue_.shed_count();
  s.lkg_snapshots = lkg_snapshots_served();
  s.jobs_done = done_count_.load(std::memory_order_relaxed);
  s.jobs_cancelled = cancelled_count_.load(std::memory_order_relaxed);
  s.jobs_failed = failed_count_.load(std::memory_order_relaxed);
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.cache_invalidations = cache_.invalidations();
  s.cache_evictions = cache_.evictions();
  s.cache_entries = cache_.size();
  s.compiled_hits = compiled_cache_.hits();
  s.compiled_misses = compiled_cache_.misses();
  s.health = health_state();
  s.topology_nodes = service_->topology().node_count();
  s.topology_path_classes = service_->latency_model().class_count();
  s.topology_model_bytes = service_->latency_model().memory_bytes();
  s.jobs_recorded = recorder_.total();
  s.recent = recorder_.last();
  return s;
}

void CbesServer::execute(Job& job) {
  const Job::Clock::time_point started = Job::Clock::now();
  const auto klass = static_cast<std::size_t>(job.priority);
  JobResult result;
  result.queue_seconds = seconds_between(job.submitted, started);
  if (queue_seconds_ != nullptr) queue_seconds_->observe(result.queue_seconds);
  if (queue_wait_by_class_[klass] != nullptr) {
    queue_wait_by_class_[klass]->observe(result.queue_seconds);
  }
  // The queue sojourn ends at dispatch whatever happens next.
  if (config_.trace != nullptr) config_.trace->async_end("queue", job.id);

  if (job.should_stop()) {
    result.state = JobState::kCancelled;
    result.detail = job.cancel_requested.load(std::memory_order_relaxed)
                        ? "cancelled while queued"
                        : "deadline expired while queued";
    if (jobs_cancelled_ != nullptr) jobs_cancelled_->inc();
    cancelled_count_.fetch_add(1, std::memory_order_relaxed);
    if (total_by_class_outcome_[klass][1] != nullptr) {
      total_by_class_outcome_[klass][1]->observe(result.queue_seconds);
    }
    complete(job, std::move(result), /*end_queue=*/false, /*end_exec=*/false);
    return;
  }

  job.mark_running();
  if (config_.trace != nullptr) config_.trace->async_begin("exec", job.id);

  // Brown-out dispatch policy for batch work: at cached-only level, batch
  // predictions may only probe the cache; batch search/compare work (always
  // fresh evaluation) is shed outright. Interactive/normal jobs never shed.
  bool cache_only = false;
  if (config_.enable_shedding && job.priority == Priority::kBatch &&
      shedder_.level() >= resilience::BrownoutLevel::kCachedOnly) {
    if (job.kind == JobKind::kPredict) {
      cache_only = true;
    } else {
      result.state = JobState::kFailed;
      result.fail_reason = FailReason::kShed;
      result.detail =
          "shed under brown-out (cached-only): fresh evaluation refused for "
          "batch work";
      if (cache_only_shed_ != nullptr) cache_only_shed_->inc();
      if (jobs_failed_ != nullptr) jobs_failed_->inc();
      failed_count_.fetch_add(1, std::memory_order_relaxed);
      if (total_by_class_outcome_[klass][2] != nullptr) {
        total_by_class_outcome_[klass][2]->observe(result.queue_seconds);
      }
      complete(job, std::move(result), /*end_queue=*/false,
               /*end_exec=*/true);
      return;
    }
  }

  // Server-side chaos: an active worker-stall window wedges this execution
  // attempt for its magnitude in wall seconds — exactly what the watchdog
  // exists to notice.
  if (config_.chaos != nullptr) {
    const double stall = config_.chaos->worker_stall_seconds(request_now(job));
    if (stall > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(stall));
    }
  }

  // Transient failures (injected or real) retry under the RetryPolicy:
  // seeded, jittered exponential backoff keyed by job id, bounded by the
  // request deadline. Each attempt starts from a fresh result so a
  // half-computed answer never leaks. Contract violations fail immediately —
  // retrying a malformed request cannot succeed.
  for (std::size_t attempt = 0;; ++attempt) {
    JobResult fresh;
    fresh.state = JobState::kDone;
    fresh.queue_seconds = result.queue_seconds;
    try {
      if (config_.fault_hook) config_.fault_hook(job);
      throw_if_stopping(job);
      run_attempt(job, fresh, cache_only);
      result = std::move(fresh);
      break;
    } catch (const JobCancelled&) {
      result.state = JobState::kCancelled;
      result.detail = "cancelled mid-execution (deadline or caller)";
      break;
    } catch (const fault::TransientError& e) {
      if (retry_policy_.exhausted(attempt) || job.should_stop()) {
        result.state = JobState::kFailed;
        result.fail_reason = FailReason::kTransient;
        result.detail = std::string("transient failure (retries exhausted): ") +
                        e.what();
        break;
      }
      if (retries_ != nullptr) retries_->inc();
      if (config_.trace != nullptr) {
        obs::TraceArgs args;
        args.add("attempt", attempt + 1);
        config_.trace->async_instant("retry", job.id, std::move(args));
      }
      // Never sleep past the deadline: the backoff is clipped to what is
      // left of the request's budget.
      const auto backoff = std::chrono::duration_cast<Job::Clock::duration>(
          std::chrono::duration<double>(
              retry_policy_.backoff_seconds(job.id, attempt)));
      std::this_thread::sleep_for(
          std::min(backoff, job.deadline.remaining()));
    } catch (const std::exception& e) {
      result.state = JobState::kFailed;
      result.fail_reason = FailReason::kContract;
      result.detail = e.what();
      break;
    }
  }
  result.run_seconds = seconds_between(started, Job::Clock::now());
  if (run_seconds_ != nullptr) run_seconds_->observe(result.run_seconds);
  if (exec_by_class_[klass] != nullptr) {
    exec_by_class_[klass]->observe(result.run_seconds);
  }
  // Counters update before finish() so a client woken by wait() observes
  // them. Each job is metered exactly once — here, by its worker; a watchdog
  // kill only bumps the watchdog's own counters (the worker's eventual
  // losing finish still accounts for the work it actually did).
  if (result.degraded && jobs_degraded_ != nullptr) jobs_degraded_->inc();
  std::size_t outcome = 2;
  switch (result.state) {
    case JobState::kDone:
      if (jobs_done_ != nullptr) jobs_done_->inc();
      done_count_.fetch_add(1, std::memory_order_relaxed);
      outcome = 0;
      break;
    case JobState::kCancelled:
      if (jobs_cancelled_ != nullptr) jobs_cancelled_->inc();
      cancelled_count_.fetch_add(1, std::memory_order_relaxed);
      outcome = 1;
      break;
    default:
      if (jobs_failed_ != nullptr) jobs_failed_->inc();
      failed_count_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (total_by_class_outcome_[klass][outcome] != nullptr) {
    total_by_class_outcome_[klass][outcome]->observe(result.queue_seconds +
                                                     result.run_seconds);
  }
  complete(job, std::move(result), /*end_queue=*/false, /*end_exec=*/true);
}

void CbesServer::note_health(const LoadSnapshot& snapshot) {
  if (snapshot.health.empty()) return;
  const std::lock_guard lock(health_mu_);
  if (last_health_.size() == snapshot.health.size()) {
    for (std::size_t i = 0; i < snapshot.health.size(); ++i) {
      if (last_health_[i] == snapshot.health[i]) continue;
      cache_.invalidate_node(NodeId{i});
      if (health_invalidations_ != nullptr) health_invalidations_->inc();
      if (config_.log != nullptr) {
        // Worsening health is warn-worthy; recovery is informational.
        const bool worse = snapshot.health[i] > last_health_[i];
        config_.log->log(
            worse ? obs::LogLevel::kWarn : obs::LogLevel::kInfo,
            "health/transition", snapshot.taken_at,
            {{"node", i},
             {"from", health_name(last_health_[i])},
             {"to", health_name(snapshot.health[i])},
             {"epoch", snapshot.epoch}});
      }
    }
  }
  last_health_ = snapshot.health;
}

std::vector<NodeHealth> CbesServer::health_state() const {
  const std::lock_guard lock(health_mu_);
  return last_health_;
}

void CbesServer::restore_health(std::vector<NodeHealth> health) {
  const std::lock_guard lock(health_mu_);
  last_health_ = std::move(health);
}

std::vector<WarmHint> CbesServer::warm_hints(std::size_t max_hints) const {
  return cache_.warm_hints(max_hints);
}

std::size_t CbesServer::warm(const std::vector<WarmHint>& hints, Seconds now) {
  bool degraded = false;
  const LoadSnapshot snapshot = snapshot_for(now, degraded);
  if (degraded) return 0;  // never warm the cache from a degraded picture
  const std::size_t nodes = service_->topology().node_count();
  std::size_t warmed = 0;
  for (const WarmHint& hint : hints) {
    if (!service_->has_profile(hint.app) || hint.assignment.empty()) continue;
    std::vector<NodeId> assignment;
    assignment.reserve(hint.assignment.size());
    bool valid = true;
    for (const std::uint32_t index : hint.assignment) {
      if (index >= nodes) {
        valid = false;
        break;
      }
      assignment.emplace_back(NodeId{index});
    }
    if (!valid) continue;
    const Mapping mapping(std::move(assignment));
    if (!mapping.fits(service_->topology()) ||
        first_dead_node(mapping, snapshot).valid()) {
      continue;
    }
    try {
      bool cache_hit = false;
      (void)cached_predict(hint.app, mapping, snapshot, /*degraded=*/false,
                           cache_hit);
      ++warmed;
    } catch (const std::exception&) {
      // A hint from a previous life may no longer evaluate; warming is
      // best-effort by definition.
    }
  }
  return warmed;
}

LoadSnapshot CbesServer::snapshot_for(Seconds now, bool& degraded) {
  const SystemMonitor& monitor = service_->monitor();
  const bool outage =
      config_.chaos != nullptr && config_.chaos->monitor_down(now);
  if (monitor_breaker_.allow(now)) {
    if (outage) {
      monitor_breaker_.record_failure(now);
    } else {
      monitor_breaker_.record_success(now);
      const bool stale = config_.max_snapshot_age != kNever &&
                         monitor.staleness(now) > config_.max_snapshot_age;
      LoadSnapshot snap = monitor.snapshot(now);
      note_health(snap);
      if (!stale) {
        {
          const std::lock_guard lock(lkg_mu_);
          lkg_snapshot_ = snap;
        }
        degraded = false;
        return snap;
      }
      // Stale picture: serve from no-load latencies instead of blocking on
      // the monitoring subsystem — flagged so clients can weigh the answer.
      // Health verdicts are kept: degraded service still never uses a dead
      // node, and dead nodes keep their pessimal availability values.
      degraded = true;
      LoadSnapshot idle = LoadSnapshot::idle(service_->topology().node_count());
      idle.taken_at = now;
      idle.epoch = snap.epoch;
      idle.health = snap.health;
      for (std::size_t i = 0; i < idle.health.size(); ++i) {
        if (idle.health[i] == NodeHealth::kDead) {
          idle.cpu_avail[i] = snap.cpu_avail[i];
          idle.nic_util[i] = snap.nic_util[i];
        }
      }
      return idle;
    }
  }
  // The monitor is unavailable (outage mid-window, or the breaker is open
  // and short-circuiting): serve the last-known-good picture, degraded.
  // Health verdicts ride along, so dead nodes stay fenced even now.
  degraded = true;
  {
    const std::lock_guard lock(lkg_mu_);
    if (lkg_snapshot_.has_value()) {
      ++lkg_served_;
      if (lkg_served_metric_ != nullptr) lkg_served_metric_->inc();
      LoadSnapshot snap = *lkg_snapshot_;
      snap.taken_at = now;
      return snap;
    }
  }
  // No good picture was ever captured: the no-load idle picture is all
  // there is.
  LoadSnapshot idle = LoadSnapshot::idle(service_->topology().node_count());
  idle.taken_at = now;
  return idle;
}

std::shared_ptr<const CompiledProfile> CbesServer::compiled_for(
    const AppProfile& profile, const LoadSnapshot& snapshot, Seconds now,
    bool& degraded) {
  const double extra = config_.chaos != nullptr
                           ? config_.chaos->calibration_slow_seconds(now)
                           : 0.0;
  const bool allowed = calibration_breaker_.allow(now);
  if (!allowed) {
    const std::lock_guard lock(lkg_compiled_mu_);
    const auto found = lkg_compiled_.find(profile.hash());
    if (found != lkg_compiled_.end()) {
      degraded = true;
      return found->second;
    }
    // Nothing last-known-good for this profile: fall through and pay for a
    // fresh compile — a slow answer beats none.
  }
  std::shared_ptr<const CompiledProfile> artifact = compiled_cache_.get_or_build(
      profile.hash(), snapshot.epoch, degraded, [&] {
        if (extra > 0.0) {
          // Server-side chaos: compilation crawls for `extra` wall seconds.
          std::this_thread::sleep_for(std::chrono::duration<double>(extra));
        }
        return service_->evaluator().compile(profile, snapshot);
      });
  if (allowed) {
    // A compile requested during a slow-calibration window counts against
    // the breaker even when the artifact came from cache: the dependency is
    // unhealthy, and pretending otherwise just delays the trip.
    if (extra > 0.0) {
      calibration_breaker_.record_failure(now);
    } else {
      calibration_breaker_.record_success(now);
    }
  }
  {
    const std::lock_guard lock(lkg_compiled_mu_);
    lkg_compiled_[profile.hash()] = artifact;
  }
  return artifact;
}

Prediction CbesServer::cached_predict(const std::string& app,
                                      const Mapping& mapping,
                                      const LoadSnapshot& snapshot,
                                      bool degraded, bool& cache_hit) {
  const bool cacheable = config_.enable_cache && !degraded;
  if (cacheable) {
    if (std::optional<Prediction> hit = cache_.lookup(app, mapping, snapshot)) {
      cache_hit = true;
      return *std::move(hit);
    }
  }
  Prediction prediction = service_->predict_under(app, mapping, snapshot);
  if (cacheable) cache_.insert(app, mapping, snapshot, prediction);
  return prediction;
}

void CbesServer::run_attempt(Job& job, JobResult& result, bool cache_only) {
  switch (job.kind) {
    case JobKind::kPredict:
      run_predict(job, result, cache_only);
      break;
    case JobKind::kCompare:
      run_compare(job, result);
      break;
    case JobKind::kSchedule:
      run_schedule(job, result);
      break;
    case JobKind::kRemap:
      run_remap(job, result);
      break;
  }
}

namespace {

/// One "snapshot" point on the request's async track: which epoch the answer
/// will be computed against, and whether the picture is already degraded.
void trace_snapshot(obs::TraceSession* trace, const Job& job,
                    const LoadSnapshot& snapshot, bool degraded) {
  if (trace == nullptr) return;
  obs::TraceArgs args;
  args.add("epoch", snapshot.epoch).add("degraded", degraded);
  trace->async_instant("snapshot", job.id, std::move(args));
}

}  // namespace

void CbesServer::run_predict(Job& job, JobResult& result, bool cache_only) {
  const PredictRequest& request = job.predict;
  const LoadSnapshot snapshot = snapshot_for(request.now, result.degraded);
  result.snapshot_epoch = snapshot.epoch;
  trace_snapshot(config_.trace, job, snapshot, result.degraded);
  const NodeId dead = first_dead_node(request.mapping, snapshot);
  if (dead.valid()) {
    // No finite answer exists; refusing beats serving "infinity" as a number.
    if (dead_node_refusals_ != nullptr) dead_node_refusals_->inc();
    result.state = JobState::kFailed;
    result.fail_reason = FailReason::kDeadNode;
    result.detail =
        "mapping places ranks on dead node " + std::to_string(dead.value);
    return;
  }
  if (cache_only) {
    // Brown-out (cached-only level): a batch prediction may only probe the
    // cache; evaluating fresh is exactly the work being shed.
    if (std::optional<Prediction> hit =
            cache_.lookup(request.app, request.mapping, snapshot)) {
      result.prediction = *std::move(hit);
      result.cache_hit = true;
      return;
    }
    if (cache_only_shed_ != nullptr) cache_only_shed_->inc();
    result.state = JobState::kFailed;
    result.fail_reason = FailReason::kShed;
    result.detail =
        "shed under brown-out (cached-only): prediction not in cache";
    return;
  }
  throw_if_stopping(job);
  {
    const obs::AsyncTraceSpan eval(config_.trace, "eval", job.id);
    result.prediction = cached_predict(request.app, request.mapping, snapshot,
                                       result.degraded, result.cache_hit);
  }
  result.degraded = result.degraded || result.prediction.degraded;
}

void CbesServer::run_compare(Job& job, JobResult& result) {
  const CompareRequest& request = job.compare;
  const LoadSnapshot snapshot = snapshot_for(request.now, result.degraded);
  result.snapshot_epoch = snapshot.epoch;
  trace_snapshot(config_.trace, job, snapshot, result.degraded);
  const obs::AsyncTraceSpan eval(config_.trace, "eval", job.id);
  result.comparison.predicted.reserve(request.candidates.size());
  bool any_alive = false;
  for (std::size_t i = 0; i < request.candidates.size(); ++i) {
    throw_if_stopping(job);
    // Candidates on dead nodes stay in the answer — position matters to the
    // client — but score infinity and never win.
    if (first_dead_node(request.candidates[i], snapshot).valid()) {
      result.comparison.predicted.push_back(kNever);
      continue;
    }
    const Prediction prediction =
        cached_predict(request.app, request.candidates[i], snapshot,
                       result.degraded, result.cache_hit);
    result.degraded = result.degraded || prediction.degraded;
    result.comparison.predicted.push_back(prediction.time);
    if (!any_alive ||
        prediction.time < result.comparison.predicted[result.comparison.best]) {
      result.comparison.best = i;
    }
    any_alive = true;
  }
  if (!any_alive) {
    if (dead_node_refusals_ != nullptr) dead_node_refusals_->inc();
    result.state = JobState::kFailed;
    result.fail_reason = FailReason::kDeadNode;
    result.detail = "every candidate mapping touches a dead node";
  }
}

void CbesServer::run_schedule(Job& job, JobResult& result) {
  const ScheduleRequest& request = job.schedule;
  const LoadSnapshot snapshot = snapshot_for(request.now, result.degraded);
  result.snapshot_epoch = snapshot.epoch;
  trace_snapshot(config_.trace, job, snapshot, result.degraded);
  // Copy the profile under the service lock: the search may outlive many
  // profile re-registrations.
  const AppProfile profile = service_->profile_copy(request.app);
  // Dead nodes are masked out of the search pool; admission only checked the
  // full pool, so re-check capacity against what actually survives.
  const NodePool pool =
      pool_for(service_->topology(), request).alive_only(snapshot);
  if (request.nranks > pool.total_slots()) {
    if (dead_node_refusals_ != nullptr) dead_node_refusals_->inc();
    result.state = JobState::kFailed;
    result.fail_reason = FailReason::kDeadNode;
    result.detail = "only " + std::to_string(pool.total_slots()) +
                    " slots remain alive for " + std::to_string(request.nranks) +
                    " ranks";
    return;
  }
  throw_if_stopping(job);  // compile can be slow; don't start it past deadline
  std::shared_ptr<const CompiledProfile> compiled;
  {
    obs::TraceArgs args;
    args.add("profile_hash", static_cast<std::uint64_t>(profile.hash()));
    const obs::AsyncTraceSpan span(config_.trace, "compile", job.id,
                                   std::move(args));
    compiled = compiled_for(profile, snapshot, request.now, result.degraded);
  }
  const CbesCost cost(std::move(compiled));
  const JobStopToken token(job);

  obs::TraceArgs search_args;
  search_args.add("algo", algo_name(request.algo))
      .add("nranks", request.nranks);
  const obs::AsyncTraceSpan search_span(config_.trace, "search", job.id,
                                        std::move(search_args));
  ScheduleResult search;
  switch (request.algo) {
    case Algo::kSa: {
      // Per-job RNG: the job seed replaces the params seed, so concurrent
      // jobs are deterministic in isolation and never share a stream.
      if (request.sa_shards > 1) {
        ShardedSaParams params;
        params.inner = request.sa;
        params.shards = request.sa_shards;
        params.seed = request.seed;
        ShardedAnnealScheduler scheduler(params);
        scheduler.set_stop_token(&token);
        search = scheduler.schedule(request.nranks, pool, cost);
        break;
      }
      SaParams params = request.sa;
      params.seed = request.seed;
      SimulatedAnnealingScheduler scheduler(params);
      scheduler.set_stop_token(&token);
      search = scheduler.schedule(request.nranks, pool, cost);
      break;
    }
    case Algo::kGa: {
      GaParams params = request.ga;
      params.seed = request.seed;
      GeneticScheduler scheduler(params);
      scheduler.set_stop_token(&token);
      search = scheduler.schedule(request.nranks, pool, cost);
      break;
    }
    case Algo::kRandom: {
      RandomScheduler scheduler(request.seed);
      scheduler.set_stop_token(&token);
      search = scheduler.schedule(request.nranks, pool, cost);
      break;
    }
  }
  if (search.cancelled) {
    // Deadline or cancellation fired mid-search: report cancelled and drop
    // the partial best — a half-annealed mapping is not an answer.
    result.state = JobState::kCancelled;
    result.detail = "cancelled mid-search (deadline or caller)";
    return;
  }
  result.schedule = std::move(search);
}

void CbesServer::run_remap(Job& job, JobResult& result) {
  const RemapRequest& request = job.remap;
  const LoadSnapshot snapshot = snapshot_for(request.now, result.degraded);
  result.snapshot_epoch = snapshot.epoch;
  trace_snapshot(config_.trace, job, snapshot, result.degraded);
  const AppProfile profile = service_->profile_copy(request.app);

  // Candidate search over the *alive* pool — remap-on-failure exists exactly
  // because request.current may touch nodes that have died; staying there
  // scores infinite remaining time, so any live candidate wins.
  ScheduleRequest search_request;
  search_request.pool_nodes = request.pool_nodes;
  search_request.max_slots_per_node = request.max_slots_per_node;
  const NodePool pool =
      pool_for(service_->topology(), search_request).alive_only(snapshot);
  if (request.current.nranks() > pool.total_slots()) {
    if (dead_node_refusals_ != nullptr) dead_node_refusals_->inc();
    result.state = JobState::kFailed;
    result.fail_reason = FailReason::kDeadNode;
    result.detail = "only " + std::to_string(pool.total_slots()) +
                    " slots remain alive for " +
                    std::to_string(request.current.nranks()) + " ranks";
    return;
  }

  throw_if_stopping(job);
  std::shared_ptr<const CompiledProfile> compiled;
  {
    obs::TraceArgs args;
    args.add("profile_hash", static_cast<std::uint64_t>(profile.hash()));
    const obs::AsyncTraceSpan span(config_.trace, "compile", job.id,
                                   std::move(args));
    compiled = compiled_for(profile, snapshot, request.now, result.degraded);
  }
  const CbesCost cost(compiled);
  const JobStopToken token(job);
  SaParams params = request.sa;
  params.seed = request.seed;
  SimulatedAnnealingScheduler scheduler(params);
  scheduler.set_stop_token(&token);
  ScheduleResult search;
  {
    obs::TraceArgs args;
    args.add("algo", "sa").add("nranks", request.current.nranks());
    const obs::AsyncTraceSpan span(config_.trace, "search", job.id,
                                   std::move(args));
    search = scheduler.schedule(request.current.nranks(), pool, cost);
  }
  if (search.cancelled) {
    result.state = JobState::kCancelled;
    result.detail = "cancelled mid-search (deadline or caller)";
    return;
  }

  result.remap_candidate = search.mapping;
  throw_if_stopping(job);
  // The decision round reuses the search's compiled artifact: the stay cost
  // is evaluated once and the candidate priced against it.
  const RemapRound round(service_->evaluator(), compiled, request.current,
                         request.progress, request.cost);
  result.remap = round.consider(result.remap_candidate);
}

}  // namespace cbes::server
