#include "server/server.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "sched/cost.h"
#include "sched/pool.h"

namespace cbes::server {

namespace {

/// Bridges a job's deadline/cancellation state into the schedulers' step
/// loops (Scheduler::set_stop_token).
class JobStopToken final : public StopToken {
 public:
  explicit JobStopToken(const Job& job) noexcept : job_(&job) {}
  [[nodiscard]] bool stop_requested() const noexcept override {
    return job_->should_stop();
  }

 private:
  const Job* job_;
};

[[nodiscard]] double seconds_between(Job::Clock::time_point from,
                                     Job::Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// The pool a schedule request draws from: the tenant's explicit node list,
/// or the whole cluster. Throws ContractError on malformed node lists, which
/// submit() converts into a rejection.
[[nodiscard]] NodePool pool_for(const ClusterTopology& topology,
                                const ScheduleRequest& request) {
  if (request.pool_nodes.empty()) {
    return NodePool::whole_cluster(topology);
  }
  return NodePool(topology, request.pool_nodes, request.max_slots_per_node);
}

}  // namespace

CbesServer::CbesServer(CbesService& service, ServerConfig config)
    : service_(&service),
      config_(config),
      queue_(config.max_queue_depth),
      cache_(config.cache) {
  CBES_CHECK_MSG(config_.workers >= 1, "need at least one worker thread");
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *config_.metrics;
    queue_.set_metrics(&reg);
    cache_.set_metrics(&reg);
    reg.gauge("cbes_server_workers", "Executor threads serving jobs")
        .set(static_cast<double>(config_.workers));
    jobs_done_ =
        &reg.counter("cbes_server_jobs_done_total", "Jobs completed with an answer");
    jobs_cancelled_ = &reg.counter("cbes_server_jobs_cancelled_total",
                                   "Jobs cancelled by deadline or caller");
    jobs_failed_ = &reg.counter("cbes_server_jobs_failed_total",
                                "Jobs failed on a contract violation");
    jobs_degraded_ = &reg.counter(
        "cbes_server_jobs_degraded_total",
        "Jobs answered from the no-load picture because the monitor was stale");
    queue_seconds_ =
        &reg.histogram("cbes_server_queue_seconds",
                       obs::Histogram::exponential(1e-6, 4.0, 12),
                       "Wall time jobs spent queued before dispatch");
    run_seconds_ =
        &reg.histogram("cbes_server_run_seconds",
                       obs::Histogram::exponential(1e-6, 4.0, 12),
                       "Wall time jobs spent executing");
  }
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

CbesServer::~CbesServer() { shutdown(/*drain=*/true); }

std::shared_ptr<Job> CbesServer::make_job(JobKind kind,
                                          const SubmitOptions& options) {
  auto job = std::make_shared<Job>();
  job->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  job->priority = options.priority;
  job->kind = kind;
  job->submitted = Job::Clock::now();
  const std::chrono::milliseconds budget =
      options.deadline.count() > 0 ? options.deadline
                                   : config_.default_deadline;
  if (budget.count() > 0) job->deadline = job->submitted + budget;
  return job;
}

void CbesServer::reject(Job& job, const std::string& reason) {
  JobResult result;
  result.state = JobState::kRejected;
  result.detail = reason;
  job.finish(std::move(result));
}

JobHandle CbesServer::admit(std::shared_ptr<Job> job,
                            const std::string& reason) {
  JobHandle handle(job);
  if (!reason.empty()) {
    reject(*job, reason);
    return handle;
  }
  const RequestQueue::Admission admission = queue_.offer(job);
  if (!admission.admitted) reject(*job, admission.reason);
  return handle;
}

JobHandle CbesServer::submit(PredictRequest request, SubmitOptions options) {
  auto job = make_job(JobKind::kPredict, options);
  std::string reason;
  if (!service_->has_profile(request.app)) {
    reason = "no profile registered for: " + request.app;
  } else if (request.mapping.nranks() == 0) {
    reason = "empty mapping";
  } else if (!request.mapping.fits(service_->topology())) {
    reason = "mapping does not fit the cluster";
  }
  job->predict = std::move(request);
  return admit(std::move(job), reason);
}

JobHandle CbesServer::submit(CompareRequest request, SubmitOptions options) {
  auto job = make_job(JobKind::kCompare, options);
  std::string reason;
  if (!service_->has_profile(request.app)) {
    reason = "no profile registered for: " + request.app;
  } else if (request.candidates.empty()) {
    reason = "nothing to compare";
  } else {
    for (const Mapping& candidate : request.candidates) {
      if (!candidate.fits(service_->topology())) {
        reason = "candidate mapping does not fit the cluster";
        break;
      }
    }
  }
  job->compare = std::move(request);
  return admit(std::move(job), reason);
}

JobHandle CbesServer::submit(ScheduleRequest request, SubmitOptions options) {
  auto job = make_job(JobKind::kSchedule, options);
  std::string reason;
  if (!service_->has_profile(request.app)) {
    reason = "no profile registered for: " + request.app;
  } else if (request.nranks == 0) {
    reason = "cannot schedule zero ranks";
  } else {
    try {
      const NodePool pool = pool_for(service_->topology(), request);
      if (request.nranks > pool.total_slots()) {
        reason = "pool has " + std::to_string(pool.total_slots()) +
                 " slots for " + std::to_string(request.nranks) + " ranks";
      }
    } catch (const ContractError& e) {
      reason = e.what();
    }
  }
  job->schedule = std::move(request);
  return admit(std::move(job), reason);
}

void CbesServer::shutdown(bool drain) {
  shut_down_.store(true, std::memory_order_relaxed);
  queue_.close();
  if (!drain) {
    for (const std::shared_ptr<Job>& job : queue_.drain()) {
      JobResult result;
      result.state = JobState::kCancelled;
      result.detail = "server shutdown";
      job->finish(std::move(result));
      if (jobs_cancelled_ != nullptr) jobs_cancelled_->inc();
    }
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void CbesServer::worker_loop() {
  while (std::shared_ptr<Job> job = queue_.take()) {
    execute(*job);
  }
}

void CbesServer::execute(Job& job) {
  const Job::Clock::time_point started = Job::Clock::now();
  JobResult result;
  result.queue_seconds = seconds_between(job.submitted, started);
  if (queue_seconds_ != nullptr) queue_seconds_->observe(result.queue_seconds);

  if (job.should_stop()) {
    result.state = JobState::kCancelled;
    result.detail = job.cancel_requested.load(std::memory_order_relaxed)
                        ? "cancelled while queued"
                        : "deadline expired while queued";
    if (jobs_cancelled_ != nullptr) jobs_cancelled_->inc();
    job.finish(std::move(result));
    return;
  }

  job.mark_running();
  result.state = JobState::kDone;
  try {
    switch (job.kind) {
      case JobKind::kPredict:
        run_predict(job, result);
        break;
      case JobKind::kCompare:
        run_compare(job, result);
        break;
      case JobKind::kSchedule:
        run_schedule(job, result);
        break;
    }
  } catch (const std::exception& e) {
    result.state = JobState::kFailed;
    result.detail = e.what();
  }
  result.run_seconds = seconds_between(started, Job::Clock::now());
  if (run_seconds_ != nullptr) run_seconds_->observe(result.run_seconds);
  if (result.degraded && jobs_degraded_ != nullptr) jobs_degraded_->inc();
  switch (result.state) {
    case JobState::kDone:
      if (jobs_done_ != nullptr) jobs_done_->inc();
      break;
    case JobState::kCancelled:
      if (jobs_cancelled_ != nullptr) jobs_cancelled_->inc();
      break;
    default:
      if (jobs_failed_ != nullptr) jobs_failed_->inc();
      break;
  }
  job.finish(std::move(result));
}

LoadSnapshot CbesServer::snapshot_for(Seconds now, bool& degraded) const {
  const SystemMonitor& monitor = service_->monitor();
  degraded = config_.max_snapshot_age != kNever &&
             monitor.staleness(now) > config_.max_snapshot_age;
  if (!degraded) return monitor.snapshot(now);
  // Stale picture: serve from no-load latencies instead of blocking on the
  // monitoring subsystem — flagged so clients can weigh the answer.
  LoadSnapshot snap = LoadSnapshot::idle(service_->topology().node_count());
  snap.taken_at = now;
  snap.epoch = monitor.epoch_at(now);
  return snap;
}

Prediction CbesServer::cached_predict(const std::string& app,
                                      const Mapping& mapping,
                                      const LoadSnapshot& snapshot,
                                      bool degraded, bool& cache_hit) {
  const bool cacheable = config_.enable_cache && !degraded;
  if (cacheable) {
    if (std::optional<Prediction> hit = cache_.lookup(app, mapping, snapshot)) {
      cache_hit = true;
      return *std::move(hit);
    }
  }
  Prediction prediction = service_->predict_under(app, mapping, snapshot);
  if (cacheable) cache_.insert(app, mapping, snapshot, prediction);
  return prediction;
}

void CbesServer::run_predict(Job& job, JobResult& result) {
  const PredictRequest& request = job.predict;
  const LoadSnapshot snapshot = snapshot_for(request.now, result.degraded);
  result.prediction = cached_predict(request.app, request.mapping, snapshot,
                                     result.degraded, result.cache_hit);
}

void CbesServer::run_compare(Job& job, JobResult& result) {
  const CompareRequest& request = job.compare;
  const LoadSnapshot snapshot = snapshot_for(request.now, result.degraded);
  result.comparison.predicted.reserve(request.candidates.size());
  for (std::size_t i = 0; i < request.candidates.size(); ++i) {
    const Prediction prediction =
        cached_predict(request.app, request.candidates[i], snapshot,
                       result.degraded, result.cache_hit);
    result.comparison.predicted.push_back(prediction.time);
    if (prediction.time < result.comparison.predicted[result.comparison.best]) {
      result.comparison.best = i;
    }
  }
}

void CbesServer::run_schedule(Job& job, JobResult& result) {
  const ScheduleRequest& request = job.schedule;
  const LoadSnapshot snapshot = snapshot_for(request.now, result.degraded);
  // Copy the profile under the service lock: the search may outlive many
  // profile re-registrations.
  const AppProfile profile = service_->profile_copy(request.app);
  const NodePool pool = pool_for(service_->topology(), request);
  const CbesCost cost(service_->evaluator(), profile, snapshot);
  const JobStopToken token(job);

  ScheduleResult search;
  switch (request.algo) {
    case Algo::kSa: {
      // Per-job RNG: the job seed replaces the params seed, so concurrent
      // jobs are deterministic in isolation and never share a stream.
      SaParams params = request.sa;
      params.seed = request.seed;
      SimulatedAnnealingScheduler scheduler(params);
      scheduler.set_stop_token(&token);
      search = scheduler.schedule(request.nranks, pool, cost);
      break;
    }
    case Algo::kGa: {
      GaParams params = request.ga;
      params.seed = request.seed;
      GeneticScheduler scheduler(params);
      scheduler.set_stop_token(&token);
      search = scheduler.schedule(request.nranks, pool, cost);
      break;
    }
    case Algo::kRandom: {
      RandomScheduler scheduler(request.seed);
      scheduler.set_stop_token(&token);
      search = scheduler.schedule(request.nranks, pool, cost);
      break;
    }
  }
  if (search.cancelled) {
    // Deadline or cancellation fired mid-search: report cancelled and drop
    // the partial best — a half-annealed mapping is not an answer.
    result.state = JobState::kCancelled;
    result.detail = "cancelled mid-search (deadline or caller)";
    return;
  }
  result.schedule = std::move(search);
}

}  // namespace cbes::server
