#include "server/checkpoint.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/log.h"
#include "server/server.h"

namespace cbes::server {

namespace {

constexpr const char* kMagic = "CBESCKPT";
constexpr int kVersion = 1;

[[noreturn]] void malformed(const std::string& what) {
  throw CheckpointError("malformed checkpoint: " + what);
}

/// %.17g round-trips IEEE-754 binary64: strtod(fmt(x)) == x bit for bit.
void append_double(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

void append_coeffs(std::string& out, const LatencyCoeffs& c) {
  const double fields[] = {c.alpha,      c.beta,       c.k_alpha_cpu,
                           c.k_beta_cpu, c.k_beta_nic, c.fit_r_squared};
  for (double f : fields) {
    out += ' ';
    append_double(out, f);
  }
}

/// Whitespace-token cursor over one checkpoint line.
class LineParser {
 public:
  LineParser(const std::string& line, std::size_t number)
      : line_(line), number_(number) {}

  [[nodiscard]] std::string token(const char* what) {
    skip_spaces();
    const std::size_t start = pos_;
    while (pos_ < line_.size() && line_[pos_] != ' ') ++pos_;
    if (start == pos_) fail(std::string("missing ") + what);
    return line_.substr(start, pos_ - start);
  }

  void expect(const char* keyword) {
    if (token(keyword) != keyword) {
      fail(std::string("expected '") + keyword + '\'');
    }
  }

  [[nodiscard]] double number(const char* what) {
    const std::string tok = token(what);
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(tok.c_str(), &end);
    // ERANGE with a finite result is subnormal underflow — a value %.17g
    // legitimately emits (it still round-trips exactly); only overflow to
    // ±HUGE_VAL is corrupt.
    const bool overflow = errno == ERANGE && (value == HUGE_VAL ||
                                              value == -HUGE_VAL);
    if (end != tok.c_str() + tok.size() || overflow) {
      fail(std::string("bad number for ") + what + ": '" + tok + '\'');
    }
    return value;
  }

  [[nodiscard]] std::uint64_t count(const char* what) {
    const std::string tok = token(what);
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(tok.c_str(), &end, 10);
    if (end != tok.c_str() + tok.size() || errno == ERANGE ||
        tok.front() == '-') {
      fail(std::string("bad count for ") + what + ": '" + tok + '\'');
    }
    return value;
  }

  /// Everything after the current position (one leading space stripped);
  /// used for the fields that may themselves contain spaces and therefore
  /// come last on their line (path signatures, app names).
  [[nodiscard]] std::string rest(const char* what) {
    skip_spaces();
    if (pos_ >= line_.size()) fail(std::string("missing ") + what);
    return line_.substr(pos_);
  }

  void done() {
    skip_spaces();
    if (pos_ < line_.size()) fail("trailing garbage");
  }

 private:
  void skip_spaces() {
    while (pos_ < line_.size() && line_[pos_] == ' ') ++pos_;
  }
  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream os;
    os << what << " (line " << number_ << ": '" << line_ << "')";
    malformed(os.str());
  }

  const std::string& line_;
  std::size_t number_;
  std::size_t pos_ = 0;
};

/// Line cursor over the whole checkpoint text.
class TextParser {
 public:
  explicit TextParser(const std::string& text) {
    std::size_t start = 0;
    while (start <= text.size()) {
      const std::size_t nl = text.find('\n', start);
      if (nl == std::string::npos) {
        if (start < text.size()) lines_.push_back(text.substr(start));
        break;
      }
      lines_.push_back(text.substr(start, nl - start));
      start = nl + 1;
    }
  }

  [[nodiscard]] LineParser next(const char* what) {
    if (pos_ >= lines_.size()) {
      malformed(std::string("truncated before ") + what);
    }
    ++pos_;
    return LineParser{lines_[pos_ - 1], pos_};
  }

  void at_end() const {
    if (pos_ < lines_.size()) {
      malformed("content after 'end' (line " + std::to_string(pos_ + 1) + ")");
    }
  }

 private:
  std::vector<std::string> lines_;
  std::size_t pos_ = 0;
};

LatencyCoeffs parse_coeffs(LineParser& line) {
  LatencyCoeffs c;
  c.alpha = line.number("alpha");
  c.beta = line.number("beta");
  c.k_alpha_cpu = line.number("k_alpha_cpu");
  c.k_beta_cpu = line.number("k_beta_cpu");
  c.k_beta_nic = line.number("k_beta_nic");
  c.fit_r_squared = line.number("fit_r_squared");
  return c;
}

}  // namespace

std::string encode_checkpoint(const ServerCheckpoint& checkpoint) {
  std::string out;
  out += kMagic;
  out += ' ';
  out += std::to_string(kVersion);
  out += '\n';

  out += "loopback";
  append_coeffs(out, checkpoint.calibration.loopback);
  out += '\n';
  out += "partial ";
  out += checkpoint.calibration.partial ? '1' : '0';
  out += '\n';
  out += "classes " + std::to_string(checkpoint.calibration.classes.size());
  out += '\n';
  for (const auto& [sig, coeffs] : checkpoint.calibration.classes) {
    out += "class";
    append_coeffs(out, coeffs);
    out += ' ';
    out += sig;  // may contain spaces: last field on the line
    out += '\n';
  }

  out += "health " + std::to_string(checkpoint.health.size());
  for (NodeHealth h : checkpoint.health) {
    out += ' ';
    out += std::to_string(static_cast<unsigned>(h));
  }
  out += '\n';

  out += "hints " + std::to_string(checkpoint.warm_hints.size());
  out += '\n';
  for (const WarmHint& hint : checkpoint.warm_hints) {
    out += "hint " + std::to_string(hint.assignment.size());
    for (std::uint32_t node : hint.assignment) {
      out += ' ';
      out += std::to_string(node);
    }
    out += ' ';
    out += hint.app;  // may contain spaces: last field on the line
    out += '\n';
  }

  out += "end\n";
  return out;
}

ServerCheckpoint decode_checkpoint(const std::string& text) {
  TextParser parser(text);
  ServerCheckpoint checkpoint;

  {
    LineParser line = parser.next("header");
    line.expect(kMagic);
    const std::uint64_t version = line.count("version");
    if (version != static_cast<std::uint64_t>(kVersion)) {
      malformed("unsupported version " + std::to_string(version));
    }
    line.done();
  }
  {
    LineParser line = parser.next("loopback");
    line.expect("loopback");
    checkpoint.calibration.loopback = parse_coeffs(line);
    line.done();
  }
  {
    LineParser line = parser.next("partial");
    line.expect("partial");
    const std::uint64_t flag = line.count("partial flag");
    if (flag > 1) malformed("partial flag must be 0 or 1");
    checkpoint.calibration.partial = flag == 1;
    line.done();
  }
  std::uint64_t class_count = 0;
  {
    LineParser line = parser.next("classes");
    line.expect("classes");
    class_count = line.count("class count");
    line.done();
  }
  checkpoint.calibration.classes.reserve(class_count);
  for (std::uint64_t i = 0; i < class_count; ++i) {
    LineParser line = parser.next("class");
    line.expect("class");
    const LatencyCoeffs coeffs = parse_coeffs(line);
    std::string sig = line.rest("path signature");
    if (!checkpoint.calibration.classes.empty() &&
        sig <= checkpoint.calibration.classes.back().first) {
      malformed("path classes out of order at '" + sig + '\'');
    }
    checkpoint.calibration.classes.emplace_back(std::move(sig), coeffs);
  }
  {
    LineParser line = parser.next("health");
    line.expect("health");
    const std::uint64_t n = line.count("health count");
    checkpoint.health.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t verdict = line.count("health verdict");
      if (verdict > static_cast<std::uint64_t>(NodeHealth::kDead)) {
        malformed("health verdict out of range: " + std::to_string(verdict));
      }
      checkpoint.health.push_back(static_cast<NodeHealth>(verdict));
    }
    line.done();
  }
  std::uint64_t hint_count = 0;
  {
    LineParser line = parser.next("hints");
    line.expect("hints");
    hint_count = line.count("hint count");
    line.done();
  }
  checkpoint.warm_hints.reserve(hint_count);
  for (std::uint64_t i = 0; i < hint_count; ++i) {
    LineParser line = parser.next("hint");
    line.expect("hint");
    WarmHint hint;
    const std::uint64_t ranks = line.count("rank count");
    hint.assignment.reserve(ranks);
    for (std::uint64_t r = 0; r < ranks; ++r) {
      const std::uint64_t node = line.count("node index");
      if (node > std::numeric_limits<std::uint32_t>::max()) {
        malformed("node index out of range: " + std::to_string(node));
      }
      hint.assignment.push_back(static_cast<std::uint32_t>(node));
    }
    hint.app = line.rest("app name");
    checkpoint.warm_hints.push_back(std::move(hint));
  }
  {
    LineParser line = parser.next("end");
    line.expect("end");
    line.done();
  }
  parser.at_end();
  return checkpoint;
}

void save_checkpoint(const ServerCheckpoint& checkpoint,
                     const std::string& path, obs::Logger* log) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw CheckpointError("cannot open for writing: " + tmp);
    out << encode_checkpoint(checkpoint);
    out.flush();
    if (!out) throw CheckpointError("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("cannot replace checkpoint: " + path);
  }
  if (log != nullptr) {
    log->info("checkpoint/save", 0.0,
              {{"path", path},
               {"nodes", checkpoint.health.size()},
               {"hints", checkpoint.warm_hints.size()}});
  }
}

ServerCheckpoint load_checkpoint(const std::string& path, obs::Logger* log) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CheckpointError("cannot open checkpoint: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw CheckpointError("read failed: " + path);
  ServerCheckpoint checkpoint = decode_checkpoint(buffer.str());
  if (log != nullptr) {
    log->info("checkpoint/load", 0.0,
              {{"path", path},
               {"nodes", checkpoint.health.size()},
               {"hints", checkpoint.warm_hints.size()}});
  }
  return checkpoint;
}

ServerCheckpoint take_checkpoint(const CbesServer& server,
                                 std::size_t max_hints) {
  ServerCheckpoint checkpoint;
  checkpoint.calibration = server.service().latency_model().calibration_state();
  checkpoint.health = server.health_state();
  checkpoint.warm_hints = server.warm_hints(max_hints);
  return checkpoint;
}

std::size_t restore_server_state(CbesServer& server,
                                 const ServerCheckpoint& checkpoint,
                                 Seconds now) {
  server.restore_health(checkpoint.health);
  return server.warm(checkpoint.warm_hints, now);
}

}  // namespace cbes::server
