// CbesServer — the concurrent request-serving layer over the CbesService
// facade: a multi-tenant broker that turns the paper's synchronous service
// into a daemon serving many clients at once.
//
//   submit() ──> admission control ──> RequestQueue (priority classes)
//                                          │ take()
//                               ServerExecutor worker threads
//                                          │
//              EvalCache (snapshot-epoch memoization) / CbesService
//
// Design points (ISSUE 3 tentpole):
//   * bounded queue + reject-with-reason instead of unbounded latency;
//   * per-job deadlines and cooperative cancellation plumbed into the SA/GA
//     step loops via sched::StopToken — a job past its deadline reports
//     `cancelled`, never a partial anneal;
//   * predictions memoized by (app, mapping, snapshot epoch) and invalidated
//     by the paper's >10% ACPU drift rule (EvalCache);
//   * graceful degradation: when the monitor picture is stale past a bound,
//     answers are computed from no-load latencies and flagged `degraded`
//     rather than blocking on fresh telemetry.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/service.h"
#include "obs/metrics.h"
#include "server/eval_cache.h"
#include "server/job.h"
#include "server/request_queue.h"

namespace cbes::server {

struct ServerConfig {
  /// Worker threads executing jobs (the ServerExecutor pool size).
  std::size_t workers = 4;
  /// Bound on queued jobs; excess submissions are rejected with a reason.
  std::size_t max_queue_depth = 64;
  EvalCacheConfig cache;
  /// Disable to force every prediction through the evaluator (benchmarks).
  bool enable_cache = true;
  /// When the monitor's newest published tick is older than this (simulated
  /// seconds) at a job's `now`, the job is served from the no-load picture
  /// and flagged degraded. kNever (the default) disables degradation.
  Seconds max_snapshot_age = kNever;
  /// Deadline applied to jobs submitted without one; zero = unbounded.
  std::chrono::milliseconds default_deadline{0};
  /// Transient evaluation failures (fault::TransientError) are retried up to
  /// this many times before the job fails; contract violations never retry.
  std::size_t max_retries = 2;
  /// Backoff before the first retry; doubles per attempt up to the cap.
  std::chrono::milliseconds retry_backoff{5};
  std::chrono::milliseconds retry_backoff_cap{50};
  /// Test/chaos seam invoked at the start of every execution attempt; may
  /// throw fault::TransientError to exercise the retry path. Optional.
  std::function<void(const Job&)> fault_hook;
  /// Observability sink; optional. Must outlive the server when set.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Per-submission knobs.
struct SubmitOptions {
  Priority priority = Priority::kNormal;
  /// Wall-clock budget measured from submission; zero = use the server's
  /// default_deadline (zero there too = unbounded).
  std::chrono::milliseconds deadline{0};
};

class CbesServer {
 public:
  /// `service` must outlive the server. Profiles may be registered on the
  /// service while the server runs (the service's profile lock arbitrates),
  /// but jobs for an app must be submitted after its profile registration.
  CbesServer(CbesService& service, ServerConfig config);

  /// Drains the queue and joins the workers (shutdown(true)).
  ~CbesServer();

  CbesServer(const CbesServer&) = delete;
  CbesServer& operator=(const CbesServer&) = delete;

  // ---- request interface ---------------------------------------------------
  /// All submit() overloads apply admission control synchronously: the
  /// returned handle is either queued or already terminal-kRejected with
  /// result().detail explaining why (queue full, unknown app, malformed
  /// request, expired deadline, shutdown).
  JobHandle submit(PredictRequest request, SubmitOptions options = {});
  JobHandle submit(CompareRequest request, SubmitOptions options = {});
  JobHandle submit(ScheduleRequest request, SubmitOptions options = {});
  JobHandle submit(RemapRequest request, SubmitOptions options = {});

  /// Stops admission; `drain` = run what is queued to completion, otherwise
  /// queued jobs finish kCancelled. Running jobs always complete (their own
  /// deadlines still apply). Idempotent; joins the worker threads.
  void shutdown(bool drain = true);

  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] EvalCache& cache() noexcept { return cache_; }
  [[nodiscard]] const EvalCache& cache() const noexcept { return cache_; }
  [[nodiscard]] const CompiledProfileCache& compiled_cache() const noexcept {
    return compiled_cache_;
  }
  [[nodiscard]] CbesService& service() noexcept { return *service_; }
  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] std::shared_ptr<Job> make_job(JobKind kind,
                                              const SubmitOptions& options);
  /// Shared tail of every submit(): reject with `reason` when non-empty,
  /// otherwise run the job through queue admission.
  JobHandle admit(std::shared_ptr<Job> job, const std::string& reason);
  void reject(Job& job, const std::string& reason);

  void worker_loop();
  void execute(Job& job);
  void run_attempt(Job& job, JobResult& result);
  void run_predict(Job& job, JobResult& result);
  void run_compare(Job& job, JobResult& result);
  void run_schedule(Job& job, JobResult& result);
  void run_remap(Job& job, JobResult& result);

  /// The shared CompiledProfile for `profile` under `snapshot`, from the
  /// compiled-artifact cache (keyed by profile hash, snapshot epoch, and the
  /// degraded flag — see CompiledProfileCache).
  [[nodiscard]] std::shared_ptr<const CompiledProfile> compiled_for(
      const AppProfile& profile, const LoadSnapshot& snapshot, bool degraded);

  /// The availability picture for a request at simulated time `now`; flips
  /// `degraded` and substitutes the no-load picture when the monitor is
  /// stale past config_.max_snapshot_age. Health verdicts survive degradation
  /// — even a stale answer never places ranks on a dead node — and health
  /// *changes* observed here invalidate the affected cache entries.
  [[nodiscard]] LoadSnapshot snapshot_for(Seconds now, bool& degraded);
  /// Diffs `snapshot`'s health against the last observed picture and drops
  /// cache entries touching any node whose verdict changed.
  void note_health(const LoadSnapshot& snapshot);
  /// Cache-aware prediction (bypasses the cache for degraded answers).
  [[nodiscard]] Prediction cached_predict(const std::string& app,
                                          const Mapping& mapping,
                                          const LoadSnapshot& snapshot,
                                          bool degraded, bool& cache_hit);

  CbesService* service_;
  ServerConfig config_;
  RequestQueue queue_;
  EvalCache cache_;
  /// Compiled artifacts shared across workers and jobs of one snapshot epoch.
  CompiledProfileCache compiled_cache_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> shut_down_{false};
  /// Last health verdict seen per node; guards the cache-invalidation diff.
  std::mutex health_mu_;
  std::vector<NodeHealth> last_health_;
  // Cached instruments (null when config_.metrics is null).
  obs::Counter* jobs_done_ = nullptr;
  obs::Counter* jobs_cancelled_ = nullptr;
  obs::Counter* jobs_failed_ = nullptr;
  obs::Counter* jobs_degraded_ = nullptr;
  obs::Counter* retries_ = nullptr;
  obs::Counter* health_invalidations_ = nullptr;
  obs::Counter* dead_node_refusals_ = nullptr;
  obs::Histogram* queue_seconds_ = nullptr;
  obs::Histogram* run_seconds_ = nullptr;
};

}  // namespace cbes::server
