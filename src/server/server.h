// CbesServer — the concurrent request-serving layer over the CbesService
// facade: a multi-tenant broker that turns the paper's synchronous service
// into a daemon serving many clients at once.
//
//   submit() ──> admission control ──> RequestQueue (priority classes)
//                                          │ take()
//                               ServerExecutor worker threads
//                                          │
//              EvalCache (snapshot-epoch memoization) / CbesService
//
// Design points (ISSUE 3 tentpole):
//   * bounded queue + reject-with-reason instead of unbounded latency;
//   * per-job deadlines and cooperative cancellation plumbed into the SA/GA
//     step loops via sched::StopToken — a job past its deadline reports
//     `cancelled`, never a partial anneal;
//   * predictions memoized by (app, mapping, snapshot epoch) and invalidated
//     by the paper's >10% ACPU drift rule (EvalCache);
//   * graceful degradation: when the monitor picture is stale past a bound,
//     answers are computed from no-load latencies and flagged `degraded`
//     rather than blocking on fresh telemetry.
//
// Self-resilience (ISSUE 6 tentpole) — the server defends its own latency:
//   * deadline propagation: a request's Deadline is checked between every
//     execution stage (snapshot, compile, search), not only in step loops;
//   * RetryPolicy: transient failures retry with seeded, jittered exponential
//     backoff bounded by the request deadline;
//   * circuit breakers on the monitor and compile paths: while open, answers
//     come from the last-known-good picture / artifact, flagged degraded;
//   * CoDel-style load shedding: sustained queue delay escalates brown-out
//     levels that shed batch work (cached-only, then refuse-at-admission);
//   * a watchdog that kills overdue or wedged executions with a typed
//     failure and replaces the wedged worker thread;
//   * crash-safe state: calibration, node health, and cache-warmup hints
//     checkpoint to disk and restore bit-identically (server/checkpoint.h).
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/service.h"
#include "fault/injector.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "resilience/breaker.h"
#include "resilience/retry.h"
#include "resilience/shedder.h"
#include "server/eval_cache.h"
#include "server/job.h"
#include "server/request_queue.h"
#include "server/status.h"

namespace cbes::server {

struct ServerConfig {
  /// Worker threads executing jobs (the ServerExecutor pool size).
  std::size_t workers = 4;
  /// Bound on queued jobs; excess submissions are rejected with a reason.
  std::size_t max_queue_depth = 64;
  EvalCacheConfig cache;
  /// Disable to force every prediction through the evaluator (benchmarks).
  bool enable_cache = true;
  /// When the monitor's newest published tick is older than this (simulated
  /// seconds) at a job's `now`, the job is served from the no-load picture
  /// and flagged degraded. kNever (the default) disables degradation.
  Seconds max_snapshot_age = kNever;
  /// Deadline applied to jobs submitted without one; zero = unbounded.
  std::chrono::milliseconds default_deadline{0};
  /// Transient evaluation failures (fault::TransientError) are retried up to
  /// this many times before the job fails; contract violations never retry.
  std::size_t max_retries = 2;
  /// Backoff before the first retry; doubles per attempt up to the cap.
  std::chrono::milliseconds retry_backoff{5};
  std::chrono::milliseconds retry_backoff_cap{50};
  /// Jitter fraction on retry backoff in [0, 1); each job draws its own
  /// deterministic jitter stream (keyed by job id) so synchronized retries
  /// de-synchronize instead of stampeding a recovering dependency.
  double retry_jitter = 0.25;
  std::uint64_t retry_seed = 0x8E7721E5ULL;
  /// Circuit breaker guarding monitor snapshots: after this many consecutive
  /// snapshot failures the server stops asking the monitor and serves the
  /// last-known-good picture (degraded) until a half-open probe succeeds.
  resilience::BreakerConfig monitor_breaker;
  /// Circuit breaker guarding profile compilation: while open, schedule and
  /// remap jobs reuse the last-known-good compiled artifact for the profile.
  resilience::BreakerConfig calibration_breaker;
  /// CoDel-style load shedding (opt-in): when queue sojourn exceeds the
  /// shedder target for a sustained interval, batch work is shed — first
  /// served cached-only, then refused at admission. Interactive and normal
  /// traffic is never shed.
  bool enable_shedding = false;
  resilience::ShedderConfig shedder;
  /// Watchdog poll period; zero disables the watchdog thread.
  std::chrono::milliseconds watchdog_poll{0};
  /// A running job whose deadline expired at least this long ago is killed
  /// by the watchdog (typed kWatchdog failure) and its worker replaced. The
  /// grace keeps the cooperative step-loop cancellation path first in line.
  std::chrono::milliseconds watchdog_grace{200};
  /// A running job older than this is considered wedged regardless of
  /// deadline; zero disables the stall bound.
  std::chrono::milliseconds watchdog_stall_bound{0};
  /// Server-side chaos seam: when set, worker stalls, monitor outages, and
  /// slow calibration from the injector's plan hit the serve path at each
  /// request's simulated `now`. Must outlive the server. Optional.
  const fault::FaultInjector* chaos = nullptr;
  /// Test/chaos seam invoked at the start of every execution attempt; may
  /// throw fault::TransientError to exercise the retry path. Optional.
  std::function<void(const Job&)> fault_hook;
  /// Observability sinks; all optional (null = off, costing one branch per
  /// site). Each must outlive the server when set.
  obs::MetricsRegistry* metrics = nullptr;
  /// Causal request tracing: every job becomes one async track (id = job id)
  /// spanning request { queue } { exec { snapshot, compile, search } }.
  obs::TraceSession* trace = nullptr;
  /// Structured logging: job completions, health transitions, breaker and
  /// brown-out transitions, watchdog kills.
  obs::Logger* log = nullptr;
  /// Completed jobs retained by the flight recorder (statusz `recent`).
  std::size_t flight_recorder_depth = 32;
  /// When non-empty, the watchdog dumps a statusz snapshot here after a kill
  /// (postmortem; ".json" suffix selects JSON).
  std::string postmortem_path;
};

/// Per-submission knobs.
struct SubmitOptions {
  Priority priority = Priority::kNormal;
  /// Wall-clock budget measured from submission; zero = use the server's
  /// default_deadline (zero there too = unbounded).
  std::chrono::milliseconds deadline{0};
};

class CbesServer {
 public:
  /// `service` must outlive the server. Profiles may be registered on the
  /// service while the server runs (the service's profile lock arbitrates),
  /// but jobs for an app must be submitted after its profile registration.
  CbesServer(CbesService& service, ServerConfig config);

  /// Drains the queue and joins the workers (shutdown(true)).
  ~CbesServer();

  CbesServer(const CbesServer&) = delete;
  CbesServer& operator=(const CbesServer&) = delete;

  // ---- request interface ---------------------------------------------------
  /// All submit() overloads apply admission control synchronously: the
  /// returned handle is either queued or already terminal-kRejected with
  /// result().detail explaining why (queue full, unknown app, malformed
  /// request, expired deadline, brown-out shed, shutdown).
  JobHandle submit(PredictRequest request, SubmitOptions options = {});
  JobHandle submit(CompareRequest request, SubmitOptions options = {});
  JobHandle submit(ScheduleRequest request, SubmitOptions options = {});
  JobHandle submit(RemapRequest request, SubmitOptions options = {});

  /// Stops admission; `drain` = run what is queued to completion, otherwise
  /// queued jobs finish kCancelled. Running jobs always complete (their own
  /// deadlines still apply). Idempotent; joins the worker threads.
  void shutdown(bool drain = true);

  // ---- crash-safe state ----------------------------------------------------
  /// Node-health state for checkpointing (the last health verdict observed
  /// per node; empty before the first snapshot).
  [[nodiscard]] std::vector<NodeHealth> health_state() const;
  /// Pre-seeds the health diff state from a checkpoint so the first
  /// post-restart snapshot diffs against the pre-crash picture instead of
  /// treating every verdict as fresh.
  void restore_health(std::vector<NodeHealth> health);
  /// Cache-warmup hints: the apps+mappings currently memoized, most useful
  /// first (LRU order). Feed to warm() after a restart.
  [[nodiscard]] std::vector<WarmHint> warm_hints(std::size_t max_hints) const;
  /// Re-evaluates each hint at simulated time `now` to pre-heat the cache;
  /// invalid hints (stale apps, missing nodes) are skipped, not errors.
  /// Returns the number of entries warmed.
  std::size_t warm(const std::vector<WarmHint>& hints, Seconds now);

  /// Point-in-time statusz snapshot (short per-component locks, safe to call
  /// from any thread — including while workers run).
  [[nodiscard]] ServerStatus status() const;
  /// The flight recorder behind statusz `recent` (tests, CLI reporting).
  [[nodiscard]] const FlightRecorder& flight_recorder() const noexcept {
    return recorder_;
  }

  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  /// Active (non-replaced) worker threads.
  [[nodiscard]] std::size_t worker_count() const;
  [[nodiscard]] EvalCache& cache() noexcept { return cache_; }
  [[nodiscard]] const EvalCache& cache() const noexcept { return cache_; }
  [[nodiscard]] const CompiledProfileCache& compiled_cache() const noexcept {
    return compiled_cache_;
  }
  [[nodiscard]] CbesService& service() noexcept { return *service_; }
  [[nodiscard]] const CbesService& service() const noexcept {
    return *service_;
  }
  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }

  // ---- resilience introspection (tests, CLI reporting) ---------------------
  [[nodiscard]] const resilience::CircuitBreaker& monitor_breaker() const
      noexcept {
    return monitor_breaker_;
  }
  [[nodiscard]] const resilience::CircuitBreaker& calibration_breaker() const
      noexcept {
    return calibration_breaker_;
  }
  [[nodiscard]] const resilience::LoadShedder& shedder() const noexcept {
    return shedder_;
  }
  [[nodiscard]] std::uint64_t shed_count() const { return queue_.shed_count(); }
  /// Jobs the watchdog killed (overdue or wedged).
  [[nodiscard]] std::uint64_t watchdog_kills() const;
  /// Worker threads replaced after a watchdog kill.
  [[nodiscard]] std::uint64_t workers_replaced() const;
  /// Requests answered from the last-known-good snapshot while the monitor
  /// breaker refused the monitor.
  [[nodiscard]] std::uint64_t lkg_snapshots_served() const;

 private:
  /// One worker thread and the state the watchdog needs to supervise it.
  struct WorkerSlot {
    std::thread thread;
    /// Set when the watchdog replaced this worker; the (possibly wedged)
    /// thread exits its loop at the next opportunity.
    std::atomic<bool> replaced{false};
    std::mutex mu;
    std::shared_ptr<Job> current;       // guarded by mu
    Job::Clock::time_point started{};   // guarded by mu
  };

  [[nodiscard]] std::shared_ptr<Job> make_job(JobKind kind,
                                              const SubmitOptions& options);
  /// Opens the job's async "request" span (and logs the submission at debug)
  /// before admission — every job, admitted or rejected, gets one track.
  void trace_submit(const Job& job, const std::string& app);
  /// Shared tail of every submit(): reject with `reason` when non-empty,
  /// otherwise run the job through queue admission.
  JobHandle admit(std::shared_ptr<Job> job, const std::string& reason);
  void reject(Job& job, const std::string& reason);

  void worker_loop(WorkerSlot* slot);
  void watchdog_loop();
  void spawn_worker_locked();
  void execute(Job& job);
  /// Single completion funnel: moves the job terminal (first finish wins) and
  /// — only when this call won — closes the job's async trace spans, records
  /// its flight-recorder trail, and logs the completion. `end_queue` /
  /// `end_exec` say which spans are still open on this path. Returns whether
  /// this call won the finish (the watchdog keys its kill bookkeeping on it).
  bool complete(Job& job, JobResult result, bool end_queue, bool end_exec);
  void run_attempt(Job& job, JobResult& result, bool cache_only);
  void run_predict(Job& job, JobResult& result, bool cache_only);
  void run_compare(Job& job, JobResult& result);
  void run_schedule(Job& job, JobResult& result);
  void run_remap(Job& job, JobResult& result);

  /// The shared CompiledProfile for `profile` under `snapshot`, from the
  /// compiled-artifact cache (keyed by profile hash, snapshot epoch, and the
  /// degraded flag — see CompiledProfileCache). Guarded by the calibration
  /// breaker: while open (after repeated slow compiles), the last-known-good
  /// artifact for the profile is served instead and `degraded` is flipped.
  [[nodiscard]] std::shared_ptr<const CompiledProfile> compiled_for(
      const AppProfile& profile, const LoadSnapshot& snapshot, Seconds now,
      bool& degraded);

  /// The availability picture for a request at simulated time `now`,
  /// guarded by the monitor breaker. On a healthy monitor this is the
  /// monitor's snapshot (possibly staleness-degraded to the no-load picture,
  /// as before); during a monitor outage — or while the breaker is open —
  /// it is the last-known-good snapshot, flagged degraded. Health verdicts
  /// survive every fallback: even a degraded answer never places ranks on a
  /// dead node, and health *changes* invalidate affected cache entries.
  [[nodiscard]] LoadSnapshot snapshot_for(Seconds now, bool& degraded);
  /// Diffs `snapshot`'s health against the last observed picture and drops
  /// cache entries touching any node whose verdict changed.
  void note_health(const LoadSnapshot& snapshot);
  /// Cache-aware prediction (bypasses the cache for degraded answers).
  [[nodiscard]] Prediction cached_predict(const std::string& app,
                                          const Mapping& mapping,
                                          const LoadSnapshot& snapshot,
                                          bool degraded, bool& cache_hit);

  /// The simulated time a job's request refers to (its payload's `now`).
  [[nodiscard]] static Seconds request_now(const Job& job) noexcept;

  CbesService* service_;
  ServerConfig config_;
  RequestQueue queue_;
  EvalCache cache_;
  FlightRecorder recorder_;
  /// Compiled artifacts shared across workers and jobs of one snapshot epoch.
  CompiledProfileCache compiled_cache_;
  resilience::RetryPolicy retry_policy_;
  resilience::CircuitBreaker monitor_breaker_;
  resilience::CircuitBreaker calibration_breaker_;
  resilience::LoadShedder shedder_;

  mutable std::mutex workers_mu_;
  /// Grows when the watchdog replaces a wedged worker; joined at shutdown.
  std::vector<std::unique_ptr<WorkerSlot>> workers_;
  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::uint64_t watchdog_kills_ = 0;      // guarded by workers_mu_
  std::uint64_t workers_replaced_ = 0;    // guarded by workers_mu_

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> shut_down_{false};
  /// Outcome counts for statusz, independent of the metrics registry.
  std::atomic<std::uint64_t> done_count_{0};
  std::atomic<std::uint64_t> cancelled_count_{0};
  std::atomic<std::uint64_t> failed_count_{0};
  /// Last health verdict seen per node; guards the cache-invalidation diff.
  mutable std::mutex health_mu_;
  std::vector<NodeHealth> last_health_;
  /// Last-known-good (fresh, non-degraded) monitor snapshot, served while
  /// the monitor breaker is open or a snapshot attempt fails.
  mutable std::mutex lkg_mu_;
  std::optional<LoadSnapshot> lkg_snapshot_;
  std::uint64_t lkg_served_ = 0;  // guarded by lkg_mu_
  /// Last-known-good compiled artifact per profile hash, served while the
  /// calibration breaker is open.
  std::mutex lkg_compiled_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const CompiledProfile>>
      lkg_compiled_;

  // Cached instruments (null when config_.metrics is null).
  obs::Counter* jobs_done_ = nullptr;
  obs::Counter* jobs_cancelled_ = nullptr;
  obs::Counter* jobs_failed_ = nullptr;
  obs::Counter* jobs_degraded_ = nullptr;
  obs::Counter* retries_ = nullptr;
  obs::Counter* health_invalidations_ = nullptr;
  obs::Counter* dead_node_refusals_ = nullptr;
  obs::Counter* watchdog_kills_metric_ = nullptr;
  obs::Counter* workers_replaced_metric_ = nullptr;
  obs::Counter* lkg_served_metric_ = nullptr;
  obs::Counter* cache_only_shed_ = nullptr;
  obs::Histogram* queue_seconds_ = nullptr;
  obs::Histogram* run_seconds_ = nullptr;
  /// SLO histograms labeled by priority class (index = Priority value) and,
  /// for total latency, by outcome (0=done, 1=cancelled, 2=failed).
  std::array<obs::Histogram*, kPriorityClasses> queue_wait_by_class_{};
  std::array<obs::Histogram*, kPriorityClasses> exec_by_class_{};
  std::array<std::array<obs::Histogram*, 3>, kPriorityClasses>
      total_by_class_outcome_{};
};

}  // namespace cbes::server
