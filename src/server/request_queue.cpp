#include "server/request_queue.h"

#include <utility>
#include <vector>

#include "common/check.h"

namespace cbes::server {

RequestQueue::RequestQueue(std::size_t max_depth) : max_depth_(max_depth) {
  CBES_CHECK_MSG(max_depth_ >= 1, "queue depth must be at least 1");
}

void RequestQueue::set_metrics(obs::MetricsRegistry* registry) {
  const std::lock_guard lock(mu_);
  if (registry == nullptr) {
    depth_gauge_ = nullptr;
    admitted_ = nullptr;
    rejected_ = nullptr;
    return;
  }
  depth_gauge_ = &registry->gauge("cbes_server_queue_depth",
                                  "Jobs queued and not yet dispatched");
  admitted_ = &registry->counter("cbes_server_admitted_total",
                                 "Jobs accepted by admission control");
  rejected_ = &registry->counter("cbes_server_rejected_total",
                                 "Jobs refused by admission control");
  shed_metric_ = &registry->counter(
      "cbes_server_shed_total",
      "Jobs refused at admission by brown-out load shedding");
}

void RequestQueue::set_shedder(resilience::LoadShedder* shedder) {
  const std::lock_guard lock(mu_);
  shedder_ = shedder;
}

std::uint64_t RequestQueue::shed_count() const {
  const std::lock_guard lock(mu_);
  return shed_;
}

void RequestQueue::publish_depth_locked() {
  if (depth_gauge_ != nullptr) {
    depth_gauge_->set(static_cast<double>(depth_));
  }
}

RequestQueue::Admission RequestQueue::offer(std::shared_ptr<Job> job) {
  CBES_CHECK_MSG(job != nullptr, "null job offered");
  {
    const std::lock_guard lock(mu_);
    if (closed_) {
      if (rejected_ != nullptr) rejected_->inc();
      return {false, "server is shutting down"};
    }
    if (job->deadline.expired()) {
      if (rejected_ != nullptr) rejected_->inc();
      return {false, "deadline expired before admission"};
    }
    if (shedder_ != nullptr && job->priority == Priority::kBatch &&
        shedder_->level() >= resilience::BrownoutLevel::kRefuseLowPriority) {
      ++shed_;
      if (rejected_ != nullptr) rejected_->inc();
      if (shed_metric_ != nullptr) shed_metric_->inc();
      return {false,
              "shed under brown-out (refuse-low-priority): queue delay over "
              "target"};
    }
    if (depth_ >= max_depth_) {
      if (rejected_ != nullptr) rejected_->inc();
      return {false, "queue full (depth " + std::to_string(max_depth_) + ")"};
    }
    classes_[static_cast<std::size_t>(job->priority)].push_back(
        std::move(job));
    ++depth_;
    publish_depth_locked();
    if (admitted_ != nullptr) admitted_->inc();
  }
  ready_.notify_one();
  return {true, {}};
}

std::shared_ptr<Job> RequestQueue::take() {
  std::unique_lock lock(mu_);
  ready_.wait(lock, [&] { return depth_ > 0 || closed_; });
  for (auto& cls : classes_) {
    if (cls.empty()) continue;
    std::shared_ptr<Job> job = std::move(cls.front());
    cls.pop_front();
    --depth_;
    publish_depth_locked();
    if (shedder_ != nullptr) {
      // Feed the CoDel signal: how long this job waited for a worker. The
      // shedder's clock is seconds on the jobs' steady clock.
      const auto now = Job::Clock::now();
      const double sojourn =
          std::chrono::duration<double>(now - job->submitted).count();
      const double now_s =
          std::chrono::duration<double>(now.time_since_epoch()).count();
      shedder_->observe(sojourn, now_s);
    }
    return job;
  }
  return nullptr;  // closed and drained
}

void RequestQueue::close() {
  {
    const std::lock_guard lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

std::size_t RequestQueue::depth() const {
  const std::lock_guard lock(mu_);
  return depth_;
}

std::array<std::size_t, kPriorityClasses> RequestQueue::depth_by_class()
    const {
  const std::lock_guard lock(mu_);
  std::array<std::size_t, kPriorityClasses> out{};
  for (std::size_t i = 0; i < kPriorityClasses; ++i) {
    out[i] = classes_[i].size();
  }
  return out;
}

bool RequestQueue::closed() const {
  const std::lock_guard lock(mu_);
  return closed_;
}

std::vector<std::shared_ptr<Job>> RequestQueue::drain() {
  std::vector<std::shared_ptr<Job>> out;
  const std::lock_guard lock(mu_);
  for (auto& cls : classes_) {
    for (auto& job : cls) out.push_back(std::move(job));
    cls.clear();
  }
  depth_ = 0;
  publish_depth_locked();
  return out;
}

}  // namespace cbes::server
