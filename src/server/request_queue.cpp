#include "server/request_queue.h"

#include <utility>
#include <vector>

#include "common/check.h"

namespace cbes::server {

RequestQueue::RequestQueue(std::size_t max_depth) : max_depth_(max_depth) {
  CBES_CHECK_MSG(max_depth_ >= 1, "queue depth must be at least 1");
}

void RequestQueue::set_metrics(obs::MetricsRegistry* registry) {
  const std::lock_guard lock(mu_);
  if (registry == nullptr) {
    depth_gauge_ = nullptr;
    admitted_ = nullptr;
    rejected_ = nullptr;
    return;
  }
  depth_gauge_ = &registry->gauge("cbes_server_queue_depth",
                                  "Jobs queued and not yet dispatched");
  admitted_ = &registry->counter("cbes_server_admitted_total",
                                 "Jobs accepted by admission control");
  rejected_ = &registry->counter("cbes_server_rejected_total",
                                 "Jobs refused by admission control");
}

void RequestQueue::publish_depth_locked() {
  if (depth_gauge_ != nullptr) {
    depth_gauge_->set(static_cast<double>(depth_));
  }
}

RequestQueue::Admission RequestQueue::offer(std::shared_ptr<Job> job) {
  CBES_CHECK_MSG(job != nullptr, "null job offered");
  {
    const std::lock_guard lock(mu_);
    if (closed_) {
      if (rejected_ != nullptr) rejected_->inc();
      return {false, "server is shutting down"};
    }
    if (job->deadline.has_value() && Job::Clock::now() >= *job->deadline) {
      if (rejected_ != nullptr) rejected_->inc();
      return {false, "deadline expired before admission"};
    }
    if (depth_ >= max_depth_) {
      if (rejected_ != nullptr) rejected_->inc();
      return {false, "queue full (depth " + std::to_string(max_depth_) + ")"};
    }
    classes_[static_cast<std::size_t>(job->priority)].push_back(
        std::move(job));
    ++depth_;
    publish_depth_locked();
    if (admitted_ != nullptr) admitted_->inc();
  }
  ready_.notify_one();
  return {true, {}};
}

std::shared_ptr<Job> RequestQueue::take() {
  std::unique_lock lock(mu_);
  ready_.wait(lock, [&] { return depth_ > 0 || closed_; });
  for (auto& cls : classes_) {
    if (cls.empty()) continue;
    std::shared_ptr<Job> job = std::move(cls.front());
    cls.pop_front();
    --depth_;
    publish_depth_locked();
    return job;
  }
  return nullptr;  // closed and drained
}

void RequestQueue::close() {
  {
    const std::lock_guard lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

std::size_t RequestQueue::depth() const {
  const std::lock_guard lock(mu_);
  return depth_;
}

bool RequestQueue::closed() const {
  const std::lock_guard lock(mu_);
  return closed_;
}

std::vector<std::shared_ptr<Job>> RequestQueue::drain() {
  std::vector<std::shared_ptr<Job>> out;
  const std::lock_guard lock(mu_);
  for (auto& cls : classes_) {
    for (auto& job : cls) out.push_back(std::move(job));
    cls.clear();
  }
  depth_ = 0;
  publish_depth_locked();
  return out;
}

}  // namespace cbes::server
