#include "topology/parser.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace cbes {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw ContractError("topology parse error, line " + std::to_string(line) +
                      ": " + what);
}

/// Description files are untrusted input; bound generated-node counts so a
/// corrupt count cannot OOM the service.
constexpr std::size_t kMaxNodes = std::size_t{1} << 20;

/// std::stoi throws std::invalid_argument on junk; route through ContractError
/// like every other malformed field, and reject trailing garbage ("4x").
int parse_int(std::size_t line, const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    fail(line, "bad integer " + text);
  }
  return static_cast<int>(value);
}

double parse_bandwidth(std::size_t line, const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  // NaN compares false to everything, so check finiteness explicitly.
  if (end == text.c_str() || !std::isfinite(value) || value <= 0.0) {
    fail(line, "bad bandwidth " + text);
  }
  const std::string suffix(end);
  if (suffix.empty()) return value;
  if (suffix == "k" || suffix == "K") return value * 1e3;
  if (suffix == "M") return value * 1e6;
  if (suffix == "G") return value * 1e9;
  fail(line, "unknown bandwidth suffix " + suffix);
}

Seconds parse_latency(std::size_t line, const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || !std::isfinite(value) || value < 0.0) {
    fail(line, "bad latency " + text);
  }
  const std::string suffix(end);
  if (suffix == "us") return value * 1e-6;
  if (suffix == "ms") return value * 1e-3;
  if (suffix == "s" || suffix.empty()) return value;
  fail(line, "unknown latency suffix " + suffix);
}

Arch parse_arch(std::size_t line, const std::string& code) {
  for (Arch arch : kAllArchs) {
    if (code == arch_code(arch)) return arch;
  }
  fail(line, "unknown architecture code " + code + " (use A, I, S, or G)");
}

/// key=value attributes after the positional fields.
std::map<std::string, std::string> parse_attrs(
    std::size_t line, std::istringstream& stream) {
  std::map<std::string, std::string> attrs;
  std::string token;
  while (stream >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
      fail(line, "expected key=value, got " + token);
    }
    attrs[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return attrs;
}

std::string take(std::size_t line, std::map<std::string, std::string>& attrs,
                 const std::string& key, const char* fallback = nullptr) {
  const auto it = attrs.find(key);
  if (it == attrs.end()) {
    if (fallback != nullptr) return fallback;
    fail(line, "missing attribute " + key);
  }
  std::string value = it->second;
  attrs.erase(it);
  return value;
}

}  // namespace

ClusterTopology parse_topology(std::istream& in) {
  std::string cluster_name;
  std::map<std::string, SwitchId> switches;
  ClusterTopology topo("unnamed");
  bool named = false;
  bool has_root = false;
  std::size_t line_no = 0;
  std::string line;

  // We cannot rename a ClusterTopology after construction, so buffer lines
  // until the `cluster` directive, then construct.
  std::vector<std::pair<std::size_t, std::string>> body;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream stream(line);
    std::string keyword;
    if (!(stream >> keyword)) continue;  // blank line
    if (keyword == "cluster") {
      if (named) fail(line_no, "duplicate cluster directive");
      if (!(stream >> cluster_name)) fail(line_no, "cluster needs a name");
      named = true;
      continue;
    }
    body.emplace_back(line_no, line);
  }
  if (!named) throw ContractError("topology parse error: no cluster directive");
  topo = ClusterTopology(cluster_name);

  auto add_one_node = [&](std::size_t at, const std::string& name,
                          std::map<std::string, std::string> attrs) {
    const Arch arch = parse_arch(at, take(at, attrs, "arch"));
    const int cpus = parse_int(at, take(at, attrs, "cpus", "1"));
    const std::string sw_name = take(at, attrs, "switch");
    const auto sw = switches.find(sw_name);
    if (sw == switches.end()) fail(at, "unknown switch " + sw_name);
    const double bw = parse_bandwidth(at, take(at, attrs, "bw"));
    const Seconds lat = parse_latency(at, take(at, attrs, "lat"));
    const int cat = parse_int(at, take(at, attrs, "cat", "0"));
    if (!attrs.empty()) fail(at, "unknown attribute " + attrs.begin()->first);
    topo.add_node(name, arch, cpus, sw->second, bw, lat, cat);
  };

  for (const auto& [at, text] : body) {
    std::istringstream stream(text);
    std::string keyword;
    stream >> keyword;
    if (keyword == "switch") {
      std::string name;
      if (!(stream >> name)) fail(at, "switch needs a name");
      if (switches.contains(name)) fail(at, "duplicate switch " + name);
      auto attrs = parse_attrs(at, stream);
      if (!has_root) {
        if (!attrs.empty()) {
          fail(at, "the first (root) switch takes no attributes");
        }
        switches[name] = topo.add_root_switch(name);
        has_root = true;
        continue;
      }
      const std::string parent_name = take(at, attrs, "parent");
      const auto parent = switches.find(parent_name);
      if (parent == switches.end()) fail(at, "unknown parent " + parent_name);
      const double bw = parse_bandwidth(at, take(at, attrs, "bw"));
      const Seconds lat = parse_latency(at, take(at, attrs, "lat"));
      const int cat = parse_int(at, take(at, attrs, "cat", "0"));
      if (!attrs.empty()) fail(at, "unknown attribute " + attrs.begin()->first);
      switches[name] = topo.add_switch(name, parent->second, bw, lat, cat);
    } else if (keyword == "node") {
      std::string name;
      if (!(stream >> name)) fail(at, "node needs a name");
      add_one_node(at, name, parse_attrs(at, stream));
    } else if (keyword == "nodes") {
      std::size_t count = 0;
      if (!(stream >> count) || count == 0) fail(at, "nodes needs a count");
      if (count > kMaxNodes) fail(at, "node count exceeds the parser bound");
      auto attrs = parse_attrs(at, stream);
      const std::string prefix = take(at, attrs, "prefix");
      for (std::size_t i = 0; i < count; ++i) {
        add_one_node(at, prefix + std::to_string(i), attrs);
      }
    } else {
      fail(at, "unknown directive " + keyword);
    }
  }
  CBES_CHECK_MSG(has_root, "topology has no switches");
  topo.freeze();
  return topo;
}

ClusterTopology parse_topology_string(const std::string& text) {
  std::istringstream in(text);
  return parse_topology(in);
}

ClusterTopology load_topology_file(const std::string& path) {
  std::ifstream in(path);
  CBES_CHECK_MSG(in.good(), "cannot open topology file: " + path);
  return parse_topology(in);
}

void write_topology(const ClusterTopology& topo, std::ostream& out) {
  out << "cluster " << topo.name() << '\n';
  out << std::setprecision(17);
  for (const Switch& s : topo.switches()) {
    out << "switch " << s.name;
    if (s.parent.valid()) {
      const Link& l = topo.link(s.uplink);
      out << " parent=" << topo.sw(s.parent).name << " bw=" << l.bandwidth_bps
          << " lat=" << l.hop_latency << "s cat=" << l.category;
    }
    out << '\n';
  }
  for (const Node& n : topo.nodes()) {
    const Link& l = topo.link(n.uplink);
    out << "node " << n.name << " arch=" << arch_code(n.arch)
        << " cpus=" << n.cpus << " switch=" << topo.sw(n.attached).name
        << " bw=" << l.bandwidth_bps << " lat=" << l.hop_latency
        << "s cat=" << l.category << '\n';
  }
}

}  // namespace cbes
