#include "topology/mapping.h"

#include <cstdint>
#include <sstream>
#include <unordered_map>

#include "common/check.h"

namespace cbes {

Mapping::Mapping(std::vector<NodeId> assignment)
    : assignment_(std::move(assignment)) {
  for (NodeId n : assignment_)
    CBES_CHECK_MSG(n.valid(), "mapping contains an invalid node id");
}

NodeId Mapping::node_of(RankId rank) const {
  CBES_CHECK_MSG(rank.valid() && rank.index() < assignment_.size(),
                 "rank outside mapping");
  return assignment_[rank.index()];
}

void Mapping::reassign(RankId rank, NodeId node) {
  CBES_CHECK_MSG(rank.valid() && rank.index() < assignment_.size(),
                 "rank outside mapping");
  CBES_CHECK_MSG(node.valid(), "invalid node");
  assignment_[rank.index()] = node;
}

bool Mapping::fits(const ClusterTopology& topology) const {
  std::unordered_map<NodeId, int> used;
  for (NodeId n : assignment_) {
    if (!n.valid() || n.index() >= topology.node_count()) return false;
    if (++used[n] > topology.node(n).cpus) return false;
  }
  return true;
}

std::size_t Mapping::ranks_on(NodeId node) const {
  std::size_t count = 0;
  for (NodeId n : assignment_)
    if (n == node) ++count;
  return count;
}

Mapping Mapping::round_robin(const ClusterTopology& topology,
                             std::size_t nranks) {
  CBES_CHECK_MSG(nranks <= topology.total_slots(),
                 "more ranks than CPU slots in the cluster");
  std::vector<NodeId> assignment;
  assignment.reserve(nranks);
  // Fill one slot per node per sweep, like lamboot walking its node list.
  for (int sweep = 0; assignment.size() < nranks; ++sweep) {
    bool placed_any = false;
    for (const Node& node : topology.nodes()) {
      if (assignment.size() == nranks) break;
      if (sweep < node.cpus) {
        assignment.push_back(node.id);
        placed_any = true;
      }
    }
    CBES_CHECK_MSG(placed_any, "round_robin failed to place all ranks");
  }
  return Mapping(std::move(assignment));
}

std::size_t Mapping::hash() const noexcept {
  // FNV-1a over the node ids, seeded with the rank count.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ assignment_.size();
  for (NodeId n : assignment_) {
    h ^= n.value;
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h);
}

std::string Mapping::describe(const ClusterTopology& topology) const {
  std::ostringstream os;
  for (std::size_t r = 0; r < assignment_.size(); ++r) {
    if (r) os << ' ';
    os << r << ':' << topology.node(assignment_[r]).name;
  }
  return os.str();
}

}  // namespace cbes
