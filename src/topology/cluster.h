// Cluster topology model: compute nodes attached to a tree of switches.
//
// Both experimental clusters in the paper are switched fast-ethernet trees
// (leaf switches under a core switch; Orange Grove additionally emulates a
// federation of two elementary clusters joined by a limited-capacity link), so a
// tree is the exact routing structure — the path between two nodes climbs to the
// lowest common ancestor switch and descends.
//
// Routing queries run as LCA walks over the switch tree (O(tree depth), zero
// per-pair state), so a topology costs O(N + S) memory no matter how many
// nodes it has — the representation the 10k–100k-node synthetic clusters
// need. freeze() additionally interns each node's *topology class* (its
// architecture plus the link-category chain to the root); two nodes of the
// same class are indistinguishable to every path query, which is what lets
// the latency layer store coefficients per class pair instead of per node
// pair (netmodel/pair_class.h).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "topology/arch.h"

namespace cbes {

/// A network link (node<->switch or switch<->switch).
struct Link {
  LinkId id;
  std::string name;
  double bandwidth_bps = 0.0;   ///< payload bandwidth, bytes per second
  Seconds hop_latency = 0.0;    ///< fixed per-traversal latency (wire + forwarding)
  /// Builder-assigned hardware category (e.g. all 3Com-leaf uplinks share one
  /// category); the O(N) calibration groups node pairs by the categories along
  /// their path.
  int category = 0;
};

/// A compute node.
struct Node {
  NodeId id;
  std::string name;
  Arch arch = Arch::kGeneric;
  int cpus = 1;                 ///< schedulable CPU slots (dual-PII nodes have 2)
  SwitchId attached;            ///< leaf switch this node hangs off
  LinkId uplink;                ///< link from the node's NIC to `attached`
};

/// A switch in the tree. The root switch has an invalid parent.
struct Switch {
  SwitchId id;
  std::string name;
  SwitchId parent;              ///< invalid for the root
  LinkId uplink;                ///< link towards the parent; invalid for the root
  int depth = 0;                ///< root = 0
};

/// Interned hardware class of a node for path purposes: architecture plus the
/// ordered chain of link categories from the node's NIC to the root. Two nodes
/// of equal topology class produce byte-identical path signatures against any
/// third node at the same LCA depth.
struct TopoClass {
  Arch arch = Arch::kGeneric;
  int nic_category = 0;      ///< category of the node's NIC uplink
  /// up_categories[i] = category of the uplink of the node's ancestor switch
  /// i levels above the attachment (i = 0 is the attached switch itself).
  /// Empty when the node hangs directly off the root.
  std::vector<int> up_categories;
  int attach_depth = 0;      ///< depth of the attached switch
};

/// Immutable-after-build description of a cluster: nodes, switches, links, and
/// tree routing via LCA walks.
class ClusterTopology {
 public:
  explicit ClusterTopology(std::string name);

  // ---- construction (builder-facing) ------------------------------------
  /// Adds the root switch (must be the first switch added).
  SwitchId add_root_switch(std::string name);
  /// Adds a switch under `parent`, connected by a link with the given
  /// characteristics. `category` groups hardware-identical links.
  SwitchId add_switch(std::string name, SwitchId parent, double bandwidth_bps,
                      Seconds hop_latency, int category);
  /// Adds a node under leaf switch `sw`; its NIC link uses the given
  /// characteristics.
  NodeId add_node(std::string name, Arch arch, int cpus, SwitchId sw,
                  double bandwidth_bps, Seconds hop_latency, int category);
  /// Finalizes the topology; no further mutation is allowed afterwards.
  void freeze();

  // ---- queries ------------------------------------------------------------
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t switch_count() const noexcept {
    return switches_.size();
  }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] const Switch& sw(SwitchId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;
  [[nodiscard]] std::span<const Node> nodes() const noexcept { return nodes_; }
  [[nodiscard]] std::span<const Switch> switches() const noexcept {
    return switches_;
  }
  [[nodiscard]] std::span<const Link> links() const noexcept { return links_; }

  /// All nodes of a given architecture.
  [[nodiscard]] std::vector<NodeId> nodes_with_arch(Arch arch) const;

  /// Total schedulable CPU slots across all nodes.
  [[nodiscard]] std::size_t total_slots() const;

  /// Ordered sequence of links a message from `a` to `b` traverses
  /// (a->leaf ... ->LCA-> ... leaf->b). Empty when a == b (loopback).
  /// Requires freeze(); built by an O(tree depth) LCA walk per call.
  [[nodiscard]] std::vector<LinkId> path(NodeId a, NodeId b) const;

  /// Number of links on the path (0 for loopback). O(tree depth), no
  /// allocation.
  [[nodiscard]] std::size_t hops(NodeId a, NodeId b) const;

  /// Minimum bandwidth along the path, bytes/second. Infinite for loopback.
  [[nodiscard]] double path_bandwidth(NodeId a, NodeId b) const;

  /// Sum of fixed hop latencies along the path.
  [[nodiscard]] Seconds path_latency(NodeId a, NodeId b) const;

  /// Depth of the lowest common ancestor switch of the two nodes' attachment
  /// points (0 = the root). Requires a != b is NOT required — for nodes on the
  /// same switch the LCA is that switch.
  [[nodiscard]] int lca_depth(NodeId a, NodeId b) const;

  /// Deepest switch of the tree (root = 0).
  [[nodiscard]] int max_switch_depth() const noexcept { return max_depth_; }

  /// Ancestor switch of `node`'s attachment at `depth`; requires
  /// depth <= attachment depth.
  [[nodiscard]] SwitchId ancestor_at(NodeId node, int depth) const;

  /// Interned topology class of a node (see TopoClass); stable after freeze().
  [[nodiscard]] std::uint32_t topo_class_of(NodeId node) const;
  /// Number of distinct node topology classes.
  [[nodiscard]] std::size_t topo_class_count() const noexcept {
    return topo_classes_.size();
  }
  /// Description of topology class `cls` (< topo_class_count()).
  [[nodiscard]] const TopoClass& topo_class(std::uint32_t cls) const;

  /// Equivalence-class signature for calibration: unordered endpoint
  /// architectures + sorted multiset of link categories along the path.
  /// Two pairs with equal signatures have identical no-load latency behaviour,
  /// which is what makes the paper's O(N) calibration sound.
  [[nodiscard]] std::string path_signature(NodeId a, NodeId b) const;

  /// The path signature any (a, b) pair with topo_class_of(a) == ca,
  /// topo_class_of(b) == cb, and lca_depth(a, b) == lca would produce —
  /// byte-identical to path_signature(a, b). This is what lets the latency
  /// layer enumerate path classes without touching node pairs at all.
  [[nodiscard]] std::string class_pair_signature(std::uint32_t ca,
                                                 std::uint32_t cb,
                                                 int lca) const;

  /// Equivalence-class signature of one node: architecture, CPU slots, and
  /// the sorted link categories on its path to the root. Two nodes with equal
  /// signatures are hardware-interchangeable, so one's monitor readings are a
  /// sound stand-in for the other's — the fault-tolerance back-fill reuses
  /// the same grouping the paper's O(N) calibration rests on.
  [[nodiscard]] std::string node_signature(NodeId node) const;

 private:
  [[nodiscard]] std::vector<SwitchId> chain_to_root(SwitchId leaf) const;
  /// LCA switch of two attachment switches (O(tree depth)).
  [[nodiscard]] SwitchId lca_switch(SwitchId a, SwitchId b) const;
  void require_frozen() const;
  void require_mutable() const;

  std::string name_;
  bool frozen_ = false;
  int max_depth_ = 0;
  std::vector<Node> nodes_;
  std::vector<Switch> switches_;
  std::vector<Link> links_;
  // Interned per-node topology classes, filled by freeze(): O(N) ids plus one
  // TopoClass record per distinct class.
  std::vector<std::uint32_t> node_topo_class_;
  std::vector<TopoClass> topo_classes_;
};

}  // namespace cbes
