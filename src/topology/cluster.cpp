#include "topology/cluster.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace cbes {

ClusterTopology::ClusterTopology(std::string name) : name_(std::move(name)) {}

void ClusterTopology::require_frozen() const {
  CBES_CHECK_MSG(frozen_, "topology must be frozen before routing queries");
}

void ClusterTopology::require_mutable() const {
  CBES_CHECK_MSG(!frozen_, "topology is frozen; no further mutation allowed");
}

SwitchId ClusterTopology::add_root_switch(std::string name) {
  require_mutable();
  CBES_CHECK_MSG(switches_.empty(), "root switch must be added first");
  Switch s;
  s.id = SwitchId{switches_.size()};
  s.name = std::move(name);
  s.depth = 0;
  switches_.push_back(std::move(s));
  return switches_.back().id;
}

SwitchId ClusterTopology::add_switch(std::string name, SwitchId parent,
                                     double bandwidth_bps, Seconds hop_latency,
                                     int category) {
  require_mutable();
  CBES_CHECK_MSG(parent.valid() && parent.index() < switches_.size(),
                 "unknown parent switch");
  CBES_CHECK_MSG(bandwidth_bps > 0.0, "link bandwidth must be positive");
  CBES_CHECK_MSG(hop_latency >= 0.0, "hop latency must be nonnegative");

  Link l;
  l.id = LinkId{links_.size()};
  l.name = name + "<->" + switches_[parent.index()].name;
  l.bandwidth_bps = bandwidth_bps;
  l.hop_latency = hop_latency;
  l.category = category;
  links_.push_back(l);

  Switch s;
  s.id = SwitchId{switches_.size()};
  s.name = std::move(name);
  s.parent = parent;
  s.uplink = l.id;
  s.depth = switches_[parent.index()].depth + 1;
  switches_.push_back(std::move(s));
  return switches_.back().id;
}

NodeId ClusterTopology::add_node(std::string name, Arch arch, int cpus,
                                 SwitchId sw_id, double bandwidth_bps,
                                 Seconds hop_latency, int category) {
  require_mutable();
  CBES_CHECK_MSG(sw_id.valid() && sw_id.index() < switches_.size(),
                 "unknown switch");
  CBES_CHECK_MSG(cpus >= 1, "node must have at least one CPU");
  CBES_CHECK_MSG(bandwidth_bps > 0.0, "NIC bandwidth must be positive");

  Link l;
  l.id = LinkId{links_.size()};
  l.name = name + "<->" + switches_[sw_id.index()].name;
  l.bandwidth_bps = bandwidth_bps;
  l.hop_latency = hop_latency;
  l.category = category;
  links_.push_back(l);

  Node n;
  n.id = NodeId{nodes_.size()};
  n.name = std::move(name);
  n.arch = arch;
  n.cpus = cpus;
  n.attached = sw_id;
  n.uplink = l.id;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

void ClusterTopology::freeze() {
  require_mutable();
  CBES_CHECK_MSG(!nodes_.empty(), "topology has no nodes");
  frozen_ = true;

  // Precompute every pairwise path once; experiments route millions of messages
  // over a fixed topology, so paying O(N^2) memory here is the right trade.
  const std::size_t n = nodes_.size();
  path_cache_.assign(n * n, {});
  for (std::size_t a = 0; a < n; ++a) {
    const auto chain_a = chain_to_root(nodes_[a].attached);
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const auto chain_b = chain_to_root(nodes_[b].attached);
      // Find the lowest common ancestor: strip the shared suffix of both chains.
      std::size_t ia = chain_a.size(), ib = chain_b.size();
      while (ia > 0 && ib > 0 && chain_a[ia - 1] == chain_b[ib - 1]) {
        --ia;
        --ib;
      }
      // LCA is the last stripped element; ia/ib now count switches strictly
      // below the LCA on each side.
      std::vector<LinkId>& p = path_cache_[a * n + b];
      p.push_back(nodes_[a].uplink);
      for (std::size_t i = 0; i < ia; ++i)
        p.push_back(switches_[chain_a[i].index()].uplink);
      for (std::size_t i = ib; i > 0; --i)
        p.push_back(switches_[chain_b[i - 1].index()].uplink);
      p.push_back(nodes_[b].uplink);
    }
  }
}

const Node& ClusterTopology::node(NodeId id) const {
  CBES_CHECK_MSG(id.valid() && id.index() < nodes_.size(), "unknown node id");
  return nodes_[id.index()];
}

const Switch& ClusterTopology::sw(SwitchId id) const {
  CBES_CHECK_MSG(id.valid() && id.index() < switches_.size(),
                 "unknown switch id");
  return switches_[id.index()];
}

const Link& ClusterTopology::link(LinkId id) const {
  CBES_CHECK_MSG(id.valid() && id.index() < links_.size(), "unknown link id");
  return links_[id.index()];
}

std::vector<NodeId> ClusterTopology::nodes_with_arch(Arch arch) const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_)
    if (n.arch == arch) out.push_back(n.id);
  return out;
}

std::size_t ClusterTopology::total_slots() const {
  std::size_t slots = 0;
  for (const Node& n : nodes_) slots += static_cast<std::size_t>(n.cpus);
  return slots;
}

std::vector<SwitchId> ClusterTopology::chain_to_root(SwitchId leaf) const {
  std::vector<SwitchId> chain;
  for (SwitchId s = leaf; s.valid(); s = switches_[s.index()].parent)
    chain.push_back(s);
  return chain;
}

const std::vector<LinkId>& ClusterTopology::path(NodeId a, NodeId b) const {
  require_frozen();
  CBES_CHECK(a.valid() && a.index() < nodes_.size());
  CBES_CHECK(b.valid() && b.index() < nodes_.size());
  return path_cache_[a.index() * nodes_.size() + b.index()];
}

std::size_t ClusterTopology::hops(NodeId a, NodeId b) const {
  return path(a, b).size();
}

double ClusterTopology::path_bandwidth(NodeId a, NodeId b) const {
  const auto& p = path(a, b);
  double bw = std::numeric_limits<double>::infinity();
  for (LinkId l : p) bw = std::min(bw, links_[l.index()].bandwidth_bps);
  return bw;
}

Seconds ClusterTopology::path_latency(NodeId a, NodeId b) const {
  const auto& p = path(a, b);
  Seconds total = 0.0;
  for (LinkId l : p) total += links_[l.index()].hop_latency;
  return total;
}

std::string ClusterTopology::path_signature(NodeId a, NodeId b) const {
  const Node& na = node(a);
  const Node& nb = node(b);
  auto arch_lo = static_cast<int>(na.arch);
  auto arch_hi = static_cast<int>(nb.arch);
  if (arch_lo > arch_hi) std::swap(arch_lo, arch_hi);

  std::vector<int> cats;
  for (LinkId l : path(a, b)) cats.push_back(links_[l.index()].category);
  std::sort(cats.begin(), cats.end());

  std::ostringstream os;
  os << 'a' << arch_lo << ':' << arch_hi << '|';
  for (int c : cats) os << c << ',';
  return os.str();
}

std::string ClusterTopology::node_signature(NodeId id) const {
  const Node& n = node(id);
  std::vector<int> cats;
  cats.push_back(links_[n.uplink.index()].category);
  for (SwitchId s = n.attached; switches_[s.index()].parent.valid();
       s = switches_[s.index()].parent) {
    cats.push_back(links_[switches_[s.index()].uplink.index()].category);
  }
  std::sort(cats.begin(), cats.end());

  std::ostringstream os;
  os << 'n' << static_cast<int>(n.arch) << 'c' << n.cpus << '|';
  for (int c : cats) os << c << ',';
  return os.str();
}

}  // namespace cbes
