#include "topology/cluster.h"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>

#include "common/check.h"

namespace cbes {

ClusterTopology::ClusterTopology(std::string name) : name_(std::move(name)) {}

void ClusterTopology::require_frozen() const {
  CBES_CHECK_MSG(frozen_, "topology must be frozen before routing queries");
}

void ClusterTopology::require_mutable() const {
  CBES_CHECK_MSG(!frozen_, "topology is frozen; no further mutation allowed");
}

SwitchId ClusterTopology::add_root_switch(std::string name) {
  require_mutable();
  CBES_CHECK_MSG(switches_.empty(), "root switch must be added first");
  Switch s;
  s.id = SwitchId{switches_.size()};
  s.name = std::move(name);
  s.depth = 0;
  switches_.push_back(std::move(s));
  return switches_.back().id;
}

SwitchId ClusterTopology::add_switch(std::string name, SwitchId parent,
                                     double bandwidth_bps, Seconds hop_latency,
                                     int category) {
  require_mutable();
  CBES_CHECK_MSG(parent.valid() && parent.index() < switches_.size(),
                 "unknown parent switch");
  CBES_CHECK_MSG(bandwidth_bps > 0.0, "link bandwidth must be positive");
  CBES_CHECK_MSG(hop_latency >= 0.0, "hop latency must be nonnegative");

  Link l;
  l.id = LinkId{links_.size()};
  l.name = name + "<->" + switches_[parent.index()].name;
  l.bandwidth_bps = bandwidth_bps;
  l.hop_latency = hop_latency;
  l.category = category;
  links_.push_back(l);

  Switch s;
  s.id = SwitchId{switches_.size()};
  s.name = std::move(name);
  s.parent = parent;
  s.uplink = l.id;
  s.depth = switches_[parent.index()].depth + 1;
  switches_.push_back(std::move(s));
  return switches_.back().id;
}

NodeId ClusterTopology::add_node(std::string name, Arch arch, int cpus,
                                 SwitchId sw_id, double bandwidth_bps,
                                 Seconds hop_latency, int category) {
  require_mutable();
  CBES_CHECK_MSG(sw_id.valid() && sw_id.index() < switches_.size(),
                 "unknown switch");
  CBES_CHECK_MSG(cpus >= 1, "node must have at least one CPU");
  CBES_CHECK_MSG(bandwidth_bps > 0.0, "NIC bandwidth must be positive");

  Link l;
  l.id = LinkId{links_.size()};
  l.name = name + "<->" + switches_[sw_id.index()].name;
  l.bandwidth_bps = bandwidth_bps;
  l.hop_latency = hop_latency;
  l.category = category;
  links_.push_back(l);

  Node n;
  n.id = NodeId{nodes_.size()};
  n.name = std::move(name);
  n.arch = arch;
  n.cpus = cpus;
  n.attached = sw_id;
  n.uplink = l.id;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

void ClusterTopology::freeze() {
  require_mutable();
  CBES_CHECK_MSG(!nodes_.empty(), "topology has no nodes");
  frozen_ = true;

  for (const Switch& s : switches_) max_depth_ = std::max(max_depth_, s.depth);

  // Intern each node's topology class: (arch, NIC category, uplink-category
  // chain to the root). O(N * depth); everything pairwise is derived from
  // these ids plus the LCA depth, so no per-pair state exists anywhere.
  node_topo_class_.resize(nodes_.size());
  std::map<std::vector<int>, std::uint32_t> interner;
  for (const Node& n : nodes_) {
    TopoClass tc;
    tc.arch = n.arch;
    tc.nic_category = links_[n.uplink.index()].category;
    tc.attach_depth = switches_[n.attached.index()].depth;
    for (SwitchId s = n.attached; switches_[s.index()].parent.valid();
         s = switches_[s.index()].parent) {
      tc.up_categories.push_back(
          links_[switches_[s.index()].uplink.index()].category);
    }
    std::vector<int> key;
    key.reserve(tc.up_categories.size() + 2);
    key.push_back(static_cast<int>(tc.arch));
    key.push_back(tc.nic_category);
    key.insert(key.end(), tc.up_categories.begin(), tc.up_categories.end());
    auto [it, inserted] =
        interner.emplace(std::move(key),
                         static_cast<std::uint32_t>(topo_classes_.size()));
    if (inserted) topo_classes_.push_back(std::move(tc));
    node_topo_class_[n.id.index()] = it->second;
  }
}

const Node& ClusterTopology::node(NodeId id) const {
  CBES_CHECK_MSG(id.valid() && id.index() < nodes_.size(), "unknown node id");
  return nodes_[id.index()];
}

const Switch& ClusterTopology::sw(SwitchId id) const {
  CBES_CHECK_MSG(id.valid() && id.index() < switches_.size(),
                 "unknown switch id");
  return switches_[id.index()];
}

const Link& ClusterTopology::link(LinkId id) const {
  CBES_CHECK_MSG(id.valid() && id.index() < links_.size(), "unknown link id");
  return links_[id.index()];
}

std::vector<NodeId> ClusterTopology::nodes_with_arch(Arch arch) const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_)
    if (n.arch == arch) out.push_back(n.id);
  return out;
}

std::size_t ClusterTopology::total_slots() const {
  std::size_t slots = 0;
  for (const Node& n : nodes_) slots += static_cast<std::size_t>(n.cpus);
  return slots;
}

std::vector<SwitchId> ClusterTopology::chain_to_root(SwitchId leaf) const {
  std::vector<SwitchId> chain;
  for (SwitchId s = leaf; s.valid(); s = switches_[s.index()].parent)
    chain.push_back(s);
  return chain;
}

SwitchId ClusterTopology::lca_switch(SwitchId a, SwitchId b) const {
  while (a != b) {
    if (switches_[a.index()].depth >= switches_[b.index()].depth)
      a = switches_[a.index()].parent;
    else
      b = switches_[b.index()].parent;
  }
  return a;
}

std::vector<LinkId> ClusterTopology::path(NodeId a, NodeId b) const {
  require_frozen();
  CBES_CHECK(a.valid() && a.index() < nodes_.size());
  CBES_CHECK(b.valid() && b.index() < nodes_.size());
  std::vector<LinkId> p;
  if (a == b) return p;

  // Climb both attachment points to the LCA, collecting the uplinks of every
  // switch strictly below it: ascending on a's side, descending on b's.
  SwitchId sa = nodes_[a.index()].attached;
  SwitchId sb = nodes_[b.index()].attached;
  std::vector<LinkId> up;    // a's side, leaf -> just below LCA
  std::vector<LinkId> down;  // b's side, leaf -> just below LCA
  while (sa != sb) {
    if (switches_[sa.index()].depth >= switches_[sb.index()].depth) {
      up.push_back(switches_[sa.index()].uplink);
      sa = switches_[sa.index()].parent;
    } else {
      down.push_back(switches_[sb.index()].uplink);
      sb = switches_[sb.index()].parent;
    }
  }

  p.reserve(up.size() + down.size() + 2);
  p.push_back(nodes_[a.index()].uplink);
  p.insert(p.end(), up.begin(), up.end());
  p.insert(p.end(), down.rbegin(), down.rend());
  p.push_back(nodes_[b.index()].uplink);
  return p;
}

std::size_t ClusterTopology::hops(NodeId a, NodeId b) const {
  require_frozen();
  if (a == b) return 0;
  const int da = switches_[node(a).attached.index()].depth;
  const int db = switches_[node(b).attached.index()].depth;
  const int lca = lca_depth(a, b);
  return static_cast<std::size_t>((da - lca) + (db - lca)) + 2;
}

double ClusterTopology::path_bandwidth(NodeId a, NodeId b) const {
  double bw = std::numeric_limits<double>::infinity();
  for (LinkId l : path(a, b)) bw = std::min(bw, links_[l.index()].bandwidth_bps);
  return bw;
}

Seconds ClusterTopology::path_latency(NodeId a, NodeId b) const {
  Seconds total = 0.0;
  for (LinkId l : path(a, b)) total += links_[l.index()].hop_latency;
  return total;
}

int ClusterTopology::lca_depth(NodeId a, NodeId b) const {
  require_frozen();
  const SwitchId lca = lca_switch(node(a).attached, node(b).attached);
  return switches_[lca.index()].depth;
}

SwitchId ClusterTopology::ancestor_at(NodeId id, int depth) const {
  require_frozen();
  SwitchId s = node(id).attached;
  CBES_CHECK_MSG(depth >= 0 && depth <= switches_[s.index()].depth,
                 "ancestor_at depth out of range");
  while (switches_[s.index()].depth > depth) s = switches_[s.index()].parent;
  return s;
}

std::uint32_t ClusterTopology::topo_class_of(NodeId id) const {
  require_frozen();
  CBES_CHECK_MSG(id.valid() && id.index() < nodes_.size(), "unknown node id");
  return node_topo_class_[id.index()];
}

const TopoClass& ClusterTopology::topo_class(std::uint32_t cls) const {
  require_frozen();
  CBES_CHECK_MSG(cls < topo_classes_.size(), "unknown topology class");
  return topo_classes_[cls];
}

namespace {
// Shared signature formatter; the byte format is load-bearing — calibration
// checkpoints key coefficients by it.
std::string format_pair_signature(int arch_a, int arch_b,
                                  std::vector<int>& cats) {
  int arch_lo = arch_a;
  int arch_hi = arch_b;
  if (arch_lo > arch_hi) std::swap(arch_lo, arch_hi);
  std::sort(cats.begin(), cats.end());
  std::ostringstream os;
  os << 'a' << arch_lo << ':' << arch_hi << '|';
  for (int c : cats) os << c << ',';
  return os.str();
}
}  // namespace

std::string ClusterTopology::path_signature(NodeId a, NodeId b) const {
  const Node& na = node(a);
  const Node& nb = node(b);
  std::vector<int> cats;
  for (LinkId l : path(a, b)) cats.push_back(links_[l.index()].category);
  return format_pair_signature(static_cast<int>(na.arch),
                               static_cast<int>(nb.arch), cats);
}

std::string ClusterTopology::class_pair_signature(std::uint32_t ca,
                                                  std::uint32_t cb,
                                                  int lca) const {
  const TopoClass& ta = topo_class(ca);
  const TopoClass& tb = topo_class(cb);
  CBES_CHECK_MSG(lca >= 0 && lca <= ta.attach_depth && lca <= tb.attach_depth,
                 "class_pair_signature LCA depth out of range");
  // The path carries each endpoint's NIC link plus the uplinks of its
  // ancestor switches strictly below the LCA — the first (attach_depth - lca)
  // entries of the up-category chain.
  std::vector<int> cats;
  cats.reserve(static_cast<std::size_t>(ta.attach_depth - lca) +
               static_cast<std::size_t>(tb.attach_depth - lca) + 2);
  cats.push_back(ta.nic_category);
  for (int i = 0; i < ta.attach_depth - lca; ++i)
    cats.push_back(ta.up_categories[static_cast<std::size_t>(i)]);
  cats.push_back(tb.nic_category);
  for (int i = 0; i < tb.attach_depth - lca; ++i)
    cats.push_back(tb.up_categories[static_cast<std::size_t>(i)]);
  return format_pair_signature(static_cast<int>(ta.arch),
                               static_cast<int>(tb.arch), cats);
}

std::string ClusterTopology::node_signature(NodeId id) const {
  const Node& n = node(id);
  std::vector<int> cats;
  cats.push_back(links_[n.uplink.index()].category);
  for (SwitchId s = n.attached; switches_[s.index()].parent.valid();
       s = switches_[s.index()].parent) {
    cats.push_back(links_[switches_[s.index()].uplink.index()].category);
  }
  std::sort(cats.begin(), cats.end());

  std::ostringstream os;
  os << 'n' << static_cast<int>(n.arch) << 'c' << n.cpus << '|';
  for (int c : cats) os << c << ',';
  return os.str();
}

}  // namespace cbes
