// Cluster-description files: lets a deployment describe its own machine room
// instead of using the built-in Centurion / Orange Grove models.
//
// The format is line-oriented; '#' starts a comment. Bandwidths accept
// k/M/G suffixes (bytes per second); latencies accept us/ms/s suffixes.
//
//   cluster my-lab
//   switch core                                  # first switch = tree root
//   switch rack1 parent=core bw=100M lat=60us cat=2
//   switch rack2 parent=core bw=100M lat=60us cat=2
//   node n0 arch=I cpus=2 switch=rack1 bw=11.8M lat=30us cat=1
//   nodes 8 prefix=w arch=A switch=rack2 bw=11.8M lat=30us cat=1
//
// `nodes N prefix=p ...` expands to N nodes p0..p{N-1} with identical
// attributes. Architectures are the one-letter paper codes (A, I, S, G).
#pragma once

#include <iosfwd>
#include <string>

#include "topology/cluster.h"

namespace cbes {

/// Parses a cluster description; throws ContractError with a line number on
/// malformed input. The returned topology is frozen.
[[nodiscard]] ClusterTopology parse_topology(std::istream& in);
[[nodiscard]] ClusterTopology parse_topology_string(const std::string& text);
[[nodiscard]] ClusterTopology load_topology_file(const std::string& path);

/// Writes `topo` in the same format (round-trips through parse_topology).
void write_topology(const ClusterTopology& topo, std::ostream& out);

}  // namespace cbes
