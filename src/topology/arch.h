// Hardware architecture descriptions for the heterogeneous clusters in the paper:
// Alpha 533 MHz, dual Intel Pentium II 400 MHz, and SPARC 500 MHz nodes.
//
// Application-specific speed ratios (paper §3.1, footnote 1) emerge from blending
// each architecture's compute and memory rates with the application's memory
// intensity — a compute-bound code sees different ratios than a bandwidth-bound one.
#pragma once

#include <array>
#include <string_view>

namespace cbes {

/// Node architectures present on Centurion and Orange Grove.
enum class Arch : unsigned char {
  kAlpha533,   ///< Alpha 533 MHz, Alpha Linux (fastest for the paper's codes)
  kIntelPII400,  ///< dual Intel Pentium II 400 MHz, x86 Linux
  kSparc500,   ///< SPARC 500 MHz, Solaris (slowest for the paper's codes)
  kGeneric,    ///< synthetic reference architecture used in unit tests
};

inline constexpr std::array<Arch, 4> kAllArchs = {
    Arch::kAlpha533, Arch::kIntelPII400, Arch::kSparc500, Arch::kGeneric};

/// Static per-architecture characteristics. Rates are relative to Alpha = 1.0.
struct ArchTraits {
  std::string_view name;       ///< human-readable name ("A", "I", "S" in the paper)
  std::string_view code;       ///< one-letter code used in the paper's figures
  double flops_rate;           ///< relative floating-point throughput
  double mem_rate;             ///< relative memory-subsystem throughput
  /// Multiplier on per-message software (TCP/MPI stack) overhead; slower CPUs pay
  /// more host-side time per message.
  double comm_overhead_factor;
  int default_cpus;            ///< CPUs per node as deployed in the paper's clusters
};

/// Looks up the immutable traits for an architecture.
[[nodiscard]] const ArchTraits& traits(Arch arch) noexcept;

/// Effective relative execution speed of an application with the given memory
/// intensity mu in [0,1]: harmonic blend of compute and memory rates.
/// mu = 0 → pure compute; mu = 1 → pure memory-bound.
[[nodiscard]] double effective_speed(Arch arch, double mem_intensity) noexcept;

/// Short display name, e.g. "Alpha533".
[[nodiscard]] std::string_view arch_name(Arch arch) noexcept;

/// One-letter paper code: "A", "I", "S" (or "G").
[[nodiscard]] std::string_view arch_code(Arch arch) noexcept;

}  // namespace cbes
