#include "topology/builders.h"

#include <string>
#include <vector>

#include "common/check.h"

namespace cbes {

namespace {

// Fast-ethernet payload bandwidth (100 Mbps minus framing overhead).
constexpr double kFastEthernetBps = 11.8e6;
// 1.2 Gbps core switch trunk (Centurion).
constexpr double kGigCoreBps = 140.0e6;
// D-Link 8-port switches: same wire speed, but cheaper forwarding silicon.
constexpr double kDLinkBps = 11.0e6;
// Limited-capacity federation link between the two Orange Grove sub-clusters.
constexpr double kFederationBps = 7.0e6;
// Switch-to-switch 100 Mbps trunks carry every flow crossing the switch
// boundary and run through the stack backplane; effective per-flow payload
// bandwidth is well below a dedicated node link.
constexpr double kTrunkBps = 8.5e6;

// Fixed per-traversal forwarding latencies (frame store-and-forward plus
// lookup on 2005-era switches). Tuned so measured internode latency
// differences, (max - min) / max across node pairs, match the paper:
// Centurion ~13%, Orange Grove ~54%.
constexpr Seconds k3ComHop = 30e-6;
constexpr Seconds kGigHop = 6e-6;
constexpr Seconds kDLinkHop = 55e-6;
constexpr Seconds kFederationHop = 70e-6;
// Switch-to-switch trunks forward whole frames in both directions and carry
// every flow crossing the switch boundary; their traversal costs more.
constexpr Seconds k3ComTrunkHop = 60e-6;

}  // namespace

ClusterTopology make_centurion() {
  ClusterTopology topo("centurion");
  const SwitchId core = topo.add_root_switch("3com-gig-00");

  // Eight identical 24-port leaf switches under the gigabit core.
  SwitchId leaves[8];
  for (int s = 0; s < 8; ++s) {
    leaves[s] = topo.add_switch("3com-" + std::to_string(4 + s), core,
                                kGigCoreBps, kGigHop, kCatGigUplink);
  }

  // 32 Alpha nodes on leaf switches 0-1 (16 each).
  for (int i = 0; i < 32; ++i) {
    topo.add_node("alpha-" + std::to_string(i), Arch::kAlpha533, 1,
                  leaves[i / 16], kFastEthernetBps, k3ComHop, kCat3ComNode);
  }
  // 96 dual-PII nodes on leaf switches 2-7 (16 each).
  for (int i = 0; i < 96; ++i) {
    topo.add_node("intel-" + std::to_string(i), Arch::kIntelPII400, 2,
                  leaves[2 + i / 16], kFastEthernetBps, k3ComHop, kCat3ComNode);
  }
  topo.freeze();
  return topo;
}

ClusterTopology make_orange_grove() {
  ClusterTopology topo("orange-grove");

  // East sub-cluster: the two stacked 3Com switches act as one 48-port core.
  const SwitchId stack = topo.add_root_switch("3com-stack");
  const SwitchId sw01 = topo.add_switch("3com-01", stack, kTrunkBps,
                                        k3ComTrunkHop, kCat3ComUplink);
  const SwitchId sw02 = topo.add_switch("3com-02", stack, kTrunkBps,
                                        k3ComTrunkHop, kCat3ComUplink);

  // West sub-cluster hangs off the east core through the limited federation
  // link; its own core is 3Com switch 11, with the two D-Link 8-port switches
  // below it.
  const SwitchId sw11 = topo.add_switch("3com-11", stack, kFederationBps,
                                        kFederationHop, kCatFederation);
  const SwitchId dl10 = topo.add_switch("dlink-10", sw11, kDLinkBps, kDLinkHop,
                                        kCatDLinkUplink);
  const SwitchId dl12 = topo.add_switch("dlink-12", sw11, kDLinkBps, kDLinkHop,
                                        kCatDLinkUplink);

  // 8 Alpha nodes, all but one on 3Com-01 (one stray on the stacked core), so
  // all-Alpha mappings still differ modestly in connectivity — the
  // intra-zone-1 execution-time range of Figure 6.
  for (int i = 0; i < 7; ++i) {
    topo.add_node("alpha-" + std::to_string(i), Arch::kAlpha533, 1, sw01,
                  kFastEthernetBps, k3ComHop, kCat3ComNode);
  }
  topo.add_node("alpha-7", Arch::kAlpha533, 1, stack, kFastEthernetBps,
                k3ComHop, kCat3ComNode);
  // 12 dual-PII nodes: 4 on 3Com-01, 4 on 3Com-02, 4 on the stacked core.
  for (int i = 0; i < 4; ++i) {
    topo.add_node("intel-" + std::to_string(i), Arch::kIntelPII400, 2, sw01,
                  kFastEthernetBps, k3ComHop, kCat3ComNode);
  }
  for (int i = 4; i < 8; ++i) {
    topo.add_node("intel-" + std::to_string(i), Arch::kIntelPII400, 2, sw02,
                  kFastEthernetBps, k3ComHop, kCat3ComNode);
  }
  for (int i = 8; i < 12; ++i) {
    topo.add_node("intel-" + std::to_string(i), Arch::kIntelPII400, 2, stack,
                  kFastEthernetBps, k3ComHop, kCat3ComNode);
  }
  // 8 SPARC nodes in the west sub-cluster: 4 on its core, 2 on each D-Link.
  for (int i = 0; i < 4; ++i) {
    topo.add_node("sparc-" + std::to_string(i), Arch::kSparc500, 1, sw11,
                  kFastEthernetBps, k3ComHop, kCat3ComNode);
  }
  for (int i = 4; i < 6; ++i) {
    topo.add_node("sparc-" + std::to_string(i), Arch::kSparc500, 1, dl10,
                  kDLinkBps, kDLinkHop, kCatDLinkNode);
  }
  for (int i = 6; i < 8; ++i) {
    topo.add_node("sparc-" + std::to_string(i), Arch::kSparc500, 1, dl12,
                  kDLinkBps, kDLinkHop, kCatDLinkNode);
  }
  topo.freeze();
  return topo;
}

ClusterTopology make_flat(std::size_t n, Arch arch, int cpus) {
  ClusterTopology topo("flat-" + std::to_string(n));
  const SwitchId sw = topo.add_root_switch("sw0");
  for (std::size_t i = 0; i < n; ++i) {
    topo.add_node("node-" + std::to_string(i), arch, cpus, sw,
                  kFastEthernetBps, k3ComHop, kCat3ComNode);
  }
  topo.freeze();
  return topo;
}

ClusterTopology make_two_switch(std::size_t per_switch, Arch arch) {
  ClusterTopology topo("two-switch");
  const SwitchId core = topo.add_root_switch("core");
  const SwitchId a = topo.add_switch("leaf-a", core, kFastEthernetBps, k3ComHop,
                                     kCat3ComUplink);
  const SwitchId b = topo.add_switch("leaf-b", core, kFastEthernetBps, k3ComHop,
                                     kCat3ComUplink);
  for (std::size_t i = 0; i < per_switch; ++i) {
    topo.add_node("a-" + std::to_string(i), arch, 1, a, kFastEthernetBps,
                  k3ComHop, kCat3ComNode);
  }
  for (std::size_t i = 0; i < per_switch; ++i) {
    topo.add_node("b-" + std::to_string(i), arch, 1, b, kFastEthernetBps,
                  k3ComHop, kCat3ComNode);
  }
  topo.freeze();
  return topo;
}

std::size_t fat_tree_node_count(const FatTreeOptions& opt) {
  std::size_t leaves = 1;
  for (int l = 0; l < opt.levels; ++l) leaves *= static_cast<std::size_t>(opt.radix);
  return leaves * opt.nodes_per_leaf;
}

ClusterTopology make_fat_tree(const FatTreeOptions& opt) {
  CBES_CHECK_MSG(opt.levels >= 1, "fat tree needs at least one switch level");
  CBES_CHECK_MSG(opt.radix >= 1, "fat tree radix must be positive");
  CBES_CHECK_MSG(opt.nodes_per_leaf >= 1, "fat tree needs nodes per leaf");
  CBES_CHECK_MSG(!opt.arch_mix.empty(), "fat tree arch mix must be nonempty");
  CBES_CHECK_MSG(opt.cpus >= 1, "fat tree nodes need at least one CPU");
  const std::size_t total = fat_tree_node_count(opt);
  CBES_CHECK_MSG(total <= (std::size_t{1} << 21),
                 "fat tree would exceed 2M nodes");

  std::string name = opt.name.empty()
                         ? "fat-tree-" + std::to_string(total)
                         : opt.name;
  ClusterTopology topo(std::move(name));
  const SwitchId root = topo.add_root_switch("ft-root");

  // One link category per level keeps the path-class count proportional to
  // tree depth × |arch_mix|², independent of the node count. Trunks get
  // faster towards the root, as real fat trees do.
  auto level_category = [](int depth) { return 100 + depth; };
  constexpr int kFatTreeNodeCategory = 100;

  std::vector<SwitchId> frontier{root};
  for (int depth = 1; depth <= opt.levels; ++depth) {
    const double bw = depth == 1 ? kGigCoreBps : kTrunkBps;
    const Seconds hop = depth == 1 ? kGigHop : k3ComTrunkHop;
    std::vector<SwitchId> next;
    next.reserve(frontier.size() * static_cast<std::size_t>(opt.radix));
    for (std::size_t p = 0; p < frontier.size(); ++p) {
      for (int c = 0; c < opt.radix; ++c) {
        next.push_back(topo.add_switch(
            "ft-s" + std::to_string(depth) + "-" +
                std::to_string(p * static_cast<std::size_t>(opt.radix) +
                               static_cast<std::size_t>(c)),
            frontier[p], bw, hop, level_category(depth)));
      }
    }
    frontier = std::move(next);
  }

  std::size_t node_index = 0;
  for (SwitchId leaf : frontier) {
    for (std::size_t i = 0; i < opt.nodes_per_leaf; ++i, ++node_index) {
      const Arch arch = opt.arch_mix[node_index % opt.arch_mix.size()];
      topo.add_node("ft-n" + std::to_string(node_index), arch, opt.cpus, leaf,
                    kFastEthernetBps, k3ComHop, kFatTreeNodeCategory);
    }
  }
  topo.freeze();
  return topo;
}

ClusterTopology make_federation(std::size_t clusters, std::size_t per_cluster,
                                Arch arch) {
  ClusterTopology topo("federation");
  const SwitchId root = topo.add_root_switch("core-0");
  std::size_t next = 0;
  for (std::size_t c = 0; c < clusters; ++c) {
    SwitchId sub = root;
    if (c > 0) {
      sub = topo.add_switch("core-" + std::to_string(c), root, kFederationBps,
                            kFederationHop, kCatFederation);
    }
    for (std::size_t i = 0; i < per_cluster; ++i, ++next) {
      topo.add_node("node-" + std::to_string(next), arch, 1, sub,
                    kFastEthernetBps, k3ComHop, kCat3ComNode);
    }
  }
  topo.freeze();
  return topo;
}

}  // namespace cbes
