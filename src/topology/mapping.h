// A mapping M (paper §3.1): the assignment of application tasks (ranks) to
// cluster nodes. Multiple ranks may share a node up to its CPU slot count
// (the dual-PII nodes host two ranks — the "16(2)" cases of Figure 5).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"
#include "topology/cluster.h"

namespace cbes {

class Mapping {
 public:
  Mapping() = default;
  /// `assignment[r]` is the node hosting rank r.
  explicit Mapping(std::vector<NodeId> assignment);

  [[nodiscard]] std::size_t nranks() const noexcept {
    return assignment_.size();
  }
  [[nodiscard]] NodeId node_of(RankId rank) const;
  [[nodiscard]] const std::vector<NodeId>& assignment() const noexcept {
    return assignment_;
  }

  /// Replaces the node of one rank (the SA neighbour move).
  void reassign(RankId rank, NodeId node);

  /// True when every rank's node exists and no node hosts more ranks than it
  /// has CPU slots.
  [[nodiscard]] bool fits(const ClusterTopology& topology) const;

  /// Number of ranks placed on `node`.
  [[nodiscard]] std::size_t ranks_on(NodeId node) const;

  /// The naive placement the paper ascribes to PVM/MPI runtimes: walk the boot
  /// node list round-robin, filling CPU slots, "regardless of resource
  /// availability".
  static Mapping round_robin(const ClusterTopology& topology,
                             std::size_t nranks);

  /// Human-readable "rank->node" listing, e.g. "0:alpha-3 1:intel-0 ...".
  [[nodiscard]] std::string describe(const ClusterTopology& topology) const;

  /// Order-sensitive content hash of the assignment (FNV-1a). Equal mappings
  /// hash equal; used as the cache key component of server::EvalCache, which
  /// re-checks full equality on lookup, so collisions cost a miss, never a
  /// wrong answer.
  [[nodiscard]] std::size_t hash() const noexcept;

  friend bool operator==(const Mapping&, const Mapping&) = default;

 private:
  std::vector<NodeId> assignment_;
};

}  // namespace cbes
