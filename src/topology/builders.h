// Ready-made cluster topologies: the two experimental clusters from the paper
// (Centurion at UVa, the rewired Orange Grove at Syracuse) plus small synthetic
// shapes for unit tests and exploration.
#pragma once

#include <cstddef>

#include "topology/cluster.h"

namespace cbes {

/// Link hardware categories used by the builders (shared with the O(N)
/// calibration's path-equivalence classes).
enum LinkCategory : int {
  kCat3ComNode = 1,    ///< node NIC to a 3Com 24-port 100 Mbps switch
  kCat3ComUplink = 2,  ///< 3Com leaf switch to a parent switch (100 Mbps trunk)
  kCatGigUplink = 3,   ///< 3Com leaf to the 1.2 Gbps core (Centurion)
  kCatDLinkNode = 4,   ///< node NIC to a D-Link 8-port switch (higher latency)
  kCatDLinkUplink = 5, ///< D-Link switch uplink
  kCatFederation = 6,  ///< limited-capacity inter-cluster federation link
};

/// The experimental Centurion configuration (paper §4.1, figure 3):
/// 32 Alpha 533 MHz + 96 dual Intel PII 400 MHz nodes over eight 3Com 24-port
/// 100 Mbps leaf switches connected to a 3Com 1.2 Gbps core switch.
/// Internode latency spread is small (~13%): the cluster is nearly flat.
[[nodiscard]] ClusterTopology make_centurion();

/// The rewired Orange Grove configuration (paper §4.2, figure 4):
/// 8 Alpha 533 MHz + 8 SPARC 500 MHz + 12 dual Intel PII 400 MHz nodes over
/// five 3Com switches (two stacked) and two D-Link 8-port switches, wired as a
/// federation of two elementary clusters joined by a limited-capacity link.
/// Internode latency spread is large (~54%).
[[nodiscard]] ClusterTopology make_orange_grove();

/// Single switch, `n` identical nodes — the degenerate homogeneous case.
[[nodiscard]] ClusterTopology make_flat(std::size_t n, Arch arch = Arch::kGeneric,
                                        int cpus = 1);

/// Two leaf switches of `per_switch` nodes each under a core switch; used by
/// tests that need exactly one latency boundary.
[[nodiscard]] ClusterTopology make_two_switch(std::size_t per_switch,
                                              Arch arch = Arch::kGeneric);

/// Parameterized federation: `clusters` sub-clusters of `per_cluster` nodes,
/// joined through limited links; used by topology-sensitivity studies.
[[nodiscard]] ClusterTopology make_federation(std::size_t clusters,
                                              std::size_t per_cluster,
                                              Arch arch = Arch::kGeneric);

/// Shape of a synthetic mega-cluster fat tree (see make_fat_tree).
struct FatTreeOptions {
  int levels = 2;              ///< switch levels below the root; leaves sit at this depth
  int radix = 4;               ///< children per switch at every level
  std::size_t nodes_per_leaf = 8;
  /// Architectures assigned round-robin across nodes; must be nonempty.
  std::vector<Arch> arch_mix = {Arch::kGeneric};
  int cpus = 1;                ///< CPU slots per node
  /// Optional topology name; default "fat-tree-<node count>".
  std::string name;
};

/// Total node count a FatTreeOptions describes (radix^levels leaf switches ×
/// nodes_per_leaf), without building anything.
[[nodiscard]] std::size_t fat_tree_node_count(const FatTreeOptions& opt);

/// Synthetic mega-cluster: a symmetric fat tree with radix^levels leaf
/// switches, faster trunks towards the root, and a distinct link category per
/// level — so the number of path classes grows with depth × |arch_mix|², not
/// with the node count. This is the 10k–100k-node scaling target of ROADMAP
/// item 1; e.g. {levels=3, radix=16, nodes_per_leaf=25} is a 102 400-node
/// cluster whose latency model stays a few kilobytes.
[[nodiscard]] ClusterTopology make_fat_tree(const FatTreeOptions& opt);

}  // namespace cbes
