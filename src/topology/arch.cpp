#include "topology/arch.h"

#include <algorithm>

#include "common/check.h"

namespace cbes {

namespace {
// Rates were tuned so application-specific ratios land near the paper's observed
// behaviour: for an LU-like blend (mu ~ 0.4) Intel PII runs at ~0.85x Alpha and
// SPARC at ~0.67x, which reproduces the three execution-time zones of Figure 6.
constexpr ArchTraits kTraits[] = {
    // name         code flops  mem   comm_ovh cpus
    {"Alpha533",    "A", 1.00,  1.00, 1.00,    1},
    {"IntelPII400", "I", 0.82,  0.90, 1.15,    2},
    {"Sparc500",    "S", 0.64,  0.72, 1.30,    1},
    {"Generic",     "G", 1.00,  1.00, 1.00,    1},
};
}  // namespace

const ArchTraits& traits(Arch arch) noexcept {
  return kTraits[static_cast<unsigned char>(arch)];
}

double effective_speed(Arch arch, double mem_intensity) noexcept {
  const double mu = std::clamp(mem_intensity, 0.0, 1.0);
  const ArchTraits& t = traits(arch);
  return 1.0 / ((1.0 - mu) / t.flops_rate + mu / t.mem_rate);
}

std::string_view arch_name(Arch arch) noexcept { return traits(arch).name; }

std::string_view arch_code(Arch arch) noexcept { return traits(arch).code; }

}  // namespace cbes
