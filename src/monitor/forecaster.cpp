#include "monitor/forecaster.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/stats.h"

namespace cbes {

double LastValueForecaster::predict(std::span<const double> history) const {
  CBES_CHECK_MSG(!history.empty(), "forecast from empty history");
  return history.back();
}

SlidingWindowForecaster::SlidingWindowForecaster(std::size_t window)
    : window_(window) {
  CBES_CHECK_MSG(window >= 1, "window must be at least 1");
}

double SlidingWindowForecaster::predict(std::span<const double> history) const {
  CBES_CHECK_MSG(!history.empty(), "forecast from empty history");
  const std::size_t n = std::min(window_, history.size());
  double sum = 0.0;
  for (std::size_t i = history.size() - n; i < history.size(); ++i)
    sum += history[i];
  return sum / static_cast<double>(n);
}

MedianForecaster::MedianForecaster(std::size_t window) : window_(window) {
  CBES_CHECK_MSG(window >= 1, "window must be at least 1");
}

double MedianForecaster::predict(std::span<const double> history) const {
  CBES_CHECK_MSG(!history.empty(), "forecast from empty history");
  const std::size_t n = std::min(window_, history.size());
  return median(history.subspan(history.size() - n, n));
}

AdaptiveForecaster::AdaptiveForecaster() {
  base_.push_back(std::make_unique<LastValueForecaster>());
  base_.push_back(std::make_unique<SlidingWindowForecaster>(4));
  base_.push_back(std::make_unique<SlidingWindowForecaster>(16));
  base_.push_back(std::make_unique<MedianForecaster>(8));
}

double AdaptiveForecaster::predict(std::span<const double> history) const {
  CBES_CHECK_MSG(!history.empty(), "forecast from empty history");
  if (history.size() < 3) return history.back();

  // One-step-ahead backtest over the available history: for each prefix,
  // predict the next sample and accumulate absolute error per base predictor.
  const Forecaster* best = base_.front().get();
  double best_err = std::numeric_limits<double>::infinity();
  for (const auto& f : base_) {
    double err = 0.0;
    for (std::size_t cut = 1; cut + 1 <= history.size(); ++cut) {
      const double predicted = f->predict(history.subspan(0, cut));
      err += std::abs(predicted - history[cut]);
    }
    if (err < best_err) {
      best_err = err;
      best = f.get();
    }
  }
  return best->predict(history);
}

}  // namespace cbes
