#include "monitor/monitor.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "fault/injector.h"

namespace cbes {

namespace {

// Longest re-poll gap (in ticks) the exponential backoff reaches for a
// suspect node. Bounded so a recovered node is re-detected within a few
// periods instead of drifting towards "never asked again".
constexpr std::uint64_t kMaxBackoffGap = 8;

// The suspect re-poll schedule expressed as a RetryPolicy: backoff "seconds"
// are measured in sensor ticks (1, 2, 4, ... up to the gap cap), jittered per
// node. Deterministic in (monitor seed, node, backoff round).
resilience::RetryPolicyConfig repoll_config(const MonitorConfig& config) {
  resilience::RetryPolicyConfig rp;
  rp.max_retries = 0;  // unused: the schedule never exhausts, it just re-polls
  rp.initial_backoff = 1.0;
  rp.backoff_cap = static_cast<double>(kMaxBackoffGap);
  rp.jitter = config.repoll_jitter;
  rp.seed = derive_seed(config.seed, 0x9E90'11ULL);
  return rp;
}

}  // namespace

SystemMonitor::SystemMonitor(const ClusterTopology& topology,
                             const LoadModel& truth, MonitorConfig config)
    : topology_(&topology),
      truth_(&truth),
      config_(config),
      repoll_(repoll_config(config)),
      forecaster_(std::make_unique<LastValueForecaster>()) {
  CBES_CHECK_MSG(config_.period > 0.0, "monitor period must be positive");
  CBES_CHECK_MSG(config_.history >= 1, "monitor must retain history");
  CBES_CHECK_MSG(config_.suspect_after >= 1,
                 "suspect threshold must be at least one missed report");
  CBES_CHECK_MSG(config_.dead_after > config_.suspect_after,
                 "dead threshold must exceed the suspect threshold");
  CBES_CHECK_MSG(config_.dead_after < config_.history,
                 "dead threshold must fit inside the retained history window");
}

void SystemMonitor::set_forecaster(std::unique_ptr<Forecaster> forecaster) {
  CBES_CHECK_MSG(forecaster != nullptr, "null forecaster");
  forecaster_ = std::move(forecaster);
}

void SystemMonitor::set_fault_injector(const fault::FaultInjector* injector) {
  injector_ = injector;
}

void SystemMonitor::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    snapshots_ = nullptr;
    probes_ = nullptr;
    reports_lost_ = nullptr;
    backfills_ = nullptr;
    snapshot_age_ = nullptr;
    suspect_nodes_ = nullptr;
    dead_nodes_ = nullptr;
    return;
  }
  snapshots_ = &registry->counter("cbes_monitor_snapshots_total",
                                  "Availability snapshots served");
  probes_ = &registry->counter(
      "cbes_monitor_probes_total",
      "Per-node sensor readings folded into served snapshots");
  reports_lost_ = &registry->counter(
      "cbes_monitor_reports_lost_total",
      "Polled sensor reports that never arrived (lost or node down)");
  backfills_ = &registry->counter(
      "cbes_monitor_backfills_total",
      "Node readings back-filled from the topology equivalence class");
  snapshot_age_ = &registry->gauge(
      "cbes_monitor_snapshot_age_seconds",
      "Age of the newest published sensor tick in the last snapshot");
  suspect_nodes_ = &registry->gauge(
      "cbes_monitor_suspect_nodes",
      "Nodes marked suspect in the last served snapshot");
  dead_nodes_ = &registry->gauge(
      "cbes_monitor_dead_nodes",
      "Nodes declared dead in the last served snapshot");
}

double SystemMonitor::noisy(double value, NodeId node, std::uint64_t tick,
                            std::uint64_t sensor) const {
  if (config_.noise_sigma <= 0.0) return value;
  // Deterministic per (seed, node, tick, sensor): the same question always
  // gets the same answer, as if reading the daemon's published record.
  std::uint64_t stream = (static_cast<std::uint64_t>(node.value) << 34) ^
                         (tick << 2) ^ sensor;
  Rng rng(derive_seed(config_.seed, stream));
  return value * rng.lognormal_median(1.0, config_.noise_sigma);
}

std::uint64_t SystemMonitor::epoch_at(Seconds now) const noexcept {
  return static_cast<std::uint64_t>(
      std::max(0.0, std::floor(now / config_.period)));
}

Seconds SystemMonitor::staleness(Seconds now) const noexcept {
  return now - static_cast<double>(epoch_at(now)) * config_.period;
}

LoadSnapshot SystemMonitor::snapshot(Seconds now) const {
  const std::size_t n = topology_->node_count();
  LoadSnapshot snap;
  snap.taken_at = now;
  snap.cpu_avail.resize(n);
  snap.nic_util.resize(n);
  snap.health.assign(n, NodeHealth::kHealthy);
  snap.backfilled.assign(n, 0);

  // Ticks at k * period, k >= 0; the most recent published tick is floor(now/p).
  const std::uint64_t last_tick = epoch_at(now);
  snap.epoch = last_tick;
  const std::uint64_t first_tick =
      last_tick + 1 >= config_.history ? last_tick + 1 - config_.history : 0;

  std::uint64_t probe_count = 0;
  std::uint64_t lost_count = 0;

  // Pass 1: replay each node's report stream through the health machine and
  // forecast from whatever reports survived.
  std::vector<double> cpu_hist;
  std::vector<double> nic_hist;
  std::vector<std::uint8_t> has_reports(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node{i};
    cpu_hist.clear();
    nic_hist.clear();

    // `streak` counts consecutive ticks without a received report. Reports are
    // published by the node's daemon on every tick whether or not we poll, so
    // the streak advances every tick; the backoff schedule only changes when
    // we *ask* (and therefore when recovery is noticed and what polling costs).
    std::uint64_t streak = 0;
    std::uint64_t skip = 0;      // ticks left before the next backoff re-poll
    std::size_t round = 0;       // backoff rounds since the node went suspect
    for (std::uint64_t k = first_tick; k <= last_tick; ++k) {
      const Seconds t = static_cast<double>(k) * config_.period;
      bool attempted;
      if (injector_ == nullptr || streak < config_.suspect_after) {
        attempted = true;  // normal cadence: poll every tick
      } else if (skip == 0) {
        attempted = true;  // backoff re-poll of a suspect node
        // Next gap in ticks: jittered exponential backoff, one jitter stream
        // per node so a recovering rack is re-probed staggered.
        const double gap = repoll_.backoff_seconds(node.value, round);
        skip = std::max<std::uint64_t>(
                   1, static_cast<std::uint64_t>(std::llround(gap))) -
               1;
        ++round;
      } else {
        attempted = false;
        --skip;
      }

      bool received = false;
      if (attempted) {
        probe_count += 2;  // two sensors (CPU, NIC) per polled tick
        received = injector_ == nullptr || !injector_->report_lost(node, k, t);
        if (!received) ++lost_count;
      }

      if (received) {
        streak = 0;
        skip = 0;
        round = 0;
        cpu_hist.push_back(std::clamp(
            noisy(truth_->cpu_avail(node, t), node, k, 0), 0.02, 1.0));
        nic_hist.push_back(std::clamp(
            noisy(truth_->nic_util(node, t), node, k, 1), 0.0, 0.95));
      } else {
        ++streak;
      }
    }

    if (streak >= config_.dead_after) {
      snap.health[i] = NodeHealth::kDead;
    } else if (streak >= config_.suspect_after) {
      snap.health[i] = NodeHealth::kSuspect;
    }

    if (!cpu_hist.empty()) {
      has_reports[i] = 1;
      snap.cpu_avail[i] = std::clamp(forecaster_->predict(cpu_hist), 0.02, 1.0);
      snap.nic_util[i] = std::clamp(forecaster_->predict(nic_hist), 0.0, 0.95);
    }
  }

  // Pass 2: fill the holes. Dead nodes get the pessimal picture; reachable
  // nodes with no surviving reports borrow the mean forecast of healthy nodes
  // in the same hardware equivalence class (the paper's calibration classes),
  // falling back to idle defaults when the whole class is silent.
  std::uint64_t backfill_count = 0;
  std::size_t suspect_count = 0;
  std::size_t dead_count = 0;
  std::unordered_map<std::string, std::pair<double, double>> class_sum;
  std::unordered_map<std::string, std::size_t> class_n;
  for (std::size_t i = 0; i < n; ++i) {
    if (snap.health[i] == NodeHealth::kHealthy && has_reports[i] != 0) {
      const std::string sig = topology_->node_signature(NodeId{i});
      auto& sum = class_sum[sig];
      sum.first += snap.cpu_avail[i];
      sum.second += snap.nic_util[i];
      ++class_n[sig];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (snap.health[i] == NodeHealth::kDead) {
      ++dead_count;
      snap.cpu_avail[i] = 0.02;
      snap.nic_util[i] = 0.95;
      continue;
    }
    if (snap.health[i] == NodeHealth::kSuspect) ++suspect_count;
    if (has_reports[i] != 0) continue;
    const std::string sig = topology_->node_signature(NodeId{i});
    const auto it = class_n.find(sig);
    if (it != class_n.end() && it->second > 0) {
      const auto& sum = class_sum[sig];
      const double denom = static_cast<double>(it->second);
      snap.cpu_avail[i] = sum.first / denom;
      snap.nic_util[i] = sum.second / denom;
    } else {
      // Last rung of the degradation ladder: assume idle.
      snap.cpu_avail[i] = 1.0;
      snap.nic_util[i] = 0.0;
    }
    snap.backfilled[i] = 1;
    ++backfill_count;
  }

  if (snapshots_ != nullptr) {
    snapshots_->inc();
    probes_->inc(probe_count);
    if (lost_count > 0) reports_lost_->inc(lost_count);
    if (backfill_count > 0) backfills_->inc(backfill_count);
    snapshot_age_->set(now - static_cast<double>(last_tick) * config_.period);
    suspect_nodes_->set(static_cast<double>(suspect_count));
    dead_nodes_->set(static_cast<double>(dead_count));
  }
  return snap;
}

LoadSnapshot SystemMonitor::truth_snapshot(Seconds now) const {
  const std::size_t n = topology_->node_count();
  LoadSnapshot snap;
  snap.taken_at = now;
  snap.epoch = epoch_at(now);
  snap.cpu_avail.resize(n);
  snap.nic_util.resize(n);
  if (injector_ != nullptr) snap.health.assign(n, NodeHealth::kHealthy);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node{i};
    snap.cpu_avail[i] = truth_->cpu_avail(node, now);
    snap.nic_util[i] = truth_->nic_util(node, now);
    if (injector_ != nullptr && injector_->is_down(node, now)) {
      snap.health[i] = NodeHealth::kDead;
    }
  }
  return snap;
}

}  // namespace cbes
