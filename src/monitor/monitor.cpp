#include "monitor/monitor.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace cbes {

SystemMonitor::SystemMonitor(const ClusterTopology& topology,
                             const LoadModel& truth, MonitorConfig config)
    : topology_(&topology),
      truth_(&truth),
      config_(config),
      forecaster_(std::make_unique<LastValueForecaster>()) {
  CBES_CHECK_MSG(config_.period > 0.0, "monitor period must be positive");
  CBES_CHECK_MSG(config_.history >= 1, "monitor must retain history");
}

void SystemMonitor::set_forecaster(std::unique_ptr<Forecaster> forecaster) {
  CBES_CHECK_MSG(forecaster != nullptr, "null forecaster");
  forecaster_ = std::move(forecaster);
}

void SystemMonitor::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    snapshots_ = nullptr;
    probes_ = nullptr;
    snapshot_age_ = nullptr;
    return;
  }
  snapshots_ = &registry->counter("cbes_monitor_snapshots_total",
                                  "Availability snapshots served");
  probes_ = &registry->counter(
      "cbes_monitor_probes_total",
      "Per-node sensor readings folded into served snapshots");
  snapshot_age_ = &registry->gauge(
      "cbes_monitor_snapshot_age_seconds",
      "Age of the newest published sensor tick in the last snapshot");
}

double SystemMonitor::noisy(double value, NodeId node, std::uint64_t tick,
                            std::uint64_t sensor) const {
  if (config_.noise_sigma <= 0.0) return value;
  // Deterministic per (seed, node, tick, sensor): the same question always
  // gets the same answer, as if reading the daemon's published record.
  std::uint64_t stream = (static_cast<std::uint64_t>(node.value) << 34) ^
                         (tick << 2) ^ sensor;
  Rng rng(derive_seed(config_.seed, stream));
  return value * rng.lognormal_median(1.0, config_.noise_sigma);
}

std::uint64_t SystemMonitor::epoch_at(Seconds now) const noexcept {
  return static_cast<std::uint64_t>(
      std::max(0.0, std::floor(now / config_.period)));
}

Seconds SystemMonitor::staleness(Seconds now) const noexcept {
  return now - static_cast<double>(epoch_at(now)) * config_.period;
}

LoadSnapshot SystemMonitor::snapshot(Seconds now) const {
  const std::size_t n = topology_->node_count();
  LoadSnapshot snap;
  snap.taken_at = now;
  snap.cpu_avail.resize(n);
  snap.nic_util.resize(n);

  // Ticks at k * period, k >= 0; the most recent published tick is floor(now/p).
  const std::uint64_t last_tick = epoch_at(now);
  snap.epoch = last_tick;
  const std::uint64_t first_tick =
      last_tick + 1 >= config_.history ? last_tick + 1 - config_.history : 0;

  if (snapshots_ != nullptr) {
    snapshots_->inc();
    // Two sensors (CPU, NIC) per node per retained tick.
    probes_->inc(2 * n * (last_tick - first_tick + 1));
    snapshot_age_->set(now - static_cast<double>(last_tick) * config_.period);
  }

  std::vector<double> cpu_hist;
  std::vector<double> nic_hist;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node{i};
    cpu_hist.clear();
    nic_hist.clear();
    for (std::uint64_t k = first_tick; k <= last_tick; ++k) {
      const Seconds t = static_cast<double>(k) * config_.period;
      cpu_hist.push_back(
          std::clamp(noisy(truth_->cpu_avail(node, t), node, k, 0), 0.02, 1.0));
      nic_hist.push_back(
          std::clamp(noisy(truth_->nic_util(node, t), node, k, 1), 0.0, 0.95));
    }
    snap.cpu_avail[i] = std::clamp(forecaster_->predict(cpu_hist), 0.02, 1.0);
    snap.nic_util[i] = std::clamp(forecaster_->predict(nic_hist), 0.0, 0.95);
  }
  return snap;
}

LoadSnapshot SystemMonitor::truth_snapshot(Seconds now) const {
  const std::size_t n = topology_->node_count();
  LoadSnapshot snap;
  snap.taken_at = now;
  snap.epoch = epoch_at(now);
  snap.cpu_avail.resize(n);
  snap.nic_util.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node{i};
    snap.cpu_avail[i] = truth_->cpu_avail(node, now);
    snap.nic_util[i] = truth_->nic_util(node, now);
  }
  return snap;
}

}  // namespace cbes
