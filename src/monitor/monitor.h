// The system-monitoring subsystem of CBES (paper §2): daemons that keep "a
// current picture of the availability of system resources".
//
// SystemMonitor simulates the daemons: each node's CPU and NIC sensors sample
// the ground-truth LoadModel on a fixed period (with measurement noise), and a
// snapshot at time `now` reflects only what has been published by then. A
// pluggable Forecaster turns the sample history into the next-period estimate,
// mirroring the NWS (Centurion) vs last-value (Orange Grove) prototypes.
#pragma once

#include <cstdint>
#include <memory>

#include "common/types.h"
#include "monitor/forecaster.h"
#include "monitor/snapshot.h"
#include "obs/metrics.h"
#include "simnet/load.h"
#include "topology/cluster.h"

namespace cbes {

struct MonitorConfig {
  /// Sensor sampling period. The paper's daemons publish periodically; anything
  /// that changes between ticks is invisible until the next tick.
  Seconds period = 10.0;
  /// Multiplicative measurement noise (log-space sigma) on each sample;
  /// 0 disables noise.
  double noise_sigma = 0.01;
  /// Number of trailing samples retained per sensor for forecasting.
  std::size_t history = 32;
  std::uint64_t seed = 0x5eed5eedULL;
};

/// Simulated monitoring infrastructure over a cluster.
class SystemMonitor {
 public:
  /// `topology` and `truth` must outlive the monitor. Defaults to the
  /// last-value forecaster (the Orange Grove prototype's behaviour).
  SystemMonitor(const ClusterTopology& topology, const LoadModel& truth,
                MonitorConfig config);

  /// Replaces the forecaster (e.g. AdaptiveForecaster for NWS-like behaviour).
  void set_forecaster(std::unique_ptr<Forecaster> forecaster);

  /// The availability picture the daemons have published by `now`, run through
  /// the forecaster. Deterministic in (config.seed, now). Thread-safe: may be
  /// called concurrently from server worker threads (all state is read-only;
  /// metric updates are atomic).
  [[nodiscard]] LoadSnapshot snapshot(Seconds now) const;

  /// The publication epoch a snapshot taken at `now` would carry — the index
  /// of the newest sensor tick published by then. Monotonic in `now`.
  [[nodiscard]] std::uint64_t epoch_at(Seconds now) const noexcept;

  /// Age of the newest published sensor tick at `now`, in seconds. Always in
  /// [0, period); the request broker compares it against its configured
  /// staleness bound to decide whether to serve degraded (no-load) answers.
  [[nodiscard]] Seconds staleness(Seconds now) const noexcept;

  /// Ground truth at `now` — what an oracle monitor would report. Used by
  /// experiments to separate monitoring error from model error.
  [[nodiscard]] LoadSnapshot truth_snapshot(Seconds now) const;

  [[nodiscard]] const MonitorConfig& config() const noexcept { return config_; }

  /// Wires snapshot counters and the snapshot-age gauge into `registry`
  /// (nullptr disables; the default). `registry` must outlive the monitor.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  [[nodiscard]] double noisy(double value, NodeId node, std::uint64_t tick,
                             std::uint64_t sensor) const;

  const ClusterTopology* topology_;
  const LoadModel* truth_;
  MonitorConfig config_;
  std::unique_ptr<Forecaster> forecaster_;
  obs::Counter* snapshots_ = nullptr;
  obs::Counter* probes_ = nullptr;
  obs::Gauge* snapshot_age_ = nullptr;
};

}  // namespace cbes
