// The system-monitoring subsystem of CBES (paper §2): daemons that keep "a
// current picture of the availability of system resources".
//
// SystemMonitor simulates the daemons: each node's CPU and NIC sensors sample
// the ground-truth LoadModel on a fixed period (with measurement noise), and a
// snapshot at time `now` reflects only what has been published by then. A
// pluggable Forecaster turns the sample history into the next-period estimate,
// mirroring the NWS (Centurion) vs last-value (Orange Grove) prototypes.
//
// Fault tolerance: when a FaultInjector is attached, reports can be lost and
// nodes can be down. The monitor then runs a per-node health state machine
// over the retained window — healthy until `suspect_after` consecutive ticks
// without a report, suspect until `dead_after`, then dead — and re-polls
// suspect nodes on an exponential backoff rather than every tick. Nodes with
// no surviving reports are back-filled from their topology equivalence class.
#pragma once

#include <cstdint>
#include <memory>

#include "common/types.h"
#include "monitor/forecaster.h"
#include "monitor/snapshot.h"
#include "obs/metrics.h"
#include "resilience/retry.h"
#include "simnet/load.h"
#include "topology/cluster.h"

namespace cbes::fault {
class FaultInjector;
}  // namespace cbes::fault

namespace cbes {

struct MonitorConfig {
  /// Sensor sampling period. The paper's daemons publish periodically; anything
  /// that changes between ticks is invisible until the next tick.
  Seconds period = 10.0;
  /// Multiplicative measurement noise (log-space sigma) on each sample;
  /// 0 disables noise.
  double noise_sigma = 0.01;
  /// Number of trailing samples retained per sensor for forecasting.
  std::size_t history = 32;
  std::uint64_t seed = 0x5eed5eedULL;
  /// Consecutive missed reports after which a node is marked suspect.
  std::size_t suspect_after = 2;
  /// Consecutive missed reports after which a node is declared dead.
  /// Must exceed `suspect_after` and fit inside `history`, or a freshly dead
  /// node could never be observed as such.
  std::size_t dead_after = 5;
  /// Jitter fraction on the suspect re-poll backoff gap, in [0, 1). Each
  /// suspect node draws its own deterministic jitter stream (keyed by seed
  /// and node), so when a rack recovers the monitor's probes arrive staggered
  /// instead of stampeding every node on the same tick. 0 restores the exact
  /// 1-2-4-8 doubling schedule.
  double repoll_jitter = 0.25;
};

/// Simulated monitoring infrastructure over a cluster.
class SystemMonitor {
 public:
  /// `topology` and `truth` must outlive the monitor. Defaults to the
  /// last-value forecaster (the Orange Grove prototype's behaviour).
  SystemMonitor(const ClusterTopology& topology, const LoadModel& truth,
                MonitorConfig config);

  /// Replaces the forecaster (e.g. AdaptiveForecaster for NWS-like behaviour).
  void set_forecaster(std::unique_ptr<Forecaster> forecaster);

  /// Attaches a fault injector that decides which reports get lost and which
  /// nodes are down (nullptr detaches; the default). Without an injector every
  /// report arrives and every node is healthy — exactly the pre-fault-layer
  /// behaviour. `injector` must outlive the monitor.
  void set_fault_injector(const fault::FaultInjector* injector);

  /// The availability picture the daemons have published by `now`, run through
  /// the forecaster and the health state machine. Deterministic in
  /// (config.seed, now, fault plan). Thread-safe: may be called concurrently
  /// from server worker threads (all state is read-only; metric updates are
  /// atomic).
  [[nodiscard]] LoadSnapshot snapshot(Seconds now) const;

  /// The publication epoch a snapshot taken at `now` would carry — the index
  /// of the newest sensor tick published by then. Monotonic in `now`.
  [[nodiscard]] std::uint64_t epoch_at(Seconds now) const noexcept;

  /// Age of the newest published sensor tick at `now`, in seconds. Always in
  /// [0, period); the request broker compares it against its configured
  /// staleness bound to decide whether to serve degraded (no-load) answers.
  [[nodiscard]] Seconds staleness(Seconds now) const noexcept;

  /// Ground truth at `now` — what an oracle monitor would report. Carries the
  /// injector's down/up verdicts as health (no miss-counting: an oracle knows
  /// immediately). Used by experiments to separate monitoring error from model
  /// error, and by chaos tests as the reference health picture.
  [[nodiscard]] LoadSnapshot truth_snapshot(Seconds now) const;

  [[nodiscard]] const MonitorConfig& config() const noexcept { return config_; }

  /// Wires snapshot counters and the snapshot-age gauge into `registry`
  /// (nullptr disables; the default). `registry` must outlive the monitor.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  [[nodiscard]] double noisy(double value, NodeId node, std::uint64_t tick,
                             std::uint64_t sensor) const;

  const ClusterTopology* topology_;
  const LoadModel* truth_;
  MonitorConfig config_;
  /// Suspect re-poll schedule (in ticks): exponential backoff with per-node
  /// jitter, shared with the server's retry machinery (resilience layer).
  resilience::RetryPolicy repoll_;
  std::unique_ptr<Forecaster> forecaster_;
  const fault::FaultInjector* injector_ = nullptr;
  obs::Counter* snapshots_ = nullptr;
  obs::Counter* probes_ = nullptr;
  obs::Counter* reports_lost_ = nullptr;
  obs::Counter* backfills_ = nullptr;
  obs::Gauge* snapshot_age_ = nullptr;
  obs::Gauge* suspect_nodes_ = nullptr;
  obs::Gauge* dead_nodes_ = nullptr;
};

}  // namespace cbes
