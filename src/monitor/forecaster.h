// Availability forecasters.
//
// The paper's two prototypes differ here: the Orange Grove prototype "considers
// the latest measured load values as valid for the next time period" (LastValue),
// while the Centurion prototype uses NWS, which keeps a window of past samples
// and picks among simple predictors (approximated by SlidingWindow and
// AdaptiveForecaster below).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

namespace cbes {

/// Predicts the next-period value of one sensor series from its history
/// (most recent sample last).
class Forecaster {
 public:
  virtual ~Forecaster() = default;
  /// `history` is never empty.
  [[nodiscard]] virtual double predict(std::span<const double> history) const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// The Orange Grove prototype's rule: last measurement carries forward.
class LastValueForecaster final : public Forecaster {
 public:
  [[nodiscard]] double predict(std::span<const double> history) const override;
  [[nodiscard]] std::string_view name() const override { return "last-value"; }
};

/// Mean of the trailing `window` samples (NWS "running mean" predictor).
class SlidingWindowForecaster final : public Forecaster {
 public:
  explicit SlidingWindowForecaster(std::size_t window);
  [[nodiscard]] double predict(std::span<const double> history) const override;
  [[nodiscard]] std::string_view name() const override { return "sliding-window"; }

 private:
  std::size_t window_;
};

/// Median of the trailing `window` samples (robust to load spikes).
class MedianForecaster final : public Forecaster {
 public:
  explicit MedianForecaster(std::size_t window);
  [[nodiscard]] double predict(std::span<const double> history) const override;
  [[nodiscard]] std::string_view name() const override { return "median"; }

 private:
  std::size_t window_;
};

/// NWS-style adaptive selection: evaluates a set of base predictors on the
/// history (one-step-ahead backtest) and forwards to whichever had the lowest
/// mean absolute error.
class AdaptiveForecaster final : public Forecaster {
 public:
  AdaptiveForecaster();
  [[nodiscard]] double predict(std::span<const double> history) const override;
  [[nodiscard]] std::string_view name() const override { return "adaptive"; }

 private:
  std::vector<std::unique_ptr<Forecaster>> base_;
};

}  // namespace cbes
