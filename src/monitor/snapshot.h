// The resource-availability picture CBES holds of the cluster at scheduling time.
//
// A snapshot is what the monitoring daemons have *published*, not the live truth:
// it can be stale (sensors sample on a period) and noisy (measurement error).
// The gap between snapshot and truth is exactly what the paper's phase-3
// experiments probe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace cbes {

/// Per-node availability view at a point in time.
struct LoadSnapshot {
  Seconds taken_at = 0.0;
  /// Monotonic publication epoch: increments whenever the monitoring daemons
  /// publish a new sensor tick. Two snapshots with equal epochs describe the
  /// same published availability picture, so derived results (predictions)
  /// can be reused across them; a changed epoch means the picture may have
  /// drifted and consumers must re-validate (the paper's §5 phase-3 >10%
  /// ACPU invalidation rule — enforced by server::EvalCache).
  std::uint64_t epoch = 0;
  /// ACPU per node, in (0, 1]; index = NodeId::index().
  std::vector<double> cpu_avail;
  /// Background NIC utilization per node, in [0, 1).
  std::vector<double> nic_util;

  /// An all-idle snapshot for `n` nodes.
  static LoadSnapshot idle(std::size_t n) {
    LoadSnapshot s;
    s.cpu_avail.assign(n, 1.0);
    s.nic_util.assign(n, 0.0);
    return s;
  }

  [[nodiscard]] double cpu(NodeId node) const {
    return cpu_avail[node.index()];
  }
  [[nodiscard]] double nic(NodeId node) const { return nic_util[node.index()]; }
};

}  // namespace cbes
