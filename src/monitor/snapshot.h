// The resource-availability picture CBES holds of the cluster at scheduling time.
//
// A snapshot is what the monitoring daemons have *published*, not the live truth:
// it can be stale (sensors sample on a period) and noisy (measurement error).
// The gap between snapshot and truth is exactly what the paper's phase-3
// experiments probe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace cbes {

/// Health verdict the monitoring layer attaches to each node. The ladder is
/// strictly ordered: a node is healthy until it misses reports, suspect after
/// `MonitorConfig::suspect_after` consecutive misses, and dead after
/// `dead_after`. Only dead nodes are excluded from scheduling; suspect nodes
/// stay usable but mark predictions as degraded.
enum class NodeHealth : unsigned char { kHealthy = 0, kSuspect = 1, kDead = 2 };

[[nodiscard]] constexpr const char* health_name(NodeHealth h) noexcept {
  switch (h) {
    case NodeHealth::kHealthy: return "healthy";
    case NodeHealth::kSuspect: return "suspect";
    case NodeHealth::kDead: return "dead";
  }
  return "?";
}

/// Per-node availability view at a point in time.
struct LoadSnapshot {
  Seconds taken_at = 0.0;
  /// Monotonic publication epoch: increments whenever the monitoring daemons
  /// publish a new sensor tick. Two snapshots with equal epochs describe the
  /// same published availability picture, so derived results (predictions)
  /// can be reused across them; a changed epoch means the picture may have
  /// drifted and consumers must re-validate (the paper's §5 phase-3 >10%
  /// ACPU invalidation rule — enforced by server::EvalCache).
  std::uint64_t epoch = 0;
  /// ACPU per node, in (0, 1]; index = NodeId::index().
  std::vector<double> cpu_avail;
  /// Background NIC utilization per node, in [0, 1).
  std::vector<double> nic_util;
  /// Health verdict per node. Empty means "no health tracking" and every node
  /// is treated as healthy (back-compat for hand-built snapshots).
  std::vector<NodeHealth> health;
  /// 1 where cpu/nic were back-filled from the node's topology equivalence
  /// class (or idle defaults) because no reports survived the window. Empty
  /// means nothing was back-filled.
  std::vector<std::uint8_t> backfilled;

  /// An all-idle snapshot for `n` nodes.
  static LoadSnapshot idle(std::size_t n) {
    LoadSnapshot s;
    s.cpu_avail.assign(n, 1.0);
    s.nic_util.assign(n, 0.0);
    return s;
  }

  [[nodiscard]] double cpu(NodeId node) const {
    return cpu_avail[node.index()];
  }
  [[nodiscard]] double nic(NodeId node) const { return nic_util[node.index()]; }

  [[nodiscard]] NodeHealth health_of(NodeId node) const {
    if (health.empty()) return NodeHealth::kHealthy;
    return health[node.index()];
  }
  [[nodiscard]] bool alive(NodeId node) const {
    return health_of(node) != NodeHealth::kDead;
  }
  [[nodiscard]] bool was_backfilled(NodeId node) const {
    return !backfilled.empty() && backfilled[node.index()] != 0;
  }
  [[nodiscard]] std::size_t alive_count() const {
    if (health.empty()) return cpu_avail.size();
    std::size_t count = 0;
    for (NodeHealth h : health)
      if (h != NodeHealth::kDead) ++count;
    return count;
  }
};

}  // namespace cbes
