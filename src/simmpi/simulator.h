// Discrete-event execution of MPI-like programs on a mapped cluster — the
// stand-in for actually running LAM/MPI jobs on Centurion / Orange Grove.
//
// Semantics (matching the Program IR contract):
//  * compute bursts occupy the rank's CPU, stretched by architecture speed and
//    ground-truth background load;
//  * sends are eager: the sender pays stack overhead (O) and continues while
//    the payload traverses the network (simnet, with queuing and jitter);
//  * receives block: waiting time accrues into B, delivery overhead into O;
//  * ranks sharing a dual-CPU node each own a CPU slot and exchange intra-node
//    messages through shared memory.
//
// The engine is a conservative event-driven simulator: the runnable rank with
// the smallest local clock executes next, so link-queue state is visited in
// (approximately) causal order. Wakeups after blocking can reorder transfers
// slightly — a second-order effect that, like jitter and contention, keeps the
// analytic predictor honestly imperfect.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "apps/program.h"
#include "common/types.h"
#include "simnet/network.h"
#include "topology/mapping.h"
#include "trace/trace.h"

namespace cbes {

struct SimOptions {
  /// Hardware description handed to the network simulator.
  SimNetConfig net;
  /// Seed for the run's jitter stream; distinct seeds model distinct real runs.
  std::uint64_t seed = 1;
  /// Record a full XMPI-style trace (needed for profiling runs; measurement
  /// runs skip it to save memory).
  bool record_trace = false;
  /// Absolute simulation time at which the ranks start executing. Matters
  /// whenever the ground-truth LoadModel is time-varying (e.g. executing one
  /// phase of a longer run, or a job launched into a loaded cluster).
  Seconds start_time = 0.0;
};

/// Accumulated per-process times — exactly the quantities the paper's profile
/// holds (§3.1): X own-code, O MPI overhead, B blocked.
struct RankStats {
  Seconds x = 0.0;
  Seconds o = 0.0;
  Seconds b = 0.0;
  Seconds finish = 0.0;
};

struct RunResult {
  /// Execution duration: latest rank finish minus options.start_time.
  Seconds makespan = 0.0;
  /// Per-rank stats; RankStats::finish is an absolute simulation time.
  std::vector<RankStats> ranks;
  std::size_t messages = 0;
  std::optional<Trace> trace;
};

/// Executes programs on mappings over one cluster.
class MpiSimulator {
 public:
  explicit MpiSimulator(const ClusterTopology& topology);

  /// Runs `program` under `mapping` with ground-truth `load`.
  /// Requires mapping.fits(topology) and mapping.nranks() == program.nranks().
  /// Throws ContractError on communication deadlock (mismatched program).
  [[nodiscard]] RunResult run(const Program& program, const Mapping& mapping,
                              const LoadModel& load, const SimOptions& options);

  [[nodiscard]] const ClusterTopology& topology() const noexcept {
    return *topology_;
  }

 private:
  const ClusterTopology* topology_;
};

}  // namespace cbes
