#include "simmpi/simulator.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <sstream>
#include <unordered_map>

#include "common/check.h"

namespace cbes {

namespace {

/// A message in flight (or delivered, awaiting its receive).
struct PendingMsg {
  Seconds ready = 0.0;    ///< earliest time the payload is at the receiver
  Seconds recv_cpu = 0.0; ///< receiver-side stack time charged on delivery
};

struct Channel {
  std::deque<PendingMsg> inbox;
  /// Rank currently blocked receiving on this channel (at most one: the
  /// destination), and when it posted the receive.
  bool waiting = false;
  Seconds posted_at = 0.0;
};

struct RankState {
  std::size_t pc = 0;       ///< next op index
  Seconds clock = 0.0;
  int phase = 0;
  bool blocked = false;
  bool done = false;
  RankStats stats;
};

/// Key for the (src -> dst) channel map.
constexpr std::uint64_t channel_key(std::size_t src, std::size_t dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}

struct QueueEntry {
  Seconds time;
  std::size_t rank;
  friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
    return a.time > b.time;
  }
};

}  // namespace

MpiSimulator::MpiSimulator(const ClusterTopology& topology)
    : topology_(&topology) {}

RunResult MpiSimulator::run(const Program& program, const Mapping& mapping,
                            const LoadModel& load, const SimOptions& options) {
  const std::size_t n = program.nranks();
  CBES_CHECK_MSG(mapping.nranks() == n, "mapping/program rank count mismatch");
  CBES_CHECK_MSG(mapping.fits(*topology_),
                 "mapping exceeds node CPU slots or references unknown nodes");

  SimNetwork net(*topology_, options.net, options.seed);

  std::vector<RankState> ranks(n);
  std::unordered_map<std::uint64_t, Channel> channels;
  RunResult result;
  result.ranks.resize(n);
  if (options.record_trace) {
    Trace trace;
    trace.app_name = program.name;
    trace.mapping = mapping.assignment();
    trace.ranks.resize(n);
    result.trace = std::move(trace);
  }

  auto record = [&](std::size_t rank, IntervalKind kind, Seconds begin,
                    Seconds duration) {
    if (result.trace && duration > 0.0) {
      result.trace->ranks[rank].intervals.push_back(
          TraceInterval{kind, begin, duration, ranks[rank].phase});
    }
  };
  auto record_msg = [&](std::size_t rank, RankId peer, Bytes size, bool sent) {
    if (result.trace) {
      result.trace->ranks[rank].messages.push_back(
          TraceMessage{peer, size, sent, ranks[rank].phase});
    }
  };

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      runnable;
  for (std::size_t r = 0; r < n; ++r) {
    ranks[r].clock = options.start_time;
    runnable.push({options.start_time, r});
  }

  // Delivers the front message of `ch` to blocked rank `dst` and reschedules it.
  auto wake_receiver = [&](Channel& ch, std::size_t dst) {
    CBES_ASSERT(!ch.inbox.empty());
    const PendingMsg msg = ch.inbox.front();
    ch.inbox.pop_front();
    ch.waiting = false;
    RankState& rs = ranks[dst];
    const Seconds wait = std::max(0.0, msg.ready - ch.posted_at);
    rs.stats.b += wait;
    record(dst, IntervalKind::kBlocked, ch.posted_at, wait);
    const Seconds start_overhead = std::max(ch.posted_at, msg.ready);
    rs.stats.o += msg.recv_cpu;
    record(dst, IntervalKind::kOverhead, start_overhead, msg.recv_cpu);
    rs.clock = start_overhead + msg.recv_cpu;
    rs.blocked = false;
    runnable.push({rs.clock, dst});
  };

  std::size_t finished = 0;
  while (finished < n) {
    if (runnable.empty()) {
      std::ostringstream os;
      os << "communication deadlock in '" << program.name << "': ranks";
      for (std::size_t r = 0; r < n; ++r)
        if (!ranks[r].done) os << ' ' << r << "@op" << ranks[r].pc;
      os << " are all blocked";
      throw ContractError(os.str());
    }
    const QueueEntry entry = runnable.top();
    runnable.pop();
    RankState& rs = ranks[entry.rank];
    if (rs.done || rs.blocked || entry.time != rs.clock) {
      continue;  // stale queue entry
    }

    const std::vector<Op>& ops = program.ranks[entry.rank].ops;
    if (rs.pc >= ops.size()) {
      rs.done = true;
      rs.stats.finish = rs.clock;
      ++finished;
      continue;
    }
    const Op& op = ops[rs.pc++];
    const NodeId node = mapping.node_of(RankId{entry.rank});

    switch (op.kind) {
      case OpKind::kCompute: {
        const double avail = load.cpu_avail(node, rs.clock);
        const Seconds dur =
            net.compute_time(node, op.compute_ref, program.mem_intensity,
                             avail);
        rs.stats.x += dur;
        record(entry.rank, IntervalKind::kExecuting, rs.clock, dur);
        rs.clock += dur;
        runnable.push({rs.clock, entry.rank});
        break;
      }
      case OpKind::kSend: {
        const std::size_t dst = op.peer.index();
        const NodeId dst_node = mapping.node_of(op.peer);
        const TransferResult tr =
            node == dst_node
                ? net.local_transfer(rs.clock, node, op.size, load)
                : net.transfer(rs.clock, node, dst_node, op.size, load);
        rs.stats.o += tr.sender_cpu;
        record(entry.rank, IntervalKind::kOverhead, rs.clock, tr.sender_cpu);
        record_msg(entry.rank, op.peer, op.size, /*sent=*/true);
        rs.clock += tr.sender_cpu;
        ++result.messages;

        Channel& ch = channels[channel_key(entry.rank, dst)];
        ch.inbox.push_back(PendingMsg{tr.arrival, tr.receiver_cpu});
        if (ch.waiting) wake_receiver(ch, dst);
        runnable.push({rs.clock, entry.rank});
        break;
      }
      case OpKind::kRecv: {
        const std::size_t src = op.peer.index();
        record_msg(entry.rank, op.peer, op.size, /*sent=*/false);
        Channel& ch = channels[channel_key(src, entry.rank)];
        if (!ch.inbox.empty()) {
          const PendingMsg msg = ch.inbox.front();
          ch.inbox.pop_front();
          const Seconds wait = std::max(0.0, msg.ready - rs.clock);
          rs.stats.b += wait;
          record(entry.rank, IntervalKind::kBlocked, rs.clock, wait);
          const Seconds start_overhead = std::max(rs.clock, msg.ready);
          rs.stats.o += msg.recv_cpu;
          record(entry.rank, IntervalKind::kOverhead, start_overhead,
                 msg.recv_cpu);
          rs.clock = start_overhead + msg.recv_cpu;
          runnable.push({rs.clock, entry.rank});
        } else {
          CBES_CHECK_MSG(!ch.waiting,
                         "two receives posted on one channel simultaneously");
          ch.waiting = true;
          ch.posted_at = rs.clock;
          rs.blocked = true;
        }
        break;
      }
      case OpKind::kPhaseMark: {
        rs.phase = op.phase;
        if (result.trace) {
          result.trace->max_phase =
              std::max(result.trace->max_phase, op.phase);
        }
        runnable.push({rs.clock, entry.rank});
        break;
      }
    }
  }

  // Drain check: leftover inbox messages mean the program under-received.
  for (const auto& [key, ch] : channels) {
    CBES_CHECK_MSG(ch.inbox.empty(),
                   "program '" + program.name +
                       "' finished with undelivered messages");
  }

  Seconds last_finish = options.start_time;
  for (std::size_t r = 0; r < n; ++r) {
    result.ranks[r] = ranks[r].stats;
    last_finish = std::max(last_finish, ranks[r].stats.finish);
    if (result.trace) result.trace->ranks[r].finish = ranks[r].stats.finish;
  }
  result.makespan = last_finish - options.start_time;
  if (result.trace) result.trace->makespan = result.makespan;
  return result;
}

}  // namespace cbes
