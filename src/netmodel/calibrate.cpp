#include "netmodel/calibrate.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <unordered_map>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "netmodel/pair_class.h"
#include "simnet/load.h"

namespace cbes {

namespace {

/// Ground-truth load imposed on both benchmark endpoints during the loaded
/// calibration sets: 50% CPU demand / 50% NIC utilization give g_cpu = g_nic = 1,
/// which makes the sensitivity coefficients directly readable from the deltas.
constexpr double kCalCpuDemand = 0.5;
constexpr double kCalNicDemand = 0.5;

Seconds one_way(SimNetwork& net, NodeId a, NodeId b, Bytes size,
                const LoadModel& load, Seconds epoch) {
  const TransferResult r = net.transfer(epoch, a, b, size, load);
  return (r.arrival + r.receiver_cpu) - epoch;
}

Seconds median_one_way(SimNetwork& net, NodeId a, NodeId b, Bytes size,
                       int repeats, const LoadModel& load, Seconds& epoch,
                       std::size_t* measurements) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    samples.push_back(one_way(net, a, b, size, load, epoch));
    // Space the pings far enough apart that store-and-forward queues drain:
    // calibration must not self-contend (the paper's cliques ensure the same).
    epoch += 1.0;
  }
  if (measurements) *measurements += samples.size();
  return median(samples);
}

struct PairSample {
  NodeId a;
  NodeId b;
};

LatencyCoeffs fit_class(SimNetwork& net, const std::vector<PairSample>& pairs,
                        const CalibrationOptions& options, Seconds& epoch,
                        std::size_t* measurements) {
  // --- no-load affine fit over the size sweep, pooled across all pairs ------
  NoLoad idle;
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<double> ws;
  for (const PairSample& p : pairs) {
    for (Bytes size : options.sizes) {
      xs.push_back(static_cast<double>(size));
      ys.push_back(median_one_way(net, p.a, p.b, size, options.repeats, idle,
                                  epoch, measurements));
      // Latency jitter is multiplicative, so weight by 1/y^2: minimizing
      // *relative* residuals keeps the fitted intercept honest at small sizes
      // instead of letting millisecond-scale noise at the largest size drag it.
      ws.push_back(1.0 / (ys.back() * ys.back()));
    }
  }
  const LineFit fit = fit_line_weighted(xs, ys, ws);
  LatencyCoeffs c;
  c.alpha = std::max(0.0, fit.intercept);
  c.beta = std::max(0.0, fit.slope);
  c.fit_r_squared = fit.r_squared;
  if (!options.fit_load_terms) return c;

  // --- loaded sets: impose 50% CPU demand on both endpoints (g_cpu = 1) -----
  const PairSample& rep = pairs.front();
  ScriptedLoad cpu_loaded;
  cpu_loaded.add({rep.a, 0.0, kNever, kCalCpuDemand, 0.0});
  cpu_loaded.add({rep.b, 0.0, kNever, kCalCpuDemand, 0.0});

  const Bytes s1 = options.sizes.front();
  const Bytes s2 = options.sizes.back();
  const double d1 =
      median_one_way(net, rep.a, rep.b, s1, options.repeats, cpu_loaded, epoch,
                     measurements) -
      (c.alpha + c.beta * static_cast<double>(s1));
  const double d2 =
      median_one_way(net, rep.a, rep.b, s2, options.repeats, cpu_loaded, epoch,
                     measurements) -
      (c.alpha + c.beta * static_cast<double>(s2));
  // d(s) = alpha*k_alpha*g + beta*s*k_beta*g with g = 1: two sizes, two unknowns.
  const double v =
      (d2 - d1) / (static_cast<double>(s2) - static_cast<double>(s1));
  const double u = d1 - static_cast<double>(s1) * v;
  if (c.alpha > 0.0) c.k_alpha_cpu = std::max(0.0, u / c.alpha);
  if (c.beta > 0.0) c.k_beta_cpu = std::max(0.0, v / c.beta);

  // --- NIC set: 50% background NIC utilization on both endpoints (g_nic = 1) --
  ScriptedLoad nic_loaded;
  nic_loaded.add({rep.a, 0.0, kNever, 0.0, kCalNicDemand});
  nic_loaded.add({rep.b, 0.0, kNever, 0.0, kCalNicDemand});
  const double dn =
      median_one_way(net, rep.a, rep.b, s2, options.repeats, nic_loaded, epoch,
                     measurements) -
      (c.alpha + c.beta * static_cast<double>(s2));
  if (c.beta > 0.0) {
    c.k_beta_nic = std::max(0.0, dn / (c.beta * static_cast<double>(s2)));
  }
  return c;
}

}  // namespace

Seconds measure_latency(SimNetwork& net, NodeId a, NodeId b, Bytes size,
                        int repeats) {
  NoLoad idle;
  Seconds epoch = 0.0;
  return median_one_way(net, a, b, size, repeats, idle, epoch, nullptr);
}

LatencyModel calibrate(const ClusterTopology& topology,
                       const SimNetConfig& hardware,
                       const CalibrationOptions& options,
                       CalibrationReport* report, obs::TraceSession* trace) {
  CBES_CHECK_MSG(options.sizes.size() >= 2,
                 "calibration needs at least two message sizes");
  CBES_CHECK_MSG(options.repeats >= 1, "calibration needs at least one repeat");
  CBES_CHECK_MSG(
      options.calibrate_fraction > 0.0 && options.calibrate_fraction <= 1.0,
      "calibrate_fraction must be in (0, 1]");

  SimNetwork net(topology, hardware, derive_seed(options.seed, 1));

  // Group node pairs into path-equivalence classes. The O(N) mode takes them
  // straight from the class map — one representative pair per class, the
  // row-major-minimal pair, which is byte-identical to what the historical
  // dense scan kept first — so enumeration never touches node pairs. The
  // full-pairwise validation mode still sweeps every pair (it exists to
  // cross-check the class approximation on paper-scale clusters).
  std::unordered_map<std::string, std::vector<PairSample>> classes;
  if (options.full_pairwise) {
    const std::size_t n = topology.node_count();
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        if (a == b) continue;
        const NodeId na{a}, nb{b};
        classes[topology.path_signature(na, nb)].push_back(
            PairSample{na, nb});
      }
    }
  } else {
    const PairClassMap class_map(topology);
    for (std::size_t idx = 1; idx < class_map.table_size(); ++idx) {
      const PairClassMap::ClassInfo& info = class_map.info(idx);
      classes[info.signature].push_back(PairSample{info.rep_a, info.rep_b});
    }
  }

  CalibrationReport rep;
  rep.classes = classes.size();

  // Under partial calibration, a seeded subset of classes gets measured; the
  // rest inherit class-average fallback coefficients from LatencyModel.
  // Selection iterates signatures in sorted order so the subset is a function
  // of (topology, seed) alone, not hash-map iteration order.
  std::vector<std::string> signatures;
  signatures.reserve(classes.size());
  for (const auto& [sig, pairs] : classes) signatures.push_back(sig);
  std::sort(signatures.begin(), signatures.end());
  const bool partial = options.calibrate_fraction < 1.0;
  if (partial) {
    const auto keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(
               options.calibrate_fraction *
               static_cast<double>(signatures.size()))));
    Rng rng(derive_seed(options.seed, 2));
    rng.shuffle(std::span<std::string>(signatures));
    signatures.resize(keep);
    std::sort(signatures.begin(), signatures.end());
  }

  Seconds epoch = 0.0;
  std::unordered_map<std::string, LatencyCoeffs> by_signature;
  {
    const obs::TraceSpan span(trace, "calibrate/path-classes");
    for (const std::string& sig : signatures) {
      const std::vector<PairSample>& pairs = classes.at(sig);
      const LatencyCoeffs c =
          fit_class(net, pairs, options, epoch, &rep.measurements);
      ++rep.classes_measured;
      rep.pairs_measured += pairs.size();
      rep.worst_fit_r_squared =
          std::min(rep.worst_fit_r_squared, c.fit_r_squared);
      by_signature.emplace(sig, c);
      if (trace != nullptr) trace->instant("calibrate/class-fitted");
    }
  }

  // Loopback class: measured on a multi-CPU node when one exists (only such
  // nodes can host two ranks), otherwise on node 0.
  const obs::TraceSpan loop_span(trace, "calibrate/loopback");
  NodeId loop_node{std::size_t{0}};
  for (const Node& node : topology.nodes()) {
    if (node.cpus > 1) {
      loop_node = node.id;
      break;
    }
  }
  NoLoad idle;
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<double> ws;
  for (Bytes size : options.sizes) {
    std::vector<double> samples;
    for (int r = 0; r < options.repeats; ++r) {
      const TransferResult t =
          net.local_transfer(epoch, loop_node, size, idle);
      samples.push_back((t.arrival + t.receiver_cpu) - epoch);
      epoch += 1.0;
      ++rep.measurements;
    }
    xs.push_back(static_cast<double>(size));
    ys.push_back(median(samples));
    ws.push_back(1.0 / (ys.back() * ys.back()));
  }
  const LineFit loop_fit = fit_line_weighted(xs, ys, ws);
  LatencyCoeffs loopback;
  loopback.alpha = std::max(0.0, loop_fit.intercept);
  loopback.beta = std::max(0.0, loop_fit.slope);
  loopback.fit_r_squared = loop_fit.r_squared;
  // Loopback endpoint work is pure CPU; its entire cost stretches with load.
  loopback.k_alpha_cpu = options.fit_load_terms ? 1.0 : 0.0;
  loopback.k_beta_cpu = options.fit_load_terms ? 1.0 : 0.0;

  if (report) *report = rep;
  return LatencyModel(topology, std::move(by_signature), loopback, partial);
}

}  // namespace cbes
