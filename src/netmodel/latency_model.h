// The network end-to-end latency model at the heart of CBES (paper §2, [12]):
// per node-pair no-load latency as a function of message size, adjustable on
// demand for the effect of endpoint CPU and NIC load.
//
// The model is *fitted from measurements* (see calibrate.h); it never inspects
// the simulator's internals. Node pairs are grouped into path-equivalence
// classes (same link-hardware multiset + endpoint architectures), which is what
// lets the paper's O(N) calibration stand in for the O(N^2) full sweep.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "monitor/snapshot.h"
#include "netmodel/pair_class.h"
#include "topology/cluster.h"

namespace cbes {

/// Fitted coefficients for one path class.
///
/// No-load latency:       L0(s) = alpha + beta * s
/// Load-adjusted latency: Lc(s) = alpha * (1 + k_alpha_cpu * g_cpu)
///                              + beta * s * (1 + k_beta_cpu * g_cpu
///                                              + k_beta_nic * g_nic)
/// where g_cpu = mean(1/ACPU_src, 1/ACPU_dst) - 1 and
///       g_nic = mean(1/(1-NIC_src), 1/(1-NIC_dst)) - 1.
struct LatencyCoeffs {
  double alpha = 0.0;       ///< fixed cost, seconds
  double beta = 0.0;        ///< per-byte cost, seconds/byte
  double k_alpha_cpu = 0.0; ///< CPU-load sensitivity of the fixed cost
  double k_beta_cpu = 0.0;  ///< CPU-load sensitivity of the per-byte cost
  double k_beta_nic = 0.0;  ///< NIC-load sensitivity of the per-byte cost
  double fit_r_squared = 1.0;  ///< quality of the no-load OLS fit

  friend bool operator==(const LatencyCoeffs&, const LatencyCoeffs&) = default;
};

/// The complete fitted state of a LatencyModel, detached from any topology:
/// the loopback class plus one (signature, coefficients) entry per *measured*
/// path class, sorted by signature. This is what server checkpoints persist —
/// restoring it through LatencyModel's state constructor reproduces the model
/// bit-identically (fallback classes are re-derived from the measured set in
/// sorted order, so even their class-average coefficients match exactly).
struct CalibrationState {
  LatencyCoeffs loopback;
  /// True when some path classes were never measured and run on the
  /// class-average fallback (partial calibration).
  bool partial = false;
  /// Measured classes only, sorted ascending by signature.
  std::vector<std::pair<std::string, LatencyCoeffs>> classes;

  friend bool operator==(const CalibrationState&,
                         const CalibrationState&) = default;
};

/// Immutable latency model over a fixed topology. Storage is O(C²)+O(N)
/// through a PairClassMap — one coefficient set per path class, never per
/// node pair — so a 100k-node cluster's model is a few kilobytes. Lookups
/// stay O(1) on paper-scale clusters (dense fast path) and O(tree depth) on
/// mega clusters, sized for the SA scheduler's inner loop.
class LatencyModel {
 public:
  /// Builds a model over `topology` from per-signature coefficients plus the
  /// loopback (same-node) class. Signatures must cover every node pair unless
  /// `allow_partial` is set, in which case uncovered classes fall back to the
  /// class-average of the provided coefficients (the degradation ladder's
  /// middle rung: better than refusing to answer, worse than a measured fit).
  /// Pairs served by the fallback are queryable via is_fallback().
  /// Throws TooManyPathClassesError when the topology realizes more path
  /// classes than the u16 class table can hold.
  LatencyModel(const ClusterTopology& topology,
               std::unordered_map<std::string, LatencyCoeffs> by_signature,
               LatencyCoeffs loopback, bool allow_partial = false);

  /// Rebuilds a model from checkpointed state (skipping calibration). The
  /// state's signatures must match `topology`'s path classes; restoring the
  /// state exported by calibration_state() over the same topology yields a
  /// model whose every coefficient is bit-identical to the original's.
  LatencyModel(const ClusterTopology& topology, const CalibrationState& state);

  /// Exports the measured fit for checkpointing; see CalibrationState.
  [[nodiscard]] CalibrationState calibration_state() const;

  /// No-load end-to-end latency for a `size`-byte message from a to b.
  [[nodiscard]] Seconds no_load(NodeId a, NodeId b, Bytes size) const;

  /// Current latency: no-load value adjusted for the endpoint loads recorded
  /// in `snapshot` (the paper's L_c).
  [[nodiscard]] Seconds current(NodeId a, NodeId b, Bytes size,
                                const LoadSnapshot& snapshot) const;

  /// Number of distinct path classes (excluding loopback).
  [[nodiscard]] std::size_t class_count() const noexcept {
    return coeffs_.size() - 1;
  }

  /// True when the (a, b) pair is served by class-average fallback
  /// coefficients rather than a calibrated fit. Always false for loopback.
  [[nodiscard]] bool is_fallback(NodeId a, NodeId b) const {
    return fallback_[class_index(a, b)] != 0;
  }

  /// Number of path classes running on fallback coefficients.
  [[nodiscard]] std::size_t fallback_class_count() const noexcept {
    std::size_t count = 0;
    for (std::uint8_t f : fallback_) count += f;
    return count;
  }

  /// Coefficients backing the (a, b) pair; for introspection and tests.
  [[nodiscard]] const LatencyCoeffs& coeffs(NodeId a, NodeId b) const;

  /// Index of the path class serving (a, b); 0 = loopback. Canonical (ids
  /// ascend with class signature) and stable for the model's lifetime — lets
  /// consumers (core::CompiledProfile) copy the class map out through the
  /// public API.
  [[nodiscard]] std::size_t pair_class(NodeId a, NodeId b) const {
    return class_index(a, b);
  }
  /// Coefficients of path class `idx`; valid for idx < class_table_size().
  [[nodiscard]] const LatencyCoeffs& class_coeffs(std::size_t idx) const {
    return coeffs_[idx];
  }
  /// Number of classes including loopback — the range of pair_class().
  [[nodiscard]] std::size_t class_table_size() const noexcept {
    return coeffs_.size();
  }

  /// The underlying pair -> class index (copied by CompiledProfile so the
  /// evaluation engine shares the O(C²) representation).
  [[nodiscard]] const PairClassMap& pair_class_map() const noexcept {
    return pair_classes_;
  }

  /// Bytes held by the model: class map plus coefficient tables. What the
  /// cbes_topology_model_bytes gauge reports.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return pair_classes_.memory_bytes() +
           coeffs_.size() * sizeof(LatencyCoeffs) + fallback_.size();
  }

  [[nodiscard]] const ClusterTopology& topology() const noexcept {
    return *topology_;
  }

 private:
  [[nodiscard]] std::size_t class_index(NodeId a, NodeId b) const;

  const ClusterTopology* topology_;
  PairClassMap pair_classes_;             // O(C²)+O(N) pair -> class index
  std::vector<LatencyCoeffs> coeffs_;     // [0] = loopback
  std::vector<std::uint8_t> fallback_;    // parallel to coeffs_: 1 = class-average
  std::size_t n_ = 0;
};

}  // namespace cbes
