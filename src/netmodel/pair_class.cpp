#include "netmodel/pair_class.h"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <tuple>
#include <utility>

#include "common/check.h"

namespace cbes {

TooManyPathClassesError::TooManyPathClassesError(std::size_t classes)
    : std::runtime_error("topology realizes " + std::to_string(classes) +
                         " path classes; the u16 class table holds at most "
                         "65535 (use coarser link categories or fewer "
                         "architectures)"),
      classes_(classes) {}

namespace {

// (LCA depth, topo class of a, topo class of b) — the triple that fully
// determines a pair's path signature.
using ComboKey = std::tuple<int, std::uint32_t, std::uint32_t>;

void keep_min(std::uint64_t& slot, std::uint64_t candidate) {
  slot = std::min(slot, candidate);
}

}  // namespace

PairClassMap::PairClassMap(const ClusterTopology& topology) {
  n_ = topology.node_count();
  const std::size_t nswitches = topology.switch_count();
  class_stride_ = topology.topo_class_count();

  node_class_.resize(n_);
  attached_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    node_class_[i] = topology.topo_class_of(NodeId{i});
    attached_[i] =
        static_cast<std::uint32_t>(topology.node(NodeId{i}).attached.index());
  }
  parent_.resize(nswitches);
  depth_.resize(nswitches);
  std::vector<std::vector<std::uint32_t>> children(nswitches);
  std::vector<std::vector<std::uint32_t>> attached_nodes(nswitches);
  for (std::size_t s = 0; s < nswitches; ++s) {
    const Switch& sw = topology.sw(SwitchId{s});
    depth_[s] = static_cast<std::uint16_t>(sw.depth);
    if (sw.parent.valid()) {
      parent_[s] = static_cast<std::uint32_t>(sw.parent.index());
      children[sw.parent.index()].push_back(static_cast<std::uint32_t>(s));
    } else {
      parent_[s] = std::numeric_limits<std::uint32_t>::max();
    }
  }
  for (std::size_t i = 0; i < n_; ++i)
    attached_nodes[attached_[i]].push_back(static_cast<std::uint32_t>(i));

  // Bottom-up sweep: at each switch, the realized (class, class, LCA-depth)
  // combos are exactly the cross products between its child groups (child
  // subtrees plus directly attached nodes). A running union over the groups
  // emits every combo once per switch while touching O(groups × C²) entries,
  // never node pairs. Tracking the minimum node per class in each subtree
  // recovers, per combo, the row-major-minimal representative pair — the same
  // pair a dense row-major scan would have found first, which is the pair the
  // calibration measures.
  std::vector<std::uint32_t> order(nswitches);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return depth_[a] > depth_[b];
                   });

  // subtree[s]: topology class -> minimal node id in s's subtree.
  std::vector<std::map<std::uint32_t, std::uint32_t>> subtree(nswitches);
  std::map<ComboKey, std::uint64_t> combos;  // -> min (a * n + b)

  for (std::uint32_t s : order) {
    auto& acc = subtree[s];
    const int d = depth_[s];
    auto absorb = [&](const std::map<std::uint32_t, std::uint32_t>& group) {
      for (const auto& [cu, au] : acc) {
        for (const auto& [cg, ag] : group) {
          auto [it_f, new_f] = combos.try_emplace(
              ComboKey{d, cu, cg},
              static_cast<std::uint64_t>(au) * n_ + ag);
          if (!new_f)
            keep_min(it_f->second, static_cast<std::uint64_t>(au) * n_ + ag);
          auto [it_r, new_r] = combos.try_emplace(
              ComboKey{d, cg, cu},
              static_cast<std::uint64_t>(ag) * n_ + au);
          if (!new_r)
            keep_min(it_r->second, static_cast<std::uint64_t>(ag) * n_ + au);
        }
      }
      for (const auto& [cg, ag] : group) {
        auto [it, inserted] = acc.try_emplace(cg, ag);
        if (!inserted) it->second = std::min(it->second, ag);
      }
    };
    for (std::uint32_t node : attached_nodes[s])
      absorb({{node_class_[node], node}});
    for (std::uint32_t child : children[s]) {
      absorb(subtree[child]);
      subtree[child].clear();  // frontier memory only
    }
  }

  // Combos sharing a signature are one class (e.g. symmetric counterparts).
  // Ids go to signatures in ascending order — canonical across instances.
  std::map<std::string, std::uint64_t> rep_by_sig;
  for (const auto& [key, min_pair] : combos) {
    const auto& [d, c1, c2] = key;
    auto [it, inserted] = rep_by_sig.try_emplace(
        topology.class_pair_signature(c1, c2, d), min_pair);
    if (!inserted) keep_min(it->second, min_pair);
  }
  if (1 + rep_by_sig.size() > 65535)
    throw TooManyPathClassesError(1 + rep_by_sig.size());

  classes_.resize(1 + rep_by_sig.size());
  std::map<std::string, std::uint16_t> id_of;
  std::uint16_t next_id = 1;
  for (const auto& [sig, min_pair] : rep_by_sig) {
    classes_[next_id] = ClassInfo{sig, NodeId{min_pair / n_},
                                  NodeId{min_pair % n_}};
    id_of.emplace(sig, next_id);
    ++next_id;
  }

  const std::size_t depth_dim =
      static_cast<std::size_t>(topology.max_switch_depth()) + 1;
  table_.assign(depth_dim * class_stride_ * class_stride_, 0);
  for (const auto& [key, min_pair] : combos) {
    (void)min_pair;
    const auto& [d, c1, c2] = key;
    table_[(static_cast<std::size_t>(d) * class_stride_ + c1) * class_stride_ +
           c2] = id_of.at(topology.class_pair_signature(c1, c2, d));
  }

  if (n_ <= kDenseNodeLimit) {
    std::vector<std::uint16_t> dense(n_ * n_, 0);
    for (std::size_t a = 0; a < n_; ++a)
      for (std::size_t b = 0; b < n_; ++b)
        if (a != b)
          dense[a * n_ + b] = pair_class(static_cast<std::uint32_t>(a),
                                         static_cast<std::uint32_t>(b));
    dense_ = std::move(dense);  // pair_class() climbed while dense_ was empty
  }
}

const PairClassMap::ClassInfo& PairClassMap::info(std::size_t idx) const {
  CBES_CHECK_MSG(idx >= 1 && idx < classes_.size(),
                 "path class index out of range");
  return classes_[idx];
}

std::size_t PairClassMap::memory_bytes() const noexcept {
  std::size_t bytes = node_class_.size() * sizeof(std::uint32_t) +
                      attached_.size() * sizeof(std::uint32_t) +
                      parent_.size() * sizeof(std::uint32_t) +
                      depth_.size() * sizeof(std::uint16_t) +
                      table_.size() * sizeof(std::uint16_t) +
                      dense_.size() * sizeof(std::uint16_t);
  for (const ClassInfo& c : classes_)
    bytes += sizeof(ClassInfo) + c.signature.size();
  return bytes;
}

}  // namespace cbes
