// Offline calibration of the CBES latency model (paper §2):
//
//   "Prior to any invocation of the service, the system-dedicated
//    infrastructure needs to be initialized. ... The computing system must
//    remain free of computational and communication load for the duration of
//    the calibration."
//
// The calibrator runs MPI-style ping benchmarks through the ground-truth
// network (SimNetwork), sweeping message sizes, and fits the affine no-load
// latency per path class by least squares. Two further benchmark sets — run
// under controlled artificial CPU and NIC load — fit the load-sensitivity
// coefficients used for the on-demand L_c adjustment.
//
// In O(N) mode (the default, matching the paper's clique-parallel method) only
// one representative pair per path-equivalence class is measured; in full
// O(N^2) mode every pair is measured and classes aggregate all their pairs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "netmodel/latency_model.h"
#include "obs/tracer.h"
#include "simnet/network.h"
#include "topology/cluster.h"

namespace cbes {

struct CalibrationOptions {
  /// Message sizes swept by the no-load ping benchmark.
  std::vector<Bytes> sizes = {64, 512, 4096, 32768, 131072, 524288};
  /// Ping repetitions per (pair, size); the median de-noises jitter.
  int repeats = 7;
  /// Measure every pair (O(N^2) validation mode) instead of one representative
  /// pair per path class (the paper's O(N) clique method).
  bool full_pairwise = false;
  /// Also run the loaded benchmark sets and fit k_alpha_cpu / k_beta_cpu /
  /// k_beta_nic; when false those coefficients stay 0 (no-load model only).
  bool fit_load_terms = true;
  /// Fraction of path classes actually benchmarked, in (0, 1]. Below 1 a
  /// seeded subset of classes is measured and the rest run on class-average
  /// fallback coefficients (LatencyModel::is_fallback) — how a cluster keeps
  /// serving when calibration was cut short by a fault or a time budget.
  double calibrate_fraction = 1.0;
  std::uint64_t seed = 0xCA11B8A7EULL;
};

/// Summary of a calibration run, for reporting and tests.
struct CalibrationReport {
  std::size_t classes = 0;        ///< distinct path classes found
  std::size_t classes_measured = 0;  ///< classes actually benchmarked
  std::size_t pairs_measured = 0; ///< node pairs actually benchmarked
  std::size_t measurements = 0;   ///< individual ping measurements taken
  double worst_fit_r_squared = 1.0;
};

/// Calibrates a latency model for `topology` whose ground-truth hardware
/// behaviour is described by `hardware`. Deterministic in `options.seed`.
/// A non-null `trace` records one span per calibration phase.
[[nodiscard]] LatencyModel calibrate(const ClusterTopology& topology,
                                     const SimNetConfig& hardware,
                                     const CalibrationOptions& options,
                                     CalibrationReport* report = nullptr,
                                     obs::TraceSession* trace = nullptr);

/// One no-load end-to-end latency measurement (median of `repeats` pings) from
/// `a` to `b` at the given size, through `net`. Exposed for tests and the
/// latency-spread experiment.
[[nodiscard]] Seconds measure_latency(SimNetwork& net, NodeId a, NodeId b,
                                      Bytes size, int repeats);

}  // namespace cbes
