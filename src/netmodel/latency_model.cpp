#include "netmodel/latency_model.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace cbes {

namespace {

/// Mean of the calibrated coefficients — what an unmeasured class is assumed
/// to behave like when partial calibration is allowed. Accumulated in sorted
/// signature order so the result is a pure function of the *set* of fitted
/// classes: a model restored from checkpointed state (which stores classes
/// sorted) reproduces the same floating-point sum bit for bit.
LatencyCoeffs class_average(
    const std::unordered_map<std::string, LatencyCoeffs>& by_signature) {
  std::vector<const std::string*> order;
  order.reserve(by_signature.size());
  for (const auto& [sig, c] : by_signature) order.push_back(&sig);
  std::sort(order.begin(), order.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });

  LatencyCoeffs avg;
  avg.fit_r_squared = 0.0;  // advertises "not a fit" to introspection
  const double denom = static_cast<double>(by_signature.size());
  for (const std::string* sig : order) {
    const LatencyCoeffs& c = by_signature.at(*sig);
    avg.alpha += c.alpha / denom;
    avg.beta += c.beta / denom;
    avg.k_alpha_cpu += c.k_alpha_cpu / denom;
    avg.k_beta_cpu += c.k_beta_cpu / denom;
    avg.k_beta_nic += c.k_beta_nic / denom;
  }
  return avg;
}

}  // namespace

LatencyModel::LatencyModel(
    const ClusterTopology& topology,
    std::unordered_map<std::string, LatencyCoeffs> by_signature,
    LatencyCoeffs loopback, bool allow_partial)
    : topology_(&topology),
      pair_classes_(topology),
      n_(topology.node_count()) {
  coeffs_.push_back(loopback);  // class 0 = loopback
  fallback_.push_back(0);

  LatencyCoeffs average;
  if (allow_partial) {
    CBES_CHECK_MSG(!by_signature.empty(),
                   "partial latency model needs at least one fitted class");
    average = class_average(by_signature);
  }

  // The class map already enumerated every realized path class (in canonical
  // ascending-signature order) without touching node pairs; attach
  // coefficients class by class.
  coeffs_.reserve(pair_classes_.table_size());
  fallback_.reserve(pair_classes_.table_size());
  for (std::size_t idx = 1; idx < pair_classes_.table_size(); ++idx) {
    const std::string& sig = pair_classes_.info(idx).signature;
    const auto found = by_signature.find(sig);
    CBES_CHECK_MSG(found != by_signature.end() || allow_partial,
                   "latency model missing coefficients for path class " + sig);
    if (found != by_signature.end()) {
      coeffs_.push_back(found->second);
      fallback_.push_back(0);
    } else {
      coeffs_.push_back(average);
      fallback_.push_back(1);
    }
  }
}

namespace {

std::unordered_map<std::string, LatencyCoeffs> state_to_map(
    const CalibrationState& state) {
  std::unordered_map<std::string, LatencyCoeffs> by_signature;
  by_signature.reserve(state.classes.size());
  for (const auto& [sig, coeffs] : state.classes) {
    const bool inserted = by_signature.emplace(sig, coeffs).second;
    CBES_CHECK_MSG(inserted,
                   "calibration state repeats path class " + sig);
  }
  return by_signature;
}

}  // namespace

LatencyModel::LatencyModel(const ClusterTopology& topology,
                           const CalibrationState& state)
    : LatencyModel(topology, state_to_map(state), state.loopback,
                   state.partial) {}

CalibrationState LatencyModel::calibration_state() const {
  CalibrationState state;
  state.loopback = coeffs_[0];
  state.partial = fallback_class_count() > 0;
  // Class ids ascend with signature, so walking them in order yields the
  // sorted (signature, coefficients) list the checkpoint format requires.
  state.classes.reserve(coeffs_.size() - 1);
  for (std::size_t idx = 1; idx < coeffs_.size(); ++idx) {
    if (fallback_[idx] != 0) continue;
    state.classes.emplace_back(pair_classes_.info(idx).signature,
                               coeffs_[idx]);
  }
  return state;
}

std::size_t LatencyModel::class_index(NodeId a, NodeId b) const {
  CBES_ASSERT(a.valid() && a.index() < n_);
  CBES_ASSERT(b.valid() && b.index() < n_);
  return pair_classes_.pair_class(static_cast<std::uint32_t>(a.index()),
                                  static_cast<std::uint32_t>(b.index()));
}

const LatencyCoeffs& LatencyModel::coeffs(NodeId a, NodeId b) const {
  return coeffs_[class_index(a, b)];
}

Seconds LatencyModel::no_load(NodeId a, NodeId b, Bytes size) const {
  const LatencyCoeffs& c = coeffs_[class_index(a, b)];
  return c.alpha + c.beta * static_cast<double>(size);
}

Seconds LatencyModel::current(NodeId a, NodeId b, Bytes size,
                              const LoadSnapshot& snapshot) const {
  const LatencyCoeffs& c = coeffs_[class_index(a, b)];
  const double inv_a = 1.0 / snapshot.cpu_avail[a.index()];
  const double inv_b = 1.0 / snapshot.cpu_avail[b.index()];
  const double g_cpu = 0.5 * (inv_a + inv_b) - 1.0;
  const double nic_a = 1.0 / (1.0 - snapshot.nic_util[a.index()]);
  const double nic_b = 1.0 / (1.0 - snapshot.nic_util[b.index()]);
  const double g_nic = 0.5 * (nic_a + nic_b) - 1.0;
  return c.alpha * (1.0 + c.k_alpha_cpu * g_cpu) +
         c.beta * static_cast<double>(size) *
             (1.0 + c.k_beta_cpu * g_cpu + c.k_beta_nic * g_nic);
}

}  // namespace cbes
