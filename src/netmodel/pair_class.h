// Class-compressed pair->path-class index: the O(C²)+O(N) representation that
// replaces the dense N² pair_class matrix (paper §2's topology-equivalence
// insight taken to its logical end).
//
// Every node pair's path signature is fully determined by the triple
// (topo-class(a), topo-class(b), LCA depth) — the topology class already
// encodes the architecture plus the per-level link categories, and the LCA
// depth selects how much of each chain the path traverses. PairClassMap
// therefore stores one u16 class id per *realized* triple (a table of
// (max depth + 1) × C × C entries, with C = node topology classes, typically
// single digits) plus two O(N) arrays (node -> topology class, node ->
// attachment switch). pair_class(a, b) is an O(tree depth) LCA climb followed
// by one table load; for small clusters (≤ kDenseNodeLimit nodes) a dense n²
// fast path keeps the scheduler inner loop at one load, exactly as before.
//
// Class ids are canonical: 0 is loopback, ids 1..K are assigned in ascending
// path-signature order, so two maps over the same topology — or over two
// identically shaped topologies — agree id for id. Each class also records
// the row-major-minimal representative node pair, which is byte-for-byte the
// pair the O(N) calibration has always measured for that class (it kept the
// first pair found by a row-major scan); keeping the representative identical
// is what keeps fitted coefficients, and hence every downstream prediction,
// bit-identical to the dense implementation.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"
#include "topology/cluster.h"

namespace cbes {

/// Thrown when a topology realizes more path classes than the u16 class table
/// can index. Typed (rather than a bare contract failure) so callers that
/// generate topologies can catch it and re-shape, instead of silently
/// truncating class ids as the pre-class-map code could.
class TooManyPathClassesError : public std::runtime_error {
 public:
  explicit TooManyPathClassesError(std::size_t classes);
  /// Number of classes the topology realizes, including loopback.
  [[nodiscard]] std::size_t classes() const noexcept { return classes_; }

 private:
  std::size_t classes_;
};

/// Immutable pair -> path-class index over a frozen topology; see the file
/// comment for the representation. Copyable (CompiledProfile embeds one).
class PairClassMap {
 public:
  PairClassMap() = default;
  /// Builds the class table by one bottom-up pass over the switch tree —
  /// O(S·C² + N·depth), never O(N²). Throws TooManyPathClassesError when the
  /// topology realizes 65535 or more distinct non-loopback classes.
  explicit PairClassMap(const ClusterTopology& topology);

  struct ClassInfo {
    std::string signature;  ///< ClusterTopology::path_signature byte format
    NodeId rep_a;           ///< row-major-minimal representative pair
    NodeId rep_b;
  };

  /// Path class of the (a, b) pair; 0 = loopback. Inline hot path: one load
  /// on small clusters, an O(tree depth) parent climb plus one load above
  /// kDenseNodeLimit nodes.
  [[nodiscard]] std::uint16_t pair_class(std::uint32_t a,
                                         std::uint32_t b) const {
    if (a == b) return 0;
    if (!dense_.empty()) return dense_[a * n_ + b];
    std::uint32_t sa = attached_[a];
    std::uint32_t sb = attached_[b];
    while (sa != sb) {
      if (depth_[sa] >= depth_[sb])
        sa = parent_[sa];
      else
        sb = parent_[sb];
    }
    const std::size_t nc = class_stride_;
    return table_[(static_cast<std::size_t>(depth_[sa]) * nc +
                   node_class_[a]) *
                      nc +
                  node_class_[b]];
  }

  /// Number of path classes including loopback (class ids are
  /// [0, table_size())).
  [[nodiscard]] std::size_t table_size() const noexcept {
    return classes_.size();
  }
  /// Signature + representative pair of class `idx`; requires
  /// 1 <= idx < table_size() (loopback has no signature).
  [[nodiscard]] const ClassInfo& info(std::size_t idx) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }
  /// Bytes held by the index — O(C²) table + O(N) vectors (+ the dense
  /// fast path on small clusters). What the statusz/metrics gauges report.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Clusters up to this many nodes also materialize the dense n² fast path
  /// (≤ 2 MiB); beyond it, lookups climb the tree.
  static constexpr std::size_t kDenseNodeLimit = 1024;

 private:
  std::size_t n_ = 0;
  std::size_t class_stride_ = 0;  // node topology class count
  std::vector<std::uint32_t> node_class_;  // n: node -> topology class
  std::vector<std::uint32_t> attached_;    // n: node -> attachment switch
  std::vector<std::uint32_t> parent_;      // S: switch -> parent switch
  std::vector<std::uint16_t> depth_;       // S: switch -> depth
  std::vector<std::uint16_t> table_;       // (max depth+1) * C * C -> class id
  std::vector<std::uint16_t> dense_;       // n*n fast path; empty when large
  std::vector<ClassInfo> classes_;         // [0] = loopback
};

}  // namespace cbes
