#include "fault/injector.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace cbes::fault {

FaultInjector::FaultInjector(const ClusterTopology& topology, FaultPlan plan,
                             std::uint64_t seed)
    : topology_(&topology), plan_(std::move(plan)), seed_(seed) {
  by_node_.resize(topology.node_count());
  const std::vector<FaultEvent>& events = plan_.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    if (!e.node.valid()) {
      if (is_server_fault(e.kind)) {
        server_events_.push_back(i);
        continue;
      }
      CBES_CHECK_MSG(e.kind == FaultKind::kReportLoss,
                     "only report-loss and server-side events may omit a "
                     "target node");
      global_loss_.push_back(i);
      continue;
    }
    CBES_CHECK_MSG(!is_server_fault(e.kind),
                   "server-side events take no target node");
    CBES_CHECK_MSG(e.node.index() < topology.node_count(),
                   "fault event targets a node outside the topology");
    if (e.kind == FaultKind::kReportLoss) {
      global_loss_.push_back(i);  // node filter applied at query time
    } else {
      by_node_[e.node.index()].push_back(i);
    }
  }
}

bool FaultInjector::is_down(NodeId node, Seconds now) const {
  CBES_CHECK_MSG(node.valid() && node.index() < by_node_.size(),
                 "unknown node");
  bool down = false;
  for (std::size_t i : by_node_[node.index()]) {
    const FaultEvent& e = plan_.events()[i];
    if (e.at > now) break;  // events are time-ordered
    switch (e.kind) {
      case FaultKind::kCrash:
        down = true;
        break;
      case FaultKind::kRecover:
        down = false;
        break;
      case FaultKind::kFlap:
        // Down during the first half of each cycle while the episode lasts.
        if (now < e.until &&
            std::fmod(now - e.at, e.period) < 0.5 * e.period) {
          down = true;
        }
        break;
      default:
        break;
    }
  }
  return down;
}

double FaultInjector::cpu_factor(NodeId node, Seconds now) const {
  CBES_CHECK_MSG(node.valid() && node.index() < by_node_.size(),
                 "unknown node");
  double factor = 1.0;
  for (std::size_t i : by_node_[node.index()]) {
    const FaultEvent& e = plan_.events()[i];
    if (e.at > now) break;
    if (e.kind == FaultKind::kCpuSlowdown && now < e.until) {
      factor *= 1.0 - e.magnitude;  // concurrent slowdowns compound
    }
  }
  return std::max(factor, kDeadCpuAvail);
}

double FaultInjector::nic_extra(NodeId node, Seconds now) const {
  CBES_CHECK_MSG(node.valid() && node.index() < by_node_.size(),
                 "unknown node");
  double extra = 0.0;
  for (std::size_t i : by_node_[node.index()]) {
    const FaultEvent& e = plan_.events()[i];
    if (e.at > now) break;
    if (e.kind == FaultKind::kNicDegrade && now < e.until) {
      extra = std::max(extra, e.magnitude);
    }
  }
  return std::min(extra, kDeadNicUtil);
}

bool FaultInjector::report_lost(NodeId node, std::uint64_t tick,
                                Seconds tick_time) const {
  if (is_down(node, tick_time)) return true;
  double loss = 0.0;
  for (std::size_t i : global_loss_) {
    const FaultEvent& e = plan_.events()[i];
    if (e.node.valid() && e.node != node) continue;
    if (tick_time >= e.at && tick_time < e.until) {
      loss = std::max(loss, e.magnitude);
    }
  }
  if (loss <= 0.0) return false;
  // Deterministic per (seed, node, tick): replaying the same history asks
  // the same questions and must get the same answers.
  const std::uint64_t stream =
      (static_cast<std::uint64_t>(node.value) << 40) ^ tick;
  Rng rng(derive_seed(seed_, stream));
  return rng.chance(loss);
}

std::size_t FaultInjector::down_count(Seconds now) const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < by_node_.size(); ++i) {
    if (is_down(NodeId{i}, now)) ++count;
  }
  return count;
}

bool FaultInjector::monitor_down(Seconds now) const {
  for (std::size_t i : server_events_) {
    const FaultEvent& e = plan_.events()[i];
    if (e.at > now) break;  // time-ordered
    if (e.kind == FaultKind::kMonitorOutage && now < e.until) return true;
  }
  return false;
}

double FaultInjector::worker_stall_seconds(Seconds now) const {
  double stall = 0.0;
  for (std::size_t i : server_events_) {
    const FaultEvent& e = plan_.events()[i];
    if (e.at > now) break;
    if (e.kind == FaultKind::kWorkerStall && now < e.until) {
      stall = std::max(stall, e.magnitude);
    }
  }
  return stall;
}

double FaultInjector::calibration_slow_seconds(Seconds now) const {
  double extra = 0.0;
  for (std::size_t i : server_events_) {
    const FaultEvent& e = plan_.events()[i];
    if (e.at > now) break;
    if (e.kind == FaultKind::kSlowCalibration && now < e.until) {
      extra = std::max(extra, e.magnitude);
    }
  }
  return extra;
}

double FaultyLoad::cpu_avail(NodeId node, Seconds now) const {
  if (injector_->is_down(node, now)) return kDeadCpuAvail;
  return std::max(kDeadCpuAvail,
                  base_->cpu_avail(node, now) * injector_->cpu_factor(node, now));
}

double FaultyLoad::nic_util(NodeId node, Seconds now) const {
  if (injector_->is_down(node, now)) return kDeadNicUtil;
  return std::min(kDeadNicUtil,
                  base_->nic_util(node, now) + injector_->nic_extra(node, now));
}

}  // namespace cbes::fault
