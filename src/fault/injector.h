// Deterministic interpretation of a FaultPlan.
//
// The FaultInjector answers point-in-time queries — is this node down, how
// much CPU do its background faults steal, is this monitor report lost — as
// pure functions of (plan, seed, query), so concurrent readers need no locks
// and a chaos run replays bit-identically from its seed.
//
// FaultyLoad adapts an injector onto the LoadModel interface, which is how a
// plan drives the simnet/simmpi ground truth: a crashed node's CPU collapses
// to the floor and its NIC saturates, slowdowns and degradations stack onto
// whatever background load the base model already describes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "fault/fault.h"
#include "simnet/load.h"
#include "topology/cluster.h"

namespace cbes::fault {

/// CPU availability reported for a dead node: the simulator floor — any rank
/// accidentally placed there runs ~50x slow, which surfaces loudly in tests.
inline constexpr double kDeadCpuAvail = 0.02;
/// NIC utilization reported for a dead node (the model's saturation cap).
inline constexpr double kDeadNicUtil = 0.95;

class FaultInjector {
 public:
  /// `topology` must outlive the injector. Every node-targeted event in
  /// `plan` must name a node of the topology.
  FaultInjector(const ClusterTopology& topology, FaultPlan plan,
                std::uint64_t seed);

  /// True when `node` is down at `now` (inside a crash..recover window or the
  /// down half of a flap cycle).
  [[nodiscard]] bool is_down(NodeId node, Seconds now) const;

  /// Fraction of the node's CPU left to the foreground after active
  /// slowdown faults, in (0, 1]; multiplies the base model's availability.
  [[nodiscard]] double cpu_factor(NodeId node, Seconds now) const;

  /// Extra NIC utilization from active degradation faults, in [0, 1).
  [[nodiscard]] double nic_extra(NodeId node, Seconds now) const;

  /// Whether the monitor report for `node` at sensor tick `tick` (published
  /// at `tick_time`) is lost: always when the node is down, otherwise a
  /// deterministic per-(seed, node, tick) Bernoulli draw against the highest
  /// active loss probability. The same question always gets the same answer.
  [[nodiscard]] bool report_lost(NodeId node, std::uint64_t tick,
                                 Seconds tick_time) const;

  /// Number of nodes down at `now`.
  [[nodiscard]] std::size_t down_count(Seconds now) const;

  // ---- server-side faults (no target node) -------------------------------

  /// True when a monitor-outage window is active at `now`: the monitor is
  /// unreachable and snapshot attempts should fail as transient errors.
  [[nodiscard]] bool monitor_down(Seconds now) const;

  /// Wall-seconds a worker execution attempt should stall at `now` (the
  /// largest active worker-stall magnitude), or 0 when none is active.
  [[nodiscard]] double worker_stall_seconds(Seconds now) const;

  /// Extra wall-seconds profile compilation should take at `now` (the
  /// largest active slow-calibration magnitude), or 0 when none is active.
  [[nodiscard]] double calibration_slow_seconds(Seconds now) const;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const ClusterTopology& topology() const noexcept {
    return *topology_;
  }

 private:
  const ClusterTopology* topology_;
  FaultPlan plan_;
  std::uint64_t seed_;
  /// Per-node event indices into plan_.events(), in time order.
  std::vector<std::vector<std::size_t>> by_node_;
  /// Cluster-wide (invalid-node) report-loss event indices.
  std::vector<std::size_t> global_loss_;
  /// Server-side (worker-stall / monitor-outage / slow-calibration) event
  /// indices, in time order.
  std::vector<std::size_t> server_events_;
};

/// LoadModel decorator: the base model's load plus the injector's faults.
/// Both references must outlive the decorator.
class FaultyLoad final : public LoadModel {
 public:
  FaultyLoad(const LoadModel& base, const FaultInjector& injector)
      : base_(&base), injector_(&injector) {}

  [[nodiscard]] double cpu_avail(NodeId node, Seconds now) const override;
  [[nodiscard]] double nic_util(NodeId node, Seconds now) const override;

 private:
  const LoadModel* base_;
  const FaultInjector* injector_;
};

}  // namespace cbes::fault
