// Declarative fault plans for chaos-testing CBES (ISSUE 4 tentpole,
// extended by ISSUE 6 with server-side faults).
//
// A FaultPlan is a list of timed fault events against cluster nodes — crashes
// and recoveries, sustained CPU slowdowns, NIC degradation, monitor-report
// loss, flapping — plus *server-side* faults against the serving
// infrastructure itself: worker stalls, monitor outages, and slow
// calibration. Plans are pure data — the FaultInjector (injector.h)
// interprets them deterministically, so the same (plan, seed) always produces
// the same failure history, which is what makes chaos tests reproducible and
// bisectable.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace cbes::fault {

/// A recoverable infrastructure hiccup (e.g. a monitor outage mid-request).
/// The request broker retries these with capped backoff instead of failing
/// the job; anything else escalates to a job failure.
class TransientError : public std::runtime_error {
 public:
  explicit TransientError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown when a plan's *timeline* is inconsistent: duplicate or overlapping
/// events for the same (node, time), or out-of-order crash/recover pairs.
/// Typed so chaos harnesses can distinguish "this plan is malformed" from a
/// generic contract violation — malformed plans are rejected loudly instead
/// of the last write silently winning.
class FaultPlanError : public ContractError {
 public:
  explicit FaultPlanError(const std::string& what) : ContractError(what) {}
};

enum class FaultKind : unsigned char {
  kCrash,        ///< node goes down at `at` and stays down until recovered
  kRecover,      ///< node comes back up at `at`
  kCpuSlowdown,  ///< background work steals `magnitude` of the CPU in [at, until)
  kNicDegrade,   ///< background traffic adds `magnitude` NIC util in [at, until)
  kReportLoss,   ///< monitor reports lost with probability `magnitude` in [at, until)
  kFlap,         ///< node cycles down/up with cycle length `period` in [at, until)
  // ---- server-side faults (no target node; hit the serving layer itself) --
  kWorkerStall,      ///< executor attempts stall `magnitude` wall-seconds in [at, until)
  kMonitorOutage,    ///< monitor snapshots fail in [at, until)
  kSlowCalibration,  ///< profile compilation takes `magnitude` extra wall-seconds in [at, until)
  // ---- socket faults (no target node; hit the wire front-end's transport) --
  kSocketPartialIo,  ///< reads/writes truncate with probability `magnitude`
  kSocketEagain,     ///< EAGAIN storms with per-op probability `magnitude`
  kSocketReset,      ///< mid-frame ECONNRESET with probability `magnitude`
  kSocketStall,      ///< peer stalls `magnitude` wall-seconds per stall
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind) noexcept;

/// True for faults against the wire front-end's byte transport
/// (net::FaultyTransport interprets these; see net/transport.h).
[[nodiscard]] constexpr bool is_socket_fault(FaultKind kind) noexcept {
  return kind == FaultKind::kSocketPartialIo ||
         kind == FaultKind::kSocketEagain ||
         kind == FaultKind::kSocketReset || kind == FaultKind::kSocketStall;
}

/// True for faults against the serving infrastructure rather than a cluster
/// node (kWorkerStall / kMonitorOutage / kSlowCalibration, plus the socket
/// kinds — none of them take a target node).
[[nodiscard]] constexpr bool is_server_fault(FaultKind kind) noexcept {
  return kind == FaultKind::kWorkerStall ||
         kind == FaultKind::kMonitorOutage ||
         kind == FaultKind::kSlowCalibration || is_socket_fault(kind);
}

/// One fault event. Which fields matter depends on `kind`:
///   kCrash / kRecover:  node, at
///   kCpuSlowdown:       node, at, until, magnitude in [0, 1)
///   kNicDegrade:        node, at, until, magnitude in [0, 1)
///   kReportLoss:        node (invalid = every node), at, until,
///                       magnitude = per-tick loss probability in [0, 1]
///   kFlap:              node, at, until, period > 0 (down the first half of
///                       each cycle, up the second)
///   kWorkerStall:       at, until, magnitude = stall wall-seconds > 0
///   kMonitorOutage:     at, until
///   kSlowCalibration:   at, until, magnitude = extra compile wall-seconds > 0
///   kSocketPartialIo:   at, until, magnitude = per-op probability in [0, 1]
///   kSocketEagain:      at, until, magnitude = per-op probability in [0, 1]
///   kSocketReset:       at, until, magnitude = per-op probability in [0, 1]
///   kSocketStall:       at, until, magnitude = stall wall-seconds > 0
/// Server-side and socket kinds must leave `node` invalid.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  /// Target node; for kReportLoss an invalid id means cluster-wide, and
  /// server-side kinds take no node at all.
  NodeId node;
  Seconds at = 0.0;
  Seconds until = kNever;
  double magnitude = 0.0;
  Seconds period = 0.0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Options for the seeded random chaos-plan generator.
struct ChaosOptions {
  std::size_t crashes = 2;        ///< distinct crash events (some may recover)
  std::size_t flaps = 1;          ///< flapping episodes
  std::size_t slowdowns = 2;      ///< CPU-slowdown episodes
  std::size_t nic_degrades = 1;   ///< NIC-degradation episodes
  double report_loss = 0.15;      ///< cluster-wide per-tick report-loss rate
  /// Fraction of crashes that recover before the horizon.
  double recovery_fraction = 0.5;
  Seconds horizon = 300.0;        ///< all events land in [0, horizon)
  // ---- server-side chaos (defaults off: pre-ISSUE-6 plans are unchanged) --
  std::size_t worker_stalls = 0;      ///< executor-stall episodes
  std::size_t monitor_outages = 0;    ///< monitor-unreachable episodes
  std::size_t slow_calibrations = 0;  ///< slow-compile episodes
  /// Wall-seconds a stalled worker attempt hangs (kept small: the watchdog
  /// must notice, but CI must not crawl).
  double stall_seconds = 0.2;
  // ---- socket chaos (defaults off: pre-ISSUE-9 plans are unchanged) -------
  std::size_t socket_partials = 0;  ///< partial read/write episodes
  std::size_t socket_eagains = 0;   ///< EAGAIN-storm episodes
  std::size_t socket_resets = 0;    ///< mid-frame connection-reset episodes
  std::size_t socket_stalls = 0;    ///< peer-stall episodes
  /// Per-operation probability each socket episode injects with.
  double socket_fault_probability = 0.2;
};

/// Ordered, validated collection of fault events.
class FaultPlan {
 public:
  /// Validates the event's per-kind invariants (throws ContractError on a
  /// malformed event: negative times, magnitude out of range, a server-side
  /// kind with a target node, ...) and the plan's timeline invariants
  /// (throws FaultPlanError): no two events for the same (node, time), no
  /// crash of an already-down node, no recover without a preceding crash.
  /// A rejected event leaves the plan unchanged.
  void add(FaultEvent event);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Count of events of one kind (for reporting and test assertions).
  [[nodiscard]] std::size_t count(FaultKind kind) const noexcept;

  /// Generates a random-but-deterministic plan over `node_count` nodes:
  /// same (node_count, options, seed) -> same plan. Node 0 is never crashed
  /// or flapped so the cluster always keeps at least one live node; crash
  /// victims are distinct so the plan always passes timeline validation
  /// (which caps crashes at node_count - 1).
  [[nodiscard]] static FaultPlan chaos(std::size_t node_count,
                                       const ChaosOptions& options,
                                       std::uint64_t seed);

 private:
  /// Timeline validation over the (sorted) event list; throws FaultPlanError.
  void validate_timeline() const;

  std::vector<FaultEvent> events_;
};

}  // namespace cbes::fault
