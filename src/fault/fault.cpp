#include "fault/fault.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace cbes::fault {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kCpuSlowdown:
      return "cpu-slowdown";
    case FaultKind::kNicDegrade:
      return "nic-degrade";
    case FaultKind::kReportLoss:
      return "report-loss";
    case FaultKind::kFlap:
      return "flap";
  }
  return "?";
}

void FaultPlan::add(FaultEvent event) {
  CBES_CHECK_MSG(std::isfinite(event.at) && event.at >= 0.0,
                 "fault event start must be finite and nonnegative");
  CBES_CHECK_MSG(event.until > event.at,
                 "fault event window must end after it starts");
  switch (event.kind) {
    case FaultKind::kCrash:
    case FaultKind::kRecover:
      CBES_CHECK_MSG(event.node.valid(), "crash/recover needs a target node");
      break;
    case FaultKind::kCpuSlowdown:
    case FaultKind::kNicDegrade:
      CBES_CHECK_MSG(event.node.valid(), "slowdown needs a target node");
      CBES_CHECK_MSG(
          std::isfinite(event.magnitude) && event.magnitude >= 0.0 &&
              event.magnitude < 1.0,
          "slowdown/degradation magnitude must be in [0, 1)");
      break;
    case FaultKind::kReportLoss:
      CBES_CHECK_MSG(
          std::isfinite(event.magnitude) && event.magnitude >= 0.0 &&
              event.magnitude <= 1.0,
          "report-loss probability must be in [0, 1]");
      break;
    case FaultKind::kFlap:
      CBES_CHECK_MSG(event.node.valid(), "flap needs a target node");
      CBES_CHECK_MSG(std::isfinite(event.period) && event.period > 0.0,
                     "flap period must be positive");
      break;
  }
  events_.push_back(event);
  // Keep events ordered by start time so interpreters can scan forward.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

std::size_t FaultPlan::count(FaultKind kind) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const FaultEvent& e) { return e.kind == kind; }));
}

FaultPlan FaultPlan::chaos(std::size_t node_count, const ChaosOptions& options,
                           std::uint64_t seed) {
  CBES_CHECK_MSG(node_count >= 2,
                 "chaos plan needs at least two nodes (node 0 is spared)");
  Rng rng(derive_seed(seed, 0xC4A05));
  FaultPlan plan;
  // Victims are drawn from [1, n): node 0 stays up so the cluster always has
  // capacity and the equivalence-class back-fill has a live donor.
  const auto victim = [&]() -> NodeId {
    return NodeId{1 + rng.below(node_count - 1)};
  };
  for (std::size_t i = 0; i < options.crashes; ++i) {
    const NodeId node = victim();
    const Seconds at = rng.uniform(0.0, 0.5 * options.horizon);
    plan.add({FaultKind::kCrash, node, at});
    if (rng.chance(options.recovery_fraction)) {
      plan.add({FaultKind::kRecover, node,
                rng.uniform(at + 0.1 * options.horizon, options.horizon)});
    }
  }
  for (std::size_t i = 0; i < options.flaps; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kFlap;
    e.node = victim();
    e.at = rng.uniform(0.0, 0.5 * options.horizon);
    e.until = rng.uniform(e.at + 0.1 * options.horizon, options.horizon);
    e.period = rng.uniform(0.05, 0.2) * options.horizon;
    plan.add(e);
  }
  for (std::size_t i = 0; i < options.slowdowns; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kCpuSlowdown;
    e.node = victim();
    e.at = rng.uniform(0.0, 0.8 * options.horizon);
    e.until = rng.uniform(e.at, options.horizon) + 1.0;
    e.magnitude = rng.uniform(0.2, 0.8);
    plan.add(e);
  }
  for (std::size_t i = 0; i < options.nic_degrades; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kNicDegrade;
    e.node = victim();
    e.at = rng.uniform(0.0, 0.8 * options.horizon);
    e.until = rng.uniform(e.at, options.horizon) + 1.0;
    e.magnitude = rng.uniform(0.2, 0.7);
    plan.add(e);
  }
  if (options.report_loss > 0.0) {
    FaultEvent e;
    e.kind = FaultKind::kReportLoss;
    e.node = NodeId{};  // cluster-wide
    e.at = 0.0;
    e.until = options.horizon;
    e.magnitude = options.report_loss;
    plan.add(e);
  }
  return plan;
}

}  // namespace cbes::fault
