#include "fault/fault.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace cbes::fault {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kCpuSlowdown:
      return "cpu-slowdown";
    case FaultKind::kNicDegrade:
      return "nic-degrade";
    case FaultKind::kReportLoss:
      return "report-loss";
    case FaultKind::kFlap:
      return "flap";
    case FaultKind::kWorkerStall:
      return "worker-stall";
    case FaultKind::kMonitorOutage:
      return "monitor-outage";
    case FaultKind::kSlowCalibration:
      return "slow-calibration";
    case FaultKind::kSocketPartialIo:
      return "socket-partial-io";
    case FaultKind::kSocketEagain:
      return "socket-eagain";
    case FaultKind::kSocketReset:
      return "socket-reset";
    case FaultKind::kSocketStall:
      return "socket-stall";
  }
  return "?";
}

namespace {

/// True for kinds that change a node's up/down state: two of these on the
/// same node at the same instant leave the resulting state dependent on
/// insertion order, which a deterministic plan cannot tolerate.
bool is_state_event(FaultKind kind) noexcept {
  return kind == FaultKind::kCrash || kind == FaultKind::kRecover ||
         kind == FaultKind::kFlap;
}

[[noreturn]] void timeline_error(const FaultEvent& e, const char* why) {
  std::ostringstream msg;
  msg << "fault plan timeline error: " << fault_kind_name(e.kind);
  if (e.node.valid()) msg << " on node " << e.node.value;
  msg << " at t=" << e.at << ": " << why;
  throw FaultPlanError(msg.str());
}

}  // namespace

void FaultPlan::validate_timeline() const {
  // Duplicate / ambiguous-ordering detection. For node-targeted events the
  // key is (node, at): two state events (or two of the same kind) colliding
  // there have order-dependent meaning. Node-less events (cluster-wide
  // report-loss and the server-side kinds) conflict only with their own kind.
  for (std::size_t i = 0; i + 1 < events_.size(); ++i) {
    const FaultEvent& a = events_[i];
    // events_ is sorted by `at`, so collisions are adjacent-ish: scan forward
    // while start times match.
    for (std::size_t j = i + 1;
         j < events_.size() && events_[j].at == a.at; ++j) {
      const FaultEvent& b = events_[j];
      if (a.node != b.node) continue;
      const bool same_kind = a.kind == b.kind;
      const bool ambiguous_state =
          a.node.valid() && is_state_event(a.kind) && is_state_event(b.kind);
      if (same_kind || ambiguous_state) {
        timeline_error(b, same_kind
                              ? "duplicate event for the same target and time"
                              : "conflicting state events at the same time");
      }
    }
  }
  // Crash/recover pairing: replay each node's state sequence in time order.
  std::map<std::uint64_t, bool> down;  // node id -> currently down
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kCrash) {
      bool& is_down = down[e.node.value];
      if (is_down) timeline_error(e, "node is already down (missing recover)");
      is_down = true;
    } else if (e.kind == FaultKind::kRecover) {
      bool& is_down = down[e.node.value];
      if (!is_down) timeline_error(e, "recover without a preceding crash");
      is_down = false;
    }
  }
}

void FaultPlan::add(FaultEvent event) {
  CBES_CHECK_MSG(std::isfinite(event.at) && event.at >= 0.0,
                 "fault event start must be finite and nonnegative");
  CBES_CHECK_MSG(event.until > event.at,
                 "fault event window must end after it starts");
  switch (event.kind) {
    case FaultKind::kCrash:
    case FaultKind::kRecover:
      CBES_CHECK_MSG(event.node.valid(), "crash/recover needs a target node");
      break;
    case FaultKind::kCpuSlowdown:
    case FaultKind::kNicDegrade:
      CBES_CHECK_MSG(event.node.valid(), "slowdown needs a target node");
      CBES_CHECK_MSG(
          std::isfinite(event.magnitude) && event.magnitude >= 0.0 &&
              event.magnitude < 1.0,
          "slowdown/degradation magnitude must be in [0, 1)");
      break;
    case FaultKind::kReportLoss:
      CBES_CHECK_MSG(
          std::isfinite(event.magnitude) && event.magnitude >= 0.0 &&
              event.magnitude <= 1.0,
          "report-loss probability must be in [0, 1]");
      break;
    case FaultKind::kFlap:
      CBES_CHECK_MSG(event.node.valid(), "flap needs a target node");
      CBES_CHECK_MSG(std::isfinite(event.period) && event.period > 0.0,
                     "flap period must be positive");
      break;
    case FaultKind::kWorkerStall:
      CBES_CHECK_MSG(!event.node.valid(),
                     "worker-stall is server-side and takes no target node");
      CBES_CHECK_MSG(std::isfinite(event.magnitude) && event.magnitude > 0.0,
                     "worker-stall duration must be positive seconds");
      break;
    case FaultKind::kMonitorOutage:
      CBES_CHECK_MSG(!event.node.valid(),
                     "monitor-outage is server-side and takes no target node");
      break;
    case FaultKind::kSlowCalibration:
      CBES_CHECK_MSG(
          !event.node.valid(),
          "slow-calibration is server-side and takes no target node");
      CBES_CHECK_MSG(std::isfinite(event.magnitude) && event.magnitude > 0.0,
                     "slow-calibration delay must be positive seconds");
      break;
    case FaultKind::kSocketPartialIo:
    case FaultKind::kSocketEagain:
    case FaultKind::kSocketReset:
      CBES_CHECK_MSG(!event.node.valid(),
                     "socket faults hit the transport and take no target node");
      CBES_CHECK_MSG(
          std::isfinite(event.magnitude) && event.magnitude >= 0.0 &&
              event.magnitude <= 1.0,
          "socket fault probability must be in [0, 1]");
      break;
    case FaultKind::kSocketStall:
      CBES_CHECK_MSG(!event.node.valid(),
                     "socket faults hit the transport and take no target node");
      CBES_CHECK_MSG(std::isfinite(event.magnitude) && event.magnitude > 0.0,
                     "socket stall must be positive seconds");
      break;
  }
  events_.push_back(event);
  // Keep events ordered by start time so interpreters can scan forward.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  try {
    validate_timeline();
  } catch (...) {
    // Strong guarantee: a rejected event leaves the plan as it was.
    const auto it = std::find(events_.begin(), events_.end(), event);
    if (it != events_.end()) events_.erase(it);
    throw;
  }
}

std::size_t FaultPlan::count(FaultKind kind) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const FaultEvent& e) { return e.kind == kind; }));
}

FaultPlan FaultPlan::chaos(std::size_t node_count, const ChaosOptions& options,
                           std::uint64_t seed) {
  CBES_CHECK_MSG(node_count >= 2,
                 "chaos plan needs at least two nodes (node 0 is spared)");
  CBES_CHECK_MSG(options.crashes < node_count,
                 "chaos plan cannot crash more distinct nodes than exist "
                 "(node 0 is spared)");
  Rng rng(derive_seed(seed, 0xC4A05));
  FaultPlan plan;
  // Victims are drawn from [1, n): node 0 stays up so the cluster always has
  // capacity and the equivalence-class back-fill has a live donor.
  const auto victim = [&]() -> NodeId {
    return NodeId{1 + rng.below(node_count - 1)};
  };
  // Crash victims are *distinct* (a node cannot crash while already down, and
  // the generator must always emit a valid plan), so they are sampled without
  // replacement rather than drawn independently.
  const std::vector<std::size_t> crash_victims =
      rng.sample_indices(node_count - 1, options.crashes);
  for (const std::size_t v : crash_victims) {
    const NodeId node{1 + v};
    const Seconds at = rng.uniform(0.0, 0.5 * options.horizon);
    plan.add({FaultKind::kCrash, node, at});
    if (rng.chance(options.recovery_fraction)) {
      plan.add({FaultKind::kRecover, node,
                rng.uniform(at + 0.1 * options.horizon, options.horizon)});
    }
  }
  for (std::size_t i = 0; i < options.flaps; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kFlap;
    e.node = victim();
    e.at = rng.uniform(0.0, 0.5 * options.horizon);
    e.until = rng.uniform(e.at + 0.1 * options.horizon, options.horizon);
    e.period = rng.uniform(0.05, 0.2) * options.horizon;
    plan.add(e);
  }
  for (std::size_t i = 0; i < options.slowdowns; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kCpuSlowdown;
    e.node = victim();
    e.at = rng.uniform(0.0, 0.8 * options.horizon);
    e.until = rng.uniform(e.at, options.horizon) + 1.0;
    e.magnitude = rng.uniform(0.2, 0.8);
    plan.add(e);
  }
  for (std::size_t i = 0; i < options.nic_degrades; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kNicDegrade;
    e.node = victim();
    e.at = rng.uniform(0.0, 0.8 * options.horizon);
    e.until = rng.uniform(e.at, options.horizon) + 1.0;
    e.magnitude = rng.uniform(0.2, 0.7);
    plan.add(e);
  }
  if (options.report_loss > 0.0) {
    FaultEvent e;
    e.kind = FaultKind::kReportLoss;
    e.node = NodeId{};  // cluster-wide
    e.at = 0.0;
    e.until = options.horizon;
    e.magnitude = options.report_loss;
    plan.add(e);
  }
  for (std::size_t i = 0; i < options.worker_stalls; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kWorkerStall;
    e.at = rng.uniform(0.0, 0.6 * options.horizon);
    e.until = rng.uniform(e.at + 0.05 * options.horizon, options.horizon);
    e.magnitude = options.stall_seconds;
    plan.add(e);
  }
  for (std::size_t i = 0; i < options.monitor_outages; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kMonitorOutage;
    e.at = rng.uniform(0.0, 0.6 * options.horizon);
    e.until = rng.uniform(e.at + 0.05 * options.horizon, options.horizon);
    plan.add(e);
  }
  for (std::size_t i = 0; i < options.slow_calibrations; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kSlowCalibration;
    e.at = rng.uniform(0.0, 0.6 * options.horizon);
    e.until = rng.uniform(e.at + 0.05 * options.horizon, options.horizon);
    e.magnitude = options.stall_seconds;
    plan.add(e);
  }
  const auto socket_episode = [&](FaultKind kind, double magnitude) {
    FaultEvent e;
    e.kind = kind;
    e.at = rng.uniform(0.0, 0.6 * options.horizon);
    e.until = rng.uniform(e.at + 0.05 * options.horizon, options.horizon);
    e.magnitude = magnitude;
    plan.add(e);
  };
  for (std::size_t i = 0; i < options.socket_partials; ++i) {
    socket_episode(FaultKind::kSocketPartialIo,
                   options.socket_fault_probability);
  }
  for (std::size_t i = 0; i < options.socket_eagains; ++i) {
    socket_episode(FaultKind::kSocketEagain, options.socket_fault_probability);
  }
  for (std::size_t i = 0; i < options.socket_resets; ++i) {
    socket_episode(FaultKind::kSocketReset, options.socket_fault_probability);
  }
  for (std::size_t i = 0; i < options.socket_stalls; ++i) {
    socket_episode(FaultKind::kSocketStall, options.stall_seconds);
  }
  return plan;
}

}  // namespace cbes::fault
