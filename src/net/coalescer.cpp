#include "net/coalescer.h"

#include "common/check.h"

namespace cbes::net {

std::uint64_t Coalescer::find(const Key& key) const {
  const auto it = by_key_.find(key);
  return it == by_key_.end() ? 0 : it->second;
}

void Coalescer::publish(const Key& key, std::uint64_t job_id) {
  CBES_CHECK_MSG(job_id != 0, "Coalescer: job id 0 is the sentinel");
  const bool inserted = by_key_.emplace(key, job_id).second;
  CBES_CHECK_MSG(inserted, "Coalescer: key already in flight");
  by_job_.emplace(job_id, key);
}

void Coalescer::retire(std::uint64_t job_id) {
  const auto it = by_job_.find(job_id);
  if (it == by_job_.end()) return;
  by_key_.erase(it->second);
  by_job_.erase(it);
}

}  // namespace cbes::net
