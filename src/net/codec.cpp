#include "net/codec.h"

#include <bit>
#include <cstring>

namespace cbes::net {

namespace {

// ---- little-endian primitives ---------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Length-prefixed string (u16 length). Callers bound `s` beforehand; the
/// prefix still clamps defensively so an encode can never produce a frame a
/// peer with the same limits would refuse for length reasons.
void put_str16(std::vector<std::uint8_t>& out, std::string_view s) {
  const std::size_t n = std::min<std::size_t>(s.size(), 0xFFFF);
  put_u16(out, static_cast<std::uint16_t>(n));
  out.insert(out.end(), s.begin(), s.begin() + static_cast<std::ptrdiff_t>(n));
}

/// Length-prefixed blob (u32 length) for payloads that may exceed 64 KiB
/// (the statusz JSON).
void put_str32(std::vector<std::uint8_t>& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_mapping(std::vector<std::uint8_t>& out,
                 const std::vector<NodeId>& assignment) {
  put_u32(out, static_cast<std::uint32_t>(assignment.size()));
  for (const NodeId node : assignment) put_u32(out, node.value);
}

void put_node_list(std::vector<std::uint8_t>& out,
                   const std::vector<NodeId>& nodes) {
  put_mapping(out, nodes);  // same layout: u32 count + u32 per node
}

/// Bounds-checked cursor over one payload. Every accessor returns false
/// instead of reading past `size_`; length-prefixed reads validate the
/// prefix against the remaining bytes *and* the caller's cap before any
/// allocation is sized from it.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] bool u8(std::uint8_t& v) {
    if (size_ - pos_ < 1) return false;
    v = data_[pos_++];
    return true;
  }

  [[nodiscard]] bool u16(std::uint16_t& v) {
    if (size_ - pos_ < 2) return false;
    v = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(data_[pos_]) |
        static_cast<std::uint16_t>(static_cast<std::uint16_t>(data_[pos_ + 1])
                                   << 8));
    pos_ += 2;
    return true;
  }

  [[nodiscard]] bool u32(std::uint32_t& v) {
    if (size_ - pos_ < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  [[nodiscard]] bool u64(std::uint64_t& v) {
    if (size_ - pos_ < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  [[nodiscard]] bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }

  /// u16-prefixed string, refused (without allocating) beyond `max_len`.
  [[nodiscard]] bool str16(std::string& v, std::uint32_t max_len) {
    std::uint16_t n = 0;
    if (!u16(n)) return false;
    if (n > max_len || size_ - pos_ < n) return false;
    v.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  /// u32-prefixed blob, refused (without allocating) beyond `max_len`.
  [[nodiscard]] bool str32(std::string& v, std::uint32_t max_len) {
    std::uint32_t n = 0;
    if (!u32(n)) return false;
    if (n > max_len || size_ - pos_ < n) return false;
    v.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  /// u32-count node list, refused beyond `max_nodes` — the count is checked
  /// against the bytes actually present before the vector is sized.
  [[nodiscard]] bool node_list(std::vector<NodeId>& v,
                               std::uint32_t max_nodes) {
    std::uint32_t n = 0;
    if (!u32(n)) return false;
    if (n > max_nodes || (size_ - pos_) / 4 < n) return false;
    v.clear();
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint32_t node = 0;
      if (!u32(node)) return false;  // unreachable: bounded above
      v.emplace_back(node);
    }
    return true;
  }

  [[nodiscard]] bool done() const noexcept { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Shared tail of every decode: success only when the payload was consumed
/// exactly — trailing bytes mean a framing disagreement, not padding.
[[nodiscard]] WireError finish(const WireReader& reader, std::string& detail) {
  if (!reader.done()) {
    detail = "trailing bytes after payload";
    return WireError::kTrailingGarbage;
  }
  return WireError::kNone;
}

[[nodiscard]] bool read_mapping(WireReader& reader, const CodecLimits& limits,
                                Mapping& mapping) {
  std::vector<NodeId> assignment;
  if (!reader.node_list(assignment, limits.max_ranks)) return false;
  mapping = Mapping(std::move(assignment));
  return true;
}

/// Request envelope: priority + deadline budget.
[[nodiscard]] bool read_envelope(WireReader& reader, RequestFrame& out) {
  std::uint8_t priority = 0;
  if (!reader.u8(priority)) return false;
  if (priority >= server::kPriorityClasses) return false;
  out.priority = static_cast<server::Priority>(priority);
  return reader.u32(out.deadline_ms);
}

[[nodiscard]] std::uint8_t result_flags(const ResponseFrame& r) {
  std::uint8_t flags = 0;
  if (r.degraded) flags |= 0x01;
  if (r.cache_hit) flags |= 0x02;
  if (r.coalesced) flags |= 0x04;
  return flags;
}

/// Result envelope shared by all non-error responses.
[[nodiscard]] bool read_result_envelope(WireReader& reader,
                                        ResponseFrame& out) {
  std::uint8_t flags = 0;
  if (!reader.u8(flags)) return false;
  if ((flags & ~0x07u) != 0) return false;  // unknown flag bits
  out.degraded = (flags & 0x01) != 0;
  out.cache_hit = (flags & 0x02) != 0;
  out.coalesced = (flags & 0x04) != 0;
  return reader.u64(out.snapshot_epoch);
}

void encode_header(std::vector<std::uint8_t>& out, MsgType type,
                   std::uint64_t request_id, std::size_t payload_len) {
  put_u32(out, kWireMagic);
  put_u8(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u16(out, 0);  // reserved
  put_u64(out, request_id);
  put_u32(out, static_cast<std::uint32_t>(payload_len));
}

/// Patches the payload-length field once the payload has been appended, so
/// encoders build frames in one pass.
void patch_payload_len(std::vector<std::uint8_t>& out, std::size_t start) {
  const std::size_t payload = out.size() - start - kHeaderBytes;
  const auto len = static_cast<std::uint32_t>(payload);
  for (int i = 0; i < 4; ++i) {
    out[start + 16 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((len >> (8 * i)) & 0xFF);
  }
}

}  // namespace

std::string_view msg_type_name(MsgType t) noexcept {
  switch (t) {
    case MsgType::kPredictRequest: return "predict-request";
    case MsgType::kCompareRequest: return "compare-request";
    case MsgType::kScheduleRequest: return "schedule-request";
    case MsgType::kRemapRequest: return "remap-request";
    case MsgType::kStatusRequest: return "status-request";
    case MsgType::kPredictResponse: return "predict-response";
    case MsgType::kCompareResponse: return "compare-response";
    case MsgType::kScheduleResponse: return "schedule-response";
    case MsgType::kRemapResponse: return "remap-response";
    case MsgType::kStatusResponse: return "status-response";
    case MsgType::kError: return "error";
  }
  return "?";
}

std::string_view wire_error_name(WireError e) noexcept {
  switch (e) {
    case WireError::kNone: return "none";
    case WireError::kBadMagic: return "bad-magic";
    case WireError::kBadVersion: return "bad-version";
    case WireError::kBadType: return "bad-type";
    case WireError::kTooLarge: return "too-large";
    case WireError::kMalformed: return "malformed";
    case WireError::kLimit: return "limit";
    case WireError::kTrailingGarbage: return "trailing-garbage";
    case WireError::kRejected: return "rejected";
    case WireError::kCancelled: return "cancelled";
    case WireError::kFailed: return "failed";
    case WireError::kShutdown: return "shutdown";
    case WireError::kRateLimited: return "rate-limited";
  }
  return "?";
}

WireError decode_header(const std::uint8_t* data, std::size_t size,
                        const CodecLimits& limits, FrameHeader& header) {
  WireReader reader(data, size);
  std::uint32_t magic = 0;
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  std::uint16_t reserved = 0;
  if (size < kHeaderBytes || !reader.u32(magic) || !reader.u8(version) ||
      !reader.u8(type) || !reader.u16(reserved) ||
      !reader.u64(header.request_id) || !reader.u32(header.payload_len)) {
    return WireError::kMalformed;  // callers buffer to kHeaderBytes first
  }
  if (magic != kWireMagic) return WireError::kBadMagic;
  if (version != kWireVersion) return WireError::kBadVersion;
  if (reserved != 0) return WireError::kMalformed;
  const auto t = static_cast<MsgType>(type);
  if (!is_request(t) && !is_response(t)) return WireError::kBadType;
  header.type = t;
  if (header.payload_len > limits.max_payload) return WireError::kTooLarge;
  return WireError::kNone;
}

WireError decode_request(const FrameHeader& header,
                         const std::uint8_t* payload, std::size_t size,
                         const CodecLimits& limits, RequestFrame& out,
                         std::string& detail) {
  if (!is_request(header.type)) {
    detail = "not a request frame";
    return WireError::kBadType;
  }
  if (size != header.payload_len) {
    detail = "payload size disagrees with header";
    return WireError::kMalformed;
  }
  out = RequestFrame{};
  out.type = header.type;
  out.request_id = header.request_id;
  WireReader reader(payload, size);
  if (!read_envelope(reader, out)) {
    detail = "bad request envelope";
    return WireError::kMalformed;
  }
  switch (header.type) {
    case MsgType::kPredictRequest: {
      if (!reader.str16(out.predict.app, limits.max_name) ||
          !reader.f64(out.predict.now) ||
          !read_mapping(reader, limits, out.predict.mapping)) {
        detail = "bad predict payload";
        return WireError::kMalformed;
      }
      if (out.predict.mapping.nranks() == 0) {
        detail = "predict mapping is empty";
        return WireError::kMalformed;
      }
      break;
    }
    case MsgType::kCompareRequest: {
      if (!reader.str16(out.compare.app, limits.max_name) ||
          !reader.f64(out.compare.now)) {
        detail = "bad compare payload";
        return WireError::kMalformed;
      }
      std::uint16_t candidates = 0;
      if (!reader.u16(candidates)) {
        detail = "bad compare payload";
        return WireError::kMalformed;
      }
      if (candidates == 0 || candidates > limits.max_candidates) {
        detail = "compare candidate count out of range";
        return WireError::kLimit;
      }
      out.compare.candidates.reserve(candidates);
      for (std::uint16_t i = 0; i < candidates; ++i) {
        Mapping mapping;
        if (!read_mapping(reader, limits, mapping)) {
          detail = "bad compare candidate";
          return WireError::kMalformed;
        }
        out.compare.candidates.push_back(std::move(mapping));
      }
      break;
    }
    case MsgType::kScheduleRequest: {
      std::uint32_t nranks = 0;
      std::uint8_t algo = 0;
      std::uint32_t max_slots = 0;
      std::vector<NodeId> pool;
      if (!reader.str16(out.schedule.app, limits.max_name) ||
          !reader.f64(out.schedule.now) || !reader.u32(nranks) ||
          !reader.u8(algo) || !reader.u64(out.schedule.seed) ||
          !reader.u32(max_slots) ||
          !reader.node_list(pool, limits.max_pool_nodes)) {
        detail = "bad schedule payload";
        return WireError::kMalformed;
      }
      if (nranks == 0 || nranks > limits.max_ranks) {
        detail = "schedule rank count out of range";
        return WireError::kLimit;
      }
      if (algo > static_cast<std::uint8_t>(server::Algo::kRandom)) {
        detail = "unknown schedule algorithm";
        return WireError::kMalformed;
      }
      if (max_slots == 0 || max_slots > (1u << 30)) {
        detail = "schedule slot cap out of range";
        return WireError::kMalformed;
      }
      out.schedule.nranks = nranks;
      out.schedule.algo = static_cast<server::Algo>(algo);
      out.schedule.max_slots_per_node = static_cast<int>(max_slots);
      out.schedule.pool_nodes = std::move(pool);
      break;
    }
    case MsgType::kRemapRequest: {
      std::uint32_t max_slots = 0;
      std::vector<NodeId> pool;
      if (!reader.str16(out.remap.app, limits.max_name) ||
          !reader.f64(out.remap.now) ||
          !read_mapping(reader, limits, out.remap.current) ||
          !reader.f64(out.remap.progress) || !reader.u64(out.remap.seed) ||
          !reader.u32(max_slots) ||
          !reader.node_list(pool, limits.max_pool_nodes) ||
          !reader.u64(out.remap.cost.state_bytes) ||
          !reader.f64(out.remap.cost.restart_overhead) ||
          !reader.f64(out.remap.cost.coordination_overhead)) {
        detail = "bad remap payload";
        return WireError::kMalformed;
      }
      if (out.remap.current.nranks() == 0) {
        detail = "remap current mapping is empty";
        return WireError::kMalformed;
      }
      if (max_slots == 0 || max_slots > (1u << 30)) {
        detail = "remap slot cap out of range";
        return WireError::kMalformed;
      }
      out.remap.max_slots_per_node = static_cast<int>(max_slots);
      out.remap.pool_nodes = std::move(pool);
      break;
    }
    case MsgType::kStatusRequest:
      break;  // empty payload
    default:
      detail = "not a request frame";
      return WireError::kBadType;
  }
  return finish(reader, detail);
}

WireError decode_response(const FrameHeader& header,
                          const std::uint8_t* payload, std::size_t size,
                          const CodecLimits& limits, ResponseFrame& out,
                          std::string& detail) {
  if (!is_response(header.type)) {
    detail = "not a response frame";
    return WireError::kBadType;
  }
  if (size != header.payload_len) {
    detail = "payload size disagrees with header";
    return WireError::kMalformed;
  }
  out = ResponseFrame{};
  out.type = header.type;
  out.request_id = header.request_id;
  WireReader reader(payload, size);
  switch (header.type) {
    case MsgType::kError: {
      std::uint8_t error = 0;
      std::uint8_t reason = 0;
      if (!reader.u8(error) || !reader.u8(reason) ||
          !reader.str16(out.detail, limits.max_detail)) {
        detail = "bad error payload";
        return WireError::kMalformed;
      }
      if (error == 0 ||
          error > static_cast<std::uint8_t>(WireError::kRateLimited)) {
        detail = "unknown error code";
        return WireError::kMalformed;
      }
      if (reason > static_cast<std::uint8_t>(server::FailReason::kWatchdog)) {
        detail = "unknown fail reason";
        return WireError::kMalformed;
      }
      out.error = static_cast<WireError>(error);
      out.fail_reason = static_cast<server::FailReason>(reason);
      break;
    }
    case MsgType::kPredictResponse: {
      if (!read_result_envelope(reader, out) || !reader.f64(out.time)) {
        detail = "bad predict response";
        return WireError::kMalformed;
      }
      break;
    }
    case MsgType::kCompareResponse: {
      std::uint16_t n = 0;
      if (!read_result_envelope(reader, out) || !reader.u16(n)) {
        detail = "bad compare response";
        return WireError::kMalformed;
      }
      if (n == 0 || n > limits.max_candidates) {
        detail = "compare response count out of range";
        return WireError::kLimit;
      }
      out.predicted.reserve(n);
      for (std::uint16_t i = 0; i < n; ++i) {
        double v = 0.0;
        if (!reader.f64(v)) {
          detail = "bad compare response";
          return WireError::kMalformed;
        }
        out.predicted.push_back(v);
      }
      if (!reader.u32(out.best) || out.best >= n) {
        detail = "bad compare response best index";
        return WireError::kMalformed;
      }
      break;
    }
    case MsgType::kScheduleResponse: {
      std::vector<NodeId> assignment;
      if (!read_result_envelope(reader, out) || !reader.f64(out.cost) ||
          !reader.u64(out.evaluations) ||
          !reader.node_list(assignment, limits.max_ranks)) {
        detail = "bad schedule response";
        return WireError::kMalformed;
      }
      out.assignment.reserve(assignment.size());
      for (const NodeId node : assignment) out.assignment.push_back(node.value);
      break;
    }
    case MsgType::kRemapResponse: {
      std::uint8_t beneficial = 0;
      std::vector<NodeId> assignment;
      if (!read_result_envelope(reader, out) || !reader.u8(beneficial) ||
          beneficial > 1 || !reader.f64(out.remaining_current) ||
          !reader.f64(out.remaining_candidate) ||
          !reader.f64(out.migration_cost) || !reader.u64(out.moved_ranks) ||
          !reader.node_list(assignment, limits.max_ranks)) {
        detail = "bad remap response";
        return WireError::kMalformed;
      }
      out.beneficial = beneficial != 0;
      out.assignment.reserve(assignment.size());
      for (const NodeId node : assignment) out.assignment.push_back(node.value);
      break;
    }
    case MsgType::kStatusResponse: {
      if (!read_result_envelope(reader, out) ||
          !reader.str32(out.status_json, limits.max_payload)) {
        detail = "bad status response";
        return WireError::kMalformed;
      }
      break;
    }
    default:
      detail = "not a response frame";
      return WireError::kBadType;
  }
  return finish(reader, detail);
}

void encode_request(const RequestFrame& request,
                    std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  encode_header(out, request.type, request.request_id, 0);
  put_u8(out, static_cast<std::uint8_t>(request.priority));
  put_u32(out, request.deadline_ms);
  switch (request.type) {
    case MsgType::kPredictRequest:
      put_str16(out, request.predict.app);
      put_f64(out, request.predict.now);
      put_mapping(out, request.predict.mapping.assignment());
      break;
    case MsgType::kCompareRequest:
      put_str16(out, request.compare.app);
      put_f64(out, request.compare.now);
      put_u16(out, static_cast<std::uint16_t>(request.compare.candidates.size()));
      for (const Mapping& m : request.compare.candidates) {
        put_mapping(out, m.assignment());
      }
      break;
    case MsgType::kScheduleRequest:
      put_str16(out, request.schedule.app);
      put_f64(out, request.schedule.now);
      put_u32(out, static_cast<std::uint32_t>(request.schedule.nranks));
      put_u8(out, static_cast<std::uint8_t>(request.schedule.algo));
      put_u64(out, request.schedule.seed);
      put_u32(out, static_cast<std::uint32_t>(
                       request.schedule.max_slots_per_node));
      put_node_list(out, request.schedule.pool_nodes);
      break;
    case MsgType::kRemapRequest:
      put_str16(out, request.remap.app);
      put_f64(out, request.remap.now);
      put_mapping(out, request.remap.current.assignment());
      put_f64(out, request.remap.progress);
      put_u64(out, request.remap.seed);
      put_u32(out,
              static_cast<std::uint32_t>(request.remap.max_slots_per_node));
      put_node_list(out, request.remap.pool_nodes);
      put_u64(out, request.remap.cost.state_bytes);
      put_f64(out, request.remap.cost.restart_overhead);
      put_f64(out, request.remap.cost.coordination_overhead);
      break;
    case MsgType::kStatusRequest:
      break;  // empty payload
    default:
      break;  // responses are encoded by encode_response
  }
  patch_payload_len(out, start);
}

void encode_response(const ResponseFrame& response,
                     std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  encode_header(out, response.type, response.request_id, 0);
  if (response.type == MsgType::kError) {
    put_u8(out, static_cast<std::uint8_t>(response.error));
    put_u8(out, static_cast<std::uint8_t>(response.fail_reason));
    put_str16(out, response.detail);
    patch_payload_len(out, start);
    return;
  }
  put_u8(out, result_flags(response));
  put_u64(out, response.snapshot_epoch);
  switch (response.type) {
    case MsgType::kPredictResponse:
      put_f64(out, response.time);
      break;
    case MsgType::kCompareResponse:
      put_u16(out, static_cast<std::uint16_t>(response.predicted.size()));
      for (const double v : response.predicted) put_f64(out, v);
      put_u32(out, response.best);
      break;
    case MsgType::kScheduleResponse: {
      put_f64(out, response.cost);
      put_u64(out, response.evaluations);
      put_u32(out, static_cast<std::uint32_t>(response.assignment.size()));
      for (const std::uint32_t node : response.assignment) put_u32(out, node);
      break;
    }
    case MsgType::kRemapResponse: {
      put_u8(out, response.beneficial ? 1 : 0);
      put_f64(out, response.remaining_current);
      put_f64(out, response.remaining_candidate);
      put_f64(out, response.migration_cost);
      put_u64(out, response.moved_ranks);
      put_u32(out, static_cast<std::uint32_t>(response.assignment.size()));
      for (const std::uint32_t node : response.assignment) put_u32(out, node);
      break;
    }
    case MsgType::kStatusResponse:
      put_str32(out, response.status_json);
      break;
    default:
      break;
  }
  patch_payload_len(out, start);
}

ResponseFrame make_error(std::uint64_t request_id, WireError error,
                         std::string detail, server::FailReason reason,
                         const CodecLimits& limits) {
  ResponseFrame response;
  response.type = MsgType::kError;
  response.request_id = request_id;
  response.error = error;
  response.fail_reason = reason;
  if (detail.size() > limits.max_detail) detail.resize(limits.max_detail);
  response.detail = std::move(detail);
  return response;
}

ResponseFrame response_from_result(std::uint64_t request_id,
                                   MsgType request_type,
                                   const server::JobResult& result,
                                   const CodecLimits& limits) {
  using server::JobState;
  if (result.state != JobState::kDone) {
    WireError error = WireError::kFailed;
    if (result.state == JobState::kRejected) error = WireError::kRejected;
    if (result.state == JobState::kCancelled) error = WireError::kCancelled;
    return make_error(request_id, error, result.detail, result.fail_reason,
                      limits);
  }
  ResponseFrame response;
  response.type = response_for(request_type);
  response.request_id = request_id;
  response.degraded = result.degraded;
  response.cache_hit = result.cache_hit;
  response.snapshot_epoch = result.snapshot_epoch;
  switch (request_type) {
    case MsgType::kPredictRequest:
      response.time = result.prediction.time;
      break;
    case MsgType::kCompareRequest:
      response.predicted.assign(result.comparison.predicted.begin(),
                                result.comparison.predicted.end());
      response.best = static_cast<std::uint32_t>(result.comparison.best);
      break;
    case MsgType::kScheduleRequest: {
      response.cost = result.schedule.cost;
      response.evaluations =
          static_cast<std::uint64_t>(result.schedule.evaluations);
      const std::vector<NodeId>& nodes =
          result.schedule.mapping.assignment();
      response.assignment.reserve(nodes.size());
      for (const NodeId node : nodes) response.assignment.push_back(node.value);
      break;
    }
    case MsgType::kRemapRequest: {
      response.beneficial = result.remap.beneficial;
      response.remaining_current = result.remap.remaining_current;
      response.remaining_candidate = result.remap.remaining_candidate;
      response.migration_cost = result.remap.migration_cost;
      response.moved_ranks =
          static_cast<std::uint64_t>(result.remap.moved_ranks);
      const std::vector<NodeId>& nodes = result.remap_candidate.assignment();
      response.assignment.reserve(nodes.size());
      for (const NodeId node : nodes) response.assignment.push_back(node.value);
      break;
    }
    default:
      break;  // status responses are built by the net server, not from jobs
  }
  return response;
}

}  // namespace cbes::net
