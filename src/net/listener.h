// Listening socket for the wire front-end: bind + listen at construction
// (throwing NetError with a clear message on failure — the CLI turns that
// into a nonzero exit), then nonblocking accept4 bursts driven by the event
// loop.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace cbes::net {

class Listener {
 public:
  /// Binds `host:port` (IPv4 dotted quad; port 0 picks an ephemeral port)
  /// and listens. Throws NetError on resolve/bind/listen failure.
  Listener(const std::string& host, std::uint16_t port);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  /// The bound port (the kernel's pick when constructed with port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const std::string& host() const noexcept { return host_; }

  /// Accepts until EAGAIN; each accepted fd arrives nonblocking with
  /// TCP_NODELAY set, together with its "ip:port" peer name. Call from the
  /// loop thread when the listening fd is readable.
  void accept_ready(
      const std::function<void(int fd, std::string peer)>& on_accept);

 private:
  std::string host_;
  std::uint16_t port_ = 0;
  int fd_ = -1;
};

}  // namespace cbes::net
