// The byte-level seam between the wire front-end and the socket.
//
// Connection (server side) and WireClient (client side) never call
// ::read/::write directly; they go through a Transport, so a test — or an
// adversarial load generator — can interpose a FaultyTransport that injects
// the whole bestiary of hostile-network behavior *deterministically*:
// partial reads/writes, EAGAIN storms, mid-frame connection resets, stalls,
// and short-write flushes. The real SocketTransport sends with MSG_NOSIGNAL,
// so a peer that closes mid-write yields EPIPE (an errno the caller handles)
// instead of a process-killing SIGPIPE.
//
// Determinism contract: every FaultyTransport decision is a pure function of
// (seed, operation index). Two transports with the same seed fed the same
// operation sequence inject byte-identical fault histories, which is what
// lets a socket-chaos run replay bit-for-bit and a failing run bisect by
// seed. The injected errno values are exactly the ones a real kernel
// produces, so the calling state machines cannot tell chaos from weather.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>

namespace cbes::fault {
class FaultPlan;
}  // namespace cbes::fault

namespace cbes::net {

/// Byte I/O over an fd with the kernel's contract: > 0 bytes moved, 0 = peer
/// closed (reads only), -1 with errno set. Implementations must be usable
/// from one thread at a time per fd but may be shared across fds (the
/// stateless SocketTransport is; a FaultyTransport's op counter is shared
/// state, so give each connection-under-test its own or accept that the
/// fault schedule interleaves).
class Transport {
 public:
  virtual ~Transport() = default;
  [[nodiscard]] virtual ssize_t read(int fd, void* buf, std::size_t len) = 0;
  [[nodiscard]] virtual ssize_t write(int fd, const void* buf,
                                      std::size_t len) = 0;
};

/// The real socket: ::recv / ::send(MSG_NOSIGNAL). Stateless — use the
/// shared instance().
class SocketTransport final : public Transport {
 public:
  [[nodiscard]] ssize_t read(int fd, void* buf, std::size_t len) override;
  [[nodiscard]] ssize_t write(int fd, const void* buf,
                              std::size_t len) override;

  [[nodiscard]] static SocketTransport& instance() noexcept;
};

/// Tuning for one FaultyTransport. All probabilities are per operation and
/// default to zero, so a default-constructed config is a transparent
/// pass-through.
struct FaultyTransportConfig {
  std::uint64_t seed = 1;
  /// P(truncate a read to a random prefix of what the kernel returned).
  double partial_read = 0.0;
  /// P(truncate a write to a random prefix of what was offered).
  double partial_write = 0.0;
  /// P(start an EAGAIN storm instead of a read/write): the operation and the
  /// next `eagain_burst - 1` of the same kind fail with EAGAIN.
  double eagain_read = 0.0;
  double eagain_write = 0.0;
  std::size_t eagain_burst = 3;
  /// P(inject ECONNRESET): the fd is poisoned — every later operation on
  /// this transport also fails with ECONNRESET, like a real dead socket.
  double reset = 0.0;
  /// Injected resets allowed in total (0 = unlimited). Lets a chaos run mix
  /// "one mid-frame reset" into otherwise-recoverable noise.
  std::size_t max_resets = 0;
  /// P(sleep `stall_ms` before the operation proceeds) — a slow peer. Only
  /// for *client-side* transports: never stall an event-loop thread.
  double stall = 0.0;
  std::uint32_t stall_ms = 20;
  /// Nonzero: no write moves more than this many bytes per call (dribble /
  /// short-write flushes), independent of partial_write.
  std::size_t short_write_cap = 0;

  /// Derives a config from the socket-fault events of a chaos plan: each
  /// kSocket* event contributes its magnitude as the matching probability
  /// (max over events of the kind); kSocketStall magnitude is seconds.
  [[nodiscard]] static FaultyTransportConfig from_plan(
      const fault::FaultPlan& plan, std::uint64_t seed);
};

/// What a FaultyTransport did so far (monotone; same-seed runs match).
struct TransportFaultStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t partial_reads = 0;
  std::uint64_t partial_writes = 0;
  std::uint64_t eagains = 0;
  std::uint64_t resets = 0;
  std::uint64_t stalls = 0;

  [[nodiscard]] std::uint64_t injected() const noexcept {
    return partial_reads + partial_writes + eagains + resets + stalls;
  }
  friend bool operator==(const TransportFaultStats&,
                         const TransportFaultStats&) = default;
};

/// Seeded fault-injecting decorator over another Transport (default: the
/// real socket). Not thread-safe: one owner at a time, like the connection
/// state machines it feeds.
class FaultyTransport final : public Transport {
 public:
  explicit FaultyTransport(FaultyTransportConfig config,
                           Transport* base = nullptr);

  [[nodiscard]] ssize_t read(int fd, void* buf, std::size_t len) override;
  [[nodiscard]] ssize_t write(int fd, const void* buf,
                              std::size_t len) override;

  [[nodiscard]] const TransportFaultStats& stats() const noexcept {
    return stats_;
  }
  /// Re-arms a poisoned (reset-injected) transport — a reconnecting client
  /// reuses one transport across its connection attempts.
  void heal() noexcept { poisoned_ = false; }
  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }

 private:
  /// Next uniform double in [0, 1) of the decision stream (splitmix64-fed
  /// xoshiro is overkill here; one splitmix64 stream is plenty and keeps the
  /// decision history a pure function of seed and draw index).
  [[nodiscard]] double draw() noexcept;

  FaultyTransportConfig config_;
  Transport* base_;
  std::uint64_t state_;
  TransportFaultStats stats_;
  std::size_t eagain_reads_left_ = 0;
  std::size_t eagain_writes_left_ = 0;
  bool poisoned_ = false;
};

}  // namespace cbes::net
