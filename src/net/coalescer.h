// Request coalescing for the wire front-end: identical in-flight predictions
// — same profile, same mapping, same monitor snapshot epoch — are folded into
// one server job whose answer fans back out to every waiter.
//
// The key is (profile-hash, mapping-hash, snapshot-epoch): exactly the
// EvalCache identity, so two coalesced requests are ones the cache would have
// answered identically anyway — coalescing collapses the *in-flight* window
// the cache cannot see (the duplicate arrives while the first job is still
// computing). Only predictions coalesce: schedule/remap answers depend on the
// request seed, and compare is a batch of predictions with its own shape.
//
// Single-threaded by design: every call happens on the event-loop thread
// (submission and the posted completion fan-out both run there), so there is
// no lock. The leader's priority and deadline govern the shared job; a
// follower with a tighter deadline still gets the leader's answer — the
// trade documented in DESIGN.md §6.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace cbes::net {

class Coalescer {
 public:
  struct Key {
    std::uint64_t profile_hash = 0;
    std::uint64_t mapping_hash = 0;
    std::uint64_t epoch = 0;

    [[nodiscard]] bool operator==(const Key&) const noexcept = default;
  };

  /// The job currently in flight for `key`, or 0 when there is none (the
  /// caller becomes the leader and must publish()).
  [[nodiscard]] std::uint64_t find(const Key& key) const;

  /// Registers `job_id` as the in-flight job serving `key`.
  void publish(const Key& key, std::uint64_t job_id);

  /// Removes the entry for `job_id` (its job completed); unknown ids are
  /// fine — not every job coalesces.
  void retire(std::uint64_t job_id);

  [[nodiscard]] std::size_t in_flight() const noexcept {
    return by_key_.size();
  }

 private:
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& key) const noexcept {
      // FNV-1a over the three words.
      std::uint64_t h = 0xcbf29ce484222325ULL;
      for (const std::uint64_t w :
           {key.profile_hash, key.mapping_hash, key.epoch}) {
        for (int i = 0; i < 8; ++i) {
          h ^= (w >> (8 * i)) & 0xFF;
          h *= 0x100000001b3ULL;
        }
      }
      return static_cast<std::size_t>(h);
    }
  };

  std::unordered_map<Key, std::uint64_t, KeyHash> by_key_;
  std::unordered_map<std::uint64_t, Key> by_job_;
};

}  // namespace cbes::net
