#include "net/connection.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "common/check.h"
#include "net/transport.h"

namespace cbes::net {

Connection::Connection(EventLoop& loop, int fd, std::uint64_t id,
                       std::string peer, const ConnectionConfig& config,
                       NetCounters& counters, Hooks hooks)
    : loop_(loop),
      fd_(fd),
      id_(id),
      peer_(std::move(peer)),
      config_(config),
      transport_(config.transport != nullptr ? *config.transport
                                             : SocketTransport::instance()),
      counters_(counters),
      hooks_(std::move(hooks)),
      created_(std::chrono::steady_clock::now()),
      last_activity_(created_),
      rate_tokens_(config.rate_limit_burst),
      rate_refilled_(created_),
      last_write_progress_(created_) {
  CBES_CHECK_MSG(fd_ >= 0, "Connection: negative fd");
}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

void Connection::start() {
  interest_ = EPOLLIN;
  loop_.add_fd(fd_, interest_,
               [this](std::uint32_t events) { handle_io(events); });
}

void Connection::handle_io(std::uint32_t events) {
  if (state_ == State::kClosed) return;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    close("socket error/hangup");
    return;
  }
  if ((events & EPOLLOUT) != 0) on_writable();
  if (state_ == State::kClosed) return;
  if ((events & EPOLLIN) != 0) on_readable();
}

void Connection::on_readable() {
  if (state_ != State::kOpen) return;
  for (;;) {
    const std::size_t old_size = read_buf_.size();
    read_buf_.resize(old_size + config_.read_chunk);
    const ssize_t n =
        transport_.read(fd_, read_buf_.data() + old_size, config_.read_chunk);
    if (n > 0) {
      read_buf_.resize(old_size + static_cast<std::size_t>(n));
      counters_.rx_bytes.fetch_add(static_cast<std::uint64_t>(n),
                                   std::memory_order_relaxed);
      last_activity_ = std::chrono::steady_clock::now();
      parse_frames();
      if (state_ != State::kOpen) return;
      if (static_cast<std::size_t>(n) < config_.read_chunk) break;
      continue;
    }
    read_buf_.resize(old_size);
    if (n == 0) {
      close("peer closed");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close("read error");
    return;
  }
  update_interest();
}

void Connection::parse_frames() {
  bool consumed_frame = false;
  for (;;) {
    if (inflight_ >= config_.max_inflight) break;  // reads pause below
    const std::size_t buffered = read_buf_.size() - read_off_;
    if (buffered < kHeaderBytes) break;
    const std::uint8_t* base = read_buf_.data() + read_off_;
    FrameHeader header;
    const WireError header_error =
        decode_header(base, buffered, config_.limits, header);
    if (header_error != WireError::kNone) {
      // A bad header means the stream cannot be re-synchronized: report,
      // answer with a typed error frame, and close once it flushes. The
      // request id is best-effort (parsed before validation).
      protocol_error(header.request_id, header_error,
                     std::string(wire_error_name(header_error)));
      return;
    }
    const std::size_t frame_bytes = kHeaderBytes + header.payload_len;
    if (buffered < frame_bytes) break;  // wait for the rest of the payload
    RequestFrame request;
    std::string detail;
    const WireError body_error =
        decode_request(header, base + kHeaderBytes, header.payload_len,
                       config_.limits, request, detail);
    if (body_error != WireError::kNone) {
      protocol_error(header.request_id, body_error, std::move(detail));
      return;
    }
    read_off_ += frame_bytes;
    consumed_frame = true;
    counters_.frames_rx.fetch_add(1, std::memory_order_relaxed);
    if (!take_rate_token()) {
      // Over the per-connection budget: the frame is consumed and answered
      // with a typed error so a well-behaved client can back off, but it
      // never reaches the job broker.
      counters_.rate_limited.fetch_add(1, std::memory_order_relaxed);
      send_error(request.request_id, WireError::kRateLimited,
                 "per-connection rate limit exceeded");
      if (state_ != State::kOpen) return;
      continue;
    }
    hooks_.on_request(*this, std::move(request));
    if (state_ != State::kOpen) return;
  }
  // Slowloris timer: a partial frame sitting in the buffer is only suspect
  // while no complete frame lands — every consumed frame is progress.
  if (read_buf_.size() == read_off_) {
    partial_frame_pending_ = false;
  } else if (consumed_frame || !partial_frame_pending_) {
    partial_frame_pending_ = true;
    partial_frame_since_ = std::chrono::steady_clock::now();
  }
  // Compact the consumed prefix so the buffer never grows past one partial
  // frame plus whatever a single read burst appended.
  if (read_off_ > 0) {
    read_buf_.erase(read_buf_.begin(),
                    read_buf_.begin() + static_cast<std::ptrdiff_t>(read_off_));
    read_off_ = 0;
  }
}

bool Connection::take_rate_token() {
  if (config_.rate_limit_rps <= 0.0) return true;
  const auto now = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(now - rate_refilled_).count();
  rate_refilled_ = now;
  rate_tokens_ = std::min(config_.rate_limit_burst,
                          rate_tokens_ + elapsed * config_.rate_limit_rps);
  if (rate_tokens_ < 1.0) return false;
  rate_tokens_ -= 1.0;
  return true;
}

void Connection::protocol_error(std::uint64_t request_id, WireError error,
                                std::string detail) {
  counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
  if (hooks_.on_protocol_error) hooks_.on_protocol_error(*this, error, detail);
  send_error(request_id, error, std::move(detail));
  shutdown_after_flush("protocol error");
}

void Connection::send(const ResponseFrame& response) {
  if (state_ == State::kClosed) return;
  if (write_buf_.size() == write_off_) {
    // Write-stall timer starts when the buffer goes nonempty.
    last_write_progress_ = std::chrono::steady_clock::now();
  }
  encode_response(response, write_buf_);
  counters_.frames_tx.fetch_add(1, std::memory_order_relaxed);
  flush();
  if (state_ == State::kClosed) return;
  if (write_buf_.size() - write_off_ >= config_.write_high_watermark) {
    enter_backpressure();
  }
  update_interest();
}

void Connection::send_error(std::uint64_t request_id, WireError error,
                            std::string detail, server::FailReason reason) {
  send(make_error(request_id, error, std::move(detail), reason,
                  config_.limits));
}

void Connection::shutdown_after_flush(const char* reason) {
  if (state_ != State::kOpen) return;
  state_ = State::kClosing;
  if (write_buf_.size() == write_off_) {
    close(reason);
    return;
  }
  update_interest();
}

void Connection::close(const char* reason) {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  if (backpressured_) {
    backpressured_ = false;
    counters_.backpressured_now.fetch_sub(1, std::memory_order_relaxed);
  }
  loop_.del_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  if (hooks_.on_closed) hooks_.on_closed(*this, reason);
}

void Connection::on_writable() {
  flush();
  if (state_ == State::kClosed) return;
  if (state_ == State::kClosing && write_buf_.size() == write_off_) {
    close("flushed");
    return;
  }
  maybe_exit_backpressure();
  update_interest();
}

void Connection::flush() {
  while (write_off_ < write_buf_.size()) {
    const ssize_t n = transport_.write(fd_, write_buf_.data() + write_off_,
                                       write_buf_.size() - write_off_);
    if (n > 0) {
      write_off_ += static_cast<std::size_t>(n);
      counters_.tx_bytes.fetch_add(static_cast<std::uint64_t>(n),
                                   std::memory_order_relaxed);
      last_activity_ = std::chrono::steady_clock::now();
      last_write_progress_ = last_activity_;
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close("write error");
    return;
  }
  if (write_off_ == write_buf_.size()) {
    write_buf_.clear();
    write_off_ = 0;
  } else if (write_off_ >= config_.write_low_watermark) {
    write_buf_.erase(
        write_buf_.begin(),
        write_buf_.begin() + static_cast<std::ptrdiff_t>(write_off_));
    write_off_ = 0;
  }
}

void Connection::job_started() {
  ++inflight_;
  if (state_ == State::kOpen) update_interest();
}

void Connection::job_finished() {
  CBES_CHECK_MSG(inflight_ > 0, "job_finished without job_started");
  --inflight_;
  if (state_ == State::kOpen) {
    schedule_parse_kick();
    update_interest();
  }
}

void Connection::schedule_parse_kick() {
  if (kick_scheduled_) return;
  if (state_ != State::kOpen) return;
  if (inflight_ >= config_.max_inflight || backpressured_) return;
  if (read_buf_.size() - read_off_ < kHeaderBytes) return;
  kick_scheduled_ = true;
  // Lifetime: connection destruction is itself a posted task queued strictly
  // after this one (see the owner's on_closed), so `this` is valid whenever
  // the kick runs; a kick that outlives the loop is destroyed unrun.
  loop_.post([this] {
    kick_scheduled_ = false;
    if (state_ != State::kOpen) return;
    parse_frames();
    if (state_ == State::kOpen) update_interest();
  });
}

bool Connection::idle_expired(
    std::chrono::steady_clock::time_point now) const noexcept {
  if (config_.idle_timeout.count() <= 0) return false;
  if (state_ != State::kOpen) return false;
  if (inflight_ > 0) return false;  // quiet is fine while work is running
  return now - last_activity_ >= config_.idle_timeout;
}

const char* Connection::slow_expired(
    std::chrono::steady_clock::time_point now) const noexcept {
  if (state_ == State::kClosed) return nullptr;
  if (config_.write_stall_timeout.count() > 0 &&
      write_off_ < write_buf_.size() &&
      now - last_write_progress_ >= config_.write_stall_timeout) {
    return "write stall";
  }
  if (config_.header_timeout.count() > 0 && partial_frame_pending_ &&
      now - partial_frame_since_ >= config_.header_timeout) {
    return "header dribble";
  }
  return nullptr;
}

void Connection::enter_backpressure() {
  if (backpressured_) return;
  backpressured_ = true;
  counters_.backpressure_events.fetch_add(1, std::memory_order_relaxed);
  counters_.backpressured_now.fetch_add(1, std::memory_order_relaxed);
}

void Connection::maybe_exit_backpressure() {
  if (!backpressured_) return;
  if (write_buf_.size() - write_off_ > config_.write_low_watermark) return;
  backpressured_ = false;
  counters_.backpressured_now.fetch_sub(1, std::memory_order_relaxed);
  schedule_parse_kick();  // frames may have buffered while reads were paused
}

void Connection::update_interest() {
  if (state_ == State::kClosed) return;
  std::uint32_t want = 0;
  const bool reads_paused = backpressured_ ||
                            inflight_ >= config_.max_inflight ||
                            state_ != State::kOpen;
  if (!reads_paused) want |= EPOLLIN;
  if (write_off_ < write_buf_.size()) want |= EPOLLOUT;
  if (want != interest_) {
    interest_ = want;
    loop_.mod_fd(fd_, want);
  }
}

}  // namespace cbes::net
