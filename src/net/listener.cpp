#include "net/listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/net_error.h"

namespace cbes::net {

namespace {

std::string peer_name(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = {};
  if (::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip)) == nullptr) {
    return "?";
  }
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

Listener::Listener(const std::string& host, std::uint16_t port)
    : host_(host) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("listen " + host + ": not an IPv4 address");
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw NetError("socket: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string reason = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw NetError("bind " + host + ":" + std::to_string(port) + ": " +
                   reason);
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw NetError("listen " + host + ":" + std::to_string(port) + ": " +
                   reason);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw NetError("getsockname: " + reason);
  }
  port_ = ntohs(bound.sin_port);
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

void Listener::accept_ready(
    const std::function<void(int, std::string)>& on_accept) {
  for (;;) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd =
        ::accept4(fd_, reinterpret_cast<sockaddr*>(&peer), &len,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Transient resource exhaustion (EMFILE et al.): stop the burst; the
      // backlog keeps the connection until fds free up.
      return;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    on_accept(fd, peer_name(peer));
  }
}

}  // namespace cbes::net
