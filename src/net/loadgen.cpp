#include "net/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/check.h"
#include "common/rng.h"
#include "net/net_error.h"

namespace cbes::net {

namespace {

[[nodiscard]] double quantile_ms(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

WireClient::WireClient(const std::string& host, std::uint16_t port,
                       CodecLimits limits)
    : limits_(limits) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("connect " + host + ": not an IPv4 address");
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw NetError("socket: " + std::string(std::strerror(errno)));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string reason = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw NetError("connect " + host + ":" + std::to_string(port) + ": " +
                   reason);
  }
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

WireClient::~WireClient() {
  if (fd_ >= 0) ::close(fd_);
}

void WireClient::send(const RequestFrame& request) {
  std::vector<std::uint8_t> frame;
  encode_request(request, frame);
  send_raw(frame);
}

void WireClient::send_raw(const std::vector<std::uint8_t>& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    throw NetError("send: " + std::string(std::strerror(errno)));
  }
  tx_bytes_ += bytes.size();
}

ResponseFrame WireClient::recv() {
  for (;;) {
    const std::size_t buffered = buf_.size() - off_;
    if (buffered >= kHeaderBytes) {
      FrameHeader header;
      const WireError header_error =
          decode_header(buf_.data() + off_, buffered, limits_, header);
      if (header_error != WireError::kNone) {
        throw NetError("recv: bad frame header (" +
                       std::string(wire_error_name(header_error)) + ")");
      }
      const std::size_t frame_bytes = kHeaderBytes + header.payload_len;
      if (buffered >= frame_bytes) {
        ResponseFrame response;
        std::string detail;
        const WireError body_error = decode_response(
            header, buf_.data() + off_ + kHeaderBytes, header.payload_len,
            limits_, response, detail);
        if (body_error != WireError::kNone) {
          throw NetError("recv: bad response payload (" + detail + ")");
        }
        off_ += frame_bytes;
        if (off_ == buf_.size()) {
          buf_.clear();
          off_ = 0;
        }
        return response;
      }
    }
    const std::size_t old_size = buf_.size();
    buf_.resize(old_size + 64 * 1024);
    const ssize_t n = ::read(fd_, buf_.data() + old_size, 64 * 1024);
    if (n > 0) {
      buf_.resize(old_size + static_cast<std::size_t>(n));
      rx_bytes_ += static_cast<std::uint64_t>(n);
      continue;
    }
    buf_.resize(old_size);
    if (n == 0) throw NetError("recv: connection closed by server");
    if (errno == EINTR) continue;
    throw NetError("recv: " + std::string(std::strerror(errno)));
  }
}

ResponseFrame WireClient::call(const RequestFrame& request) {
  send(request);
  return recv();
}

namespace {

/// Per-thread run state merged into the report at the end.
struct ThreadResult {
  LoadGenReport partial;
  std::vector<double> latencies_ms;
};

/// Mixes one answered double into the checksum, keyed by request id (and
/// position, for compare vectors) so identical answers cannot cancel.
void mix_answer(std::uint64_t key, double value, LoadGenReport& report) {
  report.answer_checksum +=
      std::bit_cast<std::uint64_t>(value) ^ (key * 0x9E3779B97F4A7C15ULL);
}

void classify(const ResponseFrame& response, LoadGenReport& report) {
  if (response.type != MsgType::kError) {
    ++report.completed;
    if (response.coalesced) ++report.coalesced;
    if (response.type == MsgType::kPredictResponse) {
      mix_answer(response.request_id, response.time, report);
    }
    if (response.type == MsgType::kCompareResponse) {
      for (std::size_t i = 0; i < response.predicted.size(); ++i) {
        mix_answer(response.request_id + (i + 1), response.predicted[i],
                   report);
      }
    }
    return;
  }
  switch (response.error) {
    case WireError::kRejected:
      ++report.rejected;
      break;
    case WireError::kCancelled:
      ++report.cancelled;
      break;
    case WireError::kFailed:
      if (response.fail_reason == server::FailReason::kShed) {
        ++report.shed;
      } else {
        ++report.failed;
      }
      break;
    default:
      ++report.failed;
      break;
  }
}

void loadgen_thread(const LoadGenOptions& options, std::size_t index,
                    ThreadResult& out) {
  using Clock = std::chrono::steady_clock;
  LoadGenReport& report = out.partial;
  try {
    WireClient client(options.host, options.port, options.limits);
    Rng rng(options.seed + 0x9E3779B97F4A7C15ULL * (index + 1));
    const Clock::time_point start = Clock::now();
    const Clock::time_point stop_offering =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(options.duration_s));
    std::unordered_map<std::uint64_t, Clock::time_point> outstanding;
    std::uint64_t next_id = 1;

    const auto can_offer = [&] {
      if (options.requests_per_connection != 0) {
        return report.submitted < options.requests_per_connection;
      }
      return Clock::now() < stop_offering;
    };
    const auto offer_one = [&] {
      RequestFrame request;
      request.request_id = next_id++;
      request.deadline_ms = options.deadline_ms;
      request.priority =
          options.mixed_priority
              ? static_cast<server::Priority>(request.request_id %
                                              server::kPriorityClasses)
              : server::Priority::kNormal;
      const bool compare = options.mappings.size() > 1 &&
                           rng.uniform() < options.compare_fraction;
      if (compare) {
        request.type = MsgType::kCompareRequest;
        request.compare.app = options.app;
        request.compare.now = options.now;
        request.compare.candidates = options.mappings;
      } else {
        request.type = MsgType::kPredictRequest;
        request.predict.app = options.app;
        request.predict.now = options.now;
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniform() * static_cast<double>(options.mappings.size()));
        request.predict.mapping =
            options.mappings[std::min(pick, options.mappings.size() - 1)];
      }
      client.send(request);
      outstanding.emplace(request.request_id, Clock::now());
      ++report.submitted;
    };
    const auto settle_one = [&] {
      const ResponseFrame response = client.recv();
      const Clock::time_point done = Clock::now();
      const auto it = outstanding.find(response.request_id);
      if (it != outstanding.end()) {
        out.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(done - it->second)
                .count());
        outstanding.erase(it);
      }
      classify(response, report);
    };

    while (can_offer()) {
      while (outstanding.size() < options.pipeline && can_offer()) {
        offer_one();
      }
      if (outstanding.empty()) break;
      settle_one();
    }
    while (!outstanding.empty()) settle_one();
    report.elapsed_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    report.tx_bytes = client.tx_bytes();
    report.rx_bytes = client.rx_bytes();
  } catch (const NetError&) {
    ++report.transport_errors;
  }
}

}  // namespace

LoadGenReport run_loadgen(const LoadGenOptions& options) {
  CBES_CHECK_MSG(!options.mappings.empty(), "loadgen needs candidate mappings");
  CBES_CHECK_MSG(options.connections >= 1, "loadgen needs a connection");
  CBES_CHECK_MSG(options.pipeline >= 1, "loadgen needs pipeline depth >= 1");
  std::vector<ThreadResult> results(options.connections);
  std::vector<std::thread> threads;
  threads.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    threads.emplace_back(
        [&options, i, &results] { loadgen_thread(options, i, results[i]); });
  }
  for (std::thread& t : threads) t.join();

  LoadGenReport report;
  std::vector<double> latencies;
  for (const ThreadResult& r : results) {
    report.submitted += r.partial.submitted;
    report.completed += r.partial.completed;
    report.coalesced += r.partial.coalesced;
    report.rejected += r.partial.rejected;
    report.shed += r.partial.shed;
    report.cancelled += r.partial.cancelled;
    report.failed += r.partial.failed;
    report.transport_errors += r.partial.transport_errors;
    report.tx_bytes += r.partial.tx_bytes;
    report.rx_bytes += r.partial.rx_bytes;
    report.elapsed_s = std::max(report.elapsed_s, r.partial.elapsed_s);
    report.answer_checksum += r.partial.answer_checksum;
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  report.p50_ms = quantile_ms(latencies, 0.50);
  report.p99_ms = quantile_ms(latencies, 0.99);
  if (report.elapsed_s > 0.0) {
    report.offered_rps =
        static_cast<double>(report.submitted) / report.elapsed_s;
    report.goodput_rps =
        static_cast<double>(report.completed) / report.elapsed_s;
  }
  return report;
}

}  // namespace cbes::net
