#include "net/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/check.h"
#include "common/rng.h"
#include "net/net_client.h"
#include "net/net_error.h"
#include "net/transport.h"

namespace cbes::net {

namespace {

[[nodiscard]] double quantile_ms(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

Adversary parse_adversary(const std::string& name) {
  if (name == "dribble") return Adversary::kDribble;
  if (name == "stall") return Adversary::kStall;
  if (name == "garbage") return Adversary::kGarbage;
  if (name == "disconnect") return Adversary::kDisconnect;
  if (name == "mix") return Adversary::kMix;
  if (name == "none") return Adversary::kNone;
  throw ContractError("unknown adversarial mode '" + name +
                      "' (want dribble|stall|garbage|disconnect|mix)");
}

const char* adversary_name(Adversary a) noexcept {
  switch (a) {
    case Adversary::kNone: return "none";
    case Adversary::kDribble: return "dribble";
    case Adversary::kStall: return "stall";
    case Adversary::kGarbage: return "garbage";
    case Adversary::kDisconnect: return "disconnect";
    case Adversary::kMix: return "mix";
  }
  return "?";
}

WireClient::WireClient(const std::string& host, std::uint16_t port,
                       CodecLimits limits, Transport* transport)
    : limits_(limits),
      transport_(transport != nullptr ? transport
                                      : &SocketTransport::instance()) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("connect " + host + ": not an IPv4 address");
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw NetError("socket: " + std::string(std::strerror(errno)));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string reason = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw NetError("connect " + host + ":" + std::to_string(port) + ": " +
                   reason);
  }
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

WireClient::~WireClient() {
  if (fd_ >= 0) ::close(fd_);
}

void WireClient::send(const RequestFrame& request) {
  std::vector<std::uint8_t> frame;
  encode_request(request, frame);
  send_raw(frame);
}

void WireClient::send_raw(const std::vector<std::uint8_t>& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        transport_->write(fd_, bytes.data() + sent, bytes.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    // Blocking socket: EAGAIN only arrives from an injected chaos storm.
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    throw NetError("send: " + std::string(std::strerror(errno)));
  }
  tx_bytes_ += bytes.size();
}

ResponseFrame WireClient::recv() {
  for (;;) {
    const std::size_t buffered = buf_.size() - off_;
    if (buffered >= kHeaderBytes) {
      FrameHeader header;
      const WireError header_error =
          decode_header(buf_.data() + off_, buffered, limits_, header);
      if (header_error != WireError::kNone) {
        throw NetError("recv: bad frame header (" +
                       std::string(wire_error_name(header_error)) + ")");
      }
      const std::size_t frame_bytes = kHeaderBytes + header.payload_len;
      if (buffered >= frame_bytes) {
        ResponseFrame response;
        std::string detail;
        const WireError body_error = decode_response(
            header, buf_.data() + off_ + kHeaderBytes, header.payload_len,
            limits_, response, detail);
        if (body_error != WireError::kNone) {
          throw NetError("recv: bad response payload (" + detail + ")");
        }
        off_ += frame_bytes;
        if (off_ == buf_.size()) {
          buf_.clear();
          off_ = 0;
        }
        return response;
      }
    }
    const std::size_t old_size = buf_.size();
    buf_.resize(old_size + 64 * 1024);
    const ssize_t n = transport_->read(fd_, buf_.data() + old_size, 64 * 1024);
    if (n > 0) {
      buf_.resize(old_size + static_cast<std::size_t>(n));
      rx_bytes_ += static_cast<std::uint64_t>(n);
      continue;
    }
    buf_.resize(old_size);
    if (n == 0) throw NetError("recv: connection closed by server");
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    throw NetError("recv: " + std::string(std::strerror(errno)));
  }
}

ResponseFrame WireClient::call(const RequestFrame& request) {
  send(request);
  return recv();
}

namespace {

/// Per-thread run state merged into the report at the end.
struct ThreadResult {
  LoadGenReport partial;
  std::vector<double> latencies_ms;
};

/// Mixes one answered double into the checksum, keyed by request id (and
/// position, for compare vectors) so identical answers cannot cancel.
void mix_answer(std::uint64_t key, double value, LoadGenReport& report) {
  report.answer_checksum +=
      std::bit_cast<std::uint64_t>(value) ^ (key * 0x9E3779B97F4A7C15ULL);
}

void classify(const ResponseFrame& response, LoadGenReport& report) {
  if (response.type != MsgType::kError) {
    ++report.completed;
    if (response.coalesced) ++report.coalesced;
    if (response.type == MsgType::kPredictResponse) {
      mix_answer(response.request_id, response.time, report);
    }
    if (response.type == MsgType::kCompareResponse) {
      for (std::size_t i = 0; i < response.predicted.size(); ++i) {
        mix_answer(response.request_id + (i + 1), response.predicted[i],
                   report);
      }
    }
    return;
  }
  switch (response.error) {
    case WireError::kRejected:
      ++report.rejected;
      break;
    case WireError::kCancelled:
      ++report.cancelled;
      break;
    case WireError::kRateLimited:
      ++report.rate_limited;
      break;
    case WireError::kShutdown:
      ++report.shutdown;
      break;
    case WireError::kFailed:
      if (response.fail_reason == server::FailReason::kShed) {
        ++report.shed;
      } else {
        ++report.failed;
      }
      break;
    default:
      ++report.failed;
      break;
  }
}

void loadgen_thread(const LoadGenOptions& options, std::size_t index,
                    ThreadResult& out) {
  using Clock = std::chrono::steady_clock;
  LoadGenReport& report = out.partial;
  try {
    // Per-thread chaos transport: seeded independently so N connections see
    // N independent fault streams, all replayable from options.seed.
    std::unique_ptr<FaultyTransport> chaos;
    if (options.chaos_partial > 0.0 || options.chaos_eagain > 0.0 ||
        options.chaos_reset > 0.0) {
      FaultyTransportConfig fault_config;
      fault_config.seed = derive_seed(options.seed, 0xC7A05 + index);
      fault_config.partial_read = options.chaos_partial;
      fault_config.partial_write = options.chaos_partial;
      fault_config.eagain_read = options.chaos_eagain;
      fault_config.eagain_write = options.chaos_eagain;
      fault_config.reset = options.chaos_reset;
      fault_config.max_resets = options.chaos_max_resets;
      chaos = std::make_unique<FaultyTransport>(fault_config);
    }
    NetClientConfig client_config;
    client_config.endpoints =
        options.endpoints.empty()
            ? std::vector<Endpoint>{{options.host, options.port}}
            : options.endpoints;
    client_config.limits = options.limits;
    client_config.seed = derive_seed(options.seed, 0xC11E27 + index);
    client_config.transport = chaos.get();
    NetClient client(client_config);
    Rng rng(options.seed + 0x9E3779B97F4A7C15ULL * (index + 1));
    const Clock::time_point start = Clock::now();
    const Clock::time_point stop_offering =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(options.duration_s));
    std::unordered_map<std::uint64_t, Clock::time_point> outstanding;
    std::uint64_t next_id = 1;

    const auto can_offer = [&] {
      if (options.requests_per_connection != 0) {
        return report.submitted < options.requests_per_connection;
      }
      return Clock::now() < stop_offering;
    };
    const auto offer_one = [&] {
      RequestFrame request;
      request.request_id = next_id++;
      request.deadline_ms = options.deadline_ms;
      request.priority =
          options.mixed_priority
              ? static_cast<server::Priority>(request.request_id %
                                              server::kPriorityClasses)
              : server::Priority::kNormal;
      const bool compare = options.mappings.size() > 1 &&
                           rng.uniform() < options.compare_fraction;
      if (compare) {
        request.type = MsgType::kCompareRequest;
        request.compare.app = options.app;
        request.compare.now = options.now;
        request.compare.candidates = options.mappings;
      } else {
        request.type = MsgType::kPredictRequest;
        request.predict.app = options.app;
        request.predict.now = options.now;
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniform() * static_cast<double>(options.mappings.size()));
        request.predict.mapping =
            options.mappings[std::min(pick, options.mappings.size() - 1)];
      }
      client.start(request);
      outstanding.emplace(request.request_id, Clock::now());
      ++report.submitted;
    };
    const auto settle_one = [&] {
      const ResponseFrame response = client.next();
      const Clock::time_point done = Clock::now();
      const auto it = outstanding.find(response.request_id);
      if (it != outstanding.end()) {
        out.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(done - it->second)
                .count());
        outstanding.erase(it);
      }
      classify(response, report);
    };

    while (can_offer()) {
      while (outstanding.size() < options.pipeline && can_offer()) {
        offer_one();
      }
      if (outstanding.empty()) break;
      settle_one();
    }
    while (!outstanding.empty()) settle_one();
    report.elapsed_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    report.tx_bytes = client.tx_bytes();
    report.rx_bytes = client.rx_bytes();
    report.reconnects = client.stats().reconnects;
    report.replays = client.stats().replays;
  } catch (const NetError&) {
    ++report.transport_errors;
  }
}

/// One hostile connection: each round opens a fresh connection, misbehaves
/// in its mode, and records whether the server pushed back. The server is
/// expected to survive every mode; the well-behaved threads measure whether
/// it also kept serving.
void adversary_thread(const LoadGenOptions& options, std::size_t index,
                      ThreadResult& out) {
  using Clock = std::chrono::steady_clock;
  LoadGenReport& report = out.partial;
  // Attackers hit the primary endpoint only; failover is the victims' trick.
  const std::string& host =
      options.endpoints.empty() ? options.host : options.endpoints.front().host;
  const std::uint16_t port =
      options.endpoints.empty() ? options.port : options.endpoints.front().port;
  Rng rng(derive_seed(options.seed, 0xADD00 + index));
  const Clock::time_point stop =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(options.duration_s));
  static constexpr Adversary kRotation[] = {
      Adversary::kDribble, Adversary::kStall, Adversary::kGarbage,
      Adversary::kDisconnect};
  std::uint64_t round = 0;
  while (Clock::now() < stop) {
    const Adversary mode = options.adversary == Adversary::kMix
                               ? kRotation[round % 4]
                               : options.adversary;
    RequestFrame request;
    request.type = MsgType::kPredictRequest;
    request.request_id = 0xAD000000ULL + round * 131 + index;
    request.predict.app = options.app;
    request.predict.now = options.now;
    request.predict.mapping = options.mappings[round % options.mappings.size()];
    std::vector<std::uint8_t> frame;
    encode_request(request, frame);
    try {
      switch (mode) {
        case Adversary::kDribble: {
          // A whole valid request, one byte per write with a stall before
          // each: legitimate traffic at slowloris pace, via the chaos seam.
          FaultyTransportConfig fault_config;
          fault_config.seed = derive_seed(options.seed, 0xD81B + round);
          fault_config.short_write_cap = 1;
          fault_config.stall = 1.0;
          fault_config.stall_ms = 1;
          FaultyTransport dribble(fault_config);
          WireClient client(host, port, options.limits,
                            &dribble);
          client.send(request);
          (void)client.recv();  // answered, or evicted for header dribble
          break;
        }
        case Adversary::kStall: {
          WireClient client(host, port, options.limits);
          const std::vector<std::uint8_t> half_header(
              frame.begin(),
              frame.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes / 2));
          client.send_raw(half_header);
          std::this_thread::sleep_for(std::chrono::milliseconds(
              50 + static_cast<int>(rng.below(50))));
          break;  // close with the header forever unfinished
        }
        case Adversary::kGarbage: {
          WireClient client(host, port, options.limits);
          std::vector<std::uint8_t> junk(32 + rng.below(64));
          for (std::uint8_t& b : junk) {
            b = static_cast<std::uint8_t>(rng.below(256));
          }
          junk[0] = 0xFF;  // never a valid magic byte
          client.send_raw(junk);
          (void)client.recv();  // typed malformed-frame error, then close
          break;
        }
        case Adversary::kDisconnect: {
          WireClient client(host, port, options.limits);
          const std::vector<std::uint8_t> half_frame(
              frame.begin(),
              frame.begin() + static_cast<std::ptrdiff_t>(frame.size() / 2));
          client.send_raw(half_frame);
          break;  // destructor closes mid-frame
        }
        case Adversary::kNone:
        case Adversary::kMix:
          return;  // unreachable: kMix resolves to a concrete mode above
      }
    } catch (const NetError&) {
      ++report.attacker_errors;  // refused, evicted, or reset by the server
    }
    ++report.attacker_rounds;
    ++round;
  }
}

}  // namespace

LoadGenReport run_loadgen(const LoadGenOptions& options) {
  CBES_CHECK_MSG(!options.mappings.empty(), "loadgen needs candidate mappings");
  CBES_CHECK_MSG(options.connections >= 1, "loadgen needs a connection");
  CBES_CHECK_MSG(options.pipeline >= 1, "loadgen needs pipeline depth >= 1");
  CBES_CHECK_MSG(options.chaos_partial >= 0.0 && options.chaos_partial <= 1.0,
                 "chaos_partial must be a probability");
  CBES_CHECK_MSG(options.chaos_eagain >= 0.0 && options.chaos_eagain <= 1.0,
                 "chaos_eagain must be a probability");
  CBES_CHECK_MSG(options.chaos_reset >= 0.0 && options.chaos_reset <= 1.0,
                 "chaos_reset must be a probability");
  const std::size_t attackers =
      options.adversary == Adversary::kNone
          ? 0
          : std::max<std::size_t>(1, options.adversarial_connections);
  std::vector<ThreadResult> results(options.connections + attackers);
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (std::size_t i = 0; i < options.connections; ++i) {
    threads.emplace_back(
        [&options, i, &results] { loadgen_thread(options, i, results[i]); });
  }
  for (std::size_t i = 0; i < attackers; ++i) {
    const std::size_t slot = options.connections + i;
    threads.emplace_back([&options, i, slot, &results] {
      adversary_thread(options, i, results[slot]);
    });
  }
  for (std::thread& t : threads) t.join();

  LoadGenReport report;
  std::vector<double> latencies;
  for (const ThreadResult& r : results) {
    report.submitted += r.partial.submitted;
    report.completed += r.partial.completed;
    report.coalesced += r.partial.coalesced;
    report.rejected += r.partial.rejected;
    report.shed += r.partial.shed;
    report.cancelled += r.partial.cancelled;
    report.rate_limited += r.partial.rate_limited;
    report.shutdown += r.partial.shutdown;
    report.failed += r.partial.failed;
    report.transport_errors += r.partial.transport_errors;
    report.reconnects += r.partial.reconnects;
    report.replays += r.partial.replays;
    report.attacker_rounds += r.partial.attacker_rounds;
    report.attacker_errors += r.partial.attacker_errors;
    report.tx_bytes += r.partial.tx_bytes;
    report.rx_bytes += r.partial.rx_bytes;
    report.elapsed_s = std::max(report.elapsed_s, r.partial.elapsed_s);
    report.answer_checksum += r.partial.answer_checksum;
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  report.p50_ms = quantile_ms(latencies, 0.50);
  report.p99_ms = quantile_ms(latencies, 0.99);
  if (report.elapsed_s > 0.0) {
    report.offered_rps =
        static_cast<double>(report.submitted) / report.elapsed_s;
    report.goodput_rps =
        static_cast<double>(report.completed) / report.elapsed_s;
  }
  return report;
}

}  // namespace cbes::net
