#include "net/net_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "common/check.h"
#include "net/net_error.h"
#include "net/transport.h"

namespace cbes::net {

std::vector<Endpoint> parse_endpoints(const std::string& spec) {
  std::vector<Endpoint> endpoints;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string part = spec.substr(begin, end - begin);
    const std::size_t colon = part.rfind(':');
    if (part.empty() || colon == std::string::npos || colon == 0 ||
        colon + 1 == part.size()) {
      throw NetError("endpoint spec '" + part + "': want host:port");
    }
    const std::string port_str = part.substr(colon + 1);
    char* parse_end = nullptr;
    const long port = std::strtol(port_str.c_str(), &parse_end, 10);
    if (parse_end == nullptr || *parse_end != '\0' || port < 1 ||
        port > 65535) {
      throw NetError("endpoint spec '" + part + "': bad port");
    }
    endpoints.push_back(
        {part.substr(0, colon), static_cast<std::uint16_t>(port)});
    begin = end + 1;
  }
  return endpoints;
}

NetClient::NetClient(NetClientConfig config)
    : config_(std::move(config)),
      transport_(config_.transport != nullptr ? config_.transport
                                              : &SocketTransport::instance()),
      faulty_(dynamic_cast<FaultyTransport*>(config_.transport)),
      policy_(config_.retry) {
  CBES_CHECK_MSG(!config_.endpoints.empty(), "NetClient needs an endpoint");
  CBES_CHECK_MSG(config_.max_attempts >= 1,
                 "NetClient needs at least one attempt");
  breakers_.reserve(config_.endpoints.size());
  for (std::size_t i = 0; i < config_.endpoints.size(); ++i) {
    breakers_.push_back(std::make_unique<resilience::CircuitBreaker>(
        "client_endpoint" + std::to_string(i), config_.breaker));
  }
}

NetClient::~NetClient() { disconnect(); }

int NetClient::try_connect(const Endpoint& endpoint, std::string& reason) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    reason = endpoint.host + ": not an IPv4 address";
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    reason = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    reason = endpoint.host + ":" + std::to_string(endpoint.port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return -1;
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void NetClient::disconnect() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
  off_ = 0;
}

void NetClient::backoff(std::size_t retry) {
  const double delay = policy_.backoff_seconds(config_.seed, retry);
  vnow_ += delay;
  std::this_thread::sleep_for(std::chrono::duration<double>(delay));
}

void NetClient::ensure_connected() {
  if (fd_ >= 0) return;
  const bool first = stats_.connects == 0;
  std::string last_reason = "no endpoint admitted a connect";
  for (std::size_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    // Find the next endpoint whose breaker admits a probe, starting from the
    // current one so a healthy endpoint keeps the traffic.
    std::size_t tried = 0;
    bool admitted = false;
    while (tried < config_.endpoints.size()) {
      const std::size_t idx =
          (endpoint_ + tried) % config_.endpoints.size();
      if (breakers_[idx]->allow(vnow_)) {
        if (idx != endpoint_) ++stats_.failovers;
        endpoint_ = idx;
        admitted = true;
        break;
      }
      ++stats_.short_circuits;
      ++tried;
    }
    if (admitted) {
      const int fd = try_connect(config_.endpoints[endpoint_], last_reason);
      if (fd >= 0) {
        fd_ = fd;
        breakers_[endpoint_]->record_success(vnow_);
        // A fresh socket is not poisoned: re-arm a chaos transport so the
        // reconnect actually gets to speak.
        if (faulty_ != nullptr) faulty_->heal();
        ++stats_.connects;
        if (!first) ++stats_.reconnects;
        replay_pending();
        // The replay itself may lose the connection (chaos transport):
        // only a replay that leaves the socket alive counts as connected.
        if (fd_ >= 0) return;
      }
      breakers_[endpoint_]->record_failure(vnow_);
      if (config_.endpoints.size() > 1) ++stats_.failovers;
      endpoint_ = (endpoint_ + 1) % config_.endpoints.size();
    }
    backoff(attempt);
  }
  throw NetError("NetClient: every endpoint failed (" + last_reason + ")");
}

void NetClient::replay_pending() {
  // Iterate over a copy of the ids: send_bytes may disconnect mid-replay and
  // the retry of ensure_connected restarts the replay from scratch.
  std::vector<std::uint64_t> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, pending] : pending_) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    const auto it = pending_.find(id);
    if (it == pending_.end()) continue;
    if (config_.retry_reads && it->second.idempotent) {
      // Replay verbatim: same request id, same payload — the coalescing-safe
      // dedup key. The server folds the replay into any still-running job
      // for the same work, so the answer matches the one the lost
      // connection would have carried.
      std::vector<std::uint8_t> frame;
      encode_request(it->second.request, frame);
      ++stats_.replays;
      if (!send_bytes(frame.data(), frame.size())) return;  // retried upstack
      continue;
    }
    // Mutating (or replay-disabled) requests must not be double-applied:
    // answer the caller with a typed transient failure instead.
    ResponseFrame synthetic;
    synthetic.type = MsgType::kError;
    synthetic.request_id = id;
    synthetic.error = WireError::kFailed;
    synthetic.fail_reason = server::FailReason::kTransient;
    synthetic.detail = "connection lost before the answer arrived";
    ready_.push_back(std::move(synthetic));
    ++stats_.give_ups;
    pending_.erase(it);
  }
}

bool NetClient::send_bytes(const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = transport_->write(fd_, data + sent, len - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      tx_bytes_ += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;  // blocking socket: EAGAIN only from an injected storm
    }
    breakers_[endpoint_]->record_failure(vnow_);
    disconnect();
    return false;
  }
  return true;
}

bool NetClient::read_frame(ResponseFrame& out) {
  for (;;) {
    const std::size_t buffered = buf_.size() - off_;
    if (buffered >= kHeaderBytes) {
      FrameHeader header;
      const WireError header_error =
          decode_header(buf_.data() + off_, buffered, config_.limits, header);
      if (header_error != WireError::kNone) {
        throw NetError("recv: bad frame header (" +
                       std::string(wire_error_name(header_error)) + ")");
      }
      const std::size_t frame_bytes = kHeaderBytes + header.payload_len;
      if (buffered >= frame_bytes) {
        std::string detail;
        const WireError body_error = decode_response(
            header, buf_.data() + off_ + kHeaderBytes, header.payload_len,
            config_.limits, out, detail);
        if (body_error != WireError::kNone) {
          throw NetError("recv: bad response payload (" + detail + ")");
        }
        off_ += frame_bytes;
        if (off_ == buf_.size()) {
          buf_.clear();
          off_ = 0;
        }
        return true;
      }
    }
    const std::size_t old_size = buf_.size();
    buf_.resize(old_size + 64 * 1024);
    const ssize_t n = transport_->read(fd_, buf_.data() + old_size, 64 * 1024);
    if (n > 0) {
      buf_.resize(old_size + static_cast<std::size_t>(n));
      rx_bytes_ += static_cast<std::uint64_t>(n);
      continue;
    }
    buf_.resize(old_size);
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    breakers_[endpoint_]->record_failure(vnow_);
    disconnect();
    return false;
  }
}

void NetClient::start(const RequestFrame& request) {
  CBES_CHECK_MSG(is_request(request.type), "start() wants a request frame");
  CBES_CHECK_MSG(pending_.find(request.request_id) == pending_.end(),
                 "request id already outstanding");
  ensure_connected();
  Pending pending;
  pending.request = request;
  pending.idempotent = is_idempotent(request.type);
  pending_.emplace(request.request_id, std::move(pending));
  std::vector<std::uint8_t> frame;
  encode_request(request, frame);
  if (!send_bytes(frame.data(), frame.size())) {
    // The connection died under the send. ensure_connected() replays every
    // pending request — this one included — or synthesizes its answer, so
    // returning from it means the request is on the wire or answered.
    ensure_connected();
  }
}

ResponseFrame NetClient::next() {
  for (;;) {
    if (!ready_.empty()) {
      ResponseFrame response = std::move(ready_.front());
      ready_.pop_front();
      return response;
    }
    CBES_CHECK_MSG(!pending_.empty(), "next() with nothing outstanding");
    ensure_connected();
    ResponseFrame response;
    if (!read_frame(response)) continue;  // reconnect + replay, then retry
    pending_.erase(response.request_id);
    return response;
  }
}

ResponseFrame NetClient::call(const RequestFrame& request) {
  CBES_CHECK_MSG(pending_.empty() && ready_.empty(),
                 "call() wants no other requests outstanding");
  start(request);
  for (;;) {
    ResponseFrame response = next();
    if (response.request_id == request.request_id) return response;
  }
}

}  // namespace cbes::net
