// Resilient client for the wire front-end: reconnect, failover, and retry
// on top of the blocking-socket protocol that WireClient speaks.
//
// A NetClient owns one logical connection to a *set* of endpoints. When the
// connection dies (reset mid-frame, refused connect, poisoned chaos
// transport) it reconnects with seeded jittered backoff (resilience::
// RetryPolicy), fails over across endpoints, and consults a per-endpoint
// CircuitBreaker so a dead endpoint is skipped instead of hammered.
//
// Retry semantics are type-aware. Predict / compare / status requests are
// idempotent reads: after a reconnect they are *replayed verbatim* — same
// request id, same payload bytes — so the server's request coalescer folds a
// replay into any still-running job for the same work (the request id and
// canonical payload are the coalescing-safe dedup key) and the answer stream
// stays bit-identical across same-seed runs. Schedule / remap requests
// mutate scheduler state and are never replayed: a loss before the answer
// yields a synthetic kFailed/kTransient error frame, so the caller always
// gets exactly one response per request — nothing is silently dropped and
// nothing mutating is double-applied.
//
// Determinism: backoff delays come from RetryPolicy (pure function of seed,
// stream, retry index) and breakers run on a virtual clock advanced by those
// same delays, so a chaos run's failover trajectory replays from its seed.
// Not thread-safe: one owner thread, like WireClient.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/codec.h"
#include "resilience/breaker.h"
#include "resilience/retry.h"

namespace cbes::net {

class Transport;
class FaultyTransport;

/// One "host:port" the client may connect to.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Parses "host:port[,host:port...]" (the `--connect` syntax). Throws
/// NetError on a malformed spec.
[[nodiscard]] std::vector<Endpoint> parse_endpoints(const std::string& spec);

struct NetClientConfig {
  /// Failover set, tried in order starting from the first. Must be
  /// non-empty.
  std::vector<Endpoint> endpoints;
  CodecLimits limits;
  /// Backoff schedule between reconnect attempts.
  resilience::RetryPolicyConfig retry;
  /// Per-endpoint breaker tuning (open_seconds runs on the client's virtual
  /// clock, which advances by the backoff delays).
  resilience::BreakerConfig breaker;
  /// Total connect attempts one operation may spend before NetError.
  std::size_t max_attempts = 6;
  /// Seed for the jittered-backoff stream.
  std::uint64_t seed = 1;
  /// Byte I/O seam; null = the real socket. A FaultyTransport here is healed
  /// on every reconnect (a fresh socket is not poisoned).
  Transport* transport = nullptr;
  /// Replay idempotent reads after a reconnect (false = every lost request
  /// gets a synthetic error frame).
  bool retry_reads = true;
};

/// What the client has done so far (monotone).
struct NetClientStats {
  std::uint64_t connects = 0;    ///< successful connects, first included
  std::uint64_t reconnects = 0;  ///< successful connects after a loss
  std::uint64_t replays = 0;     ///< idempotent requests re-sent verbatim
  std::uint64_t failovers = 0;   ///< endpoint switches on connect failure
  std::uint64_t short_circuits = 0;  ///< endpoints skipped by an open breaker
  std::uint64_t give_ups = 0;  ///< lost requests answered with synthetic errors
};

/// True for request types safe to replay after a reconnect.
[[nodiscard]] constexpr bool is_idempotent(MsgType t) noexcept {
  return t == MsgType::kPredictRequest || t == MsgType::kCompareRequest ||
         t == MsgType::kStatusRequest;
}

class NetClient {
 public:
  /// Validates the config; does not connect (the first operation does).
  explicit NetClient(NetClientConfig config);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Queues and writes one request (pipelining: any number may be
  /// outstanding). Connects / reconnects as needed; throws NetError once
  /// every endpoint and the attempt budget are exhausted.
  void start(const RequestFrame& request);
  /// Blocks for the next response frame, in arrival order. Connection loss
  /// is handled transparently: reconnect, replay idempotent outstanding
  /// requests, synthesize kFailed/kTransient frames for the rest — every
  /// start() is answered by exactly one next().
  [[nodiscard]] ResponseFrame next();
  /// Single round-trip; requires no other requests outstanding.
  [[nodiscard]] ResponseFrame call(const RequestFrame& request);

  [[nodiscard]] std::size_t outstanding() const noexcept {
    return pending_.size() + ready_.size();
  }
  [[nodiscard]] const NetClientStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t tx_bytes() const noexcept { return tx_bytes_; }
  [[nodiscard]] std::uint64_t rx_bytes() const noexcept { return rx_bytes_; }
  /// Index into config().endpoints of the live (or next-tried) endpoint.
  [[nodiscard]] std::size_t endpoint_index() const noexcept {
    return endpoint_;
  }
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const NetClientConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Pending {
    RequestFrame request;  ///< kept verbatim for replay
    bool idempotent = false;
  };

  /// Connects if disconnected: failover loop over endpoints honoring
  /// breakers, backoff between attempts, replay of outstanding work once a
  /// connection lands. Throws NetError when the attempt budget runs out.
  void ensure_connected();
  /// One endpoint connect attempt; returns the fd or -1 (reason filled).
  [[nodiscard]] int try_connect(const Endpoint& endpoint, std::string& reason);
  void disconnect() noexcept;
  /// Re-sends idempotent pending requests on a fresh connection and
  /// synthesizes error frames for the rest.
  void replay_pending();
  /// Writes all of `bytes`; false on connection loss.
  [[nodiscard]] bool send_bytes(const std::uint8_t* data, std::size_t len);
  /// Reads one whole response frame; false on connection loss. Throws
  /// NetError on an undecodable response (protocol damage, not weather).
  [[nodiscard]] bool read_frame(ResponseFrame& out);
  /// Sleeps the jittered backoff for `retry` and advances the virtual clock.
  void backoff(std::size_t retry);

  NetClientConfig config_;
  Transport* transport_;           ///< never null after construction
  FaultyTransport* faulty_;        ///< config transport when it is one (heal)
  resilience::RetryPolicy policy_;
  std::vector<std::unique_ptr<resilience::CircuitBreaker>> breakers_;
  int fd_ = -1;
  std::size_t endpoint_ = 0;
  double vnow_ = 0.0;  ///< virtual seconds driving the breakers

  std::map<std::uint64_t, Pending> pending_;  ///< sent, not yet answered
  std::deque<ResponseFrame> ready_;  ///< synthesized answers awaiting next()
  std::vector<std::uint8_t> buf_;    ///< received bytes not yet decoded
  std::size_t off_ = 0;

  NetClientStats stats_;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t rx_bytes_ = 0;
};

}  // namespace cbes::net
