// Single-threaded epoll event loop for the wire front-end.
//
// Threading model: exactly one thread calls run(); every fd handler, posted
// task, and tick callback executes on that thread, so connection state needs
// no locks. The only cross-thread entry points are post() and stop(), which
// enqueue under a small mutex and wake the loop through an eventfd — this is
// how worker-thread job completions re-enter the loop.
//
// Handler lifetime: handlers are looked up fresh for every ready event, so a
// handler that del_fd()s another fd (or its own) during a batch simply makes
// the stale event a no-op — no use-after-free window across one epoll_wait
// batch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace cbes::net {

class EventLoop {
 public:
  /// Receives the ready EPOLL* event mask for its fd.
  using IoHandler = std::function<void(std::uint32_t)>;

  /// Throws NetError when epoll/eventfd setup fails.
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // ---- fd registration (loop thread, or any thread before run()) -----------
  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...). The loop does not
  /// own the fd; callers close it after del_fd().
  void add_fd(int fd, std::uint32_t events, IoHandler handler);
  /// Changes the interest mask of a registered fd.
  void mod_fd(int fd, std::uint32_t events);
  /// Unregisters `fd`; pending events for it in the current batch are
  /// dropped. The caller closes the fd.
  void del_fd(int fd);

  // ---- cross-thread entry points --------------------------------------------
  /// Enqueues `task` to run on the loop thread (after the current event
  /// batch) and wakes the loop. Safe from any thread, including the loop
  /// thread itself.
  void post(std::function<void()> task);
  /// Makes run() return after finishing the current batch. Safe from any
  /// thread; idempotent.
  void stop();

  // ---- loop control (loop thread / owner) -----------------------------------
  /// Installs a periodic callback driven by the epoll_wait timeout (idle
  /// sweeps, counter syncs). Call before run(). Zero period disables.
  void set_tick(std::function<void()> tick, std::chrono::milliseconds period);
  /// Runs until stop(). The calling thread becomes the loop thread.
  void run();

  /// True when called from the thread currently inside run().
  [[nodiscard]] bool in_loop_thread() const noexcept;

 private:
  void wake();
  void drain_wake() const;
  void run_posted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  /// Registered handlers; shared_ptr so a handler erased mid-batch keeps the
  /// currently executing callable alive. Loop thread only (after run()).
  std::unordered_map<int, std::shared_ptr<IoHandler>> handlers_;

  std::function<void()> tick_;
  std::chrono::milliseconds tick_period_{0};

  std::mutex tasks_mu_;
  std::vector<std::function<void()>> tasks_;  // guarded by tasks_mu_
  bool stop_requested_ = false;               // guarded by tasks_mu_

  std::atomic<std::thread::id> loop_thread_{};
};

}  // namespace cbes::net
