// Wire codec for the CBES front-end: a compact, versioned, length-prefixed
// binary protocol carrying the server's predict/compare/schedule/remap/status
// requests and their answers over a byte stream.
//
// Frame layout (all integers little-endian, doubles as IEEE-754 bit
// patterns — answers decoded from the wire are bit-identical to in-process
// results):
//
//   offset size field
//   0      4    magic 0x53454243 ("CBES" as bytes on the wire)
//   4      1    protocol version (kWireVersion)
//   5      1    message type (MsgType)
//   6      2    reserved, must be zero
//   8      8    request id (client-chosen, echoed verbatim on the response)
//   16     4    payload length in bytes
//   20     n    payload
//
// Every request payload starts with a common envelope — priority (u8) and
// deadline budget in milliseconds (u32, 0 = unbounded) — so admission
// control, the shedder, and deadline propagation govern wire traffic exactly
// as they govern in-process submissions.
//
// Parsing discipline (the PR 4 hardened-parser rules): every read is bounds-
// checked against the remaining payload, every count/length field is checked
// against both CodecLimits and the bytes actually present *before* any
// allocation is sized from it, trailing garbage after a well-formed payload
// is an error, and a malformed frame yields a typed WireError — never a
// crash, never an unbounded allocation. The mutation-corpus test in
// tests/net_test.cpp holds the codec to that contract under ASan/UBSan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "server/job.h"

namespace cbes::net {

inline constexpr std::uint32_t kWireMagic = 0x53454243u;  // "CBES" on the wire
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 20;

/// Message types. Requests are 0x01..0x0F; responses mirror them at +0x10;
/// kError answers any request that could not be served.
enum class MsgType : std::uint8_t {
  kPredictRequest = 0x01,
  kCompareRequest = 0x02,
  kScheduleRequest = 0x03,
  kRemapRequest = 0x04,
  kStatusRequest = 0x05,
  kPredictResponse = 0x11,
  kCompareResponse = 0x12,
  kScheduleResponse = 0x13,
  kRemapResponse = 0x14,
  kStatusResponse = 0x15,
  kError = 0x1F,
};

[[nodiscard]] constexpr bool is_request(MsgType t) noexcept {
  return t >= MsgType::kPredictRequest && t <= MsgType::kStatusRequest;
}
[[nodiscard]] constexpr bool is_response(MsgType t) noexcept {
  return (t >= MsgType::kPredictResponse && t <= MsgType::kStatusResponse) ||
         t == MsgType::kError;
}
[[nodiscard]] constexpr MsgType response_for(MsgType request) noexcept {
  return static_cast<MsgType>(static_cast<std::uint8_t>(request) + 0x10);
}

[[nodiscard]] std::string_view msg_type_name(MsgType t) noexcept;

/// Typed decode/serve errors. kNone..kTrailingGarbage describe wire damage
/// (the decode itself failed); kRejected..kRateLimited relay a serve outcome.
enum class WireError : std::uint8_t {
  kNone = 0,
  kBadMagic = 1,        ///< frame does not start with kWireMagic
  kBadVersion = 2,      ///< protocol version this peer does not speak
  kBadType = 3,         ///< unknown or out-of-place message type
  kTooLarge = 4,        ///< payload length exceeds the receiver's limit
  kMalformed = 5,       ///< payload truncated, overran, or field out of range
  kLimit = 6,           ///< a count field exceeds the receiver's CodecLimits
  kTrailingGarbage = 7, ///< bytes left over after a complete payload
  kRejected = 8,        ///< admission control refused the job
  kCancelled = 9,       ///< the job was cancelled (deadline or caller)
  kFailed = 10,         ///< the job failed (detail + fail_reason say why)
  kShutdown = 11,       ///< the server is shutting down
  kRateLimited = 12,    ///< per-connection rate limit exceeded; back off
};

[[nodiscard]] std::string_view wire_error_name(WireError e) noexcept;

/// Bounds every allocation a decode may size from wire-controlled fields.
struct CodecLimits {
  std::uint32_t max_payload = 1u << 20;     ///< frame payload bytes
  std::uint32_t max_ranks = 1u << 16;       ///< mapping length
  std::uint32_t max_candidates = 64;        ///< compare candidates
  std::uint32_t max_pool_nodes = 1u << 17;  ///< schedule/remap pool size
  std::uint32_t max_name = 256;             ///< app-name bytes
  std::uint32_t max_detail = 4096;          ///< error-detail / status bytes
};

/// Parsed frame header. `payload_len` has already been checked against
/// CodecLimits::max_payload when decode_header returns kNone.
struct FrameHeader {
  MsgType type = MsgType::kError;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;
};

/// Decodes the 20-byte header at `data` (`size` must be >= kHeaderBytes;
/// callers buffer until then). Returns kNone and fills `header`, or the
/// specific damage. A header-level error is not recoverable mid-stream: the
/// connection cannot re-synchronize and must close after reporting it.
[[nodiscard]] WireError decode_header(const std::uint8_t* data,
                                      std::size_t size,
                                      const CodecLimits& limits,
                                      FrameHeader& header);

/// One decoded request: the envelope plus exactly one active payload member
/// (selected by `type`).
struct RequestFrame {
  MsgType type = MsgType::kPredictRequest;
  std::uint64_t request_id = 0;
  server::Priority priority = server::Priority::kNormal;
  std::uint32_t deadline_ms = 0;
  server::PredictRequest predict;
  server::CompareRequest compare;
  server::ScheduleRequest schedule;
  server::RemapRequest remap;
};

/// Decodes a request payload. Returns kNone on success; on error `detail`
/// carries a human-readable reason (bounded, safe to echo into an error
/// frame). `header.type` must be a request type.
[[nodiscard]] WireError decode_request(const FrameHeader& header,
                                       const std::uint8_t* payload,
                                       std::size_t size,
                                       const CodecLimits& limits,
                                       RequestFrame& out, std::string& detail);

/// One response (or error) frame as the client sees it.
struct ResponseFrame {
  MsgType type = MsgType::kError;
  std::uint64_t request_id = 0;
  // kError payload.
  WireError error = WireError::kNone;
  server::FailReason fail_reason = server::FailReason::kNone;
  std::string detail;
  // Common result envelope (all non-error responses).
  bool degraded = false;
  bool cache_hit = false;
  bool coalesced = false;  ///< folded into another in-flight identical job
  std::uint64_t snapshot_epoch = 0;
  // kPredictResponse.
  double time = 0.0;
  // kCompareResponse.
  std::vector<double> predicted;
  std::uint32_t best = 0;
  // kScheduleResponse (+ remap candidate mapping).
  std::vector<std::uint32_t> assignment;  ///< rank -> node index
  double cost = 0.0;
  std::uint64_t evaluations = 0;
  // kRemapResponse.
  bool beneficial = false;
  double remaining_current = 0.0;
  double remaining_candidate = 0.0;
  double migration_cost = 0.0;
  std::uint64_t moved_ranks = 0;
  // kStatusResponse.
  std::string status_json;
};

/// Decodes a response payload (client side; same hardening rules).
[[nodiscard]] WireError decode_response(const FrameHeader& header,
                                        const std::uint8_t* payload,
                                        std::size_t size,
                                        const CodecLimits& limits,
                                        ResponseFrame& out,
                                        std::string& detail);

// ---- encoding --------------------------------------------------------------
// Encoders append one complete frame (header + payload) to `out`. They never
// fail: lengths come from in-memory structures the caller already bounded.

void encode_request(const RequestFrame& request, std::vector<std::uint8_t>& out);
void encode_response(const ResponseFrame& response,
                     std::vector<std::uint8_t>& out);

/// Builds an error response for `request_id`. `detail` is truncated to
/// `limits.max_detail` so a hostile detail string cannot balloon a frame.
[[nodiscard]] ResponseFrame make_error(std::uint64_t request_id, WireError error,
                                       std::string detail,
                                       server::FailReason reason,
                                       const CodecLimits& limits);

/// Maps a terminal job result onto the wire: kDone becomes the matching
/// response type, everything else an error frame with the job's detail.
[[nodiscard]] ResponseFrame response_from_result(std::uint64_t request_id,
                                                 MsgType request_type,
                                                 const server::JobResult& result,
                                                 const CodecLimits& limits);

}  // namespace cbes::net
