// One client connection of the wire front-end: a nonblocking state machine
// over a stream socket that buffers reads until whole frames arrive, decodes
// them with the hardened codec, and buffers encoded responses out with
// write-backpressure.
//
// State machine (all transitions on the event-loop thread):
//
//   kOpen ──protocol error──> kClosing (error frame queued, reads stopped,
//     │                          │       close when the write buffer drains)
//     │                          v
//     └───────peer close/error──────────> kClosed (fd closed, on_closed fired)
//
// Flow control:
//   * reads pause (EPOLLIN dropped) while decoded-but-unanswered requests
//     are at max_inflight, or while the write buffer is above the high
//     watermark — a slow reader cannot balloon server memory;
//   * writes buffer on EAGAIN and re-arm EPOLLOUT; crossing the high
//     watermark raises backpressure (counted + hook), dropping below the low
//     watermark clears it;
//   * a connection idle (no bytes, no inflight work) past idle_timeout is
//     closed by the owner's tick sweep via idle_expired().
//
// Byte counters are atomics: the loop thread writes them, statusz reads them
// from arbitrary threads.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/codec.h"
#include "net/event_loop.h"

namespace cbes::net {

class Transport;

/// Per-connection tuning; embedded in NetConfig.
struct ConnectionConfig {
  CodecLimits limits;
  /// Bytes per read() attempt.
  std::size_t read_chunk = 64 * 1024;
  /// Write buffer size that raises backpressure (pauses reads).
  std::size_t write_high_watermark = 256 * 1024;
  /// Write buffer size that clears backpressure again.
  std::size_t write_low_watermark = 64 * 1024;
  /// Decoded requests awaiting responses before reads pause.
  std::size_t max_inflight = 128;
  /// Close a connection with no traffic and no inflight work for this long;
  /// zero = never.
  std::chrono::milliseconds idle_timeout{0};
  /// Byte I/O seam; null = the real socket (transport.h). Tests and the
  /// chaos harness interpose a FaultyTransport here.
  Transport* transport = nullptr;
  /// Token-bucket rate limit: sustained requests/second per connection;
  /// zero = unlimited. Over-limit requests get typed kRateLimited frames.
  double rate_limit_rps = 0.0;
  /// Token-bucket depth: how many requests may burst above the sustained
  /// rate before kRateLimited frames start.
  double rate_limit_burst = 32.0;
  /// Evict a connection whose write buffer has made no progress for this
  /// long (slow reader holding server memory); zero = never.
  std::chrono::milliseconds write_stall_timeout{0};
  /// Evict a connection dribbling a frame byte-by-byte (slowloris): a
  /// partial frame older than this with no complete frame consumed since is
  /// hostile; zero = never.
  std::chrono::milliseconds header_timeout{0};
};

/// Aggregate wire counters shared by every connection of one NetServer.
/// Atomics: written from the loop thread, read by statusz from any thread.
struct NetCounters {
  std::atomic<std::uint64_t> connections_total{0};
  std::atomic<std::uint64_t> connections_open{0};
  std::atomic<std::uint64_t> rx_bytes{0};
  std::atomic<std::uint64_t> tx_bytes{0};
  std::atomic<std::uint64_t> frames_rx{0};
  std::atomic<std::uint64_t> frames_tx{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> backpressure_events{0};
  std::atomic<std::uint64_t> backpressured_now{0};
  std::atomic<std::uint64_t> idle_closed{0};
  std::atomic<std::uint64_t> coalesce_hits{0};
  std::atomic<std::uint64_t> coalesce_leaders{0};
  std::atomic<std::uint64_t> rate_limited{0};
  std::atomic<std::uint64_t> slow_evicted{0};
  std::atomic<std::uint64_t> accepts_refused{0};
  std::atomic<std::uint64_t> drain_shutdown_answered{0};
};

class Connection {
 public:
  struct Hooks {
    /// One decoded request (loop thread). The receiver submits the job and
    /// calls job_started()/job_finished() around its lifetime.
    std::function<void(Connection&, RequestFrame&&)> on_request;
    /// The connection reached kClosed; the owner destroys it (deferred — the
    /// call may arrive from inside another Connection callback).
    std::function<void(Connection&, const char* reason)> on_closed;
    /// A frame failed to decode (before the error frame is queued).
    std::function<void(Connection&, WireError, const std::string& detail)>
        on_protocol_error;
  };

  /// Takes ownership of `fd` (nonblocking). `counters` must outlive the
  /// connection.
  Connection(EventLoop& loop, int fd, std::uint64_t id, std::string peer,
             const ConnectionConfig& config, NetCounters& counters,
             Hooks hooks);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Registers with the event loop. Loop thread (or before run()).
  void start();

  // ---- response path (loop thread) ------------------------------------------
  /// Encodes and queues one response frame, flushing opportunistically.
  void send(const ResponseFrame& response);
  /// Queues a typed error frame for `request_id`.
  void send_error(std::uint64_t request_id, WireError error,
                  std::string detail,
                  server::FailReason reason = server::FailReason::kNone);
  /// Stops reading and closes once the write buffer drains (error path,
  /// server shutdown).
  void shutdown_after_flush(const char* reason);
  /// Closes immediately, dropping any unflushed output.
  void close(const char* reason);

  // ---- inflight accounting (loop thread) ------------------------------------
  void job_started();
  void job_finished();

  [[nodiscard]] bool closed() const noexcept { return state_ == State::kClosed; }
  /// True when the idle sweep should close this connection at `now`.
  [[nodiscard]] bool idle_expired(
      std::chrono::steady_clock::time_point now) const noexcept;
  /// Non-null when the slow-client sweep should evict this connection at
  /// `now`: the eviction reason ("write stall" or "header dribble").
  [[nodiscard]] const char* slow_expired(
      std::chrono::steady_clock::time_point now) const noexcept;

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] const std::string& peer() const noexcept { return peer_; }
  [[nodiscard]] std::size_t inflight() const noexcept { return inflight_; }
  [[nodiscard]] bool backpressured() const noexcept { return backpressured_; }
  [[nodiscard]] std::chrono::steady_clock::time_point created_at()
      const noexcept {
    return created_;
  }

 private:
  enum class State : unsigned char { kOpen, kClosing, kClosed };

  void handle_io(std::uint32_t events);
  void on_readable();
  void on_writable();
  /// Decodes every complete frame in the read buffer (stopping at the
  /// inflight cap); closes on protocol damage.
  void parse_frames();
  void protocol_error(std::uint64_t request_id, WireError error,
                      std::string detail);
  /// Refills and draws from the token bucket; false = over the rate limit.
  [[nodiscard]] bool take_rate_token();
  /// Writes as much buffered output as the socket accepts.
  void flush();
  /// Recomputes the epoll interest mask from the pause/write state.
  void update_interest();
  void enter_backpressure();
  void maybe_exit_backpressure();
  /// Frames already buffered while reads were paused (inflight cap or
  /// backpressure) are invisible to epoll — when capacity frees up, a posted
  /// task resumes parsing them. Deferred so completion fan-out never
  /// re-enters parse_frames mid-iteration.
  void schedule_parse_kick();

  EventLoop& loop_;
  int fd_;
  const std::uint64_t id_;
  const std::string peer_;
  const ConnectionConfig& config_;
  Transport& transport_;
  NetCounters& counters_;
  Hooks hooks_;

  State state_ = State::kOpen;
  std::uint32_t interest_ = 0;

  std::vector<std::uint8_t> read_buf_;
  std::size_t read_off_ = 0;  ///< consumed prefix of read_buf_
  std::vector<std::uint8_t> write_buf_;
  std::size_t write_off_ = 0;  ///< flushed prefix of write_buf_

  std::size_t inflight_ = 0;
  bool backpressured_ = false;
  bool kick_scheduled_ = false;  ///< a parse-resume task is already posted
  std::chrono::steady_clock::time_point created_;
  std::chrono::steady_clock::time_point last_activity_;

  // ---- server defense (loop thread) -----------------------------------------
  double rate_tokens_ = 0.0;  ///< token bucket for rate_limit_rps
  std::chrono::steady_clock::time_point rate_refilled_;
  /// Last instant flush() moved bytes (write-stall detection baseline).
  std::chrono::steady_clock::time_point last_write_progress_;
  /// When the read buffer started holding an incomplete frame with no
  /// complete frame consumed since — the slowloris timer. Reset on every
  /// consumed frame; cleared when the buffer drains.
  std::chrono::steady_clock::time_point partial_frame_since_;
  bool partial_frame_pending_ = false;
};

}  // namespace cbes::net
