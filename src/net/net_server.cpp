#include "net/net_server.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "net/net_error.h"
#include "server/status.h"

namespace cbes::net {

namespace {

/// The simulated time a request frame refers to.
[[nodiscard]] Seconds frame_now(const RequestFrame& request) noexcept {
  switch (request.type) {
    case MsgType::kPredictRequest: return request.predict.now;
    case MsgType::kCompareRequest: return request.compare.now;
    case MsgType::kScheduleRequest: return request.schedule.now;
    case MsgType::kRemapRequest: return request.remap.now;
    default: return 0.0;
  }
}

}  // namespace

NetServer::NetServer(server::CbesServer& server, NetConfig config)
    : server_(&server),
      config_(std::move(config)),
      loop_(std::make_shared<EventLoop>()),
      listener_(config_.host, config_.port) {
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    m_connections_total_ = &m.counter("cbes_net_connections_total",
                                      "wire connections accepted");
    m_connections_open_ =
        &m.gauge("cbes_net_connections_open", "wire connections currently open");
    m_backpressured_ = &m.gauge("cbes_net_backpressured",
                                "connections currently write-backpressured");
    m_rx_bytes_ = &m.counter("cbes_net_rx_bytes_total", "wire bytes received");
    m_tx_bytes_ = &m.counter("cbes_net_tx_bytes_total", "wire bytes sent");
    m_frames_rx_ =
        &m.counter("cbes_net_frames_rx_total", "request frames decoded");
    m_frames_tx_ =
        &m.counter("cbes_net_frames_tx_total", "response frames encoded");
    m_coalesced_ = &m.counter(
        "cbes_net_coalesced_total",
        "wire predictions folded into an identical in-flight job");
    m_protocol_errors_ = &m.counter("cbes_net_protocol_errors_total",
                                    "frames rejected by the codec");
    m_backpressure_events_ = &m.counter(
        "cbes_net_backpressure_events_total",
        "times a connection crossed the write high watermark");
    m_idle_closed_ = &m.counter("cbes_net_idle_closed_total",
                                "connections closed by the idle sweep");
    m_rate_limited_ = &m.counter("cbes_net_rate_limited_total",
                                 "requests answered with kRateLimited");
    m_slow_evicted_ = &m.counter(
        "cbes_net_slow_evicted_total",
        "connections evicted as slow clients (write stall / header dribble)");
    m_accepts_refused_ =
        &m.counter("cbes_net_accepts_refused_total",
                   "connections refused (storm guard, capacity, stopping)");
    m_drain_answered_ = &m.counter(
        "cbes_net_drain_shutdown_total",
        "requests answered with kShutdown during a graceful drain");
    m_drain_state_ = &m.gauge("cbes_net_drain_state",
                              "0 serving, 1 draining, 2 flushing, 3 stopped");
  }
  loop_->add_fd(listener_.fd(), EPOLLIN, [this](std::uint32_t) {
    listener_.accept_ready(
        [this](int fd, std::string peer) { on_accept(fd, std::move(peer)); });
  });
  loop_->set_tick(
      [this] {
        accepts_this_tick_ = 0;
        sweep_idle();
        check_drain();
        refresh_conn_table();
        sync_metrics();
      },
      config_.tick);
  if (config_.log != nullptr) {
    config_.log->info("net/listen", last_now_,
                      {{"address", listen_address()}});
  }
  loop_thread_ = std::thread([loop = loop_] { loop->run(); });
}

NetServer::~NetServer() { stop(); }

void NetServer::stop() {
  if (!stop_started_.exchange(true)) {
    loop_->post([this] { shutdown_on_loop(); });
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  drain_state_.store(DrainState::kStopped, std::memory_order_relaxed);
}

void NetServer::drain() {
  if (!stop_started_.exchange(true)) {
    loop_->post([this] { drain_on_loop(); });
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  drain_state_.store(DrainState::kStopped, std::memory_order_relaxed);
}

void NetServer::drain_on_loop() {
  if (draining_ || stopping_) return;
  draining_ = true;
  drain_state_.store(DrainState::kDraining, std::memory_order_relaxed);
  loop_->del_fd(listener_.fd());
  drain_deadline_at_ = std::chrono::steady_clock::now() + config_.drain_deadline;
  if (config_.log != nullptr) {
    config_.log->info("net/drain-begin", last_now_,
                      {{"address", listen_address()},
                       {"pending_jobs", pending_.size()},
                       {"connections", connections_.size()}});
  }
  // Queued-but-unstarted jobs are shed now with typed kShutdown frames —
  // they would only delay the drain, and the client's typed error tells it
  // exactly what happened. Running jobs keep their workers and answer
  // normally (bounded by the drain deadline in check_drain()).
  std::vector<std::uint64_t> queued;
  for (const auto& [job_id, pending] : pending_) {
    if (!pending.handle.valid() ||
        pending.handle.state() == server::JobState::kQueued) {
      queued.push_back(job_id);
    }
  }
  for (const std::uint64_t job_id : queued) {
    const auto it = pending_.find(job_id);
    if (it == pending_.end()) continue;
    shed_pending(job_id, it->second, "server draining: job not started");
    pending_.erase(it);
  }
  check_drain();
}

void NetServer::shed_pending(std::uint64_t job_id, PendingJob& pending,
                             const char* detail) {
  for (const Waiter& waiter : pending.waiters) {
    const auto it = connections_.find(waiter.conn_id);
    if (it == connections_.end()) continue;
    counters_.drain_shutdown_answered.fetch_add(1, std::memory_order_relaxed);
    it->second->send_error(waiter.request_id, WireError::kShutdown, detail);
    if (!it->second->closed()) it->second->job_finished();
  }
  if (pending.handle.valid()) pending.handle.cancel();
  if (config_.trace != nullptr) {
    config_.trace->async_end("net/wire", job_id);
  }
}

void NetServer::check_drain() {
  if (!draining_ || stopping_) return;
  const auto now = std::chrono::steady_clock::now();
  if (!flushing_) {
    if (!pending_.empty() && now < drain_deadline_at_) return;
    if (!pending_.empty()) {
      // Deadline: the remaining in-flight jobs lose their answer slot; the
      // waiters still get typed frames, never silence.
      for (auto& [job_id, pending] : pending_) {
        shed_pending(job_id, pending, "server draining: deadline exceeded");
      }
      pending_.clear();
    }
    flushing_ = true;
    drain_state_.store(DrainState::kFlushing, std::memory_order_relaxed);
    // Another full drain_deadline for the flush phase.
    drain_deadline_at_ = now + config_.drain_deadline;
    std::vector<std::uint64_t> ids;
    ids.reserve(connections_.size());
    for (const auto& [id, conn] : connections_) ids.push_back(id);
    for (const std::uint64_t id : ids) {
      const auto it = connections_.find(id);
      if (it != connections_.end()) {
        it->second->shutdown_after_flush("server drained");
      }
    }
  }
  if (connections_.empty() || now >= drain_deadline_at_) finish_drain();
}

void NetServer::finish_drain() {
  stopping_ = true;
  std::vector<std::uint64_t> ids;
  ids.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    const auto it = connections_.find(id);
    if (it != connections_.end()) it->second->close("drain flush deadline");
  }
  refresh_conn_table();
  sync_metrics();
  if (config_.log != nullptr) {
    config_.log->info(
        "net/drain-end", last_now_,
        {{"address", listen_address()},
         {"shutdown_answered",
          counters_.drain_shutdown_answered.load(std::memory_order_relaxed)}});
  }
  loop_->stop();
}

void NetServer::shutdown_on_loop() {
  stopping_ = true;
  loop_->del_fd(listener_.fd());
  // Answer every unanswered wire request, then cancel the job behind it (the
  // job still runs to its own terminal state; its completion task finds
  // pending_ empty and does nothing).
  for (auto& [job_id, pending] : pending_) {
    for (const Waiter& waiter : pending.waiters) {
      const auto it = connections_.find(waiter.conn_id);
      if (it == connections_.end()) continue;
      it->second->send_error(waiter.request_id, WireError::kShutdown,
                             "server stopping");
    }
    if (pending.handle.valid()) pending.handle.cancel();
    if (config_.trace != nullptr) {
      config_.trace->async_end("net/wire", job_id);
    }
  }
  pending_.clear();
  std::vector<std::uint64_t> ids;
  ids.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    const auto it = connections_.find(id);
    if (it != connections_.end()) it->second->close("server stopping");
  }
  sync_metrics();
  if (config_.log != nullptr) {
    config_.log->info("net/stop", last_now_,
                      {{"address", listen_address()}});
  }
  loop_->stop();
}

void NetServer::on_accept(int fd, std::string peer) {
  const bool storm = config_.accept_burst > 0 &&
                     accepts_this_tick_ >= config_.accept_burst;
  if (stopping_ || draining_ || storm ||
      connections_.size() >= config_.max_connections) {
    ::close(fd);
    counters_.accepts_refused.fetch_add(1, std::memory_order_relaxed);
    if (config_.log != nullptr) {
      const char* reason = (stopping_ || draining_) ? "stopping"
                           : storm                  ? "accept-storm"
                                                    : "max-connections";
      config_.log->warn("net/accept-refused", last_now_,
                        {{"peer", peer}, {"reason", reason}});
    }
    return;
  }
  ++accepts_this_tick_;
  const std::uint64_t id = next_conn_id_++;
  counters_.connections_total.fetch_add(1, std::memory_order_relaxed);
  counters_.connections_open.fetch_add(1, std::memory_order_relaxed);
  Connection::Hooks hooks;
  hooks.on_request = [this](Connection& conn, RequestFrame&& request) {
    on_request(conn, std::move(request));
  };
  hooks.on_closed = [this](Connection& conn, const char* reason) {
    on_closed(conn, reason);
  };
  hooks.on_protocol_error = [this](Connection& conn, WireError error,
                                   const std::string& detail) {
    if (config_.log != nullptr) {
      config_.log->warn("net/protocol-error", last_now_,
                        {{"conn", conn.id()},
                         {"peer", conn.peer()},
                         {"error", wire_error_name(error)},
                         {"detail", detail}});
    }
  };
  auto conn = std::make_unique<Connection>(*loop_, fd, id, std::move(peer),
                                           config_.connection, counters_,
                                           std::move(hooks));
  Connection& ref = *conn;
  connections_.emplace(id, std::move(conn));
  ref.start();
  if (config_.log != nullptr && config_.log->enabled(obs::LogLevel::kDebug)) {
    config_.log->debug("net/accept", last_now_,
                       {{"conn", id}, {"peer", ref.peer()}});
  }
}

void NetServer::on_closed(Connection& conn, const char* reason) {
  counters_.connections_open.fetch_sub(1, std::memory_order_relaxed);
  if (config_.log != nullptr && config_.log->enabled(obs::LogLevel::kDebug)) {
    config_.log->debug("net/close", last_now_,
                       {{"conn", conn.id()},
                        {"peer", conn.peer()},
                        {"reason", reason}});
  }
  const auto it = connections_.find(conn.id());
  if (it == connections_.end()) return;
  // The close may have been triggered from inside one of this connection's
  // own callbacks; defer destruction until the stack unwinds (shared_ptr
  // because std::function needs a copyable callable). A task left unrun at
  // loop teardown still destroys its captures.
  loop_->post([dying = std::shared_ptr<Connection>(std::move(it->second))] {});
  connections_.erase(it);
}

void NetServer::on_request(Connection& conn, RequestFrame&& request) {
  last_now_ = std::max(last_now_, frame_now(request));
  if (draining_) {
    // The drain keeps reading: requests already pipelined into socket
    // buffers are answered with typed kShutdown frames, never left hanging.
    counters_.drain_shutdown_answered.fetch_add(1, std::memory_order_relaxed);
    conn.send_error(request.request_id, WireError::kShutdown,
                    "server draining");
    return;
  }
  if (request.type == MsgType::kStatusRequest) {
    handle_status(conn, request);
    return;
  }
  submit_request(conn, std::move(request));
}

void NetServer::handle_status(Connection& conn, const RequestFrame& request) {
  server::ServerStatus status = server_->status();
  fill_status(status);
  std::ostringstream json;
  server::format_status_json(status, json);
  ResponseFrame response;
  response.type = MsgType::kStatusResponse;
  response.request_id = request.request_id;
  response.snapshot_epoch =
      server_->service().monitor().epoch_at(last_now_);
  response.status_json = json.str();
  conn.send(response);
}

std::uint64_t NetServer::app_profile_hash(const std::string& app) {
  const auto it = profile_hashes_.find(app);
  if (it != profile_hashes_.end()) return it->second;
  const std::uint64_t hash =
      static_cast<std::uint64_t>(server_->service().profile_copy(app).hash());
  profile_hashes_.emplace(app, hash);
  return hash;
}

void NetServer::submit_request(Connection& conn, RequestFrame&& request) {
  server::SubmitOptions options;
  options.priority = request.priority;
  options.deadline = std::chrono::milliseconds(request.deadline_ms);

  // Coalesce predictions whose (profile, mapping, epoch) identity matches an
  // in-flight job — the duplicate rides that job instead of queuing its own.
  if (request.type == MsgType::kPredictRequest && config_.coalesce_predicts &&
      server_->service().has_profile(request.predict.app)) {
    const Coalescer::Key key{
        app_profile_hash(request.predict.app),
        static_cast<std::uint64_t>(request.predict.mapping.hash()),
        server_->service().monitor().epoch_at(request.predict.now)};
    const std::uint64_t in_flight = coalescer_.find(key);
    if (in_flight != 0) {
      const auto pending = pending_.find(in_flight);
      CBES_CHECK_MSG(pending != pending_.end(),
                     "coalescer references unknown job");
      pending->second.waiters.push_back(
          Waiter{conn.id(), request.request_id, true});
      conn.job_started();
      counters_.coalesce_hits.fetch_add(1, std::memory_order_relaxed);
      if (config_.trace != nullptr) {
        obs::TraceArgs args;
        args.add("conn", conn.id()).add("request_id", request.request_id);
        config_.trace->async_instant("net/coalesced", in_flight,
                                     std::move(args));
      }
      if (config_.log != nullptr &&
          config_.log->enabled(obs::LogLevel::kDebug)) {
        config_.log->debug("net/coalesce", last_now_,
                           {{"conn", conn.id()},
                            {"job", in_flight},
                            {"app", request.predict.app}});
      }
      return;
    }
    server::JobHandle handle =
        server_->submit(std::move(request.predict), options);
    // Publish before tracking: a rejected job is already terminal and
    // track_job's completion hook fires inline, retiring the key again.
    coalescer_.publish(key, handle.id());
    track_job(conn, request, std::move(handle));
    return;
  }

  switch (request.type) {
    case MsgType::kPredictRequest:
      track_job(conn, request,
                server_->submit(std::move(request.predict), options));
      break;
    case MsgType::kCompareRequest:
      track_job(conn, request,
                server_->submit(std::move(request.compare), options));
      break;
    case MsgType::kScheduleRequest:
      track_job(conn, request,
                server_->submit(std::move(request.schedule), options));
      break;
    case MsgType::kRemapRequest:
      track_job(conn, request,
                server_->submit(std::move(request.remap), options));
      break;
    default:
      conn.send_error(request.request_id, WireError::kBadType,
                      "unsupported request type");
      break;
  }
}

void NetServer::track_job(Connection& conn, const RequestFrame& request,
                          server::JobHandle handle) {
  const std::uint64_t job_id = handle.id();
  PendingJob pending;
  pending.request_type = request.type;
  pending.waiters.push_back(Waiter{conn.id(), request.request_id, false});
  pending.handle = handle;
  pending_.emplace(job_id, std::move(pending));
  conn.job_started();
  if (config_.trace != nullptr) {
    obs::TraceArgs args;
    args.add("conn", conn.id())
        .add("request_id", request.request_id)
        .add("priority",
             std::string(server::priority_name(request.priority)));
    config_.trace->async_begin("net/wire", job_id, std::move(args));
  }
  // The callback runs on whichever thread finishes the job; it posts the
  // fan-out back to the loop. Capturing the loop by shared_ptr keeps the
  // post target alive even if the NetServer is gone (the task then simply
  // never runs — see shutdown_on_loop()).
  handle.set_on_complete([this, loop = loop_, job_id](const server::Job& job) {
    loop->post([this, job_id, result = job.result]() mutable {
      on_job_complete(job_id, std::move(result));
    });
  });
}

void NetServer::on_job_complete(std::uint64_t job_id,
                                server::JobResult result) {
  coalescer_.retire(job_id);
  const auto it = pending_.find(job_id);
  if (it == pending_.end()) return;  // stop() already answered the waiters
  PendingJob pending = std::move(it->second);
  pending_.erase(it);
  if (pending.waiters.size() > 1) {
    counters_.coalesce_leaders.fetch_add(1, std::memory_order_relaxed);
  }
  for (const Waiter& waiter : pending.waiters) {
    const auto conn_it = connections_.find(waiter.conn_id);
    if (conn_it == connections_.end()) continue;  // client went away
    Connection& conn = *conn_it->second;
    ResponseFrame response = response_from_result(
        waiter.request_id, pending.request_type, result,
        config_.connection.limits);
    response.coalesced = waiter.coalesced;
    conn.send(response);
    if (!conn.closed()) conn.job_finished();
  }
  if (config_.trace != nullptr) {
    config_.trace->async_end("net/wire", job_id);
  }
  if (draining_) check_drain();
}

void NetServer::sweep_idle() {
  std::vector<std::uint64_t> expired;
  std::vector<std::pair<std::uint64_t, const char*>> slow;
  const auto now = std::chrono::steady_clock::now();
  for (const auto& [id, conn] : connections_) {
    if (const char* reason = conn->slow_expired(now); reason != nullptr) {
      slow.emplace_back(id, reason);
    } else if (conn->idle_expired(now)) {
      expired.push_back(id);
    }
  }
  for (const auto& [id, reason] : slow) {
    const auto it = connections_.find(id);
    if (it == connections_.end()) continue;
    counters_.slow_evicted.fetch_add(1, std::memory_order_relaxed);
    if (config_.log != nullptr) {
      config_.log->warn("net/evict", last_now_,
                        {{"conn", id},
                         {"peer", it->second->peer()},
                         {"reason", reason}});
    }
    it->second->close(reason);
  }
  for (const std::uint64_t id : expired) {
    const auto it = connections_.find(id);
    if (it == connections_.end()) continue;
    counters_.idle_closed.fetch_add(1, std::memory_order_relaxed);
    if (config_.log != nullptr) {
      config_.log->info("net/idle-close", last_now_,
                        {{"conn", id}, {"peer", it->second->peer()}});
    }
    it->second->close("idle timeout");
  }
}

void NetServer::refresh_conn_table() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<server::NetConnEntry> table;
  table.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) {
    server::NetConnEntry entry;
    entry.id = id;
    entry.peer = conn->peer();
    entry.inflight = conn->inflight();
    entry.backpressured = conn->backpressured();
    entry.age_seconds =
        std::chrono::duration<double>(now - conn->created_at()).count();
    table.push_back(std::move(entry));
  }
  const std::lock_guard<std::mutex> lock(conn_table_mu_);
  conn_table_ = std::move(table);
}

void NetServer::sync_metrics() {
  if (config_.metrics == nullptr) return;
  const auto delta = [](obs::Counter* metric, std::uint64_t current,
                        std::uint64_t& synced) {
    if (current > synced) metric->inc(current - synced);
    synced = current;
  };
  delta(m_connections_total_,
        counters_.connections_total.load(std::memory_order_relaxed),
        synced_.connections_total);
  delta(m_rx_bytes_, counters_.rx_bytes.load(std::memory_order_relaxed),
        synced_.rx_bytes);
  delta(m_tx_bytes_, counters_.tx_bytes.load(std::memory_order_relaxed),
        synced_.tx_bytes);
  delta(m_frames_rx_, counters_.frames_rx.load(std::memory_order_relaxed),
        synced_.frames_rx);
  delta(m_frames_tx_, counters_.frames_tx.load(std::memory_order_relaxed),
        synced_.frames_tx);
  delta(m_coalesced_, counters_.coalesce_hits.load(std::memory_order_relaxed),
        synced_.coalesce_hits);
  delta(m_protocol_errors_,
        counters_.protocol_errors.load(std::memory_order_relaxed),
        synced_.protocol_errors);
  delta(m_backpressure_events_,
        counters_.backpressure_events.load(std::memory_order_relaxed),
        synced_.backpressure_events);
  delta(m_idle_closed_, counters_.idle_closed.load(std::memory_order_relaxed),
        synced_.idle_closed);
  delta(m_rate_limited_,
        counters_.rate_limited.load(std::memory_order_relaxed),
        synced_.rate_limited);
  delta(m_slow_evicted_,
        counters_.slow_evicted.load(std::memory_order_relaxed),
        synced_.slow_evicted);
  delta(m_accepts_refused_,
        counters_.accepts_refused.load(std::memory_order_relaxed),
        synced_.accepts_refused);
  delta(m_drain_answered_,
        counters_.drain_shutdown_answered.load(std::memory_order_relaxed),
        synced_.drain_shutdown_answered);
  m_connections_open_->set(static_cast<double>(
      counters_.connections_open.load(std::memory_order_relaxed)));
  m_backpressured_->set(static_cast<double>(
      counters_.backpressured_now.load(std::memory_order_relaxed)));
  m_drain_state_->set(static_cast<double>(
      drain_state_.load(std::memory_order_relaxed)));
}

void NetServer::fill_status(server::ServerStatus& status) const {
  server::NetSection& net = status.net;
  net.present = true;
  net.listen = listen_address();
  net.connections_open =
      counters_.connections_open.load(std::memory_order_relaxed);
  net.connections_total =
      counters_.connections_total.load(std::memory_order_relaxed);
  net.backpressured =
      counters_.backpressured_now.load(std::memory_order_relaxed);
  net.rx_bytes = counters_.rx_bytes.load(std::memory_order_relaxed);
  net.tx_bytes = counters_.tx_bytes.load(std::memory_order_relaxed);
  net.frames_rx = counters_.frames_rx.load(std::memory_order_relaxed);
  net.frames_tx = counters_.frames_tx.load(std::memory_order_relaxed);
  net.coalesce_hits = counters_.coalesce_hits.load(std::memory_order_relaxed);
  net.coalesce_leaders =
      counters_.coalesce_leaders.load(std::memory_order_relaxed);
  net.protocol_errors =
      counters_.protocol_errors.load(std::memory_order_relaxed);
  net.idle_closed = counters_.idle_closed.load(std::memory_order_relaxed);
  net.rate_limited = counters_.rate_limited.load(std::memory_order_relaxed);
  net.slow_evicted = counters_.slow_evicted.load(std::memory_order_relaxed);
  net.accepts_refused =
      counters_.accepts_refused.load(std::memory_order_relaxed);
  net.drain_shutdown_answered =
      counters_.drain_shutdown_answered.load(std::memory_order_relaxed);
  net.drain_state =
      drain_state_name(drain_state_.load(std::memory_order_relaxed));
  {
    const std::lock_guard<std::mutex> lock(conn_table_mu_);
    net.conns = conn_table_;
  }
}

}  // namespace cbes::net
