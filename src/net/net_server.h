// NetServer — the wire front-end that puts a CbesServer on a TCP socket.
//
//   Listener ──accept──> Connection (epoll state machine, hardened codec)
//        frames ──> NetServer::handle_request ──> Coalescer / CbesServer::submit
//        job completion (worker thread) ──post──> event loop ──> fan out
//
// One event-loop thread owns every connection; decoded requests enter the
// broker through the same submit() path as in-process callers, carrying the
// wire envelope's priority and deadline — admission control, the shedder,
// breakers, and the watchdog govern wire traffic with no special cases.
// Worker-thread job completions re-enter the loop via EventLoop::post and
// fan back out to every waiter (coalesced followers included), so answers on
// the wire are bit-identical to what JobHandle::wait() returns in process.
//
// Lifetime: job-completion callbacks capture the event loop by shared_ptr,
// so a job that outlives the NetServer still has a valid loop to post into
// (the task is simply never run once the loop has stopped). stop() answers
// every unanswered wire request with a kShutdown error frame and cancels the
// underlying jobs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/coalescer.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/listener.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "server/server.h"

namespace cbes::net {

struct NetConfig {
  /// IPv4 address to bind; port 0 picks an ephemeral port (see port()).
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  ConnectionConfig connection;
  /// Accepted connections beyond this are closed immediately.
  std::size_t max_connections = 1024;
  /// Connection-storm guard: accepts admitted per tick window beyond which
  /// new connections are refused; 0 = unlimited.
  std::size_t accept_burst = 0;
  /// Graceful drain budget: in-flight jobs get this long to finish, then the
  /// same again for response flushing, before connections are closed hard.
  std::chrono::milliseconds drain_deadline{2000};
  /// Idle-sweep / metrics-sync period for the loop tick.
  std::chrono::milliseconds tick{50};
  /// Fold identical in-flight predictions into one job (see Coalescer).
  bool coalesce_predicts = true;
  /// Observability sinks; all optional, must outlive the server when set.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSession* trace = nullptr;
  obs::Logger* log = nullptr;
};

/// Where the server is in its shutdown lifecycle (see drain()).
enum class DrainState : unsigned char {
  kServing = 0,   ///< accepting and answering
  kDraining = 1,  ///< not accepting; in-flight jobs finishing
  kFlushing = 2,  ///< jobs done; response buffers flushing out
  kStopped = 3,   ///< loop stopped
};

[[nodiscard]] constexpr const char* drain_state_name(DrainState s) noexcept {
  switch (s) {
    case DrainState::kServing:
      return "serving";
    case DrainState::kDraining:
      return "draining";
    case DrainState::kFlushing:
      return "flushing";
    case DrainState::kStopped:
      return "stopped";
  }
  return "?";
}

class NetServer {
 public:
  /// Binds and listens (throws NetError with a clear message on failure),
  /// then starts the event-loop thread. `server` must outlive the NetServer.
  NetServer(server::CbesServer& server, NetConfig config);
  /// stop()s if still running.
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Stops accepting, answers every unanswered wire request with a kShutdown
  /// error frame, closes every connection, and joins the loop thread.
  /// Idempotent.
  void stop();

  /// Graceful shutdown: stops accepting, answers queued-but-unstarted work
  /// with typed kShutdown, lets running jobs finish (bounded by
  /// drain_deadline), flushes every response buffer, then closes and joins.
  /// Every request read off the wire is answered — with its result or a
  /// typed kShutdown frame — never silently dropped. Idempotent; a
  /// concurrent or subsequent stop()/drain() just joins.
  void drain();

  [[nodiscard]] DrainState drain_state() const noexcept {
    return drain_state_.load(std::memory_order_relaxed);
  }

  /// The bound port (the kernel's pick when configured with port 0).
  [[nodiscard]] std::uint16_t port() const noexcept {
    return listener_.port();
  }
  [[nodiscard]] std::string listen_address() const {
    return listener_.host() + ":" + std::to_string(listener_.port());
  }

  /// Fills `status.net` from the wire counters. Safe from any thread.
  void fill_status(server::ServerStatus& status) const;

  // ---- counters (tests, bench) ----------------------------------------------
  [[nodiscard]] std::uint64_t coalesce_hits() const noexcept {
    return counters_.coalesce_hits.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t connections_total() const noexcept {
    return counters_.connections_total.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t protocol_errors() const noexcept {
    return counters_.protocol_errors.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rate_limited() const noexcept {
    return counters_.rate_limited.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t slow_evicted() const noexcept {
    return counters_.slow_evicted.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t accepts_refused() const noexcept {
    return counters_.accepts_refused.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t drain_shutdown_answered() const noexcept {
    return counters_.drain_shutdown_answered.load(std::memory_order_relaxed);
  }

 private:
  /// One wire request whose job is in flight: where to send the answer.
  struct Waiter {
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
    bool coalesced = false;  ///< joined another request's job
  };
  /// All waiters of one submitted job (waiters[0] is the leader, whose
  /// priority and deadline govern the job).
  struct PendingJob {
    MsgType request_type = MsgType::kPredictRequest;
    std::vector<Waiter> waiters;
    server::JobHandle handle;
  };
  /// Counter values last mirrored into the metrics registry (loop thread).
  struct SyncedCounters {
    std::uint64_t connections_total = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t frames_rx = 0;
    std::uint64_t frames_tx = 0;
    std::uint64_t coalesce_hits = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t backpressure_events = 0;
    std::uint64_t idle_closed = 0;
    std::uint64_t rate_limited = 0;
    std::uint64_t slow_evicted = 0;
    std::uint64_t accepts_refused = 0;
    std::uint64_t drain_shutdown_answered = 0;
  };

  // All private methods run on the loop thread.
  void on_accept(int fd, std::string peer);
  void on_request(Connection& conn, RequestFrame&& request);
  void on_closed(Connection& conn, const char* reason);
  void handle_status(Connection& conn, const RequestFrame& request);
  /// Submits (or coalesces) one decoded request; registers the waiter.
  void submit_request(Connection& conn, RequestFrame&& request);
  /// Registers `handle` (just submitted for `request`) and hooks completion.
  void track_job(Connection& conn, const RequestFrame& request,
                 server::JobHandle handle);
  /// Completion fan-out: runs as a posted task once the job finishes.
  void on_job_complete(std::uint64_t job_id, server::JobResult result);
  void shutdown_on_loop();
  /// Drain phase 1: stop accepting, shed queued-but-unstarted work with
  /// typed kShutdown, start the drain-deadline clock.
  void drain_on_loop();
  /// Drain progress: advances kDraining -> kFlushing once pending_ empties
  /// (or the deadline passes), kFlushing -> kStopped once every connection
  /// has flushed and closed (or the flush deadline passes).
  void check_drain();
  /// Answers every waiter of `pending` with a typed kShutdown frame and
  /// cancels the job.
  void shed_pending(std::uint64_t job_id, PendingJob& pending,
                    const char* detail);
  void finish_drain();
  void sweep_idle();
  /// Mirrors the live connection set for statusz (loop thread; readers take
  /// the table mutex).
  void refresh_conn_table();
  void sync_metrics();
  /// Registration-time profile hash for `app`, cached per name (the server
  /// contract submits jobs only after the app's profile registration).
  [[nodiscard]] std::uint64_t app_profile_hash(const std::string& app);

  server::CbesServer* server_;
  NetConfig config_;
  /// shared_ptr: job-completion callbacks co-own the loop (see header).
  std::shared_ptr<EventLoop> loop_;
  Listener listener_;
  NetCounters counters_;

  // Loop-thread state.
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  std::uint64_t next_conn_id_ = 1;
  Coalescer coalescer_;
  std::unordered_map<std::uint64_t, PendingJob> pending_;
  std::unordered_map<std::string, std::uint64_t> profile_hashes_;
  /// Latest request `now` seen; stamps wire log events with a simulated time
  /// so log order stays deterministic.
  Seconds last_now_ = 0.0;
  bool stopping_ = false;
  bool draining_ = false;
  bool flushing_ = false;
  std::chrono::steady_clock::time_point drain_deadline_at_;
  std::size_t accepts_this_tick_ = 0;
  SyncedCounters synced_;

  std::thread loop_thread_;
  std::atomic<bool> stop_started_{false};
  std::atomic<DrainState> drain_state_{DrainState::kServing};

  /// statusz mirror of connections_ (refreshed each tick on the loop thread;
  /// fill_status reads it from arbitrary threads).
  mutable std::mutex conn_table_mu_;
  std::vector<server::NetConnEntry> conn_table_;

  // Cached instruments (null when config_.metrics is null); synced from
  // counters_ on every tick and at stop().
  obs::Counter* m_connections_total_ = nullptr;
  obs::Gauge* m_connections_open_ = nullptr;
  obs::Gauge* m_backpressured_ = nullptr;
  obs::Counter* m_rx_bytes_ = nullptr;
  obs::Counter* m_tx_bytes_ = nullptr;
  obs::Counter* m_frames_rx_ = nullptr;
  obs::Counter* m_frames_tx_ = nullptr;
  obs::Counter* m_coalesced_ = nullptr;
  obs::Counter* m_protocol_errors_ = nullptr;
  obs::Counter* m_backpressure_events_ = nullptr;
  obs::Counter* m_idle_closed_ = nullptr;
  obs::Counter* m_rate_limited_ = nullptr;
  obs::Counter* m_slow_evicted_ = nullptr;
  obs::Counter* m_accepts_refused_ = nullptr;
  obs::Counter* m_drain_answered_ = nullptr;
  obs::Gauge* m_drain_state_ = nullptr;
};

}  // namespace cbes::net
