#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "net/net_error.h"

namespace cbes::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw NetError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw_errno("epoll_ctl(wake)");
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, IoHandler handler) {
  CBES_CHECK_MSG(fd >= 0, "add_fd: negative fd");
  CBES_CHECK_MSG(handlers_.find(fd) == handlers_.end(),
                 "add_fd: fd already registered");
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(add)");
  }
  handlers_.emplace(fd, std::make_shared<IoHandler>(std::move(handler)));
}

void EventLoop::mod_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(mod)");
  }
}

void EventLoop::del_fd(int fd) {
  handlers_.erase(fd);
  // The fd may already be closed by the caller's error path; ignore ENOENT
  // and EBADF rather than turning teardown into a throw.
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::post(std::function<void()> task) {
  {
    const std::lock_guard lock(tasks_mu_);
    tasks_.push_back(std::move(task));
  }
  wake();
}

void EventLoop::stop() {
  {
    const std::lock_guard lock(tasks_mu_);
    stop_requested_ = true;
  }
  wake();
}

void EventLoop::set_tick(std::function<void()> tick,
                         std::chrono::milliseconds period) {
  tick_ = std::move(tick);
  tick_period_ = period;
}

void EventLoop::run() {
  loop_thread_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  auto next_tick = std::chrono::steady_clock::now() + tick_period_;
  std::vector<epoll_event> events(64);
  for (;;) {
    {
      const std::lock_guard lock(tasks_mu_);
      if (stop_requested_) break;
    }
    int timeout_ms = -1;
    if (tick_ && tick_period_.count() > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= next_tick) {
        tick_();
        next_tick = now + tick_period_;
      }
      const auto until =
          std::chrono::duration_cast<std::chrono::milliseconds>(next_tick -
                                                                now);
      timeout_ms = static_cast<int>(std::max<std::int64_t>(until.count(), 0));
    }
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[static_cast<std::size_t>(i)];
      if (ev.data.fd == wake_fd_) {
        drain_wake();
        continue;
      }
      // Fresh lookup per event: a handler earlier in this batch may have
      // del_fd()ed this fd, in which case the event is stale and skipped.
      const auto it = handlers_.find(ev.data.fd);
      if (it == handlers_.end()) continue;
      const std::shared_ptr<IoHandler> handler = it->second;
      (*handler)(ev.events);
    }
    run_posted();
    if (n == static_cast<int>(events.size())) {
      events.resize(events.size() * 2);
    }
  }
  run_posted();  // drain tasks posted just before stop()
  loop_thread_.store(std::thread::id{}, std::memory_order_relaxed);
}

bool EventLoop::in_loop_thread() const noexcept {
  return loop_thread_.load(std::memory_order_relaxed) ==
         std::this_thread::get_id();
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; short writes cannot happen
  // for 8-byte eventfd writes. A signal landing mid-write must not eat the
  // wakeup — a lost wake() is a stuck posted task or a hung stop().
  while (::write(wake_fd_, &one, sizeof(one)) < 0 && errno == EINTR) {
  }
}

void EventLoop::drain_wake() const {
  std::uint64_t count = 0;
  for (;;) {
    const ssize_t n = ::read(wake_fd_, &count, sizeof(count));
    if (n > 0) continue;
    if (n < 0 && errno == EINTR) continue;  // signal storm: keep draining
    break;  // EAGAIN: counter is empty
  }
}

void EventLoop::run_posted() {
  std::vector<std::function<void()>> batch;
  {
    const std::lock_guard lock(tasks_mu_);
    batch.swap(tasks_);
  }
  for (auto& task : batch) task();
}

}  // namespace cbes::net
