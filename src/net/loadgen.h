// Load-generator client for the wire front-end: N blocking-socket client
// threads, each pipelining mixed-priority predict/compare requests at one
// NetServer until a duration or request budget runs out, measuring per-
// request latency at the client. Drives the server to saturation over
// loopback — the harness behind bench_net_throughput and the CI net-smoke
// step (`cbes_cli loadgen`).
//
// WireClient is the minimal synchronous client the loadgen threads (and the
// e2e tests) are built from: one connection, blocking call() round-trips.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/codec.h"

namespace cbes::net {

/// One blocking client connection. Not thread-safe; one per thread.
class WireClient {
 public:
  /// Connects (throws NetError on failure).
  WireClient(const std::string& host, std::uint16_t port,
             CodecLimits limits = {});
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Encodes and writes one request frame (blocking).
  void send(const RequestFrame& request);
  /// Writes raw bytes as-is — how the hardening tests deliver frames no
  /// encoder would produce.
  void send_raw(const std::vector<std::uint8_t>& bytes);
  /// Blocks until one whole response frame arrives and decodes it. Throws
  /// NetError on connection loss or an undecodable response.
  [[nodiscard]] ResponseFrame recv();
  /// send() + recv() — valid only with no other requests outstanding.
  [[nodiscard]] ResponseFrame call(const RequestFrame& request);

  [[nodiscard]] std::uint64_t tx_bytes() const noexcept { return tx_bytes_; }
  [[nodiscard]] std::uint64_t rx_bytes() const noexcept { return rx_bytes_; }

 private:
  int fd_ = -1;
  CodecLimits limits_;
  std::vector<std::uint8_t> buf_;  ///< bytes received, not yet decoded
  std::size_t off_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t rx_bytes_ = 0;
};

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Client threads, one connection each.
  std::size_t connections = 4;
  /// Outstanding (pipelined) requests per connection.
  std::size_t pipeline = 8;
  /// Stop offering new requests after this long; outstanding ones drain.
  double duration_s = 2.0;
  /// When nonzero, each connection offers exactly this many requests and
  /// `duration_s` is ignored.
  std::uint64_t requests_per_connection = 0;
  /// Deadline stamped on every request envelope; 0 = unbounded.
  std::uint32_t deadline_ms = 0;
  /// Seed for the per-thread request mix streams.
  std::uint64_t seed = 1;
  std::string app;
  /// Candidate mappings requests draw from (must be non-empty).
  std::vector<Mapping> mappings;
  /// Fraction of requests that are compares over all mappings (rest are
  /// single predictions).
  double compare_fraction = 0.0;
  /// Rotate priorities interactive/normal/batch per request; false = all
  /// normal.
  bool mixed_priority = true;
  /// Simulated request time stamped on every payload.
  double now = 0.0;
  CodecLimits limits;
};

struct LoadGenReport {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< answered with a result frame
  std::uint64_t coalesced = 0;  ///< completed answers flagged coalesced
  std::uint64_t rejected = 0;   ///< kRejected error frames (admission)
  std::uint64_t shed = 0;       ///< kFailed + FailReason::kShed (brown-out)
  std::uint64_t cancelled = 0;  ///< kCancelled error frames (deadline)
  std::uint64_t failed = 0;     ///< other error frames
  std::uint64_t transport_errors = 0;  ///< connections lost mid-run
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_bytes = 0;
  double elapsed_s = 0.0;
  double offered_rps = 0.0;  ///< submitted / elapsed
  double goodput_rps = 0.0;  ///< completed / elapsed
  double p50_ms = 0.0;       ///< completed-request latency quantiles
  double p99_ms = 0.0;
  /// Order-independent checksum over the answer stream: a wrapping sum of
  /// each predicted time's IEEE-754 bit pattern mixed with its request id,
  /// so repeated identical answers cannot cancel out. Two runs with the same
  /// seed and request budget produce the same value iff every answer is
  /// bit-identical.
  std::uint64_t answer_checksum = 0;
};

/// Runs the load; blocks until every thread drains. Throws ContractError on
/// unusable options, NetError when no connection can be established.
[[nodiscard]] LoadGenReport run_loadgen(const LoadGenOptions& options);

}  // namespace cbes::net
