// Load-generator client for the wire front-end: N resilient client threads
// (net::NetClient — reconnect, failover, idempotent-read replay), each
// pipelining mixed-priority predict/compare requests at one NetServer until
// a duration or request budget runs out, measuring per-request latency at
// the client. Drives the server to saturation over loopback — the harness
// behind bench_net_throughput and the CI net-smoke / net-chaos steps
// (`cbes_cli loadgen`).
//
// WireClient is the minimal synchronous client the e2e tests are built from:
// one connection, blocking call() round-trips, no retry. An optional
// Transport lets tests and the adversarial modes inject socket chaos
// (net/transport.h).
//
// Adversarial modes (`--adversarial`) turn some connections hostile:
// dribble (1 byte per write through a FaultyTransport), stall (half a
// header, then silence — slowloris), garbage (random bytes), and
// disconnect-mid-frame. The server must defend (evict, answer typed errors)
// while the well-behaved connections keep making progress.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/codec.h"
#include "net/net_client.h"

namespace cbes::net {

class Transport;

/// One blocking client connection. Not thread-safe; one per thread.
class WireClient {
 public:
  /// Connects (throws NetError on failure). `transport` (optional) carries
  /// the byte I/O; it must outlive the client.
  WireClient(const std::string& host, std::uint16_t port,
             CodecLimits limits = {}, Transport* transport = nullptr);
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Encodes and writes one request frame (blocking).
  void send(const RequestFrame& request);
  /// Writes raw bytes as-is — how the hardening tests deliver frames no
  /// encoder would produce.
  void send_raw(const std::vector<std::uint8_t>& bytes);
  /// Blocks until one whole response frame arrives and decodes it. Throws
  /// NetError on connection loss or an undecodable response.
  [[nodiscard]] ResponseFrame recv();
  /// send() + recv() — valid only with no other requests outstanding.
  [[nodiscard]] ResponseFrame call(const RequestFrame& request);

  [[nodiscard]] std::uint64_t tx_bytes() const noexcept { return tx_bytes_; }
  [[nodiscard]] std::uint64_t rx_bytes() const noexcept { return rx_bytes_; }

 private:
  int fd_ = -1;
  CodecLimits limits_;
  Transport* transport_;           ///< never null after construction
  std::vector<std::uint8_t> buf_;  ///< bytes received, not yet decoded
  std::size_t off_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t rx_bytes_ = 0;
};

/// Hostile-client behavior for `--adversarial` loadgen connections.
enum class Adversary : unsigned char {
  kNone = 0,
  kDribble,     ///< whole valid requests, one byte per write
  kStall,       ///< half a frame header, then silence (slowloris)
  kGarbage,     ///< random bytes that decode to nothing
  kDisconnect,  ///< half a frame, then an abrupt close
  kMix,         ///< rotate through the four modes per round
};

/// Parses "dribble" / "stall" / "garbage" / "disconnect" / "mix"; throws
/// ContractError on anything else.
[[nodiscard]] Adversary parse_adversary(const std::string& name);
[[nodiscard]] const char* adversary_name(Adversary a) noexcept;

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Failover set for the resilient client threads (the `--connect a,b,...`
  /// syntax); empty = the single {host, port} endpoint above.
  std::vector<Endpoint> endpoints;
  /// Client threads, one connection each.
  std::size_t connections = 4;
  /// Outstanding (pipelined) requests per connection.
  std::size_t pipeline = 8;
  /// Stop offering new requests after this long; outstanding ones drain.
  double duration_s = 2.0;
  /// When nonzero, each connection offers exactly this many requests and
  /// `duration_s` is ignored.
  std::uint64_t requests_per_connection = 0;
  /// Deadline stamped on every request envelope; 0 = unbounded.
  std::uint32_t deadline_ms = 0;
  /// Seed for the per-thread request mix streams.
  std::uint64_t seed = 1;
  std::string app;
  /// Candidate mappings requests draw from (must be non-empty).
  std::vector<Mapping> mappings;
  /// Fraction of requests that are compares over all mappings (rest are
  /// single predictions).
  double compare_fraction = 0.0;
  /// Rotate priorities interactive/normal/batch per request; false = all
  /// normal.
  bool mixed_priority = true;
  /// Simulated request time stamped on every payload.
  double now = 0.0;
  CodecLimits limits;
  /// Hostile-client mode for the adversarial connections (kNone = all
  /// connections are well-behaved).
  Adversary adversary = Adversary::kNone;
  /// Extra hostile connections run *alongside* `connections`; 0 with a
  /// non-kNone adversary means one hostile connection.
  std::size_t adversarial_connections = 0;
  /// Socket-chaos injection on the well-behaved connections' transports
  /// (0 disables): probability of partial writes / EAGAIN storms per op,
  /// applied through a per-thread seeded FaultyTransport.
  double chaos_partial = 0.0;
  double chaos_eagain = 0.0;
  /// Probability of a mid-stream connection reset per op (the resilient
  /// client reconnects and replays).
  double chaos_reset = 0.0;
  /// Cap on injected resets per connection (0 = unlimited).
  std::size_t chaos_max_resets = 0;
};

struct LoadGenReport {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< answered with a result frame
  std::uint64_t coalesced = 0;  ///< completed answers flagged coalesced
  std::uint64_t rejected = 0;   ///< kRejected error frames (admission)
  std::uint64_t shed = 0;       ///< kFailed + FailReason::kShed (brown-out)
  std::uint64_t cancelled = 0;  ///< kCancelled error frames (deadline)
  std::uint64_t rate_limited = 0;  ///< kRateLimited error frames
  std::uint64_t shutdown = 0;   ///< kShutdown error frames (drain)
  std::uint64_t failed = 0;     ///< other error frames
  std::uint64_t transport_errors = 0;  ///< connections lost mid-run
  std::uint64_t reconnects = 0;   ///< resilient-client reconnects
  std::uint64_t replays = 0;      ///< idempotent requests replayed
  std::uint64_t attacker_rounds = 0;  ///< hostile rounds completed
  std::uint64_t attacker_errors = 0;  ///< hostile connections refused/killed
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_bytes = 0;
  double elapsed_s = 0.0;
  double offered_rps = 0.0;  ///< submitted / elapsed
  double goodput_rps = 0.0;  ///< completed / elapsed
  double p50_ms = 0.0;       ///< completed-request latency quantiles
  double p99_ms = 0.0;
  /// Order-independent checksum over the answer stream: a wrapping sum of
  /// each predicted time's IEEE-754 bit pattern mixed with its request id,
  /// so repeated identical answers cannot cancel out. Two runs with the same
  /// seed and request budget produce the same value iff every answer is
  /// bit-identical.
  std::uint64_t answer_checksum = 0;
};

/// Runs the load; blocks until every thread drains. Throws ContractError on
/// unusable options, NetError when no connection can be established.
[[nodiscard]] LoadGenReport run_loadgen(const LoadGenOptions& options);

}  // namespace cbes::net
