// The one exception type the wire front-end throws for socket-layer
// failures: bind/listen/connect errors, epoll setup, resource exhaustion.
// Protocol damage never throws — it becomes a typed WireError frame and a
// closed connection (see codec.h).
#pragma once

#include <stdexcept>
#include <string>

namespace cbes::net {

class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace cbes::net
