#include "net/transport.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>

#include "common/check.h"
#include "common/rng.h"
#include "fault/fault.h"

namespace cbes::net {

ssize_t SocketTransport::read(int fd, void* buf, std::size_t len) {
  return ::recv(fd, buf, len, 0);
}

ssize_t SocketTransport::write(int fd, const void* buf, std::size_t len) {
  // MSG_NOSIGNAL: a peer gone mid-write is EPIPE, never SIGPIPE — the state
  // machines above treat it like any other dead-socket errno.
  return ::send(fd, buf, len, MSG_NOSIGNAL);
}

SocketTransport& SocketTransport::instance() noexcept {
  static SocketTransport transport;
  return transport;
}

FaultyTransportConfig FaultyTransportConfig::from_plan(
    const fault::FaultPlan& plan, std::uint64_t seed) {
  FaultyTransportConfig config;
  config.seed = seed;
  for (const fault::FaultEvent& e : plan.events()) {
    switch (e.kind) {
      case fault::FaultKind::kSocketPartialIo:
        config.partial_read = std::max(config.partial_read, e.magnitude);
        config.partial_write = std::max(config.partial_write, e.magnitude);
        break;
      case fault::FaultKind::kSocketEagain:
        config.eagain_read = std::max(config.eagain_read, e.magnitude);
        config.eagain_write = std::max(config.eagain_write, e.magnitude);
        break;
      case fault::FaultKind::kSocketReset:
        config.reset = std::max(config.reset, e.magnitude);
        break;
      case fault::FaultKind::kSocketStall:
        config.stall = std::max(config.stall, 0.05);
        config.stall_ms = std::max(
            config.stall_ms, static_cast<std::uint32_t>(e.magnitude * 1e3));
        break;
      default:
        break;
    }
  }
  return config;
}

FaultyTransport::FaultyTransport(FaultyTransportConfig config, Transport* base)
    : config_(config),
      base_(base != nullptr ? base : &SocketTransport::instance()),
      state_(derive_seed(config.seed, 0x50C4E7)) {
  const auto probability = [](double p) {
    CBES_CHECK_MSG(p >= 0.0 && p <= 1.0,
                   "fault probability must be in [0, 1]");
  };
  probability(config_.partial_read);
  probability(config_.partial_write);
  probability(config_.eagain_read);
  probability(config_.eagain_write);
  probability(config_.reset);
  probability(config_.stall);
  CBES_CHECK_MSG(config_.eagain_burst >= 1, "eagain burst must be >= 1");
}

double FaultyTransport::draw() noexcept {
  // splitmix64 output scaled to [0, 1): one draw per decision keeps the
  // schedule a pure function of (seed, draw index).
  return static_cast<double>(splitmix64(state_) >> 11) * 0x1.0p-53;
}

ssize_t FaultyTransport::read(int fd, void* buf, std::size_t len) {
  ++stats_.reads;
  if (poisoned_) {
    errno = ECONNRESET;
    return -1;
  }
  if (config_.stall > 0.0 && draw() < config_.stall) {
    ++stats_.stalls;
    std::this_thread::sleep_for(std::chrono::milliseconds(config_.stall_ms));
  }
  if (config_.reset > 0.0 &&
      (config_.max_resets == 0 || stats_.resets < config_.max_resets) &&
      draw() < config_.reset) {
    ++stats_.resets;
    poisoned_ = true;
    errno = ECONNRESET;
    return -1;
  }
  if (eagain_reads_left_ > 0) {
    --eagain_reads_left_;
    ++stats_.eagains;
    errno = EAGAIN;
    return -1;
  }
  if (config_.eagain_read > 0.0 && draw() < config_.eagain_read) {
    eagain_reads_left_ = config_.eagain_burst - 1;
    ++stats_.eagains;
    errno = EAGAIN;
    return -1;
  }
  std::size_t ask = len;
  bool truncated = false;
  if (config_.partial_read > 0.0 && len > 1 &&
      draw() < config_.partial_read) {
    // Truncate the *request*, not the result: the kernel then delivers a
    // short read exactly as a slow network would.
    ask = 1 + static_cast<std::size_t>(draw() * static_cast<double>(len - 1));
    truncated = true;
  }
  const ssize_t n = base_->read(fd, buf, ask);
  if (truncated && n > 0) ++stats_.partial_reads;
  return n;
}

ssize_t FaultyTransport::write(int fd, const void* buf, std::size_t len) {
  ++stats_.writes;
  if (poisoned_) {
    errno = ECONNRESET;
    return -1;
  }
  if (config_.stall > 0.0 && draw() < config_.stall) {
    ++stats_.stalls;
    std::this_thread::sleep_for(std::chrono::milliseconds(config_.stall_ms));
  }
  if (config_.reset > 0.0 &&
      (config_.max_resets == 0 || stats_.resets < config_.max_resets) &&
      draw() < config_.reset) {
    ++stats_.resets;
    poisoned_ = true;
    errno = ECONNRESET;
    return -1;
  }
  if (eagain_writes_left_ > 0) {
    --eagain_writes_left_;
    ++stats_.eagains;
    errno = EAGAIN;
    return -1;
  }
  if (config_.eagain_write > 0.0 && draw() < config_.eagain_write) {
    eagain_writes_left_ = config_.eagain_burst - 1;
    ++stats_.eagains;
    errno = EAGAIN;
    return -1;
  }
  std::size_t ask = len;
  bool truncated = false;
  if (config_.short_write_cap > 0 && ask > config_.short_write_cap) {
    ask = config_.short_write_cap;
    truncated = true;
  }
  if (config_.partial_write > 0.0 && ask > 1 &&
      draw() < config_.partial_write) {
    ask = 1 + static_cast<std::size_t>(draw() * static_cast<double>(ask - 1));
    truncated = true;
  }
  const ssize_t n = base_->write(fd, buf, ask);
  if (truncated && n > 0) ++stats_.partial_writes;
  return n;
}

}  // namespace cbes::net
