#include "obs/tracer.h"

#include <atomic>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace cbes::obs {

namespace {

/// Small dense thread ids for trace rows (std::thread::id is opaque).
std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

TraceSession::TraceSession(std::size_t capacity) : capacity_(capacity) {
  CBES_CHECK_MSG(capacity >= 2, "trace buffer too small to hold one span");
  events_.reserve(capacity < 1024 ? capacity : 1024);
}

void TraceSession::record(std::string_view name, char phase) {
  const double ts = now_us();
  const std::uint32_t tid = current_tid();
  const std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{std::string(name), phase, ts, tid});
}

void TraceSession::begin(std::string_view name) { record(name, 'B'); }
void TraceSession::end(std::string_view name) { record(name, 'E'); }
void TraceSession::instant(std::string_view name) { record(name, 'i'); }

std::size_t TraceSession::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t TraceSession::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceSession::export_chrome_json(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  os << "{\"traceEvents\":[";
  bool first = true;
  std::string name;
  for (const Event& e : events_) {
    if (!first) os << ',';
    first = false;
    name.clear();
    append_escaped(name, e.name);
    os << "{\"name\":\"" << name << "\",\"cat\":\"cbes\",\"ph\":\"" << e.phase
       << "\",\"ts\":" << e.ts_us << ",\"pid\":1,\"tid\":" << e.tid;
    // Instant events need a scope; thread scope keeps them on their row.
    if (e.phase == 'i') os << ",\"s\":\"t\"";
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

std::string TraceSession::to_json() const {
  std::ostringstream os;
  export_chrome_json(os);
  return os.str();
}

}  // namespace cbes::obs
