#include "obs/tracer.h"

#include <atomic>
#include <cstdio>
#include <sstream>

#include "common/check.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace cbes::obs {

namespace {

/// Small dense thread ids for trace rows (std::thread::id is opaque).
std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

[[nodiscard]] bool is_async_phase(char phase) noexcept {
  return phase == 'b' || phase == 'e' || phase == 'n';
}

}  // namespace

TraceArgs& TraceArgs::add(std::string_view key, std::string_view value) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  append_escaped(body_, key);
  body_ += "\":\"";
  append_escaped(body_, value);
  body_ += '"';
  return *this;
}

TraceArgs& TraceArgs::add(std::string_view key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  append_escaped(body_, key);
  body_ += "\":";
  body_ += buf;
  return *this;
}

TraceArgs& TraceArgs::add(std::string_view key, std::uint64_t value) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  append_escaped(body_, key);
  body_ += "\":";
  body_ += std::to_string(value);
  return *this;
}

TraceArgs& TraceArgs::add(std::string_view key, std::int64_t value) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  append_escaped(body_, key);
  body_ += "\":";
  body_ += std::to_string(value);
  return *this;
}

TraceArgs& TraceArgs::add(std::string_view key, bool value) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  append_escaped(body_, key);
  body_ += "\":";
  body_ += value ? "true" : "false";
  return *this;
}

TraceSession::TraceSession(std::size_t capacity) : capacity_(capacity) {
  CBES_CHECK_MSG(capacity >= 2, "trace buffer too small to hold one span");
  events_.reserve(capacity < 1024 ? capacity : 1024);
}

void TraceSession::record(std::string_view name, char phase, std::uint64_t id,
                          std::string args) {
  const double ts = now_us();
  const std::uint32_t tid = current_tid();
  bool dropped = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() >= capacity_) {
      ++dropped_;
      dropped = true;
    } else {
      events_.push_back(
          Event{std::string(name), phase, ts, tid, id, std::move(args)});
    }
  }
  if (dropped) {
    if (Counter* c = dropped_metric_.load(std::memory_order_relaxed)) {
      c->inc();
    }
    // Warn exactly once per session: the count lives in dropped()/metrics,
    // and a per-drop log would itself flood the log ring.
    if (Logger* log = log_.load(std::memory_order_relaxed)) {
      if (!drop_warned_.exchange(true, std::memory_order_relaxed)) {
        log->warn("trace/drop", 0.0,
                  {{"capacity", capacity_}, {"event", std::string(name)}});
      }
    }
    return;
  }
  if (Counter* c = events_metric_.load(std::memory_order_relaxed)) {
    c->inc();
  }
}

void TraceSession::begin(std::string_view name) { record(name, 'B'); }
void TraceSession::end(std::string_view name) { record(name, 'E'); }
void TraceSession::instant(std::string_view name) { record(name, 'i'); }
void TraceSession::instant(std::string_view name, TraceArgs args) {
  record(name, 'i', 0, std::move(args.body_));
}

void TraceSession::async_begin(std::string_view name, std::uint64_t id,
                               TraceArgs args) {
  record(name, 'b', id, std::move(args.body_));
}

void TraceSession::async_end(std::string_view name, std::uint64_t id,
                             TraceArgs args) {
  record(name, 'e', id, std::move(args.body_));
}

void TraceSession::async_instant(std::string_view name, std::uint64_t id,
                                 TraceArgs args) {
  record(name, 'n', id, std::move(args.body_));
}

std::size_t TraceSession::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t TraceSession::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceSession::set_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    events_metric_.store(nullptr, std::memory_order_relaxed);
    dropped_metric_.store(nullptr, std::memory_order_relaxed);
    return;
  }
  events_metric_.store(
      &registry->counter("cbes_trace_events_total", "Trace events recorded"),
      std::memory_order_relaxed);
  dropped_metric_.store(
      &registry->counter(
          "cbes_trace_dropped_total",
          "Trace events dropped because the session buffer was full"),
      std::memory_order_relaxed);
}

void TraceSession::set_logger(Logger* log) {
  log_.store(log, std::memory_order_relaxed);
}

void TraceSession::export_chrome_json(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  os << "{\"traceEvents\":[";
  bool first = true;
  std::string name;
  for (const Event& e : events_) {
    if (!first) os << ',';
    first = false;
    name.clear();
    append_escaped(name, e.name);
    os << "{\"name\":\"" << name << "\",\"cat\":\"cbes\",\"ph\":\"" << e.phase
       << "\",\"ts\":" << e.ts_us << ",\"pid\":1,\"tid\":" << e.tid;
    // Async events are correlated by (cat, id) across threads.
    if (is_async_phase(e.phase)) os << ",\"id\":\"" << e.id << '"';
    // Instant events need a scope; thread scope keeps them on their row.
    if (e.phase == 'i') os << ",\"s\":\"t\"";
    if (!e.args.empty()) os << ",\"args\":{" << e.args << '}';
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

std::string TraceSession::to_json() const {
  std::ostringstream os;
  export_chrome_json(os);
  return os.str();
}

}  // namespace cbes::obs
