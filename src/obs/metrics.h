// Metrics registry for the CBES service: counters, gauges, and fixed-bucket
// histograms with Prometheus-style text exposition.
//
// Updates are lock-free (`std::atomic`, relaxed ordering) so instrumented hot
// paths pay one atomic RMW per event; only instrument *registration* and text
// exposition take the registry mutex. Instruments are owned by the registry
// and live as long as it does, so callers cache the returned references.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cbes::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written scalar (calibration seconds, registered profiles, ...).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket `i` counts observations `<= bounds[i]`
/// (non-cumulative storage; exposition emits Prometheus cumulative buckets
/// plus the implicit `+Inf` overflow bucket).
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Non-cumulative count of bucket `i`; `i == bounds().size()` is overflow.
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const;

  /// Quantile estimate (q in [0, 1]) by linear interpolation within the
  /// containing bucket; the overflow bucket reports the largest bound.
  [[nodiscard]] double quantile(double q) const;

  /// Exponential bucket ladder: `first, first*factor, ...` (`n` bounds).
  [[nodiscard]] static std::vector<double> exponential(double first,
                                                       double factor,
                                                       std::size_t n);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named instrument store with Prometheus text-format exposition.
class MetricsRegistry {
 public:
  /// Returns the instrument registered under `name`, creating it on first
  /// use. Re-requesting a name with a different instrument kind throws.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// First registration fixes the bucket bounds; later calls ignore them.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  /// Prometheus text exposition format (# HELP / # TYPE / samples).
  [[nodiscard]] std::string expose_text() const;

  /// Flat scalar view for machine-readable reports: counters and gauges by
  /// name, histograms as `<name>_count` / `<name>_sum`.
  struct Sample {
    std::string name;
    double value = 0.0;
    std::string help;
  };
  [[nodiscard]] std::vector<Sample> samples() const;

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& entry_for(const std::string& name, const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace cbes::obs
