// Metrics registry for the CBES service: counters, gauges, and fixed-bucket
// histograms with Prometheus-style text exposition.
//
// Updates are lock-free (`std::atomic`, relaxed ordering) so instrumented hot
// paths pay one atomic RMW per event; only instrument *registration* and text
// exposition take the registry mutex. Instruments are owned by the registry
// and live as long as it does, so callers cache the returned references.
//
// Instruments may carry labels (`{priority="hi",outcome="done"}`): a family
// name maps to one kind + help text, and each distinct label set gets its own
// instrument. Family and label names are validated against the Prometheus
// charset at registration; help text and label values are escaped on
// exposition. The unlabeled overloads are the empty-label-set member of the
// family, so existing call sites are unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cbes::obs {

/// Label set for one instrument: (name, value) pairs. Order does not matter;
/// the registry sorts by label name so equal sets are one instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written scalar (calibration seconds, registered profiles, ...).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket `i` counts observations `<= bounds[i]`
/// (non-cumulative storage; exposition emits Prometheus cumulative buckets
/// plus the implicit `+Inf` overflow bucket).
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Non-cumulative count of bucket `i`; `i == bounds().size()` is overflow.
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const;

  /// Quantile estimate (q in [0, 1]) by linear interpolation within the
  /// containing bucket. Empty buckets are skipped, so q=0 reports the lower
  /// edge of the first occupied bucket; mass past the last bound (the
  /// overflow bucket) reports the largest bound — the histogram cannot see
  /// further. An empty histogram reports 0.
  [[nodiscard]] double quantile(double q) const;

  /// Exponential bucket ladder: `first, first*factor, ...` (`n` bounds).
  [[nodiscard]] static std::vector<double> exponential(double first,
                                                       double factor,
                                                       std::size_t n);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named instrument store with Prometheus text-format exposition.
class MetricsRegistry {
 public:
  /// Returns the instrument registered under `name` (+ optional labels),
  /// creating it on first use. Re-requesting a family with a different
  /// instrument kind throws, as does a name or label name outside the
  /// Prometheus charset ([a-zA-Z_:][a-zA-Z0-9_:]* for metric names,
  /// [a-zA-Z_][a-zA-Z0-9_]* and no "__" prefix for label names).
  Counter& counter(const std::string& name, const std::string& help = "");
  Counter& counter(const std::string& name, Labels labels,
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, Labels labels,
               const std::string& help = "");
  /// First registration fixes the family's bucket bounds; later calls (any
  /// label set) ignore them.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");
  Histogram& histogram(const std::string& name, Labels labels,
                       std::vector<double> bounds,
                       const std::string& help = "");

  /// Prometheus text exposition format (# HELP / # TYPE once per family,
  /// then one sample block per label set; help and label values escaped).
  [[nodiscard]] std::string expose_text() const;

  /// Flat scalar view for machine-readable reports: counters and gauges by
  /// name (labeled instruments as `name{k="v",...}`), histograms as
  /// `<name>_count` / `<name>_sum`.
  struct Sample {
    std::string name;
    double value = 0.0;
    std::string help;
  };
  [[nodiscard]] std::vector<Sample> samples() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  /// One (family, label set) instrument; exactly one pointer is set,
  /// matching the family kind.
  struct Instrument {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// One metric family: a kind, help text, and an instrument per label set.
  /// Keys of `series` are the rendered label block (`k="v",k2="v2"` with
  /// names sorted, values escaped) — empty for the unlabeled instrument.
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::map<std::string, Instrument> series;
  };

  Instrument& series_for(const std::string& name, const Labels& labels,
                         Kind kind, const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace cbes::obs
