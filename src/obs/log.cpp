#include "obs/log.h"

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "common/check.h"

namespace cbes::obs {

namespace {

[[nodiscard]] std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

[[nodiscard]] std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Sink order: simulated time, then severity, then event, then the rendered
/// fields; `seq` breaks exact ties only (identical lines either way).
[[nodiscard]] bool sink_less(const LogRecord& a, const LogRecord& b) {
  const auto key = [](const LogRecord& r) {
    return std::tuple<double, unsigned char, const std::string&>(
        r.sim_time, static_cast<unsigned char>(r.level), r.event);
  };
  if (key(a) != key(b)) return key(a) < key(b);
  const std::size_t n = std::min(a.fields.size(), b.fields.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a.fields[i].key != b.fields[i].key) {
      return a.fields[i].key < b.fields[i].key;
    }
    if (a.fields[i].value != b.fields[i].value) {
      return a.fields[i].value < b.fields[i].value;
    }
  }
  if (a.fields.size() != b.fields.size()) {
    return a.fields.size() < b.fields.size();
  }
  return a.seq < b.seq;
}

/// Text-sink value quoting: bare when the value is a simple token, otherwise
/// double-quoted with backslash escapes.
void append_text_value(std::string& out, const std::string& value) {
  const bool bare =
      !value.empty() &&
      value.find_first_of(" \t\n\"=\\") == std::string::npos;
  if (bare) {
    out += value;
    return;
  }
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

LogField::LogField(std::string_view k, double v)
    : key(k), value(format_double(v)) {}
LogField::LogField(std::string_view k, std::uint64_t v)
    : key(k), value(std::to_string(v)) {}
LogField::LogField(std::string_view k, std::int64_t v)
    : key(k), value(std::to_string(v)) {}

Logger::Logger(LoggerConfig config) : config_(config) {
  CBES_CHECK_MSG(config_.capacity >= 2, "log ring too small to be useful");
  const std::size_t capacity = round_up_pow2(config_.capacity);
  config_.capacity = capacity;
  mask_ = capacity - 1;
  cells_.reset(new Cell[capacity]);
  for (std::size_t i = 0; i < capacity; ++i) {
    cells_[i].stamp.store(i, std::memory_order_relaxed);
  }
}

void Logger::set_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    records_metric_.store(nullptr, std::memory_order_relaxed);
    dropped_metric_.store(nullptr, std::memory_order_relaxed);
    return;
  }
  records_metric_.store(&registry->counter("cbes_log_records_total",
                                           "Structured log records accepted"),
                        std::memory_order_relaxed);
  dropped_metric_.store(
      &registry->counter(
          "cbes_log_dropped_total",
          "Structured log records dropped because the ring buffer was full"),
      std::memory_order_relaxed);
}

void Logger::log(LogLevel level, std::string_view event, Seconds sim_time,
                 std::vector<LogField> fields) {
  if (!enabled(level)) return;
  // Vyukov MPMC enqueue: claim a cell whose stamp matches the position, fill
  // it, publish by bumping the stamp. A cell still owned by a slow reader
  // round means the ring is full — drop rather than wait.
  std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  Cell* cell = nullptr;
  for (;;) {
    cell = &cells_[pos & mask_];
    const std::uint64_t stamp = cell->stamp.load(std::memory_order_acquire);
    const auto dif = static_cast<std::int64_t>(stamp) -
                     static_cast<std::int64_t>(pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        break;
      }
    } else if (dif < 0) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      if (Counter* c = dropped_metric_.load(std::memory_order_relaxed)) {
        c->inc();
      }
      return;
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
  cell->record.seq = pos;
  cell->record.level = level;
  cell->record.sim_time = sim_time;
  cell->record.event.assign(event);
  cell->record.fields = std::move(fields);
  cell->stamp.store(pos + 1, std::memory_order_release);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (Counter* c = records_metric_.load(std::memory_order_relaxed)) {
    c->inc();
  }
}

void Logger::collect_locked() const {
  const std::size_t capacity = mask_ + 1;
  while (true) {
    Cell& cell = cells_[dequeue_pos_ & mask_];
    const std::uint64_t stamp = cell.stamp.load(std::memory_order_acquire);
    if (stamp != dequeue_pos_ + 1) break;  // next cell not yet published
    archive_.push_back(std::move(cell.record));
    cell.record = LogRecord{};
    // Free the cell for the producer lap `capacity` ahead.
    cell.stamp.store(dequeue_pos_ + capacity, std::memory_order_release);
    ++dequeue_pos_;
  }
}

std::size_t Logger::size() const {
  return accepted_.load(std::memory_order_relaxed);
}

std::uint64_t Logger::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

std::vector<LogRecord> Logger::records() const {
  const std::lock_guard lock(mu_);
  collect_locked();
  std::vector<LogRecord> out = archive_;
  std::stable_sort(out.begin(), out.end(), sink_less);
  return out;
}

void Logger::format_text(std::ostream& os) const {
  std::string line;
  for (const LogRecord& r : records()) {
    line.clear();
    line += "level=";
    line += log_level_name(r.level);
    line += " t=";
    line += format_double(r.sim_time);
    line += " event=";
    append_text_value(line, r.event);
    for (const LogField& f : r.fields) {
      line += ' ';
      line += f.key;
      line += '=';
      append_text_value(line, f.value);
    }
    line += '\n';
    os << line;
  }
}

void Logger::format_json(std::ostream& os) const {
  std::string out = "[";
  bool first = true;
  for (const LogRecord& r : records()) {
    if (!first) out += ',';
    first = false;
    out += "{\"level\":";
    append_json_string(out, log_level_name(r.level));
    out += ",\"t\":";
    out += format_double(r.sim_time);
    out += ",\"event\":";
    append_json_string(out, r.event);
    out += ",\"fields\":{";
    bool first_field = true;
    for (const LogField& f : r.fields) {
      if (!first_field) out += ',';
      first_field = false;
      append_json_string(out, f.key);
      out += ':';
      append_json_string(out, f.value);
    }
    out += "}}";
  }
  out += "]";
  os << out;
}

}  // namespace cbes::obs
