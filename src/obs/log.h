// Structured, leveled logging for the CBES serve path.
//
// A Logger accepts key-value records ("events") from any thread through a
// bounded lock-free MPMC ring buffer (Vyukov-style sequence-stamped cells):
// the hot path pays one fetch_add plus a cell write, never a mutex, and a
// full buffer drops the record (counted) instead of blocking a worker.
// Readers collect the ring into an archive under a mutex — only sinks and
// tests pay that cost.
//
// Determinism contract: the text/JSON sinks emit records sorted by
// (simulated time, level, event, fields), with the arrival sequence used only
// to break exact ties. Two runs that produce the same *multiset* of records
// therefore serialize byte-identically, however their threads interleaved —
// which is what lets fixed-seed chaos runs diff their logs. Call sites keep
// that property by logging simulated time and stable facts, never wall-clock
// durations.
//
// A Logger pointer of nullptr means "logging off"; call sites short-circuit
// on the null check before formatting anything, so disabled logging costs
// one branch (same contract as TraceSession / MetricsRegistry).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"

namespace cbes::obs {

enum class LogLevel : unsigned char {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

[[nodiscard]] constexpr const char* log_level_name(LogLevel l) noexcept {
  switch (l) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

/// One key-value pair of a structured record. Numeric constructors format
/// deterministically (%.6g for doubles), so a field renders identically
/// across runs and platforms for the same value.
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string_view k, std::string_view v) : key(k), value(v) {}
  LogField(std::string_view k, const char* v) : key(k), value(v) {}
  LogField(std::string_view k, const std::string& v) : key(k), value(v) {}
  LogField(std::string_view k, double v);
  LogField(std::string_view k, std::uint64_t v);
  LogField(std::string_view k, std::int64_t v);
  LogField(std::string_view k, int v) : LogField(k, std::int64_t{v}) {}
  // No std::size_t constructor: on LP64 it IS std::uint64_t.
  LogField(std::string_view k, bool v)
      : key(k), value(v ? "true" : "false") {}

  friend bool operator==(const LogField&, const LogField&) = default;
};

/// One structured record: what happened (`event`), when in simulated time,
/// how severe, and the facts (`fields`).
struct LogRecord {
  std::uint64_t seq = 0;  ///< arrival order; tie-breaker only, see header
  LogLevel level = LogLevel::kInfo;
  Seconds sim_time = 0.0;
  std::string event;
  std::vector<LogField> fields;
};

struct LoggerConfig {
  /// Ring capacity (records buffered between collections); rounded up to a
  /// power of two. Once full, further records are dropped and counted.
  std::size_t capacity = 1 << 12;
  /// Records below this level are discarded at the call site.
  LogLevel min_level = LogLevel::kInfo;
};

class Logger {
 public:
  explicit Logger(LoggerConfig config = {});

  /// True when `level` passes the configured floor — callers building
  /// expensive field sets may gate on it; log() re-checks regardless.
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return level >= config_.min_level;
  }

  void log(LogLevel level, std::string_view event, Seconds sim_time,
           std::vector<LogField> fields = {});
  void debug(std::string_view event, Seconds sim_time,
             std::vector<LogField> fields = {}) {
    log(LogLevel::kDebug, event, sim_time, std::move(fields));
  }
  void info(std::string_view event, Seconds sim_time,
            std::vector<LogField> fields = {}) {
    log(LogLevel::kInfo, event, sim_time, std::move(fields));
  }
  void warn(std::string_view event, Seconds sim_time,
            std::vector<LogField> fields = {}) {
    log(LogLevel::kWarn, event, sim_time, std::move(fields));
  }
  void error(std::string_view event, Seconds sim_time,
             std::vector<LogField> fields = {}) {
    log(LogLevel::kError, event, sim_time, std::move(fields));
  }

  /// Records accepted so far (archived plus still in the ring).
  [[nodiscard]] std::size_t size() const;
  /// Records dropped because the ring was full at the call site.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Snapshot of every record, in the deterministic sink order (see header).
  /// Non-consuming: repeated calls return the same records plus any new ones.
  [[nodiscard]] std::vector<LogRecord> records() const;

  /// `level=<l> t=<sim> event=<e> k=v ...` lines, one per record, in
  /// deterministic order. Values containing spaces, quotes, or '=' are
  /// double-quoted with backslash escapes.
  void format_text(std::ostream& os) const;
  /// JSON array of `{"level":...,"t":...,"event":...,"fields":{...}}`
  /// objects, same order as format_text.
  void format_json(std::ostream& os) const;

  /// Wires `cbes_log_records_total` / `cbes_log_dropped_total` into
  /// `registry` (nullptr disables; the default). Must outlive the logger.
  void set_metrics(MetricsRegistry* registry);

  [[nodiscard]] const LoggerConfig& config() const noexcept { return config_; }

 private:
  /// One ring cell; `stamp` is the Vyukov sequence: == pos means free for the
  /// producer claiming pos, == pos + 1 means occupied and readable.
  struct Cell {
    std::atomic<std::uint64_t> stamp{0};
    LogRecord record;
  };

  /// Moves every published ring record into archive_. Caller holds mu_.
  void collect_locked() const;

  LoggerConfig config_;
  std::size_t mask_ = 0;  ///< capacity - 1 (capacity is a power of two)
  std::unique_ptr<Cell[]> cells_;
  std::atomic<std::uint64_t> enqueue_pos_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> accepted_{0};

  mutable std::mutex mu_;                     // readers / archive only
  mutable std::uint64_t dequeue_pos_ = 0;     // guarded by mu_
  mutable std::vector<LogRecord> archive_;    // guarded by mu_

  // Atomic so the lock-free log() path can read them without mu_.
  std::atomic<Counter*> records_metric_{nullptr};
  std::atomic<Counter*> dropped_metric_{nullptr};
};

}  // namespace cbes::obs
