// Scheduler telemetry callbacks. The annealer reports once per temperature
// step through this interface, so tests, the CLI, and metrics sinks can watch
// convergence without touching the optimization loop. A null observer pointer
// disables telemetry entirely: the scheduler skips the stats bookkeeping and
// the virtual call — observation must not show up in scheduler wall time.
//
// Plain doubles/size_t only: obs knows nothing about mappings or pools, so
// every layer above common can link against it.
#pragma once

#include <cstddef>

namespace cbes::obs {

/// One temperature step of a simulated-annealing run.
struct AnnealStep {
  std::size_t restart = 0;      ///< restart index this step belongs to
  double temperature = 0.0;     ///< current temperature T
  std::size_t attempted = 0;    ///< Metropolis moves attempted at T
  std::size_t accepted = 0;     ///< moves accepted at T
  double current_energy = 0.0;  ///< energy of the walk endpoint
  double best_energy = 0.0;     ///< best energy seen so far (global)
  std::size_t evaluations = 0;  ///< cumulative cost-function invocations

  [[nodiscard]] double acceptance_rate() const {
    return attempted == 0
               ? 0.0
               : static_cast<double>(accepted) / static_cast<double>(attempted);
  }
};

class SchedulerObserver {
 public:
  virtual ~SchedulerObserver() = default;

  /// A restart begins: initial temperature `t0` and starting energy.
  virtual void on_restart(std::size_t restart, double t0,
                          double initial_energy) {
    (void)restart;
    (void)t0;
    (void)initial_energy;
  }

  /// One completed temperature step.
  virtual void on_temperature_step(const AnnealStep& step) { (void)step; }

  /// The run finished: final best energy and total effort.
  virtual void on_finish(double best_energy, std::size_t evaluations,
                         double wall_seconds) {
    (void)best_energy;
    (void)evaluations;
    (void)wall_seconds;
  }
};

}  // namespace cbes::obs
