#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace cbes::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  CBES_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  CBES_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                     std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                         bounds_.end(),
                 "histogram bounds must be strictly increasing");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  CBES_CHECK_MSG(i <= bounds_.size(), "histogram bucket index out of range");
  return buckets_[i].load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  CBES_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      if (in_bucket == 0) return hi;
      const double frac = (target - static_cast<double>(cumulative)) /
                          static_cast<double>(in_bucket);
      return lo + frac * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return bounds_.back();  // overflow bucket: best available bound
}

std::vector<double> Histogram::exponential(double first, double factor,
                                           std::size_t n) {
  CBES_CHECK_MSG(first > 0.0 && factor > 1.0 && n >= 1,
                 "exponential buckets need first > 0, factor > 1, n >= 1");
  std::vector<double> bounds;
  bounds.reserve(n);
  double b = first;
  for (std::size_t i = 0; i < n; ++i, b *= factor) bounds.push_back(b);
  return bounds;
}

MetricsRegistry::Entry& MetricsRegistry::entry_for(const std::string& name,
                                                   const std::string& help) {
  CBES_CHECK_MSG(!name.empty(), "metric name must not be empty");
  Entry& e = entries_[name];
  if (e.help.empty()) e.help = help;
  return e;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry_for(name, help);
  CBES_CHECK_MSG(!e.gauge && !e.histogram,
                 "metric already registered with a different kind: " + name);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry_for(name, help);
  CBES_CHECK_MSG(!e.counter && !e.histogram,
                 "metric already registered with a different kind: " + name);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry_for(name, help);
  CBES_CHECK_MSG(!e.counter && !e.gauge,
                 "metric already registered with a different kind: " + name);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *e.histogram;
}

namespace {

/// Prometheus sample values: integers stay integral, everything else %g.
void append_value(std::ostringstream& os, double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os << v;
  }
}

}  // namespace

std::string MetricsRegistry::expose_text() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, e] : entries_) {
    if (!e.help.empty()) os << "# HELP " << name << ' ' << e.help << '\n';
    if (e.counter) {
      os << "# TYPE " << name << " counter\n" << name << ' '
         << e.counter->value() << '\n';
    } else if (e.gauge) {
      os << "# TYPE " << name << " gauge\n" << name << ' ';
      append_value(os, e.gauge->value());
      os << '\n';
    } else if (e.histogram) {
      os << "# TYPE " << name << " histogram\n";
      std::uint64_t cumulative = 0;
      const auto& bounds = e.histogram->bounds();
      for (std::size_t i = 0; i < bounds.size(); ++i) {
        cumulative += e.histogram->bucket(i);
        os << name << "_bucket{le=\"" << bounds[i] << "\"} " << cumulative
           << '\n';
      }
      os << name << "_bucket{le=\"+Inf\"} " << e.histogram->count() << '\n';
      os << name << "_sum ";
      append_value(os, e.histogram->sum());
      os << '\n' << name << "_count " << e.histogram->count() << '\n';
    }
  }
  return os.str();
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::samples() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    if (e.counter) {
      out.push_back({name, static_cast<double>(e.counter->value()), e.help});
    } else if (e.gauge) {
      out.push_back({name, e.gauge->value(), e.help});
    } else if (e.histogram) {
      out.push_back({name + "_count",
                     static_cast<double>(e.histogram->count()), e.help});
      out.push_back({name + "_sum", e.histogram->sum(), e.help});
    }
  }
  return out;
}

}  // namespace cbes::obs
