#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace cbes::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  CBES_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  CBES_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                     std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                         bounds_.end(),
                 "histogram bounds must be strictly increasing");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  CBES_CHECK_MSG(i <= bounds_.size(), "histogram bucket index out of range");
  return buckets_[i].load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  CBES_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;  // the quantile cannot fall in empty mass
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      // q == 0 (target <= cumulative) pins to the bucket's lower edge.
      const double frac = std::max(
          0.0, (target - static_cast<double>(cumulative)) /
                   static_cast<double>(in_bucket));
      return lo + frac * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return bounds_.back();  // overflow bucket: best available bound
}

std::vector<double> Histogram::exponential(double first, double factor,
                                           std::size_t n) {
  CBES_CHECK_MSG(first > 0.0 && factor > 1.0 && n >= 1,
                 "exponential buckets need first > 0, factor > 1, n >= 1");
  std::vector<double> bounds;
  bounds.reserve(n);
  double b = first;
  for (std::size_t i = 0; i < n; ++i, b *= factor) bounds.push_back(b);
  return bounds;
}

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
[[nodiscard]] bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  const auto ok = [](char c, bool first) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':') {
      return true;
    }
    return !first && c >= '0' && c <= '9';
  };
  if (!ok(name[0], true)) return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (!ok(name[i], false)) return false;
  }
  return true;
}

/// Prometheus label names: [a-zA-Z_][a-zA-Z0-9_]*, "__" prefix reserved.
[[nodiscard]] bool valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  if (name.size() >= 2 && name[0] == '_' && name[1] == '_') return false;
  const auto ok = [](char c, bool first) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_') {
      return true;
    }
    return !first && c >= '0' && c <= '9';
  };
  if (!ok(name[0], true)) return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (!ok(name[i], false)) return false;
  }
  return true;
}

/// Escaping for label values: backslash, double-quote, newline.
void append_label_value(std::string& out, const std::string& value) {
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

/// Escaping for HELP text: backslash and newline (quotes are legal there).
[[nodiscard]] std::string escape_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders `k="v",k2="v2"` with names sorted and values escaped; empty for an
/// empty label set. Doubles as the series map key, so label order at the call
/// site does not create duplicate instruments.
[[nodiscard]] std::string render_label_block(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [k, v] : sorted) {
    if (!out.empty()) out += ',';
    out += k;
    out += "=\"";
    append_label_value(out, v);
    out += '"';
  }
  return out;
}

/// Prometheus sample values: integers stay integral, everything else %g.
void append_value(std::ostringstream& os, double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os << v;
  }
}

/// `name{block}` or bare `name` when the block is empty; `extra` appends one
/// more label (`le` for histogram buckets) inside the braces.
void append_series_name(std::ostringstream& os, const std::string& name,
                        const std::string& block,
                        const std::string& extra = "") {
  os << name;
  if (block.empty() && extra.empty()) return;
  os << '{' << block;
  if (!extra.empty()) {
    if (!block.empty()) os << ',';
    os << extra;
  }
  os << '}';
}

}  // namespace

MetricsRegistry::Instrument& MetricsRegistry::series_for(
    const std::string& name, const Labels& labels, Kind kind,
    const std::string& help) {
  CBES_CHECK_MSG(valid_metric_name(name),
                 "invalid Prometheus metric name: '" + name + "'");
  for (const auto& [k, v] : labels) {
    CBES_CHECK_MSG(valid_label_name(k),
                   "invalid Prometheus label name: '" + k + "' on " + name);
  }
  Family& fam = families_[name];
  if (fam.series.empty()) {
    fam.kind = kind;
  } else {
    CBES_CHECK_MSG(fam.kind == kind,
                   "metric already registered with a different kind: " + name);
  }
  if (fam.help.empty()) fam.help = help;
  return fam.series[render_label_block(labels)];
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  return counter(name, Labels{}, help);
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels,
                                  const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  Instrument& s = series_for(name, labels, Kind::kCounter, help);
  if (!s.counter) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  return gauge(name, Labels{}, help);
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels,
                              const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  Instrument& s = series_for(name, labels, Kind::kGauge, help);
  if (!s.gauge) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  return histogram(name, Labels{}, std::move(bounds), help);
}

Histogram& MetricsRegistry::histogram(const std::string& name, Labels labels,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  Instrument& s = series_for(name, labels, Kind::kHistogram, help);
  if (!s.histogram) s.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *s.histogram;
}

std::string MetricsRegistry::expose_text() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty()) {
      os << "# HELP " << name << ' ' << escape_help(fam.help) << '\n';
    }
    switch (fam.kind) {
      case Kind::kCounter: os << "# TYPE " << name << " counter\n"; break;
      case Kind::kGauge: os << "# TYPE " << name << " gauge\n"; break;
      case Kind::kHistogram: os << "# TYPE " << name << " histogram\n"; break;
    }
    for (const auto& [block, s] : fam.series) {
      if (s.counter) {
        append_series_name(os, name, block);
        os << ' ' << s.counter->value() << '\n';
      } else if (s.gauge) {
        append_series_name(os, name, block);
        os << ' ';
        append_value(os, s.gauge->value());
        os << '\n';
      } else if (s.histogram) {
        std::uint64_t cumulative = 0;
        const auto& bounds = s.histogram->bounds();
        for (std::size_t i = 0; i < bounds.size(); ++i) {
          cumulative += s.histogram->bucket(i);
          std::ostringstream le;
          le << "le=\"" << bounds[i] << '"';
          append_series_name(os, name + "_bucket", block, le.str());
          os << ' ' << cumulative << '\n';
        }
        append_series_name(os, name + "_bucket", block, "le=\"+Inf\"");
        os << ' ' << s.histogram->count() << '\n';
        append_series_name(os, name + "_sum", block);
        os << ' ';
        append_value(os, s.histogram->sum());
        os << '\n';
        append_series_name(os, name + "_count", block);
        os << ' ' << s.histogram->count() << '\n';
      }
    }
  }
  return os.str();
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::samples() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(families_.size());
  const auto series_name = [](const std::string& name,
                              const std::string& block) {
    return block.empty() ? name : name + '{' + block + '}';
  };
  for (const auto& [name, fam] : families_) {
    for (const auto& [block, s] : fam.series) {
      if (s.counter) {
        out.push_back({series_name(name, block),
                       static_cast<double>(s.counter->value()), fam.help});
      } else if (s.gauge) {
        out.push_back({series_name(name, block), s.gauge->value(), fam.help});
      } else if (s.histogram) {
        out.push_back({series_name(name + "_count", block),
                       static_cast<double>(s.histogram->count()), fam.help});
        out.push_back({series_name(name + "_sum", block),
                       s.histogram->sum(), fam.help});
      }
    }
  }
  return out;
}

}  // namespace cbes::obs
