// Wall-clock timing helpers — the one place in CBES that reads
// std::chrono::steady_clock. Schedulers, the evaluator, and the service all
// measure elapsed time through ScopedTimer instead of hand-rolling clock math.
#pragma once

#include <chrono>

#include "obs/metrics.h"

namespace cbes::obs {

/// Measures wall-clock seconds since construction (or the last reset()).
/// Optional sinks receive the elapsed time at destruction: a Histogram
/// observes it, a Gauge is set to it, a double accumulates it. Sinks may be
/// null, which makes the timer a plain stopwatch read via seconds() — callers
/// that must record *before* a return statement use that form, because a
/// destructor-time write would race the construction of the return value.
class ScopedTimer {
 public:
  ScopedTimer() = default;
  explicit ScopedTimer(Histogram* sink) : histogram_(sink) {}
  explicit ScopedTimer(Gauge* sink) : gauge_(sink) {}
  explicit ScopedTimer(double* sink) : accumulator_(sink) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ == nullptr && gauge_ == nullptr && accumulator_ == nullptr) {
      return;
    }
    const double s = seconds();
    if (histogram_ != nullptr) histogram_->observe(s);
    if (gauge_ != nullptr) gauge_->set(s);
    if (accumulator_ != nullptr) *accumulator_ += s;
  }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  Histogram* histogram_ = nullptr;
  Gauge* gauge_ = nullptr;
  double* accumulator_ = nullptr;
};

}  // namespace cbes::obs
