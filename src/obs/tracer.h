// Structured event tracer: records begin/end spans and instant events into a
// bounded in-memory buffer and exports Chrome trace-event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// A TraceSession pointer of nullptr means "tracing off": TraceSpan and the
// instrumented call sites short-circuit on the null check before doing any
// clock reads or string formatting, so disabled tracing costs one branch.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace cbes::obs {

class TraceSession {
 public:
  /// `capacity` bounds the buffered event count; once full, further events
  /// are dropped (and counted) rather than growing without bound.
  explicit TraceSession(std::size_t capacity = 1 << 16);

  /// Span start / end. Ends must match begins stack-wise per thread, as in
  /// the Chrome trace-event contract for duration events.
  void begin(std::string_view name);
  void end(std::string_view name);
  /// Zero-duration marker.
  void instant(std::string_view name);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t dropped() const;

  /// Chrome trace-event JSON ("traceEvents" array of B/E/i phase records).
  void export_chrome_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

 private:
  struct Event {
    std::string name;
    char phase;       // 'B', 'E', or 'i'
    double ts_us;     // microseconds since session start
    std::uint32_t tid;
  };

  void record(std::string_view name, char phase);
  [[nodiscard]] double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::size_t dropped_ = 0;
};

/// RAII span: begin at construction, end at destruction. A null session makes
/// both ends no-ops.
class TraceSpan {
 public:
  TraceSpan(TraceSession* session, std::string_view name)
      : session_(session) {
    if (session_ != nullptr) {
      name_.assign(name);
      session_->begin(name_);
    }
  }
  /// Two-part name so disabled sessions skip the concatenation too.
  TraceSpan(TraceSession* session, std::string_view prefix,
            std::string_view suffix)
      : session_(session) {
    if (session_ != nullptr) {
      name_.reserve(prefix.size() + suffix.size());
      name_.append(prefix).append(suffix);
      session_->begin(name_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (session_ != nullptr) session_->end(name_);
  }

 private:
  TraceSession* session_;
  std::string name_;
};

}  // namespace cbes::obs
