// Structured event tracer: records begin/end spans and instant events into a
// bounded in-memory buffer and exports Chrome trace-event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Two families of events:
//  - Duration events (begin/end, phases B/E) nest stack-wise per thread and
//    show *where a thread spent its time*.
//  - Async events (async_begin/async_end/async_instant, phases b/e/n) are
//    keyed by an id and stitch one logical request into a single track even
//    as it hops threads: submitter -> queue -> worker -> eval. All events
//    with the same id render as one row in Perfetto.
// Events may carry an args object (TraceArgs) of key-value annotations.
//
// A TraceSession pointer of nullptr means "tracing off": TraceSpan and the
// instrumented call sites short-circuit on the null check before doing any
// clock reads or string formatting, so disabled tracing costs one branch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace cbes::obs {

class Counter;
class Logger;
class MetricsRegistry;

/// Builder for a Chrome trace `args` object: deterministic key order (the
/// order of add() calls), values pre-escaped at add time so export is a
/// straight copy. Cheap to pass by value into record().
class TraceArgs {
 public:
  TraceArgs& add(std::string_view key, std::string_view value);
  TraceArgs& add(std::string_view key, const char* value) {
    return add(key, std::string_view(value));
  }
  TraceArgs& add(std::string_view key, const std::string& value) {
    return add(key, std::string_view(value));
  }
  TraceArgs& add(std::string_view key, double value);
  TraceArgs& add(std::string_view key, std::uint64_t value);
  TraceArgs& add(std::string_view key, std::int64_t value);
  TraceArgs& add(std::string_view key, int value) {
    return add(key, static_cast<std::int64_t>(value));
  }
  // No std::size_t overload: on LP64 it IS std::uint64_t.
  TraceArgs& add(std::string_view key, bool value);

  /// The rendered object body (`"k":"v","n":3`), without the braces.
  [[nodiscard]] const std::string& body() const noexcept { return body_; }
  [[nodiscard]] bool empty() const noexcept { return body_.empty(); }

 private:
  friend class TraceSession;  // moves body_ out in record()
  std::string body_;
};

class TraceSession {
 public:
  /// `capacity` bounds the buffered event count; once full, further events
  /// are dropped (and counted) rather than growing without bound.
  explicit TraceSession(std::size_t capacity = 1 << 16);

  /// Span start / end. Ends must match begins stack-wise per thread, as in
  /// the Chrome trace-event contract for duration events.
  void begin(std::string_view name);
  void end(std::string_view name);
  /// Zero-duration marker.
  void instant(std::string_view name);
  void instant(std::string_view name, TraceArgs args);

  /// Async span start / end / point, keyed by `id` (one track per id in
  /// Perfetto). Begin and end may come from different threads; nesting under
  /// one id follows the b/e stack for that id.
  void async_begin(std::string_view name, std::uint64_t id,
                   TraceArgs args = {});
  void async_end(std::string_view name, std::uint64_t id, TraceArgs args = {});
  void async_instant(std::string_view name, std::uint64_t id,
                     TraceArgs args = {});

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t dropped() const;

  /// Chrome trace-event JSON ("traceEvents" array of B/E/i/b/e/n phase
  /// records; async records carry cat+id, any record may carry args).
  void export_chrome_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

  /// Wires `cbes_trace_events_total` / `cbes_trace_dropped_total` into
  /// `registry` (nullptr disables; the default). Must outlive the session.
  void set_metrics(MetricsRegistry* registry);
  /// One-shot "trace/drop" warning to `log` the first time an event is
  /// dropped (nullptr disables; the default). Must outlive the session.
  void set_logger(Logger* log);

 private:
  struct Event {
    std::string name;
    char phase;        // 'B', 'E', 'i' (duration/instant); 'b', 'e', 'n' (async)
    double ts_us;      // microseconds since session start
    std::uint32_t tid;
    std::uint64_t id;  // async track id; meaningful for b/e/n only
    std::string args;  // pre-rendered args object body; empty = no args
  };

  void record(std::string_view name, char phase, std::uint64_t id = 0,
              std::string args = {});
  [[nodiscard]] double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::size_t dropped_ = 0;

  std::atomic<Counter*> events_metric_{nullptr};
  std::atomic<Counter*> dropped_metric_{nullptr};
  std::atomic<Logger*> log_{nullptr};
  std::atomic<bool> drop_warned_{false};
};

/// RAII span: begin at construction, end at destruction. A null session makes
/// both ends no-ops.
class TraceSpan {
 public:
  TraceSpan(TraceSession* session, std::string_view name)
      : session_(session) {
    if (session_ != nullptr) {
      name_.assign(name);
      session_->begin(name_);
    }
  }
  /// Two-part name so disabled sessions skip the concatenation too.
  TraceSpan(TraceSession* session, std::string_view prefix,
            std::string_view suffix)
      : session_(session) {
    if (session_ != nullptr) {
      name_.reserve(prefix.size() + suffix.size());
      name_.append(prefix).append(suffix);
      session_->begin(name_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (session_ != nullptr) session_->end(name_);
  }

 private:
  TraceSession* session_;
  std::string name_;
};

/// RAII async span: async_begin at construction, async_end at destruction —
/// exception-safe stage spans inside an id-keyed request track. A null
/// session makes both ends no-ops.
class AsyncTraceSpan {
 public:
  AsyncTraceSpan(TraceSession* session, std::string_view name,
                 std::uint64_t id, TraceArgs args = {})
      : session_(session), id_(id) {
    if (session_ != nullptr) {
      name_.assign(name);
      session_->async_begin(name_, id_, std::move(args));
    }
  }
  AsyncTraceSpan(const AsyncTraceSpan&) = delete;
  AsyncTraceSpan& operator=(const AsyncTraceSpan&) = delete;
  ~AsyncTraceSpan() {
    if (session_ != nullptr) session_->async_end(name_, id_);
  }

 private:
  TraceSession* session_;
  std::uint64_t id_;
  std::string name_;
};

}  // namespace cbes::obs
