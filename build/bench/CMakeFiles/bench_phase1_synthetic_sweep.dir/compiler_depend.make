# Empty compiler generated dependencies file for bench_phase1_synthetic_sweep.
# This may be replaced when dependencies are built.
