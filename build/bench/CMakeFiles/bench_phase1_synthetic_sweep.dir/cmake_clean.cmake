file(REMOVE_RECURSE
  "CMakeFiles/bench_phase1_synthetic_sweep.dir/bench_phase1_synthetic_sweep.cpp.o"
  "CMakeFiles/bench_phase1_synthetic_sweep.dir/bench_phase1_synthetic_sweep.cpp.o.d"
  "CMakeFiles/bench_phase1_synthetic_sweep.dir/bench_util.cpp.o"
  "CMakeFiles/bench_phase1_synthetic_sweep.dir/bench_util.cpp.o.d"
  "bench_phase1_synthetic_sweep"
  "bench_phase1_synthetic_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phase1_synthetic_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
