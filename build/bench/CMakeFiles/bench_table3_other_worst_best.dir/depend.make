# Empty dependencies file for bench_table3_other_worst_best.
# This may be replaced when dependencies are built.
