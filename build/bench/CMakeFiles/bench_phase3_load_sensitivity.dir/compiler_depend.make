# Empty compiler generated dependencies file for bench_phase3_load_sensitivity.
# This may be replaced when dependencies are built.
