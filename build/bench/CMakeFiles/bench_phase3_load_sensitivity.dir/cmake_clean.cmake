file(REMOVE_RECURSE
  "CMakeFiles/bench_phase3_load_sensitivity.dir/bench_phase3_load_sensitivity.cpp.o"
  "CMakeFiles/bench_phase3_load_sensitivity.dir/bench_phase3_load_sensitivity.cpp.o.d"
  "CMakeFiles/bench_phase3_load_sensitivity.dir/bench_util.cpp.o"
  "CMakeFiles/bench_phase3_load_sensitivity.dir/bench_util.cpp.o.d"
  "bench_phase3_load_sensitivity"
  "bench_phase3_load_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phase3_load_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
