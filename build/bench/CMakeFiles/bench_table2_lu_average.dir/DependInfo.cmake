
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_lu_average.cpp" "bench/CMakeFiles/bench_table2_lu_average.dir/bench_table2_lu_average.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_lu_average.dir/bench_table2_lu_average.cpp.o.d"
  "/root/repo/bench/bench_util.cpp" "bench/CMakeFiles/bench_table2_lu_average.dir/bench_util.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_lu_average.dir/bench_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/cbes_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cbes_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/cbes_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/cbes_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cbes_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/cbes_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/netmodel/CMakeFiles/cbes_netmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/cbes_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/cbes_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cbes_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cbes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
