# Empty dependencies file for bench_table2_lu_average.
# This may be replaced when dependencies are built.
