file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_spread.dir/bench_latency_spread.cpp.o"
  "CMakeFiles/bench_latency_spread.dir/bench_latency_spread.cpp.o.d"
  "CMakeFiles/bench_latency_spread.dir/bench_util.cpp.o"
  "CMakeFiles/bench_latency_spread.dir/bench_util.cpp.o.d"
  "bench_latency_spread"
  "bench_latency_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
