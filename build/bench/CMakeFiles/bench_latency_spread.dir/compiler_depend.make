# Empty compiler generated dependencies file for bench_latency_spread.
# This may be replaced when dependencies are built.
