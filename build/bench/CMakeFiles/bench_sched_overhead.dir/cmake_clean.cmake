file(REMOVE_RECURSE
  "CMakeFiles/bench_sched_overhead.dir/bench_sched_overhead.cpp.o"
  "CMakeFiles/bench_sched_overhead.dir/bench_sched_overhead.cpp.o.d"
  "CMakeFiles/bench_sched_overhead.dir/bench_util.cpp.o"
  "CMakeFiles/bench_sched_overhead.dir/bench_util.cpp.o.d"
  "bench_sched_overhead"
  "bench_sched_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sched_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
