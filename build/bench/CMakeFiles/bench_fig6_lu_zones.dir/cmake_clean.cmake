file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_lu_zones.dir/bench_fig6_lu_zones.cpp.o"
  "CMakeFiles/bench_fig6_lu_zones.dir/bench_fig6_lu_zones.cpp.o.d"
  "CMakeFiles/bench_fig6_lu_zones.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig6_lu_zones.dir/bench_util.cpp.o.d"
  "bench_fig6_lu_zones"
  "bench_fig6_lu_zones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_lu_zones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
