# Empty dependencies file for bench_fig6_lu_zones.
# This may be replaced when dependencies are built.
