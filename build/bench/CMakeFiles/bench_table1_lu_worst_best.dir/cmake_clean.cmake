file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_lu_worst_best.dir/bench_table1_lu_worst_best.cpp.o"
  "CMakeFiles/bench_table1_lu_worst_best.dir/bench_table1_lu_worst_best.cpp.o.d"
  "CMakeFiles/bench_table1_lu_worst_best.dir/bench_util.cpp.o"
  "CMakeFiles/bench_table1_lu_worst_best.dir/bench_util.cpp.o.d"
  "bench_table1_lu_worst_best"
  "bench_table1_lu_worst_best.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_lu_worst_best.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
