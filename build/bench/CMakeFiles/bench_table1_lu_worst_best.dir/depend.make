# Empty dependencies file for bench_table1_lu_worst_best.
# This may be replaced when dependencies are built.
