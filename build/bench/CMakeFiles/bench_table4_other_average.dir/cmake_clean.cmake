file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_other_average.dir/bench_table4_other_average.cpp.o"
  "CMakeFiles/bench_table4_other_average.dir/bench_table4_other_average.cpp.o.d"
  "CMakeFiles/bench_table4_other_average.dir/bench_util.cpp.o"
  "CMakeFiles/bench_table4_other_average.dir/bench_util.cpp.o.d"
  "bench_table4_other_average"
  "bench_table4_other_average.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_other_average.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
