# Empty dependencies file for bench_table4_other_average.
# This may be replaced when dependencies are built.
