file(REMOVE_RECURSE
  "CMakeFiles/bench_calibration_on.dir/bench_calibration_on.cpp.o"
  "CMakeFiles/bench_calibration_on.dir/bench_calibration_on.cpp.o.d"
  "CMakeFiles/bench_calibration_on.dir/bench_util.cpp.o"
  "CMakeFiles/bench_calibration_on.dir/bench_util.cpp.o.d"
  "bench_calibration_on"
  "bench_calibration_on.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_calibration_on.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
