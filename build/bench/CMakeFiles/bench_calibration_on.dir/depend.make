# Empty dependencies file for bench_calibration_on.
# This may be replaced when dependencies are built.
