file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_load_term.dir/bench_ablation_load_term.cpp.o"
  "CMakeFiles/bench_ablation_load_term.dir/bench_ablation_load_term.cpp.o.d"
  "CMakeFiles/bench_ablation_load_term.dir/bench_util.cpp.o"
  "CMakeFiles/bench_ablation_load_term.dir/bench_util.cpp.o.d"
  "bench_ablation_load_term"
  "bench_ablation_load_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_load_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
