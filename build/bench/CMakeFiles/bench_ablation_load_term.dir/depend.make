# Empty dependencies file for bench_ablation_load_term.
# This may be replaced when dependencies are built.
