# Empty dependencies file for cbes_profile.
# This may be replaced when dependencies are built.
