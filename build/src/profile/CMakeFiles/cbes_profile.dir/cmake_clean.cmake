file(REMOVE_RECURSE
  "CMakeFiles/cbes_profile.dir/analyzer.cpp.o"
  "CMakeFiles/cbes_profile.dir/analyzer.cpp.o.d"
  "CMakeFiles/cbes_profile.dir/app_profile.cpp.o"
  "CMakeFiles/cbes_profile.dir/app_profile.cpp.o.d"
  "CMakeFiles/cbes_profile.dir/profiler.cpp.o"
  "CMakeFiles/cbes_profile.dir/profiler.cpp.o.d"
  "CMakeFiles/cbes_profile.dir/serialize.cpp.o"
  "CMakeFiles/cbes_profile.dir/serialize.cpp.o.d"
  "CMakeFiles/cbes_profile.dir/theta.cpp.o"
  "CMakeFiles/cbes_profile.dir/theta.cpp.o.d"
  "libcbes_profile.a"
  "libcbes_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbes_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
