file(REMOVE_RECURSE
  "libcbes_profile.a"
)
