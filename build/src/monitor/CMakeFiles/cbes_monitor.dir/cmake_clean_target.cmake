file(REMOVE_RECURSE
  "libcbes_monitor.a"
)
