# Empty dependencies file for cbes_monitor.
# This may be replaced when dependencies are built.
