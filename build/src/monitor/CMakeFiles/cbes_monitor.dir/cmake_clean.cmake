file(REMOVE_RECURSE
  "CMakeFiles/cbes_monitor.dir/forecaster.cpp.o"
  "CMakeFiles/cbes_monitor.dir/forecaster.cpp.o.d"
  "CMakeFiles/cbes_monitor.dir/monitor.cpp.o"
  "CMakeFiles/cbes_monitor.dir/monitor.cpp.o.d"
  "libcbes_monitor.a"
  "libcbes_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbes_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
