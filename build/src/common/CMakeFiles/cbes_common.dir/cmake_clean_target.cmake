file(REMOVE_RECURSE
  "libcbes_common.a"
)
