file(REMOVE_RECURSE
  "CMakeFiles/cbes_common.dir/csv.cpp.o"
  "CMakeFiles/cbes_common.dir/csv.cpp.o.d"
  "CMakeFiles/cbes_common.dir/rng.cpp.o"
  "CMakeFiles/cbes_common.dir/rng.cpp.o.d"
  "CMakeFiles/cbes_common.dir/stats.cpp.o"
  "CMakeFiles/cbes_common.dir/stats.cpp.o.d"
  "CMakeFiles/cbes_common.dir/table.cpp.o"
  "CMakeFiles/cbes_common.dir/table.cpp.o.d"
  "libcbes_common.a"
  "libcbes_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbes_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
