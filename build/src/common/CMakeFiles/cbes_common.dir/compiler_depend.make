# Empty compiler generated dependencies file for cbes_common.
# This may be replaced when dependencies are built.
