file(REMOVE_RECURSE
  "libcbes_core.a"
)
