file(REMOVE_RECURSE
  "CMakeFiles/cbes_core.dir/app_monitor.cpp.o"
  "CMakeFiles/cbes_core.dir/app_monitor.cpp.o.d"
  "CMakeFiles/cbes_core.dir/evaluator.cpp.o"
  "CMakeFiles/cbes_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/cbes_core.dir/remap.cpp.o"
  "CMakeFiles/cbes_core.dir/remap.cpp.o.d"
  "CMakeFiles/cbes_core.dir/service.cpp.o"
  "CMakeFiles/cbes_core.dir/service.cpp.o.d"
  "libcbes_core.a"
  "libcbes_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbes_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
