# Empty compiler generated dependencies file for cbes_core.
# This may be replaced when dependencies are built.
