# Empty dependencies file for cbes_sched.
# This may be replaced when dependencies are built.
