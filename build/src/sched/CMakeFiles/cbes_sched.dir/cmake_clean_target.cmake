file(REMOVE_RECURSE
  "libcbes_sched.a"
)
