file(REMOVE_RECURSE
  "CMakeFiles/cbes_sched.dir/annealing.cpp.o"
  "CMakeFiles/cbes_sched.dir/annealing.cpp.o.d"
  "CMakeFiles/cbes_sched.dir/cost.cpp.o"
  "CMakeFiles/cbes_sched.dir/cost.cpp.o.d"
  "CMakeFiles/cbes_sched.dir/genetic.cpp.o"
  "CMakeFiles/cbes_sched.dir/genetic.cpp.o.d"
  "CMakeFiles/cbes_sched.dir/phased.cpp.o"
  "CMakeFiles/cbes_sched.dir/phased.cpp.o.d"
  "CMakeFiles/cbes_sched.dir/pool.cpp.o"
  "CMakeFiles/cbes_sched.dir/pool.cpp.o.d"
  "CMakeFiles/cbes_sched.dir/scheduler.cpp.o"
  "CMakeFiles/cbes_sched.dir/scheduler.cpp.o.d"
  "libcbes_sched.a"
  "libcbes_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbes_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
