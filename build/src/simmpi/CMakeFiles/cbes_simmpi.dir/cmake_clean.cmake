file(REMOVE_RECURSE
  "CMakeFiles/cbes_simmpi.dir/simulator.cpp.o"
  "CMakeFiles/cbes_simmpi.dir/simulator.cpp.o.d"
  "libcbes_simmpi.a"
  "libcbes_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbes_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
