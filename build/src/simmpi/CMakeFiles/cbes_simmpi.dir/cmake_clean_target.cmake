file(REMOVE_RECURSE
  "libcbes_simmpi.a"
)
