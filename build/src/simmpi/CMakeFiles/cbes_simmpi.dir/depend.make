# Empty dependencies file for cbes_simmpi.
# This may be replaced when dependencies are built.
