# Empty compiler generated dependencies file for cbes_netmodel.
# This may be replaced when dependencies are built.
