
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netmodel/calibrate.cpp" "src/netmodel/CMakeFiles/cbes_netmodel.dir/calibrate.cpp.o" "gcc" "src/netmodel/CMakeFiles/cbes_netmodel.dir/calibrate.cpp.o.d"
  "/root/repo/src/netmodel/latency_model.cpp" "src/netmodel/CMakeFiles/cbes_netmodel.dir/latency_model.cpp.o" "gcc" "src/netmodel/CMakeFiles/cbes_netmodel.dir/latency_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cbes_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cbes_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/cbes_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/cbes_monitor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
