file(REMOVE_RECURSE
  "libcbes_netmodel.a"
)
