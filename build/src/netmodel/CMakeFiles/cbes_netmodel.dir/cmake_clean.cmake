file(REMOVE_RECURSE
  "CMakeFiles/cbes_netmodel.dir/calibrate.cpp.o"
  "CMakeFiles/cbes_netmodel.dir/calibrate.cpp.o.d"
  "CMakeFiles/cbes_netmodel.dir/latency_model.cpp.o"
  "CMakeFiles/cbes_netmodel.dir/latency_model.cpp.o.d"
  "libcbes_netmodel.a"
  "libcbes_netmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbes_netmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
