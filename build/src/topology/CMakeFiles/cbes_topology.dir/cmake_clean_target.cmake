file(REMOVE_RECURSE
  "libcbes_topology.a"
)
