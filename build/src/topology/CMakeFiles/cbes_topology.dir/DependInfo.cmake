
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/arch.cpp" "src/topology/CMakeFiles/cbes_topology.dir/arch.cpp.o" "gcc" "src/topology/CMakeFiles/cbes_topology.dir/arch.cpp.o.d"
  "/root/repo/src/topology/builders.cpp" "src/topology/CMakeFiles/cbes_topology.dir/builders.cpp.o" "gcc" "src/topology/CMakeFiles/cbes_topology.dir/builders.cpp.o.d"
  "/root/repo/src/topology/cluster.cpp" "src/topology/CMakeFiles/cbes_topology.dir/cluster.cpp.o" "gcc" "src/topology/CMakeFiles/cbes_topology.dir/cluster.cpp.o.d"
  "/root/repo/src/topology/mapping.cpp" "src/topology/CMakeFiles/cbes_topology.dir/mapping.cpp.o" "gcc" "src/topology/CMakeFiles/cbes_topology.dir/mapping.cpp.o.d"
  "/root/repo/src/topology/parser.cpp" "src/topology/CMakeFiles/cbes_topology.dir/parser.cpp.o" "gcc" "src/topology/CMakeFiles/cbes_topology.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cbes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
