file(REMOVE_RECURSE
  "CMakeFiles/cbes_topology.dir/arch.cpp.o"
  "CMakeFiles/cbes_topology.dir/arch.cpp.o.d"
  "CMakeFiles/cbes_topology.dir/builders.cpp.o"
  "CMakeFiles/cbes_topology.dir/builders.cpp.o.d"
  "CMakeFiles/cbes_topology.dir/cluster.cpp.o"
  "CMakeFiles/cbes_topology.dir/cluster.cpp.o.d"
  "CMakeFiles/cbes_topology.dir/mapping.cpp.o"
  "CMakeFiles/cbes_topology.dir/mapping.cpp.o.d"
  "CMakeFiles/cbes_topology.dir/parser.cpp.o"
  "CMakeFiles/cbes_topology.dir/parser.cpp.o.d"
  "libcbes_topology.a"
  "libcbes_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbes_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
