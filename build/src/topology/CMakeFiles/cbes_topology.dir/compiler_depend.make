# Empty compiler generated dependencies file for cbes_topology.
# This may be replaced when dependencies are built.
