file(REMOVE_RECURSE
  "CMakeFiles/cbes_apps.dir/asci.cpp.o"
  "CMakeFiles/cbes_apps.dir/asci.cpp.o.d"
  "CMakeFiles/cbes_apps.dir/decomp.cpp.o"
  "CMakeFiles/cbes_apps.dir/decomp.cpp.o.d"
  "CMakeFiles/cbes_apps.dir/npb.cpp.o"
  "CMakeFiles/cbes_apps.dir/npb.cpp.o.d"
  "CMakeFiles/cbes_apps.dir/program.cpp.o"
  "CMakeFiles/cbes_apps.dir/program.cpp.o.d"
  "CMakeFiles/cbes_apps.dir/registry.cpp.o"
  "CMakeFiles/cbes_apps.dir/registry.cpp.o.d"
  "CMakeFiles/cbes_apps.dir/synthetic.cpp.o"
  "CMakeFiles/cbes_apps.dir/synthetic.cpp.o.d"
  "libcbes_apps.a"
  "libcbes_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbes_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
