# Empty compiler generated dependencies file for cbes_apps.
# This may be replaced when dependencies are built.
