
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/asci.cpp" "src/apps/CMakeFiles/cbes_apps.dir/asci.cpp.o" "gcc" "src/apps/CMakeFiles/cbes_apps.dir/asci.cpp.o.d"
  "/root/repo/src/apps/decomp.cpp" "src/apps/CMakeFiles/cbes_apps.dir/decomp.cpp.o" "gcc" "src/apps/CMakeFiles/cbes_apps.dir/decomp.cpp.o.d"
  "/root/repo/src/apps/npb.cpp" "src/apps/CMakeFiles/cbes_apps.dir/npb.cpp.o" "gcc" "src/apps/CMakeFiles/cbes_apps.dir/npb.cpp.o.d"
  "/root/repo/src/apps/program.cpp" "src/apps/CMakeFiles/cbes_apps.dir/program.cpp.o" "gcc" "src/apps/CMakeFiles/cbes_apps.dir/program.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/cbes_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/cbes_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/synthetic.cpp" "src/apps/CMakeFiles/cbes_apps.dir/synthetic.cpp.o" "gcc" "src/apps/CMakeFiles/cbes_apps.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cbes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
