file(REMOVE_RECURSE
  "libcbes_apps.a"
)
