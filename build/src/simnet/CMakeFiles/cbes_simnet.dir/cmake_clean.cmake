file(REMOVE_RECURSE
  "CMakeFiles/cbes_simnet.dir/load.cpp.o"
  "CMakeFiles/cbes_simnet.dir/load.cpp.o.d"
  "CMakeFiles/cbes_simnet.dir/network.cpp.o"
  "CMakeFiles/cbes_simnet.dir/network.cpp.o.d"
  "libcbes_simnet.a"
  "libcbes_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbes_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
