file(REMOVE_RECURSE
  "libcbes_simnet.a"
)
