# Empty compiler generated dependencies file for cbes_simnet.
# This may be replaced when dependencies are built.
