# Empty compiler generated dependencies file for cbes_trace.
# This may be replaced when dependencies are built.
