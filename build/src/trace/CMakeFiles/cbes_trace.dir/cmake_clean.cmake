file(REMOVE_RECURSE
  "CMakeFiles/cbes_trace.dir/serialize.cpp.o"
  "CMakeFiles/cbes_trace.dir/serialize.cpp.o.d"
  "CMakeFiles/cbes_trace.dir/trace.cpp.o"
  "CMakeFiles/cbes_trace.dir/trace.cpp.o.d"
  "libcbes_trace.a"
  "libcbes_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbes_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
