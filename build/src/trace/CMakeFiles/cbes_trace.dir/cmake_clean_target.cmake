file(REMOVE_RECURSE
  "libcbes_trace.a"
)
