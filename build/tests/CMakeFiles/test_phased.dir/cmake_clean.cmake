file(REMOVE_RECURSE
  "CMakeFiles/test_phased.dir/phased_test.cpp.o"
  "CMakeFiles/test_phased.dir/phased_test.cpp.o.d"
  "test_phased"
  "test_phased.pdb"
  "test_phased[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phased.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
