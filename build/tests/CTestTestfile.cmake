# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_simnet[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_netmodel[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi[1]_include.cmake")
include("/root/repo/build/tests/test_profile[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_phased[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
