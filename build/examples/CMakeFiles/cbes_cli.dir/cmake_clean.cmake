file(REMOVE_RECURSE
  "CMakeFiles/cbes_cli.dir/cbes_cli.cpp.o"
  "CMakeFiles/cbes_cli.dir/cbes_cli.cpp.o.d"
  "cbes_cli"
  "cbes_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbes_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
