# Empty compiler generated dependencies file for cbes_cli.
# This may be replaced when dependencies are built.
