# Empty dependencies file for remap_on_load.
# This may be replaced when dependencies are built.
