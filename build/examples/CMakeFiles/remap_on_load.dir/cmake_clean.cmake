file(REMOVE_RECURSE
  "CMakeFiles/remap_on_load.dir/remap_on_load.cpp.o"
  "CMakeFiles/remap_on_load.dir/remap_on_load.cpp.o.d"
  "remap_on_load"
  "remap_on_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remap_on_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
