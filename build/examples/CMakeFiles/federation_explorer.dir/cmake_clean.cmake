file(REMOVE_RECURSE
  "CMakeFiles/federation_explorer.dir/federation_explorer.cpp.o"
  "CMakeFiles/federation_explorer.dir/federation_explorer.cpp.o.d"
  "federation_explorer"
  "federation_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federation_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
