# Empty compiler generated dependencies file for federation_explorer.
# This may be replaced when dependencies are built.
