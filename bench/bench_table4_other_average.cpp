// E10 — Table 4: "Other tests: average case scenario" for the programs that
// benefit from CBES scheduling (HPL at 5000/10000, the three smg2000 sizes,
// and Aztec). The paper reports average-case speedups of 5.2-10.3% — within
// ~10% of the worst-vs-best maxima — with CS hit rates of 85-98%.
#include <cstdio>
#include <iostream>

#include "apps/registry.h"
#include "bench_util.h"
#include "common/table.h"

namespace {

using namespace cbes;
using namespace cbes::bench;

struct Case {
  const char* app;
  double paper_cs_meas;
  double paper_cs_hits;
  double paper_ncs_meas;
  double paper_meas_spd;
};

constexpr Case kCases[] = {
    {"hpl.5000", 80.2, 88, 89.3, 10.1},    {"hpl.10000", 435.9, 94, 460.0, 5.2},
    {"smg2000.12", 16.4, 85, 17.3, 5.2},   {"smg2000.50", 66.7, 98, 71.7, 6.9},
    {"smg2000.60", 115.1, 96, 127.1, 9.4}, {"aztec", 80.9, 92, 90.2, 10.3},
};

}  // namespace

int main() {
  using namespace cbes;
  using namespace cbes::bench;

  std::printf(
      "CBES reproduction -- E10 / Table 4: other programs, average case "
      "(%d runs per scheduler)\n\n", 50);

  const Env env = make_orange_grove_env();
  const ClusterTopology& topo = env.topology();
  const NodePool pool = NodePool::by_arch(topo, Arch::kIntelPII400)
                            .one_per_node();
  const auto intels = topo.nodes_with_arch(Arch::kIntelPII400);
  const Mapping profiling_mapping(
      std::vector<NodeId>(intels.begin(), intels.begin() + 8));
  NoLoad idle;
  const LoadSnapshot snapshot = env.svc->monitor().snapshot(0.0);

  constexpr std::size_t kRuns = 50;
  constexpr double kHitTolerance = 0.01;

  TextTable table({"test case", "sched", "avg measured (s)", "hits",
                   "measured speedup", "paper meas/spd/hits"});
  std::size_t case_index = 0;
  for (const Case& c : kCases) {
    ++case_index;
    const Program program = find_app(c.app).make(8);
    env.svc->register_application(program, profiling_mapping);
    const AppProfile& profile = env.svc->profile_of(program.name);

    MeasureCache cache(env.svc->simulator(), program, idle, /*repeats=*/3,
                       derive_seed(0x7AB4E, case_index));
    SaParams params = paper_sa_params();
    params.seed = derive_seed(0x4A, case_index);
    const CampaignResult ncs =
        run_campaign(pool, 8, env.svc->evaluator(), profile, snapshot,
                     ncs_options(), cache, kRuns, params);
    params.seed = derive_seed(0x4B, case_index);
    const CampaignResult cs =
        run_campaign(pool, 8, env.svc->evaluator(), profile, snapshot,
                     EvalOptions{}, cache, kRuns, params);

    const double global_best =
        std::min(cs.best_measured(), ncs.best_measured());
    const double meas_spd = 100.0 *
                            (ncs.mean_measured() - cs.mean_measured()) /
                            ncs.mean_measured();

    table.row()
        .cell(c.app)
        .cell("CS")
        .cell(cs.mean_measured(), 1)
        .cell(format_percent(cs.hit_rate(global_best, kHitTolerance), 0))
        .cell(format_percent(meas_spd / 100.0))
        .cell(format_fixed(c.paper_cs_meas, 1) + "s / " +
              format_fixed(c.paper_meas_spd, 1) + "% / " +
              format_fixed(c.paper_cs_hits, 0) + "%");
    table.row()
        .cell("")
        .cell("NCS")
        .cell(ncs.mean_measured(), 1)
        .cell(format_percent(ncs.hit_rate(global_best, kHitTolerance), 0))
        .cell("")
        .cell(format_fixed(c.paper_ncs_meas, 1) + "s");
  }
  table.print(std::cout);

  std::printf(
      "\npaper: average-case speedups 5.2-10.3%%, at most ~10%% below the "
      "worst-vs-best maxima.\n");
  return 0;
}
