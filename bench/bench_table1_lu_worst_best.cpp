// E6 — Table 1: "LU: worst vs. best case scenario". For each node-speed zone,
// NCS runs provide the worst measured time (NCS cannot distinguish mappings
// within a zone, so it wanders onto slow ones) and CS runs the best; the
// speedup column is the maximum gain communication-aware scheduling can
// deliver within the zone.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace cbes;
  using namespace cbes::bench;

  std::printf(
      "CBES reproduction -- E6 / Table 1: LU worst vs. best case per zone\n\n");

  const Env env = make_orange_grove_env();
  const ClusterTopology& topo = env.topology();
  const Program lu = make_lu(orange_grove_lu_params());

  // Profile once on a representative heterogeneous mapping (2 per arch group).
  const auto alphas = topo.nodes_with_arch(Arch::kAlpha533);
  const auto intels = topo.nodes_with_arch(Arch::kIntelPII400);
  const auto sparcs = topo.nodes_with_arch(Arch::kSparc500);
  // Profile on the all-Alpha mapping (the reference architecture, idle
  // system); zone predictions then rely on the measured arch speed ratios.
  env.svc->register_application(
      lu, Mapping(std::vector<NodeId>(alphas.begin(), alphas.end())));
  const AppProfile& profile = env.svc->profile_of("lu");
  const LoadSnapshot snapshot = env.svc->monitor().snapshot(0.0);
  NoLoad idle;

  constexpr std::size_t kRuns = 40;

  struct PaperRow {
    double worst, best, speedup, sched_time;
  };
  const PaperRow paper[4] = {{},
                             {219.4, 207.8, 5.3, 6},
                             {260.4, 236.2, 9.3, 6},
                             {327.8, 308.2, 6.0, 6}};

  TextTable table({"test case", "worst (NCS, s)", "+/-95%", "best (CS, s)",
                   "+/-95%", "speedup", "sched time (s)", "paper (w/b/spd)"});
  for (int zone = 1; zone <= 3; ++zone) {
    const NodePool pool = zone_pool(topo, zone);
    MeasureCache cache(env.svc->simulator(), lu, idle, /*repeats=*/3,
                       0x7AB1E000 + static_cast<std::uint64_t>(zone));

    SaParams params = paper_sa_params();
    params.seed = 0x51 + static_cast<std::uint64_t>(zone);
    const CampaignResult ncs =
        run_campaign(pool, 8, env.svc->evaluator(), profile, snapshot,
                     ncs_options(), cache, kRuns, params);
    params.seed = 0xC5 + static_cast<std::uint64_t>(zone);
    const CampaignResult cs =
        run_campaign(pool, 8, env.svc->evaluator(), profile, snapshot,
                     EvalOptions{}, cache, kRuns, params);

    const double worst = ncs.worst_measured();
    const double best = cs.best_measured();
    const double speedup = 100.0 * (worst - best) / worst;

    const std::string zone_tag = "zone" + std::to_string(zone);
    record_metric("table1_" + zone_tag + "_worst_ncs", worst, "seconds");
    record_metric("table1_" + zone_tag + "_best_cs", best, "seconds");
    record_metric("table1_" + zone_tag + "_speedup", speedup, "percent");
    record_metric("table1_" + zone_tag + "_sched_wall",
                  (cs.total_wall + ncs.total_wall) /
                      static_cast<double>(2 * kRuns),
                  "seconds");

    // 95% CI of the measurement at the extreme mappings.
    auto worst_it = std::max_element(ncs.measured.begin(), ncs.measured.end());
    auto best_it = std::min_element(cs.measured.begin(), cs.measured.end());
    const Mapping& worst_map =
        ncs.picks[static_cast<std::size_t>(worst_it - ncs.measured.begin())]
            .mapping;
    const Mapping& best_map =
        cs.picks[static_cast<std::size_t>(best_it - cs.measured.begin())]
            .mapping;

    const PaperRow& p = paper[zone];
    table.row()
        .cell(std::string("LU (") + std::to_string(zone) + ") " +
              zone_name(zone))
        .cell(worst, 1)
        .cell(cache.stats(worst_map).ci95_halfwidth(), 1)
        .cell(best, 1)
        .cell(cache.stats(best_map).ci95_halfwidth(), 1)
        .cell(format_percent(speedup / 100.0))
        .cell((cs.total_wall + ncs.total_wall) /
                  static_cast<double>(2 * kRuns),
              3)
        .cell(format_fixed(p.worst, 1) + "/" + format_fixed(p.best, 1) + "/" +
              format_fixed(p.speedup, 1) + "%");
  }
  table.print(std::cout);

  std::printf(
      "\nNotes: worst = slowest measured mapping across %zu NCS runs; best = "
      "fastest\nacross %zu CS runs (the paper's protocol). Scheduler time is "
      "per run on this\nmachine; the paper's ~6 s was on 2005 hardware.\n",
      kRuns, kRuns);
  std::printf("wrote %s\n", write_bench_json("table1_lu_worst_best").c_str());
  return 0;
}
