// Wire front-end throughput — the loadgen harness driving a NetServer to
// saturation over loopback. Two experiments:
//
//   1. Closed-ish-loop scaling: 1/4/8 pipelined connections of mixed-priority
//      predict/compare traffic against a 4-worker broker with the EvalCache
//      on. Reports offered vs goodput req/s, client-observed p50/p99, and
//      the coalesce rate (identical in-flight predictions folded into one
//      job — the wire layer's own request-level dedup, upstream of the
//      cache).
//
//   2. Saturation with brown-out shedding: a 2-worker broker with the cache
//      off (every admitted request is fresh evaluation work) and CoDel-style
//      shedding on, hammered by 8 deep-pipelined connections. Reports the
//      shed rate alongside goodput and latency — overload costing batch
//      traffic its answers instead of costing everyone their latency, now
//      measured through the socket.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "net/loadgen.h"
#include "net/net_server.h"
#include "server/server.h"

namespace {

using namespace cbes;

net::LoadGenOptions base_load(std::uint16_t port, const std::string& app,
                              std::vector<Mapping> mappings) {
  net::LoadGenOptions opt;
  opt.port = port;
  opt.app = app;
  opt.mappings = std::move(mappings);
  opt.pipeline = 8;
  opt.duration_s = 1.0;
  opt.compare_fraction = 0.25;
  opt.seed = 0xBE7;
  return opt;
}

}  // namespace

int main() {
  bench::Env env = bench::make_orange_grove_env();
  const LuParams lu = bench::orange_grove_lu_params();
  const Program program = make_lu(lu);
  const std::size_t nranks = program.nranks();
  env.svc->register_application(
      program, Mapping::round_robin(env.topology(), nranks));

  std::vector<Mapping> mappings;
  mappings.push_back(Mapping::round_robin(env.topology(), nranks));
  const NodePool pool = NodePool::whole_cluster(env.topology());
  Rng rng(0xBE9C);
  for (int i = 0; i < 7; ++i) {
    mappings.push_back(pool.random_mapping(nranks, rng));
  }

  std::printf("=== wire throughput: pipelined connections over loopback, "
              "4 workers, cache on ===\n");
  TextTable t({"connections", "offered req/s", "goodput req/s", "p50 ms",
               "p99 ms", "coalesced", "shed"});
  for (const std::size_t connections :
       {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    server::ServerConfig cfg;
    cfg.workers = 4;
    cfg.max_queue_depth = 4096;
    server::CbesServer srv(env.service(), cfg);
    net::NetConfig net_cfg;
    net::NetServer netsrv(srv, net_cfg);

    net::LoadGenOptions opt =
        base_load(netsrv.port(), program.name, mappings);
    opt.connections = connections;
    const net::LoadGenReport r = net::run_loadgen(opt);
    netsrv.stop();
    srv.shutdown(/*drain=*/true);

    const double coalesce_rate =
        r.submitted > 0 ? static_cast<double>(r.coalesced) /
                              static_cast<double>(r.submitted)
                        : 0.0;
    t.row()
        .cell(static_cast<double>(connections), 0)
        .cell(r.offered_rps, 0)
        .cell(r.goodput_rps, 0)
        .cell(r.p50_ms, 3)
        .cell(r.p99_ms, 3)
        .cell(format_percent(coalesce_rate))
        .cell(static_cast<double>(r.shed), 0);
    const std::string tag = std::to_string(connections) + "c";
    bench::record_metric("net_goodput_rps_" + tag, r.goodput_rps, "req/s");
    bench::record_metric("net_offered_rps_" + tag, r.offered_rps, "req/s");
    bench::record_metric("net_p50_ms_" + tag, r.p50_ms, "ms");
    bench::record_metric("net_p99_ms_" + tag, r.p99_ms, "ms");
    bench::record_metric("net_coalesce_rate_pct_" + tag,
                         100.0 * coalesce_rate, "%");
  }
  t.print(std::cout);

  std::printf("\n=== wire saturation: 8 connections, 1 worker, cache off, "
              "brown-out shedding on ===\n");
  {
    // A wider candidate set makes every compare frame carry ~32 evaluations:
    // the broker (one worker) is the bottleneck, not the event loop, so the
    // queue genuinely overloads and the shedder has something to shed.
    std::vector<Mapping> wide = mappings;
    while (wide.size() < 32) wide.push_back(pool.random_mapping(nranks, rng));

    server::ServerConfig cfg;
    cfg.workers = 1;
    cfg.max_queue_depth = 4096;
    cfg.enable_cache = false;
    cfg.enable_shedding = true;
    cfg.shedder.target = 0.005;
    cfg.shedder.interval = 0.010;
    cfg.shedder.cool_down = 30.0;  // no de-escalation within the run
    server::CbesServer srv(env.service(), cfg);
    net::NetConfig net_cfg;
    net::NetServer netsrv(srv, net_cfg);

    net::LoadGenOptions opt =
        base_load(netsrv.port(), program.name, wide);
    opt.connections = 8;
    opt.pipeline = 64;
    opt.duration_s = 1.5;
    opt.compare_fraction = 1.0;  // every frame is a 32-candidate compare
    const net::LoadGenReport r = net::run_loadgen(opt);
    netsrv.stop();
    srv.shutdown(/*drain=*/true);

    const double shed_rate =
        r.submitted > 0 ? static_cast<double>(r.shed + r.rejected) /
                              static_cast<double>(r.submitted)
                        : 0.0;
    std::printf("offered %.0f req/s, goodput %.0f req/s, shed %.1f%%, "
                "p50 %.3f ms, p99 %.3f ms\n",
                r.offered_rps, r.goodput_rps, 100.0 * shed_rate, r.p50_ms,
                r.p99_ms);
    bench::record_metric("net_sat_offered_rps", r.offered_rps, "req/s");
    bench::record_metric("net_sat_goodput_rps", r.goodput_rps, "req/s");
    bench::record_metric("net_sat_shed_rate_pct", 100.0 * shed_rate, "%");
    bench::record_metric("net_sat_p50_ms", r.p50_ms, "ms");
    bench::record_metric("net_sat_p99_ms", r.p99_ms, "ms");
  }

  const std::string path = bench::write_bench_json("net_throughput");
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
