// Microbenchmark for the compiled incremental evaluation engine: throughput
// of scheduler moves (reassign one rank, re-score the mapping) through the
// legacy full-evaluation path vs the delta-evaluation session, at 8/32/128
// ranks on the Centurion cluster. Both paths score the same move sequence and
// must land on bit-identical final costs — the bench doubles as an end-to-end
// cross-check. Emits BENCH_eval_kernel.json so the speedup is tracked across
// PRs.
//
// Move targets are drawn uniformly over all nodes without capacity checks:
// the evaluation kernel is indifferent to slot limits, and the point is to
// time scoring, not pool bookkeeping.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/compiled_profile.h"
#include "sched/cost.h"
#include "sched/pool.h"

namespace {

using namespace cbes;
using namespace cbes::bench;

/// Synthetic profile with a ring-plus-skips pattern: every rank exchanges
/// with 4 receive and 4 send peers, enough communication structure that the
/// C term dominates evaluation time (the regime the delta path targets).
AppProfile ring_profile(std::size_t nranks) {
  AppProfile prof;
  prof.app_name = "eval-kernel-ring";
  prof.procs.resize(nranks);
  for (std::size_t i = 0; i < nranks; ++i) {
    auto& p = prof.procs[i];
    p.x = 50.0;
    p.o = 5.0;
    p.b = 10.0;
    p.lambda = 1.0;
    p.profiled_arch = Arch::kAlpha533;
    for (std::size_t g = 1; g <= 4; ++g) {
      const std::size_t stride = g * g;  // 1, 4, 9, 16 — ring plus skips
      p.recv_groups.push_back(
          MessageGroup{RankId{(i + nranks - stride % nranks) % nranks},
                       2048 * g, 8 + g});
      p.send_groups.push_back(
          MessageGroup{RankId{(i + stride) % nranks}, 2048 * g, 8 + g});
    }
  }
  for (Arch a : kAllArchs)
    prof.arch_speed[static_cast<std::size_t>(a)] = effective_speed(a, 0.4);
  return prof;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct KernelResult {
  double full_rate = 0.0;   ///< full-path moves/sec
  double delta_rate = 0.0;  ///< session moves/sec
};

KernelResult run_kernel(const Env& env, std::size_t nranks) {
  const AppProfile prof = ring_profile(nranks);
  const LoadSnapshot snapshot = LoadSnapshot::idle(env.topology().node_count());
  const NodePool pool = NodePool::whole_cluster(env.topology());
  Rng map_rng(0xEE1);
  const Mapping initial = pool.random_mapping(nranks, map_rng);
  const std::size_t nnodes = env.topology().node_count();
  const std::size_t moves = 2'000'000 / nranks;

  const CbesCost full_cost(env.svc->evaluator(), prof, snapshot, EvalOptions{},
                           /*guidance=*/1e-3, EvalEngine::kFull);
  const CbesCost delta_cost(env.svc->evaluator(), prof, snapshot,
                            EvalOptions{}, /*guidance=*/1e-3,
                            EvalEngine::kIncremental);

  // Full path: mutate a mapping and re-score it from scratch each move.
  Mapping working = initial;
  Rng full_rng(0x5EED);
  double full_final = 0.0;
  const auto full_start = std::chrono::steady_clock::now();
  for (std::size_t m = 0; m < moves; ++m) {
    const RankId rank{full_rng.index(nranks)};
    const NodeId node{full_rng.index(nnodes)};
    working.reassign(rank, node);
    full_final = full_cost(working);
  }
  const double full_seconds = seconds_since(full_start);

  // Delta path: the identical move sequence through a session (every move
  // accepted, so each step is one apply + one incremental re-score).
  const auto session = delta_cost.session(initial);
  CBES_CHECK_MSG(session != nullptr, "incremental engine must offer sessions");
  Rng delta_rng(0x5EED);
  double delta_final = 0.0;
  const auto delta_start = std::chrono::steady_clock::now();
  for (std::size_t m = 0; m < moves; ++m) {
    const RankId rank{delta_rng.index(nranks)};
    const NodeId node{delta_rng.index(nnodes)};
    session->apply(rank, node);
    session->commit();
    delta_final = session->cost();
  }
  const double delta_seconds = seconds_since(delta_start);

  CBES_CHECK_MSG(full_final == delta_final,
                 "delta evaluation diverged from the full path");

  KernelResult result;
  result.full_rate = static_cast<double>(moves) / full_seconds;
  result.delta_rate = static_cast<double>(moves) / delta_seconds;
  return result;
}

}  // namespace

int main() {
  const Env env = make_centurion_env();

  std::printf("eval kernel: scheduler-move throughput, full vs delta\n");
  std::printf("%8s %16s %16s %10s\n", "ranks", "full moves/s", "delta moves/s",
              "speedup");
  for (const std::size_t nranks : {std::size_t{8}, std::size_t{32},
                                   std::size_t{128}}) {
    const KernelResult r = run_kernel(env, nranks);
    const double speedup = r.delta_rate / r.full_rate;
    std::printf("%8zu %16.0f %16.0f %9.1fx\n", nranks, r.full_rate,
                r.delta_rate, speedup);
    const std::string suffix = "_" + std::to_string(nranks) + "ranks";
    record_metric("eval_kernel_full_moves_per_sec" + suffix, r.full_rate,
                  "moves/s");
    record_metric("eval_kernel_delta_moves_per_sec" + suffix, r.delta_rate,
                  "moves/s");
    record_metric("eval_kernel_speedup" + suffix, speedup, "x");
  }
  const std::string path = write_bench_json("eval_kernel");
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
