// E5 — Figure 6: "LU on 8 Orange Grove nodes: measured execution time
// ranges". A sampling of ~100 representative mappings across the cluster's
// mapping space reveals three execution-time zones, one per node-speed subset
// (A, A+I, A+I+S); zone separation comes from architecture speed, intra-zone
// range from communication.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"
#include "common/stats.h"

int main() {
  using namespace cbes;
  using namespace cbes::bench;

  std::printf(
      "CBES reproduction -- E5 / Figure 6: LU execution-time zones on Orange "
      "Grove\n\n");

  const Env env = make_orange_grove_env();
  const ClusterTopology& topo = env.topology();
  const Program lu = make_lu(orange_grove_lu_params());
  NoLoad idle;
  MpiSimulator& sim = env.svc->simulator();

  // Paper values for reference (figure 6, read off the plot).
  const double paper_lo[4] = {0, 207.8, 236.2, 308.2};
  const double paper_hi[4] = {0, 219.4, 260.4, 327.8};

  constexpr std::size_t kMappingsPerZone = 34;  // ~100 total, as in the paper
  const std::string csv = csv_path("fig6_lu_zones");
  std::unique_ptr<CsvWriter> out;
  if (!csv.empty()) {
    out = std::make_unique<CsvWriter>(
        csv, std::vector<std::string>{"zone", "mapping", "seconds"});
  }

  TextTable table({"architecture mix", "min (s)", "max (s)", "mean (s)",
                   "paper range (s)"});
  Rng rng(0xF16);
  std::vector<double> all_times;
  for (int zone = 1; zone <= 3; ++zone) {
    const NodePool pool = zone_pool(topo, zone);
    MeasureCache cache(sim, lu, idle, /*repeats=*/2,
                       0xF16000 + static_cast<std::uint64_t>(zone));
    RunningStats stats;
    for (std::size_t i = 0; i < kMappingsPerZone; ++i) {
      const Mapping m = pool.random_mapping(8, rng);
      const double t = cache.measure(m);
      stats.add(t);
      all_times.push_back(t);
      if (out) {
        out->row({zone_name(zone), std::to_string(i), format_fixed(t, 2)});
      }
    }
    table.row()
        .cell(zone_name(zone))
        .cell(stats.min(), 1)
        .cell(stats.max(), 1)
        .cell(stats.mean(), 1)
        .cell(format_fixed(paper_lo[zone], 1) + " - " +
              format_fixed(paper_hi[zone], 1));
  }
  table.print(std::cout);

  // The figure's visual: distinct, non-overlapping zones.
  std::printf("\nDistribution of all %zu sampled mappings (seconds):\n",
              all_times.size());
  Histogram hist(180.0, 340.0, 16);
  for (double t : all_times) hist.add(t);
  std::cout << hist.ascii(48);
  if (out) std::printf("\nwrote %s\n", csv.c_str());
  return 0;
}
