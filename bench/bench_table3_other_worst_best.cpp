// E9 — Table 3: "Other tests: worst vs. best case scenario". HPL (three
// problem sizes), sweep3d, smg2000 (three problem sizes), SAMRAI, Towhee, and
// Aztec, scheduled on a homogeneous node subset so the comparison isolates the
// effect of communications. The paper finds speedups of 5.6-10.8% for the
// communication-structured codes and "uncertain speedup" for sweep3d, SAMRAI,
// Towhee, and the short HPL(500) run.
#include <cstdio>
#include <iostream>

#include "apps/registry.h"
#include "bench_util.h"
#include "common/table.h"
#include "profile/profiler.h"

namespace {

using namespace cbes;
using namespace cbes::bench;

struct Case {
  const char* app;
  double paper_worst;
  double paper_best;
  double paper_speedup;  ///< percent; <0 marks the paper's "uncertain" cases
  const char* comment;
};

constexpr Case kCases[] = {
    {"hpl.500", 24.6, 24.6, -1, "short run: uncertain speedup"},
    {"hpl.5000", 87.7, 80.2, 10.8, ""},
    {"hpl.10000", 463.3, 435.9, 5.9, ""},
    {"sweep3d", 70.6, 70.6, -1, "near all-to-all: uncertain"},
    {"smg2000.12", 17.3, 16.4, 5.6, ""},
    {"smg2000.50", 72.0, 66.7, 7.4, ""},
    {"smg2000.60", 127.3, 115.1, 9.6, ""},
    {"samrai", 7.7, 7.7, -1, "near all-to-all: uncertain"},
    {"towhee", 46.4, 46.4, -1, "embarrassingly parallel: uncertain"},
    {"aztec", 90.7, 80.9, 10.8, "Poisson solver"},
};

}  // namespace

int main() {
  using namespace cbes;
  using namespace cbes::bench;

  std::printf(
      "CBES reproduction -- E9 / Table 3: other programs, worst vs. best on a "
      "homogeneous pool\n\n");

  const Env env = make_orange_grove_env();
  const ClusterTopology& topo = env.topology();
  // "Level the field": restrict both schedulers to the Intel pool (12 nodes
  // across three switches), one rank per node.
  const NodePool pool = NodePool::by_arch(topo, Arch::kIntelPII400)
                            .one_per_node();
  const auto intels = topo.nodes_with_arch(Arch::kIntelPII400);
  const Mapping profiling_mapping(
      std::vector<NodeId>(intels.begin(), intels.begin() + 8));
  NoLoad idle;
  const LoadSnapshot snapshot = env.svc->monitor().snapshot(0.0);

  constexpr std::size_t kRuns = 25;

  TextTable table({"test case", "worst (s)", "best (s)", "speedup",
                   "sched time (s)", "paper (w/b/spd)", "comment"});
  std::size_t case_index = 0;
  for (const Case& c : kCases) {
    ++case_index;
    const Program program = find_app(c.app).make(8);
    env.svc->register_application(program, profiling_mapping);
    const AppProfile& profile = env.svc->profile_of(program.name);

    MeasureCache cache(env.svc->simulator(), program, idle, /*repeats=*/3,
                       derive_seed(0x7AB3E, case_index));
    SaParams params = paper_sa_params();
    params.seed = derive_seed(0x3A, case_index);
    const CampaignResult ncs =
        run_campaign(pool, 8, env.svc->evaluator(), profile, snapshot,
                     ncs_options(), cache, kRuns, params);
    params.seed = derive_seed(0x3B, case_index);
    const CampaignResult cs =
        run_campaign(pool, 8, env.svc->evaluator(), profile, snapshot,
                     EvalOptions{}, cache, kRuns, params);

    const double worst = ncs.worst_measured();
    const double best = cs.best_measured();
    const double speedup = 100.0 * (worst - best) / worst;

    // "Uncertain": the gap is inside the measurement noise of the extremes.
    auto worst_it = std::max_element(ncs.measured.begin(), ncs.measured.end());
    auto best_it = std::min_element(cs.measured.begin(), cs.measured.end());
    const double noise =
        cache
            .stats(ncs.picks[static_cast<std::size_t>(
                                 worst_it - ncs.measured.begin())]
                       .mapping)
            .ci95_halfwidth() +
        cache
            .stats(cs.picks[static_cast<std::size_t>(best_it -
                                                     cs.measured.begin())]
                       .mapping)
            .ci95_halfwidth();
    const bool uncertain = (worst - best) < 2.0 * noise || speedup < 1.5;

    std::string paper_col;
    if (c.paper_speedup < 0) {
      paper_col = "uncertain";
    } else {
      paper_col = format_fixed(c.paper_worst, 1) + "/" +
                  format_fixed(c.paper_best, 1) + "/" +
                  format_fixed(c.paper_speedup, 1) + "%";
    }
    table.row()
        .cell(c.app)
        .cell(worst, 1)
        .cell(best, 1)
        .cell(uncertain ? "uncertain" : format_percent(speedup / 100.0))
        .cell((cs.total_wall + ncs.total_wall) /
                  static_cast<double>(2 * kRuns),
              3)
        .cell(paper_col)
        .cell(c.comment);
  }
  table.print(std::cout);

  std::printf(
      "\nworst = slowest measured mapping across %zu NCS runs; best = fastest "
      "across %zu CS\nruns; both schedulers restricted to the homogeneous "
      "Intel pool (one rank/node).\n",
      kRuns, kRuns);
  return 0;
}
