// E4 — §6 (text): internode latency differences due to connectivity and
// heterogeneity. The paper reports "up to approximately 13%" for Centurion
// and "as high as 54%" for Orange Grove; differences are (max - min) / max.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "netmodel/calibrate.h"

namespace {

using namespace cbes;

struct Spread {
  Seconds lo = kNever;
  Seconds hi = 0.0;
  [[nodiscard]] double diff() const { return (hi - lo) / hi; }
};

Spread spread_at(const LatencyModel& model, const ClusterTopology& topo,
                 Bytes size) {
  Spread s;
  for (std::size_t a = 0; a < topo.node_count(); ++a) {
    for (std::size_t b = 0; b < topo.node_count(); ++b) {
      if (a == b) continue;
      const Seconds l = model.no_load(NodeId{a}, NodeId{b}, size);
      s.lo = std::min(s.lo, l);
      s.hi = std::max(s.hi, l);
    }
  }
  return s;
}

void report(const char* label, const ClusterTopology& topo,
            const LatencyModel& model, double paper_max) {
  std::printf("\n=== %s: internode latency differences ===\n", label);
  TextTable t({"msg size", "min latency (us)", "max latency (us)",
               "difference", "paper (max)"});
  double max_diff = 0.0;
  for (Bytes size : {Bytes{64}, Bytes{1024}, Bytes{8192}, Bytes{65536}}) {
    const Spread s = spread_at(model, topo, size);
    max_diff = std::max(max_diff, s.diff());
    t.row()
        .cell(format_bytes(size))
        .cell(s.lo * 1e6, 1)
        .cell(s.hi * 1e6, 1)
        .cell(format_percent(s.diff()))
        .cell(format_percent(paper_max));
  }
  t.print(std::cout);
  std::printf("max difference across sizes: %.1f%%  (paper: ~%.0f%%)\n",
              100.0 * max_diff, 100.0 * paper_max);
}

}  // namespace

int main() {
  using namespace cbes;
  using namespace cbes::bench;

  std::printf("CBES reproduction -- E4: cluster latency heterogeneity\n");

  const Env centurion = make_centurion_env();
  report("Centurion (128 nodes)", centurion.topology(),
         centurion.svc->latency_model(), 0.13);

  const Env grove = make_orange_grove_env();
  report("Orange Grove (28 nodes)", grove.topology(),
         grove.svc->latency_model(), 0.54);

  // Same-architecture difference: the paper's abstract highlights >10%
  // speedup potential "between same architecture nodes"; show the latency
  // structure behind it for the Intel pool.
  const ClusterTopology& topo = grove.topology();
  const LatencyModel& model = grove.svc->latency_model();
  const auto intels = topo.nodes_with_arch(Arch::kIntelPII400);
  Spread intel;
  for (NodeId a : intels) {
    for (NodeId b : intels) {
      if (a == b) continue;
      const Seconds l = model.no_load(a, b, 1024);
      intel.lo = std::min(intel.lo, l);
      intel.hi = std::max(intel.hi, l);
    }
  }
  std::printf(
      "\nOrange Grove Intel pool (same architecture, 1 KiB): %.1f%% latency "
      "difference\n",
      100.0 * intel.diff());
  return 0;
}
