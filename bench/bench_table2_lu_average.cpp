// E7 — Table 2: "LU: average case scenario". 100 CS and 100 NCS scheduling
// runs per zone; the table reports average predicted time, hit percentage
// (selections of minimum-execution-time mappings), average measured time, and
// expected vs measured vs maximum speedup. The paper finds CS ~90% successful
// and NCS under 3%.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace cbes;
  using namespace cbes::bench;

  std::printf(
      "CBES reproduction -- E7 / Table 2: LU average case per zone "
      "(100 runs per scheduler)\n\n");

  const Env env = make_orange_grove_env();
  const ClusterTopology& topo = env.topology();
  const Program lu = make_lu(orange_grove_lu_params());

  const auto alphas = topo.nodes_with_arch(Arch::kAlpha533);
  const auto intels = topo.nodes_with_arch(Arch::kIntelPII400);
  const auto sparcs = topo.nodes_with_arch(Arch::kSparc500);
  env.svc->register_application(
      lu, Mapping(std::vector<NodeId>(alphas.begin(), alphas.end())));
  const AppProfile& profile = env.svc->profile_of("lu");
  const LoadSnapshot snapshot = env.svc->monitor().snapshot(0.0);
  NoLoad idle;

  constexpr std::size_t kRuns = 100;
  // A selection counts as a "hit" when its measured time is within this
  // fraction of the best measured mapping of the zone.
  constexpr double kHitTolerance = 0.01;

  struct PaperRow {
    double cs_pred, cs_meas, cs_hits;
    double ncs_pred, ncs_meas, ncs_hits;
    double exp_spd, meas_spd, max_spd;
  };
  // Paper table 2: CS avg predicted / measured / hit%, then NCS (normalized
  // prediction) / measured / hit%, then expected / measured / max speedups.
  const PaperRow paper[4] = {{},
                             {212.1, 207.8, 92, 217.6, 218.2, 2, 2.5, 4.8, 5.3},
                             {235.6, 236.2, 89, 254.0, 258.7, 1, 7.2, 8.7, 9.3},
                             {302.3, 308.2, 90, 318.9, 326.2, 1, 5.2, 5.5, 6.0}};

  TextTable table({"test case", "sched", "avg pred (s)", "hits",
                   "avg measured (s)", "+/-95%", "speedup exp/meas/max",
                   "paper exp/meas/max"});

  for (int zone = 1; zone <= 3; ++zone) {
    const NodePool pool = zone_pool(topo, zone);
    MeasureCache cache(env.svc->simulator(), lu, idle, /*repeats=*/3,
                       0x7AB2E000 + static_cast<std::uint64_t>(zone));

    SaParams params = paper_sa_params();
    params.seed = 0xA51 + static_cast<std::uint64_t>(zone);
    CampaignResult ncs =
        run_campaign(pool, 8, env.svc->evaluator(), profile, snapshot,
                     ncs_options(), cache, kRuns, params);
    params.seed = 0xAC5 + static_cast<std::uint64_t>(zone);
    const CampaignResult cs =
        run_campaign(pool, 8, env.svc->evaluator(), profile, snapshot,
                     EvalOptions{}, cache, kRuns, params);

    // The NCS score is not a time; re-score its picks with the full
    // evaluation operation, as the paper does ("normalized prediction").
    for (std::size_t i = 0; i < ncs.picks.size(); ++i) {
      ncs.predicted[i] = full_prediction(env.svc->evaluator(), profile,
                                         ncs.picks[i].mapping, snapshot);
    }

    const double global_best =
        std::min(cs.best_measured(), ncs.best_measured());
    const double exp_spd =
        100.0 * (ncs.mean_predicted() - cs.mean_predicted()) /
        ncs.mean_predicted();
    const double meas_spd = 100.0 *
                            (ncs.mean_measured() - cs.mean_measured()) /
                            ncs.mean_measured();
    const double max_spd = 100.0 *
                           (ncs.worst_measured() - cs.best_measured()) /
                           ncs.worst_measured();

    RunningStats cs_meas, ncs_meas;
    for (double m : cs.measured) cs_meas.add(m);
    for (double m : ncs.measured) ncs_meas.add(m);

    const PaperRow& p = paper[zone];
    table.row()
        .cell(std::string("LU (") + std::to_string(zone) + ")")
        .cell("CS")
        .cell(cs.mean_predicted(), 1)
        .cell(format_percent(cs.hit_rate(global_best, kHitTolerance), 0))
        .cell(cs.mean_measured(), 1)
        .cell(cs_meas.ci95_halfwidth(), 1)
        .cell(format_fixed(exp_spd, 1) + "/" + format_fixed(meas_spd, 1) +
              "/" + format_fixed(max_spd, 1) + "%")
        .cell(format_fixed(p.cs_pred, 1) + "s meas " +
              format_fixed(p.cs_meas, 1) + "s hits " +
              format_fixed(p.cs_hits, 0) + "%");
    table.row()
        .cell("")
        .cell("NCS")
        .cell(ncs.mean_predicted(), 1)
        .cell(format_percent(ncs.hit_rate(global_best, kHitTolerance), 0))
        .cell(ncs.mean_measured(), 1)
        .cell(ncs_meas.ci95_halfwidth(), 1)
        .cell(format_fixed(p.exp_spd, 1) + "/" + format_fixed(p.meas_spd, 1) +
              "/" + format_fixed(p.max_spd, 1) + "% (paper)")
        .cell(format_fixed(p.ncs_pred, 1) + "s meas " +
              format_fixed(p.ncs_meas, 1) + "s hits " +
              format_fixed(p.ncs_hits, 0) + "%");
  }
  table.print(std::cout);

  std::printf(
      "\nHits: selections whose measured time is within %.1f%% of the zone's "
      "best\nmeasured mapping. Paper: CS ~90%% successful, NCS < 3%%.\n",
      100 * kHitTolerance);
  return 0;
}
