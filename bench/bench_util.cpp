#include "bench_util.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "common/check.h"
#include "common/rng.h"

namespace cbes::bench {

namespace {

CbesService::Config standard_config() {
  CbesService::Config cfg;
  cfg.calibration.repeats = 5;
  // The paper's scheduling experiments ran on an otherwise idle cluster; the
  // monitor's synthetic sensor noise would otherwise break NCS's cost
  // plateaus and steer it (the real daemons report a clean idle picture).
  cfg.monitor.noise_sigma = 0.0;
  return cfg;
}

Env make_env(ClusterTopology topo) {
  Env env;
  env.topo = std::make_unique<ClusterTopology>(std::move(topo));
  env.truth = std::make_unique<NoLoad>();
  env.svc = std::make_unique<CbesService>(*env.topo, *env.truth,
                                          standard_config());
  return env;
}

}  // namespace

Env make_orange_grove_env() { return make_env(make_orange_grove()); }

Env make_centurion_env() { return make_env(make_centurion()); }

LuParams orange_grove_lu_params() {
  LuParams p;
  p.ranks = 8;
  p.iters = 60;
  p.compute_per_iter = 2.6;
  p.blocks_per_sweep = 20;
  p.msg_size = 10 * 1024;
  p.halo_rounds = 16;
  p.halo_size = 48 * 1024;
  p.allreduce_every = 5;
  p.mem_intensity = 0.40;
  return p;
}

NodePool zone_pool(const ClusterTopology& topo, int zone) {
  const auto alphas = topo.nodes_with_arch(Arch::kAlpha533);
  const auto intels = topo.nodes_with_arch(Arch::kIntelPII400);
  const auto sparcs = topo.nodes_with_arch(Arch::kSparc500);
  std::vector<NodeId> nodes;
  switch (zone) {
    case 1:
      nodes = alphas;
      break;
    case 2:
      nodes.assign(alphas.begin(), alphas.begin() + 4);
      nodes.insert(nodes.end(), intels.begin(), intels.end());
      break;
    case 3:
      nodes.assign(alphas.begin(), alphas.begin() + 2);
      nodes.insert(nodes.end(), intels.begin(), intels.begin() + 2);
      nodes.insert(nodes.end(), sparcs.begin(), sparcs.end());
      break;
    default:
      throw ContractError("zone must be 1, 2, or 3");
  }
  // Node-level mappings, as in the paper's 8-node scheduling tests.
  return NodePool(topo, std::move(nodes), /*max_slots_per_node=*/1);
}

const char* zone_name(int zone) {
  switch (zone) {
    case 1: return "high-speed group (A)";
    case 2: return "medium-speed group (A+I)";
    case 3: return "low-speed group (A+I+S)";
  }
  return "?";
}

MeasureCache::MeasureCache(MpiSimulator& sim, const Program& program,
                           const LoadModel& load, int repeats,
                           std::uint64_t seed)
    : sim_(&sim),
      program_(&program),
      load_(&load),
      repeats_(repeats),
      seed_(seed) {
  CBES_CHECK_MSG(repeats >= 1, "need at least one measurement repeat");
}

const RunningStats& MeasureCache::stats(const Mapping& mapping) {
  auto [it, inserted] = cache_.try_emplace(mapping.assignment());
  if (inserted) {
    for (int r = 0; r < repeats_; ++r) {
      SimOptions opt;
      opt.seed = derive_seed(seed_, cache_.size() * 1000 +
                                        static_cast<std::uint64_t>(r));
      it->second.add(sim_->run(*program_, mapping, *load_, opt).makespan);
      ++simulations_;
    }
  }
  return it->second;
}

double MeasureCache::measure(const Mapping& mapping) {
  return stats(mapping).mean();
}

double CampaignResult::mean_predicted() const {
  double sum = 0;
  for (double p : predicted) sum += p;
  return predicted.empty() ? 0.0 : sum / static_cast<double>(predicted.size());
}

double CampaignResult::mean_measured() const {
  double sum = 0;
  for (double m : measured) sum += m;
  return measured.empty() ? 0.0 : sum / static_cast<double>(measured.size());
}

double CampaignResult::best_measured() const {
  return *std::min_element(measured.begin(), measured.end());
}

double CampaignResult::worst_measured() const {
  return *std::max_element(measured.begin(), measured.end());
}

double CampaignResult::hit_rate(double global_best, double tolerance) const {
  std::size_t hits = 0;
  for (double m : measured) {
    if (m <= global_best * (1.0 + tolerance)) ++hits;
  }
  return measured.empty()
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(measured.size());
}

CampaignResult run_campaign(const NodePool& pool, std::size_t nranks,
                            const MappingEvaluator& evaluator,
                            const AppProfile& profile,
                            const LoadSnapshot& snapshot, EvalOptions options,
                            MeasureCache& cache, std::size_t runs,
                            const SaParams& base_params) {
  CampaignResult result;
  // No plateau guidance for NCS: within an equal-speed pool its cost must be
  // flat so it "behaves like RS", exactly as the paper observes.
  const double guidance = options.comm_term ? 1e-3 : 0.0;
  const CbesCost cost(evaluator, profile, snapshot, options, guidance);
  for (std::size_t run = 0; run < runs; ++run) {
    SaParams params = base_params;
    params.seed = derive_seed(base_params.seed, run + 1);
    SimulatedAnnealingScheduler scheduler(params);
    ScheduleResult pick = scheduler.schedule(nranks, pool, cost);
    result.total_wall += pick.wall_seconds;
    result.predicted.push_back(pick.cost);
    result.measured.push_back(cache.measure(pick.mapping));
    result.picks.push_back(std::move(pick));
  }
  return result;
}

SaParams paper_sa_params() {
  SaParams params;
  params.moves_per_temperature = 60;
  params.cooling = 0.92;
  params.restarts = 1;
  params.structured_warm_start = false;
  params.max_evaluations = 6000;
  return params;
}

double full_prediction(const MappingEvaluator& evaluator,
                       const AppProfile& profile, const Mapping& mapping,
                       const LoadSnapshot& snapshot) {
  return evaluator.evaluate(profile, mapping, snapshot, EvalOptions{});
}

Mapping homogeneous_profiling_mapping(const ClusterTopology& topo,
                                      std::size_t nranks, Rng& rng) {
  const auto intels = topo.nodes_with_arch(Arch::kIntelPII400);
  CBES_CHECK_MSG(2 * intels.size() >= nranks,
                 "not enough Intel slots for a homogeneous profiling mapping");
  std::vector<NodeId> nodes;
  if (intels.size() >= nranks) {
    for (std::size_t idx : rng.sample_indices(intels.size(), nranks)) {
      nodes.push_back(intels[idx]);
    }
  } else {
    // Pack two ranks per dual-CPU node, nodes in order.
    for (std::size_t i = 0; nodes.size() < nranks; ++i) {
      nodes.push_back(intels[i / 2]);
    }
  }
  return Mapping(std::move(nodes));
}

Mapping arch_preserving_shuffle(const ClusterTopology& topo,
                                const Mapping& mapping, Rng& rng) {
  std::vector<NodeId> assignment = mapping.assignment();
  for (Arch arch : kAllArchs) {
    std::vector<std::size_t> rank_slots;
    for (std::size_t r = 0; r < assignment.size(); ++r) {
      if (topo.node(assignment[r]).arch == arch) rank_slots.push_back(r);
    }
    if (rank_slots.empty()) continue;
    const auto pool_nodes = topo.nodes_with_arch(arch);
    const auto picks =
        rng.sample_indices(pool_nodes.size(), rank_slots.size());
    for (std::size_t i = 0; i < rank_slots.size(); ++i) {
      assignment[rank_slots[i]] = pool_nodes[picks[i]];
    }
  }
  return Mapping(std::move(assignment));
}

std::string csv_path(const std::string& name) {
  const char* dir = std::getenv("CBES_BENCH_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  return std::string(dir) + "/" + name + ".csv";
}

obs::MetricsRegistry& bench_metrics() {
  static obs::MetricsRegistry registry;
  return registry;
}

void record_metric(const std::string& name, double value,
                   const std::string& unit) {
  bench_metrics().gauge(name, unit).set(value);
}

std::string write_bench_json(const std::string& bench) {
  const char* dir = std::getenv("CBES_BENCH_CSV_DIR");
  const std::string path = (dir != nullptr && *dir != '\0')
                               ? std::string(dir) + "/BENCH_" + bench + ".json"
                               : "BENCH_" + bench + ".json";
  std::ofstream out(path);
  out << "[\n";
  const auto samples = bench_metrics().samples();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out << "  {\"metric\": \"" << samples[i].name << "\", \"value\": "
        << samples[i].value << ", \"unit\": \"" << samples[i].help << "\"}"
        << (i + 1 < samples.size() ? "," : "") << '\n';
  }
  out << "]\n";
  return path;
}

}  // namespace cbes::bench
