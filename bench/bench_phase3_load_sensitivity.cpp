// E3 — §5 phase 3 (text): prediction tolerance to background-load change.
// A prediction is made against the monitor's picture, then the actual load
// changes before/while the program runs. The paper finds predictions "highly
// sensitive": losing just 10% CPU availability on a single mapped node pushes
// the error past the ~4% envelope, while light (<10%) or short-lived loads do
// not invalidate predictions.
#include <cstdio>
#include <iostream>

#include "apps/npb.h"
#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace cbes;
  using namespace cbes::bench;

  std::printf(
      "CBES reproduction -- E3 / phase 3: prediction sensitivity to "
      "background-load change\n\n");

  const Env env = make_orange_grove_env();
  const ClusterTopology& topo = env.topology();
  const auto alphas = topo.nodes_with_arch(Arch::kAlpha533);
  const Mapping mapping(std::vector<NodeId>(alphas.begin(), alphas.end()));

  struct Workload {
    const char* name;
    Program program;
  };
  Workload workloads[] = {
      {"LU", make_lu(orange_grove_lu_params())},
      {"SP", make_npb_sp(8, NpbClass::kA)},
      {"BT", make_npb_bt(8, NpbClass::kA)},
  };

  struct LoadCase {
    const char* label;
    double demand;       ///< CPU demand of the background job
    int nodes;           ///< how many mapped nodes it lands on
    double duration_fraction;  ///< episode length relative to the run (1 = whole run)
  };
  const LoadCase cases[] = {
      {"no load change", 0.00, 0, 1.0},
      {"5% on 1 node", 0.05, 1, 1.0},
      {"10% on 1 node", 0.10, 1, 1.0},
      {"20% on 1 node", 0.20, 1, 1.0},
      {"10% on 3 nodes", 0.10, 3, 1.0},
      {"30% on 1 node", 0.30, 1, 1.0},
      {"30% on 1 node, brief", 0.30, 1, 0.05},
  };

  TextTable table({"program", "load change after prediction", "predicted (s)",
                   "measured (s)", "error"});
  for (Workload& w : workloads) {
    // Profile and predict on the unloaded system.
    env.svc->register_application(w.program, mapping);
    const AppProfile& profile = env.svc->profile_of(w.program.name);
    const LoadSnapshot idle_snapshot = env.svc->monitor().snapshot(0.0);
    const Seconds predicted =
        env.svc->evaluator().evaluate(profile, mapping, idle_snapshot);

    for (const LoadCase& c : cases) {
      ScriptedLoad truth;
      for (int n = 0; n < c.nodes; ++n) {
        truth.add({mapping.node_of(RankId{static_cast<std::size_t>(n)}), 0.0,
                   c.demand > 0.0 ? predicted * c.duration_fraction : 1e-9,
                   std::max(c.demand, 1e-6), 0.0});
      }
      RunningStats meas;
      for (int run = 0; run < 3; ++run) {
        SimOptions sim;
        sim.seed = derive_seed(0x9A53, static_cast<std::uint64_t>(run) + 1);
        meas.add(env.svc->simulator()
                     .run(w.program, mapping, truth, sim)
                     .makespan);
      }
      const double err =
          100.0 * std::abs(predicted - meas.mean()) / meas.mean();
      table.row()
          .cell(w.name)
          .cell(c.label)
          .cell(predicted, 1)
          .cell(meas.mean(), 1)
          .cell(format_percent(err / 100.0));
    }
  }
  table.print(std::cout);

  std::printf(
      "\npaper: losing >=10%% CPU on even one mapped node pushes the error "
      "past ~4%%;\nlight (<10%%) or short-lived loads do not invalidate the "
      "prediction.\n");
  return 0;
}
